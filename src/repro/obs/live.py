"""Live telemetry plane: in-flight shared-memory metrics (ARCHITECTURE.md §11).

PR 7's trace subsystem is strictly post-hoc — stragglers only become
visible after the run via ``repro report``.  This module makes the same
per-worker accounting readable *while* a run is in flight:

- :class:`LiveMetrics` owns one POSIX shared-memory segment with a
  fixed-slot layout: a 64-byte header, then one 128-byte slot per
  worker, then one parent-owned alert counter per worker.  Any process
  that knows the segment name can attach and take consistent snapshots
  without perturbing the run (``repro top``, the ``--metrics-port``
  HTTP exporter, external tooling).
- :class:`LiveSlotWriter` is the single-writer side of one slot.  Each
  process-backend worker publishes its own slot wait-free once per
  superstep; :class:`~repro.runtime.executor.SimBackend` publishes all
  slots from the drive loop with identical semantics, so sim and
  process segments are schema-identical by construction (mirroring the
  trace design).
- :class:`LiveMonitor` folds each superstep's per-worker readings into
  :class:`~repro.obs.stats.EwmaBaseline` online, flagging stragglers
  and anomalies *during* the run as "alert" trace instants and
  ``EngineResult.live_alerts`` entries.

Slot consistency uses a seqlock, the same idiom as the ring-buffer vote
slot in :mod:`repro.runtime.parallel.shm`: the writer bumps a sequence
word to odd, writes the payload, bumps it to even; a reader retries
while the sequence is odd or changed across its copy of the payload.
Writers never block and never wait for readers.
"""

from __future__ import annotations

import os
import struct
import time
from multiprocessing import shared_memory

from repro.obs.stats import EwmaBaseline
from repro.runtime.parallel.shm import untrack_segment

__all__ = [
    "LIVE_COUNTERS",
    "LIVE_GAUGES",
    "LiveMetrics",
    "LiveMonitor",
    "LiveSlotWriter",
    "read_proc_stats",
]

_MAGIC = 0x5245504C49564531  # "REPLIVE1"
# v2 appends a parent-owned per-worker migration counter region (8 bytes
# per worker) after the alert region; attach rejects other versions, so
# readers never misparse a foreign layout
_VERSION = 2

#: u64 slot fields, in payload order (cumulative unless noted; ``active``
#: is the *current* superstep's active-vertex count, not a running sum)
LIVE_COUNTERS = (
    "superstep",
    "active",
    "rounds",
    "net_bytes",
    "local_bytes",
    "messages",
)
#: f64 slot fields, in payload order after the counters
LIVE_GAUGES = (
    "barrier_seconds",
    "compute_seconds",
    "serialize_seconds",
    "exchange_seconds",
    "rss_bytes",
    "cpu_seconds",
    "updated_at",
)

# header: magic, version, num_workers, epoch (u64 each), created_at
# (f64, unix time), creator pid (u64); rest of the 64 bytes reserved
_HEADER = struct.Struct("<4QdQ")
_HEADER_SIZE = 64
# slot: seq (u64 seqlock word) then the payload; stride padded to 128
# bytes so slots never share a cache line between writers
_SEQ = struct.Struct("<Q")
_PAYLOAD = struct.Struct("<6Q7d")
_SLOT_SIZE = 128
assert _SEQ.size + _PAYLOAD.size <= _SLOT_SIZE

try:  # non-Linux fallbacks only matter for the (0, 0) /proc path below
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
    _CLK_TCK = os.sysconf("SC_CLK_TCK")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _PAGE_SIZE = 4096
    _CLK_TCK = 100


def read_proc_stats() -> tuple[float, float]:
    """(resident-set bytes, cumulative user+system CPU seconds) of this
    process, sampled from ``/proc``; ``(0.0, 0.0)`` where unavailable."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            rss = int(fh.read().split()[1]) * _PAGE_SIZE
        with open("/proc/self/stat", "rb") as fh:
            # the comm field may contain spaces/parens; everything after
            # the *last* ")" is fixed-position: utime/stime land at
            # indices 11/12 of the remainder
            rest = fh.read().rsplit(b")", 1)[1].split()
        cpu = (int(rest[11]) + int(rest[12])) / _CLK_TCK
    except (OSError, IndexError, ValueError):  # pragma: no cover
        return 0.0, 0.0
    return float(rss), float(cpu)


class LiveMetrics:
    """A named shared-memory segment of per-worker telemetry slots.

    Create on the run owner with :meth:`create`; workers and external
    observers :meth:`attach` by name.  The owner should ``close`` with
    ``unlink=True`` when the run ends; attachers just ``close``.
    """

    def __init__(self, seg: shared_memory.SharedMemory, num_workers: int, owns: bool):
        self._seg = seg
        self._buf = seg.buf
        self.num_workers = int(num_workers)
        self._owns = owns

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def create(cls, num_workers: int, name: str | None = None) -> "LiveMetrics":
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        # header, worker slots, alert counters, migration counters
        size = _HEADER_SIZE + _SLOT_SIZE * num_workers + 8 * num_workers + 8 * num_workers
        if name is not None:
            seg = shared_memory.SharedMemory(name=name, create=True, size=size)
        else:
            seg = shared_memory.SharedMemory(create=True, size=size)
        seg.buf[:size] = bytes(size)
        _HEADER.pack_into(
            seg.buf, 0, _MAGIC, _VERSION, num_workers, 0, time.time(), os.getpid()
        )
        return cls(seg, num_workers, owns=True)

    @classmethod
    def attach(cls, name_or_spec, unregister: bool = True) -> "LiveMetrics":
        """Attach to an existing segment by name or by :attr:`spec`.

        ``unregister`` keeps this process's resource tracker from
        double-unlinking a segment it does not own (bpo-39959) — pass
        ``False`` only from forked children, where "unregistering"
        would erase the parent's own claim (same rule as
        :func:`repro.runtime.parallel.shm.attach_array`).
        """
        name = name_or_spec["name"] if isinstance(name_or_spec, dict) else str(name_or_spec)
        seg = shared_memory.SharedMemory(name=name)
        if unregister:
            untrack_segment(seg)
        magic, version, num_workers, _, _, _ = _HEADER.unpack_from(seg.buf, 0)
        if magic != _MAGIC or version != _VERSION:
            seg.close()
            raise ValueError(f"{name!r} is not a live metrics segment")
        return cls(seg, num_workers, owns=False)

    @property
    def name(self) -> str:
        return self._seg.name

    @property
    def spec(self) -> dict:
        """Picklable attachment handle for worker processes."""
        return {"name": self.name, "num_workers": self.num_workers}

    def close(self, unlink: bool = False) -> None:
        if self._buf is None:
            return
        self._buf = None
        self._seg.close()
        if unlink and self._owns:
            try:
                self._seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    # -- reading ---------------------------------------------------------

    def _slot_off(self, worker: int) -> int:
        if not 0 <= worker < self.num_workers:
            raise IndexError(f"worker {worker} out of range")
        return _HEADER_SIZE + _SLOT_SIZE * worker

    def header(self) -> dict:
        magic, version, workers, epoch, created_at, pid = _HEADER.unpack_from(self._buf, 0)
        return {
            "version": int(version),
            "num_workers": int(workers),
            "epoch": int(epoch),
            "created_at": float(created_at),
            "pid": int(pid),
        }

    def snapshot(self, stale_after: float = 0.05) -> list[dict]:
        """One consistent reading per worker slot.

        Seqlock read: copy the payload between two reads of the sequence
        word and retry on a torn read (odd or changed sequence).  If a
        writer dies mid-publish the slot would spin forever, so after
        ``stale_after`` seconds the last copy is returned with
        ``"stale": True`` instead of raising.
        """
        out = []
        for w in range(self.num_workers):
            off = self._slot_off(w)
            deadline = time.perf_counter() + stale_after
            stale = True
            while True:
                seq = _SEQ.unpack_from(self._buf, off)[0]
                payload = bytes(self._buf[off + _SEQ.size : off + _SEQ.size + _PAYLOAD.size])
                seq2 = _SEQ.unpack_from(self._buf, off)[0]
                if seq == seq2 and seq % 2 == 0:
                    stale = False
                    break
                if time.perf_counter() >= deadline:
                    break
                time.sleep(0)  # yield to the in-flight writer
            values = _PAYLOAD.unpack(payload)
            row: dict = {"worker": w, "seq": int(seq), "stale": stale}
            row.update(zip(LIVE_COUNTERS, (int(v) for v in values[: len(LIVE_COUNTERS)])))
            row.update(zip(LIVE_GAUGES, (float(v) for v in values[len(LIVE_COUNTERS) :])))
            out.append(row)
        return out

    # -- writing ---------------------------------------------------------

    def writer(self, worker_id: int) -> "LiveSlotWriter":
        return LiveSlotWriter(self, worker_id)

    def roll_epoch(self, epoch: int) -> None:
        """Advance the header epoch (streaming: one bump per epoch).

        Slots are *not* zeroed here — each worker's writer zero-publishes
        when it is (re)configured for the new epoch, so a mid-roll reader
        never sees a slot torn between two epochs.
        """
        _HEADER.pack_into(
            self._buf, 0, _MAGIC, _VERSION, self.num_workers, int(epoch),
            self.header()["created_at"], os.getpid(),
        )

    # -- alerts (parent-owned; separate from the single-writer slots) ----

    def _alert_off(self, worker: int) -> int:
        return _HEADER_SIZE + _SLOT_SIZE * self.num_workers + 8 * worker

    def alert_counts(self) -> list[int]:
        return [
            _SEQ.unpack_from(self._buf, self._alert_off(w))[0]
            for w in range(self.num_workers)
        ]

    def bump_alert(self, worker: int) -> None:
        off = self._alert_off(int(worker))
        _SEQ.pack_into(self._buf, off, _SEQ.unpack_from(self._buf, off)[0] + 1)

    # -- migrations (parent-owned, like the alert counters) ---------------

    def _mig_off(self, worker: int) -> int:
        return _HEADER_SIZE + (_SLOT_SIZE + 8) * self.num_workers + 8 * worker

    def rebalance_counts(self) -> list[int]:
        """Per-worker count of live migrations that touched the worker
        (as source or destination of a moved range); the MIG column of
        ``repro top``."""
        return [
            _SEQ.unpack_from(self._buf, self._mig_off(w))[0]
            for w in range(self.num_workers)
        ]

    def bump_rebalance(self, worker: int) -> None:
        off = self._mig_off(int(worker))
        _SEQ.pack_into(self._buf, off, _SEQ.unpack_from(self._buf, off)[0] + 1)


class LiveSlotWriter:
    """Single-writer, seqlock-published view of one worker's slot.

    Accumulates locally (plain Python ints/floats, no shared state) and
    pushes the whole payload in one :meth:`publish` — so the shared
    segment only ever holds superstep-boundary-consistent values and the
    write path is two sequence stores plus one ``pack_into``.
    """

    def __init__(self, live: LiveMetrics, worker_id: int):
        self._live = live  # keeps the segment mapping alive
        self._off = live._slot_off(worker_id)
        self.worker_id = int(worker_id)
        self.counters = dict.fromkeys(LIVE_COUNTERS, 0)
        self.gauges = dict.fromkeys(LIVE_GAUGES, 0.0)
        self._mark: tuple[dict, dict] | None = None
        self._seq = _SEQ.unpack_from(live._buf, self._off)[0]
        if self._seq % 2:  # predecessor died mid-publish; make slot readable
            self._seq += 1
        self.publish()  # zero-publish: a fresh writer means a fresh run/epoch

    def add(
        self,
        *,
        superstep: int = 0,
        active: int | None = None,
        rounds: int = 0,
        net_bytes: int = 0,
        local_bytes: int = 0,
        messages: int = 0,
        **phase_seconds: float,
    ) -> None:
        """Fold one superstep's (or one phase's) contribution in locally.

        ``phase_seconds`` keys are phase names (``barrier``, ``compute``,
        ``serialize``, ``exchange``); values accumulate into the matching
        ``*_seconds`` gauge.  Nothing is visible until :meth:`publish`.
        """
        c = self.counters
        c["superstep"] += int(superstep)
        if active is not None:
            c["active"] = int(active)
        c["rounds"] += int(rounds)
        c["net_bytes"] += int(net_bytes)
        c["local_bytes"] += int(local_bytes)
        c["messages"] += int(messages)
        for phase, seconds in phase_seconds.items():
            key = f"{phase}_seconds"
            if key not in self.gauges:
                raise ValueError(f"unknown live phase {phase!r}")
            self.gauges[key] += float(seconds)

    def publish(self) -> None:
        """Seqlock write: odd seq -> payload -> even seq."""
        g = self.gauges
        g["rss_bytes"], g["cpu_seconds"] = read_proc_stats()
        g["updated_at"] = time.time()
        buf, off = self._live._buf, self._off
        _SEQ.pack_into(buf, off, self._seq + 1)
        _PAYLOAD.pack_into(
            buf,
            off + _SEQ.size,
            *(self.counters[k] for k in LIVE_COUNTERS),
            *(g[k] for k in LIVE_GAUGES),
        )
        self._seq += 2
        _SEQ.pack_into(buf, off, self._seq)

    # -- checkpoint/recovery support -------------------------------------

    def mark(self) -> None:
        """Remember the current counters (called at checkpoint capture)."""
        self._mark = (dict(self.counters), dict(self.gauges))

    def rewind(self) -> None:
        """Roll counters back to the last :meth:`mark` (rollback recovery
        replays from the checkpoint, and so does the live plane)."""
        if self._mark is None:
            self.counters = dict.fromkeys(LIVE_COUNTERS, 0)
            self.gauges = dict.fromkeys(LIVE_GAUGES, 0.0)
        else:
            self.counters = dict(self._mark[0])
            self.gauges = dict(self._mark[1])
        self.publish()


class LiveMonitor:
    """Online straggler/anomaly scoring over live snapshots.

    The drive loop calls :meth:`observe` once per superstep.  Each
    worker's per-superstep busy time (compute + serialize delta) is
    scored against its own :class:`EwmaBaseline` (temporal anomaly: this
    worker suddenly got slower than *its own* history) and against the
    current superstep's cross-worker mean (spatial straggler: this
    worker is slower than *its peers* right now).  Alerts become "alert"
    trace instants, ``EngineResult.live_alerts`` entries, and bumps of
    the segment's per-worker alert counters (the ALERT column of
    ``repro top``).
    """

    def __init__(
        self,
        live: LiveMetrics,
        metrics,
        z_threshold: float = 3.0,
        straggler_threshold: float = 1.5,
        min_seconds: float = 1e-3,
    ):
        self.live = live
        self.metrics = metrics
        self.z_threshold = float(z_threshold)
        self.straggler_threshold = float(straggler_threshold)
        #: ignore supersteps faster than this — sub-millisecond jitter is
        #: scheduler noise, not a straggler
        self.min_seconds = float(min_seconds)
        self.baselines = [EwmaBaseline() for _ in range(live.num_workers)]
        self._last = [0.0] * live.num_workers
        self.alerts: list[dict] = []

    def observe(self, superstep: int) -> list[dict]:
        rows = self.live.snapshot()
        totals = [r["compute_seconds"] + r["serialize_seconds"] for r in rows]
        # max() guards the rollback-recovery rewind, where cumulative
        # totals legitimately move backwards
        deltas = [max(0.0, t - last) for t, last in zip(totals, self._last)]
        self._last = totals
        n = len(deltas)
        mean = sum(deltas) / n if n else 0.0
        new = []
        for w, d in enumerate(deltas):
            z = self.baselines[w].update(d)
            if d < self.min_seconds:
                continue
            if z > self.z_threshold:
                new.append(self._alert("anomaly", w, superstep, z, self.z_threshold))
            elif n > 1 and mean > 0 and d / mean >= self.straggler_threshold:
                new.append(
                    self._alert(
                        "straggler", w, superstep, d / mean, self.straggler_threshold
                    )
                )
        return new

    def _alert(self, kind, worker, superstep, value, threshold) -> dict:
        alert = self.metrics.record_alert(kind, worker, superstep, value, threshold)
        self.live.bump_alert(worker)
        self.alerts.append(alert)
        return alert
