"""Versioned checkpoint snapshots of a running engine.

A checkpoint captures, per worker, everything needed to restart that
worker from a superstep boundary: the program's state dict, the
halt/wake flags, and every channel's dynamic state (including in-flight
inbox contents such as a ``DirectMessage``'s received CSR or a
``RequestRespond``'s answered responses).  The per-worker state is
serialized through the same codec layer the channels use on the wire
(:mod:`repro.runtime.serialization`), so checkpoint sizes reported by
:class:`~repro.runtime.metrics.MetricsCollector` are honest byte counts
and checkpoint write time can be charged by the network cost model
exactly like a buffer exchange.

The value encoding is a small tagged binary format covering the state
types programs and channels actually hold: NumPy arrays (any dtype,
including structured codec dtypes), Python scalars, strings, bytes,
``None``, and lists/tuples/dicts thereof.  It exists so that a snapshot
is a *byte string*, not a web of live object references — restoring from
it cannot accidentally share mutable state with the failed worker.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.runtime.serialization import (
    BufferReader,
    BufferWriter,
    FLOAT64,
    INT64,
    UINT8,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import ChannelEngine

__all__ = [
    "SNAPSHOT_VERSION",
    "encode_state",
    "decode_state",
    "Snapshot",
    "capture_worker_state",
    "load_worker_state",
    "capture_snapshot",
    "restore_worker",
]

#: bump when the worker-state layout changes incompatibly
SNAPSHOT_VERSION = 1

# value tags of the state encoding
_NONE, _BOOL, _INT, _FLOAT, _STR, _BYTES, _ARRAY, _LIST, _TUPLE, _DICT = range(10)


def _write_str(w: BufferWriter, s: str) -> None:
    raw = s.encode("utf-8")
    w.write_scalar(len(raw), INT64)
    w.write_bytes(raw)


def _read_str(r: BufferReader) -> str:
    n = int(r.read_scalar(INT64))
    return bytes(r.read_array(n, UINT8)).decode("utf-8")


def _write_value(w: BufferWriter, value) -> None:
    if value is None:
        w.write_scalar(_NONE, UINT8)
    elif isinstance(value, (bool, np.bool_)):
        w.write_scalar(_BOOL, UINT8)
        w.write_scalar(1 if value else 0, UINT8)
    elif isinstance(value, (int, np.integer)):
        w.write_scalar(_INT, UINT8)
        w.write_scalar(int(value), INT64)
    elif isinstance(value, (float, np.floating)):
        w.write_scalar(_FLOAT, UINT8)
        w.write_scalar(float(value), FLOAT64)
    elif isinstance(value, str):
        w.write_scalar(_STR, UINT8)
        _write_str(w, value)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        w.write_scalar(_BYTES, UINT8)
        raw = bytes(value)
        w.write_scalar(len(raw), INT64)
        w.write_bytes(raw)
    elif isinstance(value, np.ndarray):
        w.write_scalar(_ARRAY, UINT8)
        # descr round-trips structured dtypes (np.void scalars of the
        # struct codecs) which plain dtype.str would lose
        _write_str(w, json.dumps(np.lib.format.dtype_to_descr(value.dtype)))
        w.write_scalar(value.ndim, INT64)
        for dim in value.shape:
            w.write_scalar(int(dim), INT64)
        raw = np.ascontiguousarray(value).tobytes()
        w.write_scalar(len(raw), INT64)
        w.write_bytes(raw)
    elif isinstance(value, (list, tuple)):
        w.write_scalar(_LIST if isinstance(value, list) else _TUPLE, UINT8)
        w.write_scalar(len(value), INT64)
        for item in value:
            _write_value(w, item)
    elif isinstance(value, dict):
        w.write_scalar(_DICT, UINT8)
        w.write_scalar(len(value), INT64)
        for key, item in value.items():
            _write_value(w, key)
            _write_value(w, item)
    else:
        raise TypeError(
            f"cannot checkpoint a value of type {type(value).__name__}; "
            "supported state types are NumPy arrays, scalars, str, bytes, "
            "None, and lists/tuples/dicts of those"
        )


def _read_value(r: BufferReader):
    tag = int(r.read_scalar(UINT8))
    if tag == _NONE:
        return None
    if tag == _BOOL:
        return bool(r.read_scalar(UINT8))
    if tag == _INT:
        return int(r.read_scalar(INT64))
    if tag == _FLOAT:
        return float(r.read_scalar(FLOAT64))
    if tag == _STR:
        return _read_str(r)
    if tag == _BYTES:
        n = int(r.read_scalar(INT64))
        return bytes(r.read_array(n, UINT8))
    if tag == _ARRAY:
        dtype = np.lib.format.descr_to_dtype(json.loads(_read_str(r)))
        ndim = int(r.read_scalar(INT64))
        shape = tuple(int(r.read_scalar(INT64)) for _ in range(ndim))
        nbytes = int(r.read_scalar(INT64))
        raw = bytes(r.read_array(nbytes, UINT8))
        # .copy() hands the caller a writable array, never a view of the blob
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    if tag in (_LIST, _TUPLE):
        n = int(r.read_scalar(INT64))
        items = [_read_value(r) for _ in range(n)]
        return items if tag == _LIST else tuple(items)
    if tag == _DICT:
        n = int(r.read_scalar(INT64))
        out = {}
        for _ in range(n):
            key = _read_value(r)
            out[key] = _read_value(r)
        return out
    raise ValueError(f"corrupt snapshot: unknown value tag {tag}")


def encode_state(state: dict) -> bytes:
    """Serialize a state dict into a self-contained byte string."""
    w = BufferWriter()
    w.write_scalar(SNAPSHOT_VERSION, INT64)
    _write_value(w, state)
    return w.getvalue()


def decode_state(data: bytes | memoryview) -> dict:
    """Inverse of :func:`encode_state`; all arrays come back writable."""
    r = BufferReader(data)
    version = int(r.read_scalar(INT64))
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot version {version} not supported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    return _read_value(r)


@dataclass
class Snapshot:
    """One engine-wide checkpoint taken at a superstep boundary.

    ``blobs[w]`` is worker ``w``'s serialized state (program state dict,
    halt/wake flags, per-channel snapshots).  ``metrics_state`` is the
    engine-side bookkeeping needed to make a full rollback produce the
    exact metric totals of a failure-free run; it is simulator-internal
    and not counted in the checkpoint's byte size.
    """

    version: int
    superstep: int
    blobs: list[bytes] = field(repr=False)
    metrics_state: dict = field(repr=False)

    @property
    def worker_nbytes(self) -> list[int]:
        """Serialized size of each worker's state (parallel write cost)."""
        return [len(b) for b in self.blobs]

    @property
    def nbytes(self) -> int:
        """Total checkpoint size in bytes."""
        return sum(len(b) for b in self.blobs)


def capture_worker_state(worker) -> dict:
    """One worker's complete restartable state at a superstep boundary:
    program state dict, halt/wake flags, and every channel's
    ``snapshot()``.  This is *the* capture format — checkpoints, the
    process backend's state sync, and cross-process recovery all ship
    exactly this dict through :func:`encode_state`."""
    return {
        "program": worker.program.state_dict(),
        "flags": worker.snapshot_flags(),
        "channels": [channel.snapshot() for channel in worker.channels],
    }


def load_worker_state(worker, state: dict) -> None:
    """Inverse of :func:`capture_worker_state` (the worker must expose the
    same channel set the state was captured from)."""
    worker.program.load_state_dict(state["program"])
    worker.restore_flags(state["flags"])
    channels = worker.channels
    if len(channels) != len(state["channels"]):
        raise ValueError(
            f"state has {len(state['channels'])} channels but worker "
            f"{worker.worker_id} constructed {len(channels)}"
        )
    for channel, channel_state in zip(channels, state["channels"]):
        channel.restore(channel_state)


def capture_snapshot(engine: "ChannelEngine") -> Snapshot:
    """Checkpoint every worker of ``engine`` at the current boundary."""
    blobs = [encode_state(capture_worker_state(w)) for w in engine.workers]
    return Snapshot(
        version=SNAPSHOT_VERSION,
        superstep=engine.step_num,
        blobs=blobs,
        metrics_state=engine.metrics.snapshot(),
    )


def restore_worker(engine: "ChannelEngine", snapshot: Snapshot, w: int) -> None:
    """Load worker ``w``'s checkpointed state into ``engine.workers[w]``.

    The caller decides whether the target worker is the surviving
    instance (rollback on a live worker) or a freshly rebuilt replacement
    (see :meth:`ChannelEngine.rebuild_worker`); either way all state
    comes from the snapshot bytes, never from the old objects.
    """
    load_worker_state(engine.workers[w], decode_state(snapshot.blobs[w]))
