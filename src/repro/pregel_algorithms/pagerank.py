"""PageRank on the Pregel+ baseline (basic and ghost modes)."""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather
from repro.core.combiner import SUM_F64
from repro.graph.graph import Graph
from repro.pregel import PregelPlusEngine, PregelProgram
from repro.runtime.serialization import FLOAT64

__all__ = ["PageRankPregel", "run_pagerank_pregel"]

DAMPING = 0.85


class PageRankPregel(PregelProgram):
    """Pregel+ PageRank: float messages, global sum combiner, aggregator
    for the dead-end sink."""

    iterations = 30
    message_codec = FLOAT64
    combiner = SUM_F64
    aggregator_combiner = SUM_F64

    def __init__(self, worker):
        super().__init__(worker)
        self.rank = np.zeros(worker.num_local)

    def compute(self, v, messages) -> None:
        n = self.num_vertices
        if self.step_num == 1:
            self.rank[v.local] = 1.0 / n
        else:
            s = (self.agg_result or 0.0) / n
            m = messages if messages is not None else 0.0
            self.rank[v.local] = (1.0 - DAMPING) / n + DAMPING * (m + s)
        if self.step_num <= self.iterations:
            if v.out_degree > 0:
                v.broadcast(self.rank[v.local] / v.out_degree)
            else:
                self.aggregate(self.rank[v.local])
        else:
            v.vote_to_halt()

    def finalize(self) -> dict:
        return {int(g): float(self.rank[i]) for i, g in enumerate(self.worker.local_ids)}


def run_pagerank_pregel(
    graph: Graph,
    mode: str = "basic",
    iterations: int = 30,
    ghost_threshold: int = 16,
    **engine_kwargs,
):
    """Run Pregel+ PageRank; ``mode`` is ``"basic"`` or ``"ghost"``.
    Returns ``(ranks, EngineResult)``."""
    program = type("PageRankPregel", (PageRankPregel,), {"iterations": iterations})
    engine = PregelPlusEngine(
        graph, program, mode=mode, ghost_threshold=ghost_threshold, **engine_kwargs
    )
    result = engine.run()
    return gather(result, graph.num_vertices, dtype=np.float64), result
