"""Breadth-first search levels (hop distance from a source).

The unweighted special case of SSSP; included because it is the
propagation channel's best case (pure frontier expansion, one superstep
per hop in the basic version, one superstep total with Propagation).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather, resolve_mode
from repro.core import (
    BulkVertexProgram,
    ChannelEngine,
    CombinedMessage,
    MIN_I64,
    Propagation,
    Vertex,
    VertexProgram,
)
from repro.graph.graph import Graph

__all__ = ["BFSBasic", "BFSBasicBulk", "BFSPropagation", "run_bfs"]

UNREACHED = np.iinfo(np.int64).max


class BFSBasic(VertexProgram):
    """Frontier BFS: each superstep advances one hop."""

    source = 0

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = CombinedMessage(worker, MIN_I64)
        self.level = np.full(worker.num_local, UNREACHED, dtype=np.int64)

    def _settle(self, v: Vertex, level: int) -> None:
        self.level[v.local] = level
        send = self.msg.send_message
        for e in v.edges:
            send(int(e), level + 1)

    def compute(self, v: Vertex) -> None:
        if self.step_num == 1:
            if v.id == self.source:
                self._settle(v, 0)
        else:
            m = int(self.msg.get_message(v))
            if m < self.level[v.local]:
                self._settle(v, m)
        v.vote_to_halt()

    def finalize(self) -> dict:
        return {int(g): int(self.level[i]) for i, g in enumerate(self.worker.local_ids)}


class BFSBasicBulk(BulkVertexProgram):
    """Bulk port of :class:`BFSBasic`: the whole frontier settles and
    scatters ``level + 1`` in one set of array passes per superstep."""

    source = 0

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = CombinedMessage(worker, MIN_I64)
        self.level = np.full(worker.num_local, UNREACHED, dtype=np.int64)

    def compute_bulk(self, active: np.ndarray) -> None:
        worker = self.worker
        adj = worker.local_adjacency()
        if self.step_num == 1:
            li = worker.local_index(self.source)
            settled = (
                np.asarray([li], dtype=np.int64) if li >= 0 else np.empty(0, np.int64)
            )
            levels = np.zeros(settled.size, dtype=np.int64)
        else:
            inbox, _ = self.msg.get_messages()
            m = inbox[active]
            improved = m < self.level[active]
            settled = active[improved]
            levels = m[improved]
        if settled.size:
            self.level[settled] = levels
            dsts = adj.gather(settled)
            self.msg.send_messages(dsts, np.repeat(levels + 1, adj.degrees[settled]))
        worker.halt_bulk(active)

    def finalize(self) -> dict:
        return {int(g): int(self.level[i]) for i, g in enumerate(self.worker.local_ids)}


class BFSPropagation(VertexProgram):
    """BFS on the Propagation channel: ``level + 1`` relaxation to
    fixpoint within a single superstep."""

    source = 0

    def __init__(self, worker):
        super().__init__(worker)
        self.prop = Propagation(
            worker, MIN_I64, edge_fn=lambda w, lvl: lvl + 1
        )
        self.level = np.full(worker.num_local, UNREACHED, dtype=np.int64)

    def compute(self, v: Vertex) -> None:
        if self.step_num == 1:
            self.prop.add_edges(v, v.edges)
            if v.id == self.source:
                self.prop.set_value(v, 0)
        else:
            self.level[v.local] = self.prop.get_value(v)
            v.vote_to_halt()

    def finalize(self) -> dict:
        return {int(g): int(self.level[i]) for i, g in enumerate(self.worker.local_ids)}


_VARIANTS = {
    "basic": {"scalar": BFSBasic, "bulk": BFSBasicBulk},
    "prop": {"scalar": BFSPropagation},
}


def run_bfs(
    graph: Graph,
    source: int = 0,
    variant: str = "basic",
    mode: str = "scalar",
    **engine_kwargs,
):
    """Run BFS; returns ``(levels, EngineResult)``.

    ``levels[v]`` is the hop distance from ``source``
    (``np.iinfo(int64).max`` when unreachable).  ``mode="bulk"`` selects
    the columnar compute path (``"basic"`` only).
    """
    base = resolve_mode(_VARIANTS, variant, mode)
    program = type(base.__name__, (base,), {"source": source})
    result = ChannelEngine(graph, program, **engine_kwargs).run()
    return gather(result, graph.num_vertices), result
