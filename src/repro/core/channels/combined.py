"""``CombinedMessage``: message passing with receiver-side combining
(Table I).

The wire format is identical to :class:`DirectMessage` — one ``(dst,
value)`` record per ``send_message`` call — so its byte counts match a
basic Pregel implementation exactly (Table IV shows identical message
sizes for PR/WCC/PJ).  The difference is on the receive path: values are
folded straight into one slot per local vertex with a bulk ``ufunc.at``,
so the receiver never materializes per-vertex message lists.
"""

from __future__ import annotations

import numpy as np

from repro.core.channels._records import RecordChannel
from repro.core.combiner import Combiner
from repro.core.vertex import Vertex
from repro.core.worker import Worker
from repro.runtime.serialization import INT32

__all__ = ["CombinedMessage"]


class CombinedMessage(RecordChannel):
    """Combine all messages for one receiver into a single value.

    The send path (scalar and vectorized) lives in :class:`RecordChannel`.

    Parameters
    ----------
    worker:
        Owning worker.
    combiner:
        The associative/commutative reduction (paper: ``Combiner<ValT> c``).
    """

    def __init__(self, worker: Worker, combiner: Combiner) -> None:
        super().__init__(worker, combiner.codec)
        self.combiner = combiner
        self._slots = np.full(
            worker.num_local, combiner.identity, dtype=combiner.codec.dtype
        )
        self._has_msg = np.zeros(worker.num_local, dtype=bool)

    # -- receiving -----------------------------------------------------------
    def get_message(self, v: Vertex):
        """Combined value of all messages delivered to ``v`` (the
        combiner's identity if none arrived)."""
        return self._slots[v.local]

    def get_messages(self) -> tuple[np.ndarray, np.ndarray]:
        """``(values, has_msg)`` views over all local vertices: the
        combined inbox per local index and the mask of receivers.  Treat
        as read-only; rewritten by the next exchange."""
        return self._slots, self._has_msg

    def has_message(self, v: Vertex) -> bool:
        return bool(self._has_msg[v.local])

    # -- checkpointing -------------------------------------------------------
    def snapshot(self) -> dict:
        return {"slots": self._slots.copy(), "has_msg": self._has_msg.copy()}

    def restore(self, state: dict) -> None:
        self._slots[...] = state["slots"]
        self._has_msg[...] = state["has_msg"]

    def migrate_states(self, states: list[dict], ctx) -> list[dict]:
        # pure per-vertex inbox: combined slots and flags follow their
        # vertices to the new owners
        slots = ctx.remap_vertex_arrays([s["slots"] for s in states])
        has_msg = ctx.remap_vertex_arrays([s["has_msg"] for s in states])
        return [
            {"slots": slots[w], "has_msg": has_msg[w]}
            for w in range(ctx.num_workers)
        ]

    # -- round protocol (serialize inherited from RecordChannel) ------------
    def deserialize(self, payloads: list[tuple[int, memoryview]]) -> None:
        self.round += 1
        worker = self.worker
        self._slots[:] = self.combiner.identity
        self._has_msg[:] = False
        if not payloads:
            return
        itemsize = INT32.itemsize + self.value_codec.itemsize
        for _src, payload in payloads:
            count = len(payload) // itemsize
            dst = INT32.decode_array(payload[: count * INT32.itemsize]).astype(np.int64)
            vals = self.value_codec.decode_array(payload[count * INT32.itemsize :], count)
            local = worker._local_index[dst]
            self.combiner.accumulate_at(self._slots, local, vals)
            self._has_msg[local] = True
        received = np.flatnonzero(self._has_msg)
        worker.activate_local_bulk(received)
