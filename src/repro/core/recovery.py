"""Failure injection and recovery for the channel engine.

Pregel-family systems answer "what happens when a worker dies mid-job?"
with checkpoint-and-rollback; this module reproduces that subsystem,
with deterministic failure injection so recovery is a benchmarkable
*scenario axis* rather than an accident:

* :class:`FailureSchedule` — "worker 3 dies at the end of superstep 7",
  given explicitly or drawn from a seeded RNG.  Failures fire exactly
  once, at superstep boundaries (the point where a real master notices a
  missed barrier).
* :class:`FrameLog` — sender-side logging of every cross-worker frame
  buffer, kept since the last checkpoint.  Only maintained in confined
  mode; its size is the price confined recovery pays during normal
  operation (accounted as ``log_bytes``).
* :func:`rollback_recovery` — all workers reload the latest checkpoint
  and the whole cluster re-executes from there (Pregel's default).
* :func:`confined_recovery` — only the failed workers reload; they then
  re-execute the lost supersteps locally, reading the frames survivors
  logged for them, while survivors keep their current state.  Replayed
  compute regenerates the failed workers' own frames (including
  self-delivery and frames between simultaneously failed workers), so
  recovered runs are bit-identical to failure-free ones.

Both procedures leave the engine's metric totals exactly where a
failure-free run would: rollback restores the collector to its
checkpoint-time snapshot before re-execution re-appends, and confined
replay runs against a scratch collector.  The *cost* of recovery is
charged to the separate ``recovery_bytes``/``recovery_time`` counters.

Both procedures operate on the engine's in-process workers and run under
**every** execution backend: the simulator calls them directly, while
the process backend first kills/respawns the real worker OS process,
then runs the same procedure on its parent-side mirror workers and ships
the recovered state to the replacement through the checkpoint wire
format (see :mod:`repro.runtime.parallel.backend`).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.runtime.checkpoint import Snapshot, restore_worker
from repro.runtime.metrics import MetricsCollector

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import ChannelEngine

__all__ = [
    "FailureSchedule",
    "FrameLog",
    "rollback_recovery",
    "confined_recovery",
]


class FailureSchedule:
    """Deterministic schedule of worker deaths at superstep boundaries.

    Parameters
    ----------
    failures:
        Iterable of ``(worker_id, superstep)`` pairs, or ``"W:S"``
        strings (the CLI's ``--fail`` syntax).  A failure at superstep
        ``S`` wipes that worker's in-memory state after superstep ``S``'s
        exchange completes; scheduled entries fire exactly once, so a
        rollback past the failure point does not re-kill the worker.
    """

    def __init__(self, failures: Iterable = ()) -> None:
        self._by_step: dict[int, list[int]] = {}
        for entry in failures:
            if isinstance(entry, str):
                try:
                    worker, superstep = (int(part) for part in entry.split(":"))
                except ValueError:
                    raise ValueError(
                        f"bad failure spec {entry!r}; expected 'WORKER:SUPERSTEP'"
                    ) from None
            else:
                worker, superstep = int(entry[0]), int(entry[1])
            if worker < 0:
                raise ValueError(f"invalid worker id {worker} in failure schedule")
            if superstep < 1:
                raise ValueError(
                    f"failures fire at superstep boundaries >= 1, got {superstep}"
                )
            step = self._by_step.setdefault(superstep, [])
            if worker not in step:
                step.append(worker)

    @classmethod
    def from_specs(cls, specs: Iterable[str], num_workers: int) -> "FailureSchedule":
        """Parse CLI ``"W:S"`` specs and validate them against the worker
        count in one step (shared by ``repro run --fail`` and the
        recovery benchmark); raises ``ValueError`` with a user-facing
        message on any bad spec."""
        schedule = cls(specs)
        schedule.validate(num_workers)
        return schedule

    @classmethod
    def coerce(cls, spec) -> "FailureSchedule | None":
        """Accept ``None``, a schedule, or any iterable the constructor
        takes (what the engine and CLI pass through)."""
        if spec is None or isinstance(spec, cls):
            return spec
        return cls(spec)

    def copy(self) -> "FailureSchedule":
        """A fresh schedule with the same pending events.  The engine pops
        events from a per-run copy, so one schedule object can drive many
        runs (e.g. comparing recovery modes) without being consumed."""
        return FailureSchedule(self.pending())

    @classmethod
    def random(
        cls,
        num_workers: int,
        max_superstep: int,
        count: int = 1,
        seed: int = 0,
    ) -> "FailureSchedule":
        """A seeded random schedule: ``count`` distinct (worker,
        superstep) events with supersteps in ``[1, max_superstep]``."""
        if count > num_workers * max_superstep:
            raise ValueError(
                f"cannot draw {count} distinct failures from "
                f"{num_workers} workers x {max_superstep} supersteps"
            )
        rng = np.random.default_rng(seed)
        events: set[tuple[int, int]] = set()
        while len(events) < count:
            events.add(
                (int(rng.integers(num_workers)), int(rng.integers(1, max_superstep + 1)))
            )
        return cls(sorted(events, key=lambda e: (e[1], e[0])))

    def validate(self, num_workers: int) -> None:
        for step, workers in self._by_step.items():
            for w in workers:
                if w >= num_workers:
                    raise ValueError(
                        f"failure schedule kills worker {w} at superstep {step}, "
                        f"but the engine has only {num_workers} workers"
                    )
            if len(workers) >= num_workers:
                raise ValueError(
                    f"failure schedule kills all {num_workers} workers at "
                    f"superstep {step}; at least one must survive"
                )

    def pop(self, superstep: int) -> list[int]:
        """Workers dying at this boundary (each event fires once)."""
        return sorted(self._by_step.pop(superstep, []))

    def pending(self) -> list[tuple[int, int]]:
        return sorted(
            (w, s) for s, workers in self._by_step.items() for w in workers
        )

    def __bool__(self) -> bool:
        return bool(self._by_step)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FailureSchedule({self.pending()})"


class FrameLog:
    """Sender-side log of cross-worker frame buffers, per superstep and
    exchange round, kept since the last checkpoint.

    Each logged round is ``(group_active, frames)`` where ``frames[src][dst]``
    is the raw buffer ``src`` shipped to ``dst`` (``b""`` on the diagonal
    and where nothing was sent).  ``group_active`` records which channel
    groups were in that round — confined replay follows this recorded
    structure instead of re-evaluating ``again()`` locally, since round
    liveness is a *global* property the failed worker cannot re-derive
    alone.
    """

    def __init__(self, num_workers: int) -> None:
        self.num_workers = num_workers
        self._steps: dict[int, list[tuple[list[bool], list[list[bytes]]]]] = {}

    def append_step(
        self, superstep: int, rounds: list[tuple[list[bool], list[list[bytes]]]]
    ) -> None:
        self._steps[superstep] = rounds

    def rounds(self, superstep: int) -> list[tuple[list[bool], list[list[bytes]]]]:
        return self._steps.get(superstep, [])

    def relog(
        self, superstep: int, round_idx: int, sender: int, out: list[bytes]
    ) -> None:
        """Replace ``sender``'s logged frames for one round with the
        replay-regenerated ones (its original log died with it; a later
        failure of another worker may need these)."""
        _active, frames = self._steps[superstep][round_idx]
        frames[sender] = [
            b"" if peer == sender else out[peer] for peer in range(self.num_workers)
        ]

    def truncate_before(self, superstep: int) -> None:
        """Drop supersteps ``<= superstep`` (a new checkpoint covers them)."""
        self._steps = {s: r for s, r in self._steps.items() if s > superstep}

    def drop_after(self, superstep: int) -> None:
        """Drop supersteps ``> superstep`` (rolled back; they will be
        re-executed and re-logged)."""
        self._steps = {s: r for s, r in self._steps.items() if s <= superstep}


# -- recovery procedures -----------------------------------------------------

def rollback_recovery(engine: "ChannelEngine", failed: list[int]) -> None:
    """Pregel-style full rollback: rebuild the dead workers, reload the
    latest checkpoint on *every* worker, and rewind the engine so the
    main loop re-executes from the checkpointed superstep."""
    snapshot: Snapshot = engine.checkpoint
    metrics = engine.metrics

    # the supersteps being discarded must be re-executed: that repeated
    # work *is* the recovery cost, charged here because re-execution
    # re-appends records the restore below just rolled back
    kept = len(snapshot.metrics_state["records"])
    recompute_time = sum(r.simulated_time for r in metrics.records[kept:])

    for w in failed:
        engine.rebuild_worker(w)
    for w in range(engine.num_workers):
        restore_worker(engine, snapshot, w)
    engine.step_num = snapshot.superstep
    metrics.restore(snapshot.metrics_state)
    if engine.frame_log is not None:
        engine.frame_log.drop_after(snapshot.superstep)

    largest = max(snapshot.worker_nbytes) if snapshot.blobs else 0
    reload_time = metrics.network.latency + largest / metrics.network.bandwidth
    metrics.record_recovery(snapshot.nbytes, reload_time + recompute_time)


def confined_recovery(engine: "ChannelEngine", failed: list[int]) -> None:
    """Confined recovery: only the failed workers reload the checkpoint
    and re-execute the lost supersteps, fed by the survivors' frame logs.

    Survivors are untouched: their frames destined to them during replay
    are discarded (they already processed the originals), while frames
    the replaying workers send each other and themselves flow normally.
    Replay runs against a scratch metrics collector so the engine's
    totals stay exactly those of a failure-free run; the replay's modeled
    cost is charged to the recovery counters instead.
    """
    snapshot: Snapshot = engine.checkpoint
    target_step = engine.step_num
    metrics = engine.metrics
    num_workers = engine.num_workers
    failed_set = set(failed)

    for w in failed:
        engine.rebuild_worker(w)
        restore_worker(engine, snapshot, w)
    reload_bytes = sum(snapshot.worker_nbytes[w] for w in failed)
    largest = max((snapshot.worker_nbytes[w] for w in failed), default=0)
    reload_time = metrics.network.latency + largest / metrics.network.bandwidth

    replay_net_bytes = 0
    scratch = MetricsCollector(num_workers=num_workers, network=metrics.network)
    engine.metrics = scratch
    try:
        for s in range(snapshot.superstep + 1, target_step + 1):
            scratch.start_superstep()
            # mirror the main loop's step_num choreography exactly:
            # before_superstep/begin_superstep observe the previous step
            engine.step_num = s - 1
            for w in failed:
                engine.workers[w].program.before_superstep()
            actives = {w: engine.workers[w].begin_superstep() for w in failed}
            engine.step_num = s
            for w in failed:
                worker = engine.workers[w]
                t0 = time.perf_counter()
                worker.run_compute(actives[w])
                scratch.record_compute(w, time.perf_counter() - t0)
                for channel in worker.channels:
                    channel.reset_round()

            for round_idx, (group_active, frames) in enumerate(
                engine.frame_log.rounds(s)
            ):
                for w in failed:
                    worker = engine.workers[w]
                    t0 = time.perf_counter()
                    for cid, channel in enumerate(worker.channels):
                        if group_active[cid]:
                            channel.serialize()
                    # serialize can be the bulk of replay compute (the
                    # Propagation fixpoint runs here), so time it like
                    # the main loop does
                    scratch.record_compute(w, time.perf_counter() - t0)
                # capture every replaying worker's output before clearing,
                # so simultaneously failed workers can read each other's
                outs: dict[int, list[bytes]] = {}
                for w in failed:
                    buffers = engine.workers[w].buffers
                    outs[w] = [buffers.out[p].getvalue() for p in range(num_workers)]
                    for p in range(num_workers):
                        buffers.out[p].clear()
                    engine.frame_log.relog(s, round_idx, w, outs[w])

                send_bytes = np.zeros(num_workers, dtype=np.int64)
                recv_bytes = np.zeros(num_workers, dtype=np.int64)
                for w in failed:
                    worker = engine.workers[w]
                    inbox = [b""] * num_workers
                    for src in range(num_workers):
                        if src == w:
                            inbox[src] = outs[w][w]
                        elif src in failed_set:
                            inbox[src] = outs[src][w]
                        else:
                            inbox[src] = frames[src][w]
                        if src != w and inbox[src]:
                            n = len(inbox[src])
                            replay_net_bytes += n
                            send_bytes[src] += n
                            recv_bytes[w] += n
                    worker.buffers.inbox = inbox
                    t0 = time.perf_counter()
                    routed = worker.route_inbox()
                    for cid, channel in enumerate(worker.channels):
                        if group_active[cid]:
                            channel.deserialize(routed.get(cid, []))
                    scratch.record_compute(w, time.perf_counter() - t0)
                scratch.record_exchange(send_bytes, recv_bytes)
            scratch.end_superstep()
    finally:
        engine.metrics = metrics
        engine.step_num = target_step

    metrics.record_recovery(
        reload_bytes + replay_net_bytes, reload_time + scratch.simulated_time
    )
