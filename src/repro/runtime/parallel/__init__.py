"""True multiprocess execution backend (``executor="process"``).

The simulated engine runs every worker sequentially inside one Python
process; this package runs each worker as a real OS process instead,
while reproducing the simulated superstep / exchange-round loop exactly:

* the CSR graph and the partition array live in
  ``multiprocessing.shared_memory`` segments, mapped read-only into every
  worker process (:mod:`repro.runtime.parallel.shm`);
* all per-superstep traffic crosses process boundaries as the *same wire
  bytes* the channels serialize in the simulator — frames travel over
  pipes, peer to peer, and the parent only collects byte counts — so the
  byte/message accounting is bit-identical to a simulated run
  (:mod:`repro.runtime.parallel.worker_proc`);
* a command/reply barrier protocol over per-worker control pipes drives
  the superstep loop (:mod:`repro.runtime.parallel.backend`); control
  messages are encoded with the checkpoint layer's tagged binary codec
  (:func:`repro.runtime.checkpoint.encode_state`) — no pickle anywhere on
  the data path.

Entry point: ``ChannelEngine(..., executor="process")``.
"""

from repro.runtime.parallel.backend import ProcessBackend
from repro.runtime.parallel.protocol import WorkerProcessError

__all__ = ["ProcessBackend", "WorkerProcessError"]
