"""Shared send side of the record channels.

``DirectMessage`` and ``CombinedMessage`` have identical wire output —
per peer and round, an ``int32`` destination array followed by a value
array — and differ only in how the receiver consumes it.  This base
class owns the whole send path so the two cannot drift: scalar appends,
vectorized array sends, peer routing, and serialization.

Drain order per peer: all scalar :meth:`send_message` records first (in
call order), then array :meth:`send_messages` chunks (in call order).
Programs that use only one of the two surfaces — every in-tree program —
therefore see exactly their call order on the wire; mixing both in one
superstep serializes the scalar records ahead of the array ones.
"""

from __future__ import annotations

import numpy as np

from repro.core.channel import Channel
from repro.core.worker import Worker
from repro.runtime.serialization import Codec, INT32
from repro.util import group_starts

__all__ = ["RecordChannel"]


class RecordChannel(Channel):
    """Channel whose outgoing traffic is (dst, value) record arrays."""

    def __init__(self, worker: Worker, value_codec: Codec) -> None:
        super().__init__(worker)
        self.value_codec = value_codec
        m = worker.num_workers
        self._pending_dst: list[list[int]] = [[] for _ in range(m)]
        self._pending_val: list[list] = [[] for _ in range(m)]
        # array sends accumulate whole chunks (no per-element Python work)
        self._chunk_dst: list[list[np.ndarray]] = [[] for _ in range(m)]
        self._chunk_val: list[list[np.ndarray]] = [[] for _ in range(m)]

    # -- sending (during compute) -----------------------------------------
    def send_message(self, dst: int, value) -> None:
        peer = self.worker.owner_of(dst)
        self._pending_dst[peer].append(dst)
        self._pending_val[peer].append(value)

    def send_messages(self, dsts: np.ndarray, values: np.ndarray) -> None:
        """Vectorized send of many ``(dst, value)`` records, preserving
        their order within each destination worker (so a bulk program's
        wire bytes match the scalar loop it replaces record-for-record;
        see the module docstring for the order when mixed with
        :meth:`send_message`)."""
        dsts = np.asarray(dsts, dtype=np.int64)
        values = np.asarray(values, dtype=self.value_codec.dtype)
        if dsts.size == 0:
            return
        owners = self.worker.owner[dsts]
        order = np.argsort(owners, kind="stable")
        peers, starts = group_starts(owners[order])
        bounds = np.append(starts, order.size)
        for k, peer in enumerate(peers.tolist()):
            sel = order[bounds[k] : bounds[k + 1]]
            self._chunk_dst[peer].append(dsts[sel])
            self._chunk_val[peer].append(values[sel])

    #: backwards-compatible alias for the vectorized send
    send_message_bulk = send_messages

    def _drain_pending(self, peer: int) -> tuple[np.ndarray, np.ndarray]:
        """All pending (dst, value) records for ``peer``: scalar appends
        first, then array chunks, each in call order."""
        dst_parts: list[np.ndarray] = []
        val_parts: list[np.ndarray] = []
        if self._pending_dst[peer]:
            dst_parts.append(np.asarray(self._pending_dst[peer], dtype=np.int64))
            val_parts.append(
                np.asarray(self._pending_val[peer], dtype=self.value_codec.dtype)
            )
        dst_parts += self._chunk_dst[peer]
        val_parts += self._chunk_val[peer]
        self._pending_dst[peer] = []
        self._pending_val[peer] = []
        self._chunk_dst[peer] = []
        self._chunk_val[peer] = []
        if not dst_parts:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=self.value_codec.dtype)
        if len(dst_parts) == 1:
            return dst_parts[0], val_parts[0]
        return np.concatenate(dst_parts), np.concatenate(val_parts)

    # -- round protocol ----------------------------------------------------
    def serialize(self) -> None:
        if self.round != 0:
            return
        net_msgs = 0
        for peer in range(self.num_workers):
            dsts, vals = self._drain_pending(peer)
            if dsts.size == 0:
                continue
            payload = (
                INT32.encode_array(dsts)
                + self.value_codec.encode_array(vals)
            )
            self.emit(peer, payload)
            if peer != self.worker.worker_id:
                net_msgs += int(dsts.size)
        self.count_net_messages(net_msgs)
