"""The Shiloach–Vishkin (S-V) connected-components algorithm —
the paper's flagship example of *composing* optimized channels
(Section III-C, Tables IV and VI).

Each round every vertex ``u`` of the disjoint-set forest either

* **tree merging** — if its parent ``D[u]`` is a root: compute
  ``t = min(D[e] for e in Nbr[u])`` and, when ``t < D[u]``, ask the root
  to point at ``t`` (min-combined remote update), or
* **pointer jumping** — otherwise shortcut ``D[u] := D[D[u]]``,

until ``D`` stabilizes (checked with an aggregator).  Three communication
patterns appear simultaneously, and each maps to a channel choice:

==================  ==========================  ==========================
pattern             basic channel               optimized channel
==================  ==========================  ==========================
read ``D[D[u]]``    two DirectMessage channels  RequestRespond
neighbor minimum    CombinedMessage(MIN)        ScatterCombine(MIN)
root update         CombinedMessage(MIN)        (already optimal)
==================  ==========================  ==========================

``make_sv_program(use_reqresp, use_scatter)`` yields the four Table VI
variants.  A round costs 4 supersteps with the request/reply emulation
and 3 with the RequestRespond channel.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather
from repro.core import (
    Aggregator,
    ChannelEngine,
    CombinedMessage,
    DirectMessage,
    MIN_I32,
    RequestRespond,
    ScatterCombine,
    SUM_I64,
    Vertex,
    VertexProgram,
)
from repro.graph.graph import Graph
from repro.runtime.serialization import INT32

__all__ = ["make_sv_program", "run_sv", "SV_VARIANTS"]

SV_VARIANTS = ("basic", "reqresp", "scatter", "both")


class _SVBase(VertexProgram):
    """Shared S-V logic; channel choices come from class flags."""

    use_reqresp = False
    use_scatter = False

    def __init__(self, worker):
        super().__init__(worker)
        if self.use_reqresp:
            self.rr = RequestRespond(
                worker,
                respond_fn=lambda v: int(self.D[v.local]),
                codec=INT32,
                respond_fn_bulk=lambda idx: self.D[idx],
            )
        else:
            self.req = DirectMessage(worker, value_codec=INT32)
            self.reply = DirectMessage(worker, value_codec=INT32)
        if self.use_scatter:
            self.bcast = ScatterCombine(worker, MIN_I32)
        else:
            self.bcast = CombinedMessage(worker, MIN_I32)
        self.upd = CombinedMessage(worker, MIN_I32)
        self.agg = Aggregator(worker, SUM_I64)

        self.D = np.zeros(worker.num_local, dtype=np.int64)
        self.tmin = np.zeros(worker.num_local, dtype=np.int64)
        self.changed = np.zeros(worker.num_local, dtype=np.int8)

    # -- phase plumbing ------------------------------------------------------
    @property
    def cycle(self) -> int:
        return 3 if self.use_reqresp else 4

    def _phase(self) -> int:
        return (self.step_num - 1) % self.cycle + 1

    # -- per-phase actions -----------------------------------------------------
    def _start_round(self, v: Vertex) -> None:
        """Phase 1: ask for the grandparent, broadcast D to neighbors."""
        i = v.local
        if self.step_num == 1:
            self.D[i] = v.id
            if self.use_scatter and v.out_degree > 0:
                self.bcast.add_edges(v, v.edges)
        elif self.agg.result() == 0:
            v.vote_to_halt()
            return
        d = int(self.D[i])
        if self.use_reqresp:
            self.rr.add_request(v, d)
        else:
            self.req.send_message(d, v.id)
        if self.use_scatter:
            self.bcast.set_message(v, d)
        else:
            send = self.bcast.send_message
            for e in v.edges:
                send(int(e), d)

    def _answer_and_gather(self, v: Vertex) -> None:
        """Phase 2 (basic only): answer pointer requests, store the
        neighborhood minimum."""
        i = v.local
        d = int(self.D[i])
        for requester in self.req.get_iterator(v):
            self.reply.send_message(int(requester), d)
        self.tmin[i] = self.bcast.get_message(v)

    def _merge_or_jump(self, v: Vertex, gp: int, t: int) -> None:
        """The branch of the Palgol listing: tree merging vs jumping."""
        i = v.local
        d = int(self.D[i])
        if gp == d:
            # parent is a root: propose the neighborhood minimum to it
            if t < d:
                self.upd.send_message(d, t)
        else:
            # pointer jumping (path halving)
            self.D[i] = gp
            self.changed[i] = 1

    def _apply_updates(self, v: Vertex) -> None:
        """Last phase: roots adopt the minimum proposal; count changes."""
        i = v.local
        delta = int(self.changed[i])
        self.changed[i] = 0
        m = int(self.upd.get_message(v))
        if m < self.D[i]:
            self.D[i] = m
            delta += 1
        self.agg.add(delta)

    # -- dispatch ---------------------------------------------------------------
    def compute(self, v: Vertex) -> None:
        phase = self._phase()
        if self.use_reqresp:
            if phase == 1:
                self._start_round(v)
            elif phase == 2:
                gp = int(self.rr.get_respond(int(self.D[v.local])))
                t = int(self.bcast.get_message(v))
                self._merge_or_jump(v, gp, t)
            else:
                self._apply_updates(v)
        else:
            if phase == 1:
                self._start_round(v)
            elif phase == 2:
                self._answer_and_gather(v)
            elif phase == 3:
                replies = self.reply.get_iterator(v)
                gp = int(replies[0])
                self._merge_or_jump(v, gp, int(self.tmin[v.local]))
            else:
                self._apply_updates(v)

    def finalize(self) -> dict:
        return {int(g): int(self.D[i]) for i, g in enumerate(self.worker.local_ids)}


def make_sv_program(use_reqresp: bool = False, use_scatter: bool = False):
    """Build the S-V program class for one of the four channel combos."""
    name = f"SV_{'rr' if use_reqresp else 'msg'}_{'sc' if use_scatter else 'cm'}"
    return type(name, (_SVBase,), {"use_reqresp": use_reqresp, "use_scatter": use_scatter})


def run_sv(graph: Graph, variant: str = "basic", **engine_kwargs):
    """Run S-V connected components; returns ``(labels, EngineResult)``.

    ``labels[v]`` is the minimum vertex id of v's component.  ``variant``
    is one of ``basic`` / ``reqresp`` / ``scatter`` / ``both``.
    """
    flags = {
        "basic": (False, False),
        "reqresp": (True, False),
        "scatter": (False, True),
        "both": (True, True),
    }[variant]
    program = make_sv_program(*flags)
    result = ChannelEngine(graph, program, **engine_kwargs).run()
    return gather(result, graph.num_vertices), result
