"""PageRank: channel variants vs a dense oracle and each other."""

import numpy as np
import pytest

from repro.algorithms.pagerank import run_pagerank
from repro.pregel_algorithms.pagerank import run_pagerank_pregel
from repro.graph import rmat, star
from repro.graph.graph import Graph
from helpers import line_graph, pagerank_oracle


@pytest.fixture(scope="module")
def web():
    return rmat(8, edge_factor=4, seed=1)


class TestChannelVariants:
    @pytest.mark.parametrize("variant", ["basic", "scatter"])
    def test_matches_oracle(self, web, variant):
        ranks, _ = run_pagerank(web, variant=variant, iterations=12, num_workers=4)
        expected = pagerank_oracle(web, iterations=12)
        np.testing.assert_allclose(ranks, expected, atol=1e-12)

    def test_ranks_sum_to_one(self, web):
        ranks, _ = run_pagerank(web, variant="basic", iterations=8, num_workers=4)
        assert ranks.sum() == pytest.approx(1.0)

    def test_scatter_equals_basic(self, web):
        rb, _ = run_pagerank(web, variant="basic", iterations=10, num_workers=4)
        rs, _ = run_pagerank(web, variant="scatter", iterations=10, num_workers=4)
        np.testing.assert_allclose(rb, rs, atol=1e-14)

    def test_scatter_reduces_bytes(self, web):
        _, rb = run_pagerank(web, variant="basic", iterations=10, num_workers=4)
        _, rs = run_pagerank(web, variant="scatter", iterations=10, num_workers=4)
        assert rs.metrics.total_net_bytes < rb.metrics.total_net_bytes

    def test_runs_exactly_iterations_plus_one_supersteps(self, web):
        _, res = run_pagerank(web, variant="basic", iterations=7, num_workers=2)
        assert res.supersteps == 8

    def test_dead_ends_handled(self):
        # vertex 2 is a dead end; its rank must be redistributed, not lost
        g = Graph.from_edges(3, [(0, 1), (0, 2), (1, 2)], directed=True)
        ranks, _ = run_pagerank(g, variant="basic", iterations=20, num_workers=2)
        assert ranks.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(
            ranks, pagerank_oracle(g, iterations=20), atol=1e-12
        )

    def test_hub_ranks_highest(self):
        g = star(20, center=0)
        ranks, _ = run_pagerank(g, variant="basic", iterations=15, num_workers=3)
        assert ranks.argmax() == 0


class TestPregelVariants:
    @pytest.mark.parametrize("mode", ["basic", "ghost"])
    def test_matches_oracle(self, web, mode):
        ranks, _ = run_pagerank_pregel(web, mode=mode, iterations=12, num_workers=4)
        np.testing.assert_allclose(ranks, pagerank_oracle(web, 12), atol=1e-12)

    def test_basic_bytes_match_channel_basic(self, web):
        """Table IV/V: identical message sizes for basic PR in both
        systems (same wire format, no sender combining)."""
        part = np.arange(web.num_vertices) % 4
        _, rc = run_pagerank(
            web, variant="basic", iterations=10, num_workers=4, partition=part
        )
        _, rp = run_pagerank_pregel(
            web, mode="basic", iterations=10, num_workers=4, partition=part
        )
        assert rc.metrics.total_messages == rp.metrics.total_messages
        # byte counts differ only by frame headers (< 1%)
        delta = abs(rc.metrics.total_net_bytes - rp.metrics.total_net_bytes)
        assert delta / rp.metrics.total_net_bytes < 0.02

    def test_ghost_reduces_bytes(self, web):
        part = np.arange(web.num_vertices) % 4
        _, rb = run_pagerank_pregel(
            web, mode="basic", iterations=10, num_workers=4, partition=part
        )
        _, rg = run_pagerank_pregel(
            web,
            mode="ghost",
            iterations=10,
            num_workers=4,
            ghost_threshold=8,
            partition=part,
        )
        assert rg.metrics.total_net_bytes < rb.metrics.total_net_bytes
        assert rg.metrics.total_messages < rb.metrics.total_messages

    def test_ghost_with_huge_threshold_equals_basic(self, web):
        part = np.arange(web.num_vertices) % 4
        _, rb = run_pagerank_pregel(
            web, mode="basic", iterations=5, num_workers=4, partition=part
        )
        _, rg = run_pagerank_pregel(
            web,
            mode="ghost",
            iterations=5,
            num_workers=4,
            ghost_threshold=10**9,
            partition=part,
        )
        assert rg.metrics.total_net_bytes == rb.metrics.total_net_bytes


def test_single_vertex_graph():
    g = Graph.from_edges(1, [])
    ranks, _ = run_pagerank(g, variant="basic", iterations=5, num_workers=1)
    assert ranks[0] == pytest.approx(1.0)
