"""Min-Label SCC on the Pregel+ baseline.

Four message purposes (two trim pings, forward labels, backward labels)
share one tagged monolithic type and rule out any global combiner, so
every label message is delivered and folded individually — the receive
cost and message width the channel version avoids (Table IV: channel SCC
halves the message size; Table VII adds the Propagation speedup that no
Pregel mode can express).

Pregel supports one aggregator here, so the two counters the controller
needs (propagation changes, surviving vertices) travel as a pair.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather
from repro.core.combiner import Combiner
from repro.graph.graph import Graph
from repro.pregel import PregelPlusEngine, PregelProgram
from repro.runtime.serialization import INT32, INT64, struct_codec

__all__ = ["SCCPregel", "run_scc_pregel"]

TAGGED = struct_codec([("tag", INT32), ("val", INT32)], name="scc_tagged")
TAG_PING_IN, TAG_PING_OUT, TAG_FWD, TAG_BWD = range(4)

_I32_MAX = int(np.iinfo(np.int32).max)

#: (propagation changes, alive survivors) summed pairwise
PAIR_SUM = Combiner(
    fn=lambda a, b: (a[0] + b[0], a[1] + b[1]),
    identity=(0, 0),
    codec=struct_codec([("a", INT64), ("b", INT64)], name="pair_i64"),
    ufunc=None,
    name="pair_sum",
)


class SCCPregel(PregelProgram):
    message_codec = TAGGED
    combiner = None
    aggregator_combiner = PAIR_SUM

    def __init__(self, worker):
        super().__init__(worker)
        n = worker.num_local
        self.alive = np.ones(n, dtype=bool)
        self.scc = np.full(n, -1, dtype=np.int64)
        self.fwd = np.full(n, _I32_MAX, dtype=np.int64)
        self.bwd = np.full(n, _I32_MAX, dtype=np.int64)
        self.state = "init"

    # -- controller --------------------------------------------------------
    def before_superstep(self) -> None:
        s = self.state
        if s == "init":
            self.state = "ping"
        elif s == "ping":
            self.state = "apply"
            self._wake_alive()
        elif s == "apply":
            self.state = "prop"
        elif s == "prop":
            changes = (self.agg_result or (0, 0))[0]
            if changes == 0:
                self.state = "detect"
                self._wake_alive()
        elif s == "detect":
            self.state = "ping"

    def _wake_alive(self) -> None:
        self.worker.activate_local_bulk(np.flatnonzero(self.alive))

    # -- vertex logic -----------------------------------------------------------
    def compute(self, v, messages) -> None:
        i = v.local
        if not self.alive[i]:
            v.vote_to_halt()
            return
        msgs = messages if messages else []
        s = self.state
        g = self.worker.graph
        if s == "ping":
            for e in g.neighbors(v.id):
                v.send_message(int(e), (TAG_PING_IN, 1))
            for e in g.in_neighbors(v.id):
                v.send_message(int(e), (TAG_PING_OUT, 1))
        elif s == "apply":
            has_in = any(tag == TAG_PING_IN for tag, _ in msgs)
            has_out = any(tag == TAG_PING_OUT for tag, _ in msgs)
            if not (has_in and has_out):
                self._die(v, v.id)
                return
            self.fwd[i] = v.id
            self.bwd[i] = v.id
            self._forward(v, v.id)
            self._backward(v, v.id)
            self.aggregate((1, 0))
        elif s == "prop":
            changed = 0
            mf = min((val for tag, val in msgs if tag == TAG_FWD), default=_I32_MAX)
            if mf < self.fwd[i]:
                self.fwd[i] = mf
                self._forward(v, mf)
                changed += 1
            mb = min((val for tag, val in msgs if tag == TAG_BWD), default=_I32_MAX)
            if mb < self.bwd[i]:
                self.bwd[i] = mb
                self._backward(v, mb)
                changed += 1
            self.aggregate((changed, 0))
        elif s == "detect":
            if self.fwd[i] == self.bwd[i]:
                self._die(v, int(self.fwd[i]))
            else:
                self.fwd[i] = _I32_MAX
                self.bwd[i] = _I32_MAX
                self.aggregate((0, 1))

    def _die(self, v, label: int) -> None:
        self.alive[v.local] = False
        self.scc[v.local] = label
        v.vote_to_halt()

    def _forward(self, v, label: int) -> None:
        for e in self.worker.graph.neighbors(v.id):
            v.send_message(int(e), (TAG_FWD, label))

    def _backward(self, v, label: int) -> None:
        for e in self.worker.graph.in_neighbors(v.id):
            v.send_message(int(e), (TAG_BWD, label))

    def finalize(self) -> dict:
        return {int(g): int(self.scc[i]) for i, g in enumerate(self.worker.local_ids)}


def run_scc_pregel(graph: Graph, **engine_kwargs):
    """Run Pregel+ Min-Label SCC; returns ``(labels, EngineResult)``."""
    if not graph.directed:
        raise ValueError("SCC needs a directed graph")
    result = PregelPlusEngine(graph, SCCPregel, mode="basic", **engine_kwargs).run()
    return gather(result, graph.num_vertices), result
