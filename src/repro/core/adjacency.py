"""Local CSR adjacency views for the bulk compute path.

A :class:`LocalCSR` is the adjacency of one worker's owned vertices,
re-indexed so that row ``i`` is local vertex ``i`` (column entries remain
*global* vertex ids, since messages address global ids).  Bulk programs
(see ARCHITECTURE.md) use it to turn per-vertex edge iteration into whole
-frontier gathers: ``adj.gather(active)`` yields the destinations of every
out-edge of the active set in one NumPy pass, in exactly the order the
scalar path would visit them (ascending local index, CSR edge order) — the
property the scalar/bulk parity tests rely on.

Directions:

* ``"out"`` — rows are out-edges (the common case).
* ``"in"``  — rows are in-edges (built from the graph's reverse CSR).
* ``"both"``— per row: out-edges then in-edges, matching the
  ``np.concatenate([neighbors, in_neighbors])`` idiom of scalar WCC.

On undirected graphs all three directions coincide with ``"out"``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.util import expand_ranges

__all__ = ["LocalCSR", "build_local_csr"]


@dataclass(frozen=True)
class LocalCSR:
    """Read-only CSR over one worker's local vertices.

    Attributes
    ----------
    indptr:
        ``(num_local + 1,)`` row pointers.
    indices:
        Global destination ids, concatenated per local row.
    weights:
        Optional per-edge weights aligned with ``indices``.
    degrees:
        ``(num_local,)`` row lengths (``np.diff(indptr)``).
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray | None
    degrees: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.indices.size)

    def row(self, local_idx: int) -> np.ndarray:
        """Destinations of one local vertex (a view)."""
        return self.indices[self.indptr[local_idx] : self.indptr[local_idx + 1]]

    def _edge_positions(self, rows: np.ndarray) -> np.ndarray:
        starts = self.indptr[rows]
        return expand_ranges(starts, self.degrees[rows])

    def gather(self, rows: np.ndarray) -> np.ndarray:
        """Destinations of every edge of ``rows``, concatenated in row
        order — the bulk analogue of looping ``v.edges`` over a frontier."""
        return self.indices[self._edge_positions(rows)]

    def gather_weights(self, rows: np.ndarray) -> np.ndarray:
        """Edge weights aligned with :meth:`gather` (ones if unweighted)."""
        if self.weights is None:
            return np.ones(int(self.degrees[rows].sum()))
        return self.weights[self._edge_positions(rows)]


def _slice_rows(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray | None,
    rows: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """(degrees, gathered indices, gathered weights) of ``rows`` in a
    global CSR."""
    deg = indptr[rows + 1] - indptr[rows]
    pos = expand_ranges(indptr[rows], deg)
    return deg, indices[pos], None if weights is None else weights[pos]


def build_local_csr(graph: Graph, local_ids: np.ndarray, direction: str = "out") -> LocalCSR:
    """Build the local adjacency of ``local_ids`` in the given direction."""
    if direction not in ("out", "in", "both"):
        raise ValueError(f"direction must be 'out', 'in' or 'both', got {direction!r}")
    if not graph.directed:
        direction = "out"  # all directions coincide on undirected graphs

    if direction in ("in", "both"):
        graph._ensure_reverse()

    if direction == "in":
        deg, idx, w = _slice_rows(
            graph._rev_indptr, graph._rev_indices, graph._rev_weights, local_ids
        )
    elif direction == "out":
        deg, idx, w = _slice_rows(graph.indptr, graph.indices, graph.weights, local_ids)
    else:  # both: out-edges then in-edges per row
        deg_o, idx_o, w_o = _slice_rows(
            graph.indptr, graph.indices, graph.weights, local_ids
        )
        deg_i, idx_i, w_i = _slice_rows(
            graph._rev_indptr, graph._rev_indices, graph._rev_weights, local_ids
        )
        deg = deg_o + deg_i
        indptr = np.zeros(local_ids.size + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        idx = np.empty(int(deg.sum()), dtype=np.int64)
        out_pos = expand_ranges(indptr[:-1], deg_o)
        in_pos = expand_ranges(indptr[:-1] + deg_o, deg_i)
        idx[out_pos] = idx_o
        idx[in_pos] = idx_i
        if w_o is not None:
            w = np.empty(idx.size)
            w[out_pos] = w_o
            w[in_pos] = w_i
        else:
            w = None
        return LocalCSR(indptr=indptr, indices=idx, weights=w, degrees=deg)

    indptr = np.zeros(local_ids.size + 1, dtype=np.int64)
    np.cumsum(deg, out=indptr[1:])
    return LocalCSR(indptr=indptr, indices=idx, weights=w, degrees=deg)
