"""The channel engine: the superstep loop of Fig. 4.

The engine creates one :class:`~repro.core.worker.Worker` per partition
block, instantiates the user's :class:`~repro.core.program.VertexProgram`
on each, and then alternates vertex compute with channel exchange rounds
until every vertex has voted to halt and no channel requests another round.

Both compute time (max over workers, i.e. parallel makespan) and modeled
network time are accumulated into the run's
:class:`~repro.runtime.metrics.MetricsCollector`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.recovery import (
    FailureSchedule,
    FrameLog,
    confined_recovery,
    rollback_recovery,
)
from repro.core.worker import Worker
from repro.graph.graph import Graph
from repro.graph.partition import hash_partition
from repro.runtime.buffers import BufferExchange
from repro.runtime.checkpoint import capture_snapshot
from repro.runtime.costmodel import NetworkModel, DEFAULT_NETWORK
from repro.runtime.metrics import MetricsCollector

__all__ = ["ChannelEngine", "EngineResult"]

#: recognised ``recovery`` modes (see :mod:`repro.core.recovery`)
RECOVERY_MODES = ("rollback", "confined")

#: recognised execution backends
EXECUTORS = ("sim", "process")


@dataclass
class EngineResult:
    """Outcome of one engine run.

    The pass-through properties mirror the most-used
    :class:`~repro.runtime.metrics.MetricsCollector` totals so callers
    (benchmarks, examples) don't reach into ``result.metrics`` internals.

    When ``metrics`` is ``None`` (collection disabled) every pass-through
    property returns ``None`` — a run with no collector did not observe
    "0 bytes"/"0.0 seconds", it observed nothing, and the old zero
    fallbacks made byte-identity comparisons between such runs pass
    vacuously.  Callers comparing totals must read them through
    ``result.metrics`` or handle ``None`` explicitly.
    """

    data: dict = field(default_factory=dict)
    metrics: MetricsCollector | None = None

    @property
    def supersteps(self) -> int | None:
        return self.metrics.supersteps if self.metrics is not None else None

    @property
    def total_net_bytes(self) -> int | None:
        """Serialized bytes that crossed worker boundaries (``None`` when
        metrics collection was disabled — not the same as 0, which means
        a measured run with no traffic)."""
        return self.metrics.total_net_bytes if self.metrics is not None else None

    @property
    def total_messages(self) -> int | None:
        """Network messages counted by all channels (``None`` when
        metrics collection was disabled)."""
        return self.metrics.total_messages if self.metrics is not None else None

    @property
    def simulated_time(self) -> float | None:
        """Modeled parallel runtime (max compute + network per superstep);
        ``None`` when metrics collection was disabled."""
        return self.metrics.simulated_time if self.metrics is not None else None


class ChannelEngine:
    """Runs a channel-based vertex program over a partitioned graph.

    Parameters
    ----------
    graph:
        The input :class:`~repro.graph.graph.Graph`.
    program_factory:
        Callable ``(worker) -> VertexProgram``; typically the program class
        itself.
    num_workers:
        Number of simulated workers (the paper used an 8-node cluster).
    partition:
        Optional vertex->worker array; defaults to hash partitioning, the
        Pregel default ("vertices are randomly assigned to workers").
    network:
        Cost model for the simulated interconnect.
    checkpoint_every:
        Take a checkpoint every ``k`` supersteps (plus one before the
        first superstep).  ``None`` disables periodic checkpoints; an
        initial checkpoint is still taken whenever ``failures`` is set.
    failures:
        A :class:`~repro.core.recovery.FailureSchedule` (or anything its
        constructor accepts, e.g. ``[(3, 7)]`` or ``["3:7"]``): worker 3
        dies at the end of superstep 7.
    recovery:
        ``"rollback"`` (all workers reload the latest checkpoint and
        re-execute) or ``"confined"`` (only the failed worker reloads;
        survivors' logged frames feed its replay).  Defaults can be
        overridden per :meth:`run` call.
    initial_active:
        Global vertex ids active in superstep 1 (``None`` = all vertices,
        the Pregel default).  The streaming layer seeds refresh runs from
        the delta-affected region this way; programs may wake more
        vertices via ``before_superstep`` / message arrival as usual.
    executor:
        ``"sim"`` (default) runs every worker sequentially in-process
        with modeled parallelism; ``"process"`` runs each worker as a
        real OS process over shared memory and pipes
        (:mod:`repro.runtime.parallel`) with bit-identical data,
        per-channel traffic, and byte/message totals.  Fault tolerance
        (``checkpoint_every``/``failures``) currently requires ``"sim"``.
    sync_state:
        Process executor only: when ``True``, each worker ships its
        end-of-run state (program state dict, halt/wake flags, channel
        ``snapshot()`` s) back through the checkpoint codec and the
        engine loads it into its own workers, so post-run introspection
        of ``engine.workers`` behaves as after a simulated run.  Off by
        default — result data always comes back regardless.
    """

    def __init__(
        self,
        graph: Graph,
        program_factory: Callable[[Worker], object],
        num_workers: int = 8,
        partition: np.ndarray | None = None,
        network: NetworkModel = DEFAULT_NETWORK,
        checkpoint_every: int | None = None,
        failures=None,
        recovery: str = "rollback",
        initial_active: np.ndarray | None = None,
        executor: str = "sim",
        sync_state: bool = False,
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        self.executor = executor
        self.sync_state = bool(sync_state)
        self._process_ran = False  # process-executor engines are single-run
        self.graph = graph
        self.num_workers = num_workers
        self.program_factory = program_factory
        self.checkpoint_every = checkpoint_every
        self.failures = FailureSchedule.coerce(failures)
        self.recovery = recovery
        self.checkpoint = None  # latest Snapshot, when fault tolerance is on
        self.frame_log: FrameLog | None = None
        if partition is None:
            partition = hash_partition(graph.num_vertices, num_workers)
        partition = np.asarray(partition, dtype=np.int64)
        if partition.shape != (graph.num_vertices,):
            raise ValueError("partition must assign every vertex")
        if partition.size and (partition.min() < 0 or partition.max() >= num_workers):
            raise ValueError("partition assigns vertices to unknown workers")
        self.owner = partition
        self.metrics = MetricsCollector(num_workers=num_workers, network=network)
        self.step_num = 0

        self.workers: list[Worker] = []
        for w in range(num_workers):
            local_ids = np.flatnonzero(partition == w)
            self.workers.append(Worker(self, w, local_ids))
        for worker in self.workers:
            worker.program = program_factory(worker)

        self.initial_active: np.ndarray | None = None
        if initial_active is not None:
            seeds = np.asarray(initial_active, dtype=np.int64)
            if seeds.size and (
                seeds.min() < 0 or seeds.max() >= graph.num_vertices
            ):
                raise ValueError("initial_active contains out-of-range vertex ids")
            self.initial_active = seeds.copy()  # worker processes re-seed from this
            for worker in self.workers:
                worker.seed_active(seeds)

        nchan = {len(w.channels) for w in self.workers}
        if len(nchan) != 1:
            raise RuntimeError(
                "programs must construct the same channels on every worker"
            )
        self.num_channels = nchan.pop()
        self._exchange = BufferExchange(self.metrics)

    # -- main loop ---------------------------------------------------------
    def run(
        self,
        max_supersteps: int = 100_000,
        checkpoint_every: int | None = None,
        failures=None,
        recovery: str | None = None,
    ) -> EngineResult:
        """Run to termination; the fault-tolerance arguments override the
        constructor's defaults for this run (see the class docstring)."""
        if checkpoint_every is None:
            checkpoint_every = self.checkpoint_every
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        failures = (
            FailureSchedule.coerce(failures) if failures is not None else self.failures
        )
        if failures is not None:
            # pop() consumes events; work on a per-run copy so the same
            # schedule can drive several runs (e.g. rollback vs confined)
            failures = failures.copy()
        recovery = recovery if recovery is not None else self.recovery
        if recovery not in RECOVERY_MODES:
            raise ValueError(f"recovery must be one of {RECOVERY_MODES}, got {recovery!r}")
        if failures is not None:
            failures.validate(self.num_workers)
        fault_tolerant = checkpoint_every is not None or bool(failures)

        if self.executor == "process":
            if fault_tolerant:
                raise ValueError(
                    "checkpointing/failure injection requires executor='sim'; "
                    "the process backend does not support fault tolerance yet"
                )
            if self._process_ran:
                # a second sim run() is a no-op (every worker is halted);
                # worker processes would instead be rebuilt from the
                # factory and silently re-execute the whole program —
                # refuse rather than diverge from the sim contract
                raise RuntimeError(
                    "this engine already ran with executor='process'; "
                    "construct a new ChannelEngine to run again"
                )
            self._process_ran = True
            from repro.runtime.parallel.backend import ProcessBackend

            return ProcessBackend(self).run(max_supersteps=max_supersteps)

        self.frame_log = (
            FrameLog(self.num_workers)
            if bool(failures) and recovery == "confined"
            else None
        )

        metrics = self.metrics
        metrics.start_run()

        for worker in self.workers:
            for channel in worker.channels:
                channel.initialize()

        if fault_tolerant:
            # superstep-0 checkpoint: recovery is possible before the
            # first periodic checkpoint is due
            self._take_checkpoint()

        while True:
            # phase controllers may wake vertices for the upcoming superstep
            for worker in self.workers:
                worker.program.before_superstep()
            active_sets = [w.begin_superstep() for w in self.workers]
            total_active = sum(a.size for a in active_sets)
            if total_active == 0:
                break
            self.step_num += 1
            if self.step_num > max_supersteps:
                raise RuntimeError(
                    f"exceeded max_supersteps={max_supersteps}; "
                    "the program may not terminate"
                )
            metrics.start_superstep(total_active)

            # 1. vertex compute (parallel across workers -> charge max);
            # each worker dispatches scalar (per-vertex) or bulk
            # (whole-active-set) per its program's is_bulk flag
            for worker, active in zip(self.workers, active_sets):
                t0 = time.perf_counter()
                worker.run_compute(active)
                metrics.record_compute(worker.worker_id, time.perf_counter() - t0)

            # 2. channel exchange rounds
            self._exchange_phase()
            metrics.end_superstep()

            # 3. superstep boundary: checkpoint, then inject failures
            if fault_tolerant:
                if checkpoint_every is not None and self.step_num % checkpoint_every == 0:
                    self._take_checkpoint()
                doomed = failures.pop(self.step_num) if failures else []
                if doomed:
                    metrics.record_failure(len(doomed))
                    if recovery == "confined":
                        confined_recovery(self, doomed)
                    else:
                        rollback_recovery(self, doomed)

        if failures and failures.pending():
            # warn, don't raise: the results are still valid (nothing was
            # injected), but anyone measuring recovery must find out that
            # they actually measured a failure-free run
            warnings.warn(
                f"failure schedule events never fired — the run ended after "
                f"{self.step_num} supersteps: {failures.pending()}",
                RuntimeWarning,
                stacklevel=2,
            )

        metrics.end_run()

        result = EngineResult(metrics=metrics)
        for worker in self.workers:
            result.data.update(worker.program.finalize())
        return result

    def _exchange_phase(self) -> None:
        metrics = self.metrics
        for worker in self.workers:
            for channel in worker.channels:
                channel.reset_round()

        group_active = [True] * self.num_channels
        step_log: list[tuple[list[bool], list[list[bytes]]]] | None = (
            [] if self.frame_log is not None else None
        )

        while any(group_active):
            # serialize
            wrote = False
            for worker in self.workers:
                t0 = time.perf_counter()
                for cid, channel in enumerate(worker.channels):
                    if group_active[cid]:
                        channel.serialize()
                metrics.record_compute(worker.worker_id, time.perf_counter() - t0)
                net, local = worker.buffers.out_nbytes()
                wrote = wrote or net > 0 or local > 0

            if not wrote and not any(group_active):  # pragma: no cover
                break

            if step_log is not None:
                # sender-side frame log for confined recovery: every
                # cross-worker buffer of this round, captured pre-exchange
                frames = [
                    [
                        b""
                        if peer == worker.worker_id
                        else worker.buffers.out[peer].getvalue()
                        for peer in range(self.num_workers)
                    ]
                    for worker in self.workers
                ]
                step_log.append((list(group_active), frames))
                metrics.record_log_bytes(
                    sum(len(buf) for row in frames for buf in row)
                )

            # pairwise exchange (accounted by the cost model)
            self._exchange.exchange([w.buffers for w in self.workers])

            # deserialize + decide on another round
            next_active = [False] * self.num_channels
            for worker in self.workers:
                t0 = time.perf_counter()
                routed = worker.route_inbox()
                for cid, channel in enumerate(worker.channels):
                    if group_active[cid]:
                        channel.deserialize(routed.get(cid, []))
                        if channel.again():
                            next_active[cid] = True
                    elif cid in routed:  # pragma: no cover - defensive
                        raise RuntimeError(
                            f"data arrived for inactive channel {cid}"
                        )
                metrics.record_compute(worker.worker_id, time.perf_counter() - t0)
            group_active = next_active

        if step_log is not None:
            self.frame_log.append_step(self.step_num, step_log)

    # -- fault tolerance -----------------------------------------------------
    def _take_checkpoint(self) -> None:
        snapshot = capture_snapshot(self)
        self.checkpoint = snapshot
        self.metrics.record_checkpoint(snapshot.worker_nbytes)
        if self.frame_log is not None:
            # frames covered by this checkpoint can never be replayed
            self.frame_log.truncate_before(snapshot.superstep)

    def rebuild_worker(self, w: int) -> None:
        """Replace worker ``w`` with a fresh instance (simulating a
        replacement node): new Worker, new program, channels rebuilt by
        the program's constructor.  The caller loads checkpointed state
        into it afterwards (:func:`repro.runtime.checkpoint.restore_worker`)."""
        local_ids = np.flatnonzero(self.owner == w)
        worker = Worker(self, w, local_ids)
        worker.program = self.program_factory(worker)
        if len(worker.channels) != self.num_channels:
            raise RuntimeError(
                "rebuilt worker constructed a different channel set"
            )  # pragma: no cover - factory determinism guard
        # the documented lifecycle promises initialize() before any
        # serialize/deserialize; the replacement's channels get it too
        # (restore_worker then overwrites whatever state it set up)
        for channel in worker.channels:
            channel.initialize()
        self.workers[w] = worker
