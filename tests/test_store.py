"""The pluggable graph-store seam (ARCHITECTURE.md §12).

A ``Graph`` must behave bit-identically whatever backs its CSR arrays:
in-memory heap arrays, an mmap store on disk, or a SharedMemory export
in a worker process.  This file pins that contract from every side:

* the CSR parity matrix — every benchmark dataset saved to an mmap
  store and reloaded, and (per shape class) streamed through the
  chunked edge-list loader, yields byte-identical ``csr_arrays()``;
* algorithm parity — PageRank / WCC / SSSP produce identical results,
  traffic, and counters over memory and mmap stores on the simulated
  and process backends (both transports), i.e. attach-by-path is
  indistinguishable from copy-into-shm;
* composition — DeltaGraph / EpochEngine run over an mmap base without
  ever writing to it (overlay appends only; the store files stay
  byte-identical);
* the builders — two-pass chunked CSR construction, disk generators,
  loaders, the degree partitioner, the lazy update stream, and the
  ``repro info`` / ``repro generate`` CLI over store directories.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.algorithms.pagerank import run_pagerank
from repro.algorithms.sssp import run_sssp
from repro.algorithms.wcc import run_wcc
from repro.bench.datasets import DATASETS, EXTRA_DATASETS, load_dataset
from repro.graph import rmat
from repro.graph.generators import erdos_renyi_to_disk, rmat_to_disk
from repro.graph.graph import Graph
from repro.graph.io import (
    iter_update_stream,
    load_edgelist,
    load_edgelist_chunked,
    load_graph,
    load_update_stream,
    save_edgelist,
    save_update_stream,
)
from repro.graph.partition import degree_range_partition, range_partition
from repro.graph.store import (
    MemoryStore,
    MmapStore,
    build_mmap_store,
    is_mmap_store,
)
from repro.streaming import EpochEngine, WCCStream, synthesize_stream

ALL_DATASETS = sorted(DATASETS) + sorted(EXTRA_DATASETS)

#: one dataset per CSR shape class for the (slow, text-parsing) chunked
#: loader matrix: {directed, undirected} x {weighted, unweighted}
SHAPE_DATASETS = ["wikipedia", "facebook", "usa-road", "rmat24"]


def _assert_same_csr(a: Graph, b: Graph):
    ca, cb = a.csr_arrays(), b.csr_arrays()
    assert a.num_vertices == b.num_vertices
    assert a.directed == b.directed
    assert set(ca) == set(cb)
    for name in ca:
        np.testing.assert_array_equal(np.asarray(ca[name]), np.asarray(cb[name]))
    assert np.asarray(cb["indptr"]).dtype == np.int64
    assert np.asarray(cb["indices"]).dtype == np.int64


def _assert_identical_runs(a, b):
    np.testing.assert_array_equal(a[0], b[0])
    ra, rb = a[-1], b[-1]
    assert ra.data == rb.data
    ma, mb = ra.metrics, rb.metrics
    assert ma.channel_breakdown() == mb.channel_breakdown()
    assert ma.supersteps == mb.supersteps
    assert ma.total_rounds == mb.total_rounds
    assert ma.total_net_bytes == mb.total_net_bytes
    assert ma.total_local_bytes == mb.total_local_bytes
    assert ma.total_messages == mb.total_messages


# ---------------------------------------------------------------------------
# store kinds
# ---------------------------------------------------------------------------
class TestStoreKinds:
    def test_graph_defaults_to_memory_store(self):
        g = load_dataset("wikipedia")
        assert isinstance(g.store, MemoryStore)
        assert g.store.kind == "memory"
        assert g.store.describe() is None  # nothing for a worker to attach
        fp = g.store.footprint()
        assert fp["resident_bytes"] > 0 and fp["on_disk_bytes"] == 0

    def test_mmap_store_footprint_and_descriptor(self, tmp_path):
        g = load_dataset("usa-road")
        store = MmapStore.save(g, tmp_path / "road")
        assert store.kind == "mmap"
        assert store.describe() == {"kind": "mmap", "path": str(tmp_path / "road")}
        fp = store.footprint()
        assert fp["resident_bytes"] == 0  # pages are the kernel's, not ours
        assert fp["on_disk_bytes"] >= g.indices.nbytes + g.indptr.nbytes
        assert is_mmap_store(tmp_path / "road")
        assert not is_mmap_store(tmp_path)

    def test_open_rejects_non_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            MmapStore.open(tmp_path / "nothing")
        (tmp_path / "meta.json").write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="format"):
            MmapStore.open(tmp_path)

    @pytest.mark.parametrize("name", ALL_DATASETS)
    def test_save_open_round_trip_is_bit_identical(self, name, tmp_path):
        g = load_dataset(name)
        MmapStore.save(g, tmp_path / name)
        reopened = Graph.from_store(MmapStore.open(tmp_path / name))
        _assert_same_csr(g, reopened)
        assert reopened.weighted == g.weighted
        assert reopened.num_edges == g.num_edges

    def test_zero_edge_weighted_graph_round_trips(self, tmp_path):
        g = Graph(
            4,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            weights=np.empty(0, dtype=np.float64),
            directed=False,
        )
        MmapStore.save(g, tmp_path / "empty")
        back = Graph.from_store(MmapStore.open(tmp_path / "empty"))
        assert back.weighted and back.num_vertices == 4 and back.num_edges == 0


# ---------------------------------------------------------------------------
# chunked builders and loaders
# ---------------------------------------------------------------------------
class TestChunkedLoader:
    @pytest.mark.parametrize("name", SHAPE_DATASETS)
    def test_chunked_loader_matches_eager(self, name, tmp_path):
        g = load_dataset(name)
        path = tmp_path / f"{name}.txt"
        save_edgelist(g, path)
        eager = load_edgelist(path)
        # small chunks force multi-chunk builds with uneven final chunks
        chunk = max(1, g.num_input_edges // 7)
        chunked = load_edgelist_chunked(path, tmp_path / name, chunk_edges=chunk)
        _assert_same_csr(eager, chunked)
        assert chunked.store.kind == "mmap"

    def test_gz_edgelist_loads_chunked(self, tmp_path):
        g = load_dataset("usa-road")
        path = tmp_path / "road.txt.gz"
        save_edgelist(g, path)
        chunked = load_edgelist_chunked(path, tmp_path / "road", chunk_edges=4096)
        _assert_same_csr(load_edgelist(path), chunked)

    def test_mixed_weight_lines_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2.5\n1 2\n")
        with pytest.raises(ValueError, match="some edges have weights"):
            load_edgelist_chunked(path, tmp_path / "bad")

    def test_load_graph_dispatches_on_form(self, tmp_path):
        g = load_dataset("usa-road")
        store_dir = tmp_path / "store"
        MmapStore.save(g, store_dir)
        as_store = load_graph(store_dir)
        assert as_store.store.kind == "mmap"
        _assert_same_csr(g, as_store)
        text = tmp_path / "g.txt"
        save_edgelist(g, text)
        assert load_graph(text).store.kind == "memory"

    def test_build_rejects_negative_ids(self, tmp_path):
        def chunks():
            yield (
                np.array([0, -1], dtype=np.int64),
                np.array([1, 2], dtype=np.int64),
                None,
            )

        with pytest.raises(ValueError, match="out of range"):
            build_mmap_store(tmp_path / "neg", chunks, num_vertices=4)

    def test_build_rejects_unstable_chunk_factory(self, tmp_path):
        calls = {"n": 0}

        def chunks():
            calls["n"] += 1
            src = 0 if calls["n"] == 1 else 1  # different graph on replay
            yield (
                np.array([src], dtype=np.int64),
                np.array([2], dtype=np.int64),
                None,
            )

        with pytest.raises(RuntimeError, match="replay"):
            build_mmap_store(tmp_path / "flap", chunks, num_vertices=4)


class TestDiskGenerators:
    def test_rmat_to_disk_is_deterministic(self, tmp_path):
        a = rmat_to_disk(tmp_path / "a", scale=10, edge_factor=6, seed=3)
        b = rmat_to_disk(tmp_path / "b", scale=10, edge_factor=6, seed=3)
        _assert_same_csr(a, b)
        assert a.store.kind == "mmap"
        assert a.num_vertices == 1 << 10

    def test_rmat_to_disk_chunking_is_part_of_identity(self, tmp_path):
        # per-chunk RNG streams: the same seed at a different chunk size
        # is a *different* graph — documented, so pin it
        a = rmat_to_disk(tmp_path / "a", scale=9, edge_factor=6, seed=3)
        b = rmat_to_disk(
            tmp_path / "b", scale=9, edge_factor=6, seed=3, chunk_edges=1 << 10
        )
        assert not np.array_equal(a.indices, b.indices)

    def test_rmat_to_disk_weighted_undirected(self, tmp_path):
        g = rmat_to_disk(
            tmp_path / "g", scale=9, edge_factor=4, seed=1,
            directed=False, weighted=True,
        )
        assert not g.directed and g.weighted
        assert g.weights.size == g.indptr[-1]
        assert (g.weights >= 1.0).all() and (g.weights <= 100.0).all()

    def test_erdos_renyi_to_disk_shape(self, tmp_path):
        n = 2000
        g = erdos_renyi_to_disk(tmp_path / "er", n, avg_degree=8.0, seed=5)
        assert g.num_vertices == n and g.store.kind == "mmap"
        assert 0.8 * 8.0 * n < g.num_edges < 1.2 * 8.0 * n


class TestIndexDtype:
    """``index_dtype="uint32"`` halves ``indices.npy`` on disk; readers
    must widen back to int64 so everything downstream sees one dtype."""

    def test_uint32_store_matches_int64_store(self, tmp_path):
        g = rmat(9, edge_factor=6, seed=3)
        wide = MmapStore.save(g, tmp_path / "wide")
        narrow = MmapStore.save(g, tmp_path / "narrow", index_dtype="uint32")
        assert json.loads((tmp_path / "narrow" / "meta.json").read_text())[
            "index_dtype"
        ] == "uint32"
        # on disk: half the bytes for the dominant array
        raw = np.load(tmp_path / "narrow" / "indices.npy", mmap_mode="r")
        assert raw.dtype == np.uint32
        assert (
            raw.nbytes * 2
            == np.load(tmp_path / "wide" / "indices.npy", mmap_mode="r").nbytes
        )
        # attached: widened back to one dtype, bit-identical content
        _assert_same_csr(Graph.from_store(wide), Graph.from_store(narrow))

    def test_uint32_disk_generator_round_trip(self, tmp_path):
        a = rmat_to_disk(tmp_path / "a", scale=9, edge_factor=6, seed=3)
        b = rmat_to_disk(
            tmp_path / "b", scale=9, edge_factor=6, seed=3, index_dtype="uint32"
        )
        _assert_same_csr(Graph.from_store(a.store), Graph.from_store(b.store))
        assert run_wcc(a, variant="basic", mode="bulk", num_workers=2)[
            -1
        ].data == run_wcc(b, variant="basic", mode="bulk", num_workers=2)[-1].data

    def test_widened_indices_counted_in_footprint_and_freed(self, tmp_path):
        g = rmat(8, edge_factor=4, seed=2)
        store = MmapStore.save(g, tmp_path / "s", index_dtype="uint32")
        before = store.footprint()["resident_bytes"]
        arrays = store.arrays()
        assert arrays["indices"].dtype == np.int64
        after = store.footprint()["resident_bytes"]
        assert after - before >= arrays["indices"].nbytes
        assert store.arrays()["indices"] is arrays["indices"]  # widened once
        store.close()
        assert store._widened is None

    def test_unknown_and_overflowing_dtypes_rejected(self, tmp_path):
        g = rmat(6, edge_factor=4, seed=1)
        with pytest.raises(ValueError, match="index_dtype"):
            MmapStore.save(g, tmp_path / "bad", index_dtype="int32")
        from repro.graph.store import _check_index_dtype

        with pytest.raises(ValueError, match="cannot hold"):
            _check_index_dtype("uint32", (1 << 32) + 1)
        assert _check_index_dtype("uint32", 1 << 32) == np.uint32

    def test_open_rejects_mismatched_index_dtype(self, tmp_path):
        g = rmat(6, edge_factor=4, seed=1)
        MmapStore.save(g, tmp_path / "s", index_dtype="uint32")
        meta_path = tmp_path / "s" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["index_dtype"] = "int64"
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="does not match"):
            MmapStore.open(tmp_path / "s")


class TestDegreePartition:
    def test_balances_arcs_without_edges(self):
        g = load_dataset("wikipedia")  # power-law: range partition skews
        for workers in (2, 4, 8):
            owner = degree_range_partition(g, workers)
            assert owner.dtype == np.int64
            assert (np.diff(owner) >= 0).all()  # contiguous vertex ranges
            assert owner.min() >= 0 and owner.max() <= workers - 1
            arcs = np.diff(g.indptr)
            shares = np.bincount(owner, weights=arcs, minlength=workers)
            # skew bound: range_partition on this graph is far worse
            assert shares.max() <= 1.25 * arcs.sum() / workers

    def test_zero_arc_graph_falls_back_to_range(self):
        g = Graph(8, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        np.testing.assert_array_equal(
            degree_range_partition(g, 4), range_partition(8, 4)
        )


# ---------------------------------------------------------------------------
# algorithm parity: memory vs mmap x sim vs process x pipe vs shm
# ---------------------------------------------------------------------------
_ALGOS = {
    "pagerank": lambda g, **kw: run_pagerank(
        g, variant="scatter", iterations=6, mode="bulk", **kw
    ),
    "wcc": lambda g, **kw: run_wcc(g, variant="basic", mode="bulk", **kw),
    "sssp": lambda g, **kw: run_sssp(g, variant="basic", mode="bulk", **kw),
}


@pytest.fixture(scope="module")
def weighted_pair(tmp_path_factory):
    mem = rmat(9, edge_factor=6, seed=31, directed=True, weighted=True)
    store_dir = tmp_path_factory.mktemp("stores") / "g"
    MmapStore.save(mem, store_dir)
    return mem, Graph.from_store(MmapStore.open(store_dir))


@pytest.mark.parametrize("algo", sorted(_ALGOS))
class TestAlgorithmParity:
    def test_sim_memory_vs_mmap(self, algo, weighted_pair):
        mem, mapped = weighted_pair
        run = _ALGOS[algo]
        _assert_identical_runs(
            run(mem, num_workers=2), run(mapped, num_workers=2)
        )

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_process_over_mmap_matches_sim(self, algo, transport, weighted_pair):
        """The executor attaches the store by path (no shm copy of the
        graph) and still reproduces the simulated run bit for bit."""
        mem, mapped = weighted_pair
        assert mapped.store.describe()["kind"] == "mmap"
        run = _ALGOS[algo]
        sim = run(mem, num_workers=2)
        proc = run(
            mapped, num_workers=2, executor="process", transport=transport
        )
        _assert_identical_runs(sim, proc)


# ---------------------------------------------------------------------------
# streaming over an immutable mmap base
# ---------------------------------------------------------------------------
class TestStreamingOverMmap:
    def test_epoch_engine_runs_identically_and_leaves_base_untouched(
        self, tmp_path
    ):
        mem = rmat(8, edge_factor=4, seed=9, directed=True)
        store_dir = tmp_path / "base"
        MmapStore.save(mem, store_dir)
        mapped = Graph.from_store(MmapStore.open(store_dir))
        before = {
            p.name: p.read_bytes() for p in store_dir.iterdir() if p.is_file()
        }
        batches = synthesize_stream(
            mem, num_epochs=3, insertions_per_epoch=40,
            deletions_per_epoch=25, seed=11,
        )

        def epochs(graph):
            eng = EpochEngine(graph, WCCStream(), num_workers=2)
            return [eng.bootstrap()] + eng.run(batches)

        for s, m in zip(epochs(mem), epochs(mapped)):
            assert m.data == s.data
            assert m.refresh == s.refresh
            assert m.seeds == s.seeds and m.affected == s.affected
            sm, mm = s.result.metrics, m.result.metrics
            assert mm.channel_breakdown() == sm.channel_breakdown()
            assert mm.total_net_bytes == sm.total_net_bytes
            assert mm.total_messages == sm.total_messages

        # mutations live in the DeltaGraph overlay; the base store on
        # disk is immutable
        after = {
            p.name: p.read_bytes() for p in store_dir.iterdir() if p.is_file()
        }
        assert after == before


# ---------------------------------------------------------------------------
# the lazy update stream
# ---------------------------------------------------------------------------
class TestLazyUpdateStream:
    def _stream_file(self, tmp_path):
        g = rmat(8, edge_factor=4, seed=9, directed=True)
        batches = synthesize_stream(
            g, num_epochs=4, insertions_per_epoch=20,
            deletions_per_epoch=10, seed=3,
        )
        path = tmp_path / "updates.txt"
        save_update_stream(batches, path)
        return path

    def _assert_same_batches(self, lazy, eager):
        assert len(lazy) == len(eager)
        for lb, eb in zip(lazy, eager):
            assert lb.timestamp == eb.timestamp
            np.testing.assert_array_equal(lb.insert_src, eb.insert_src)
            np.testing.assert_array_equal(lb.insert_dst, eb.insert_dst)
            np.testing.assert_array_equal(lb.delete_src, eb.delete_src)
            np.testing.assert_array_equal(lb.delete_dst, eb.delete_dst)

    @pytest.mark.parametrize("epoch_size", [None, 7])
    def test_lazy_matches_eager(self, tmp_path, epoch_size):
        path = self._stream_file(tmp_path)
        lazy = load_update_stream(path, epoch_size=epoch_size, lazy=True)
        assert not isinstance(lazy, list)  # a generator, not a loaded list
        self._assert_same_batches(
            list(lazy), load_update_stream(path, epoch_size=epoch_size)
        )

    def test_iter_is_the_lazy_loader(self, tmp_path):
        path = self._stream_file(tmp_path)
        self._assert_same_batches(
            list(iter_update_stream(path, epoch_size=5)),
            load_update_stream(path, epoch_size=5),
        )

    def test_non_contiguous_timestamps_rejected_lazily(self, tmp_path):
        path = tmp_path / "revisit.txt"
        path.write_text("0 + 0 1\n1 + 1 2\n0 + 2 3\n")
        # the eager loader merges the revisited timestamp ...
        merged = load_update_stream(path)
        assert len(merged) == 2 and merged[0].insert_src.size == 2
        # ... the lazy one cannot without buffering the file, so it refuses
        with pytest.raises(ValueError, match="reappears"):
            list(iter_update_stream(path))


# ---------------------------------------------------------------------------
# CLI over stores
# ---------------------------------------------------------------------------
class TestStoreCLI:
    def test_generate_then_info_json(self, tmp_path, capsys):
        out = tmp_path / "g"
        rc = cli_main(
            ["generate", "rmat", str(out), "--scale", "9", "--edge-factor",
             "4", "--seed", "3"]
        )
        assert rc == 0
        capsys.readouterr()
        rc = cli_main(["info", str(out), "--json"])
        assert rc == 0
        info = json.loads(capsys.readouterr().out)
        assert info["store"] == "mmap"
        assert info["vertices"] == 512
        assert info["resident_mb"] == 0.0 and info["on_disk_mb"] > 0
        assert info["path"] == str(out)

    def test_info_on_dataset_name(self, capsys):
        rc = cli_main(["info", "usa-road"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "memory" in text and "VALUE" in text
        assert "usa-road" in text

    def test_run_over_store_with_degree_partition(self, tmp_path, capsys):
        out = tmp_path / "g"
        assert cli_main(
            ["generate", "rmat", str(out), "--scale", "9", "--edge-factor",
             "4", "--seed", "3"]
        ) == 0
        capsys.readouterr()
        rc = cli_main(
            ["run", "wcc", "--graph", str(out), "--workers", "2",
             "--partition", "degree", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["supersteps"] >= 1
