"""Simulated vs. multiprocess backend, per transport (BENCH_parallel.json).

For each workload × worker count, runs the same program on the simulated
backend (every worker sequential in one process) and on the process
backend under **both frame transports** — shared-memory ring buffers
(``shm``, the default) and OS pipes (``pipe``, the portable fallback) —
then:

* **asserts the parity contract** — bit-identical result data, identical
  per-channel traffic breakdown, and identical superstep / byte /
  message totals, for *each* transport; a speedup can never come from
  doing different work — the script exits non-zero on any violation,
  which the CI smoke relies on;
* **reports the wall-clock ratios** — ``speedup_shm_vs_sim`` is the
  process backend's whole point, ``speedup_shm_vs_pipe`` is what the
  ring transport buys over the pipe hop.  Speedups are only meaningful
  when the machine actually has cores to parallelize over, so the
  artifact records ``cpus``; on a single-CPU box the process rows
  measure protocol overhead, not parallelism, and ``speedup_valid`` is
  false (``shm_vs_pipe`` still compares the two transports' overhead
  honestly, it just can't show parallel wins);
* **records per-phase timings** — every row carries each backend's
  critical-path seconds per phase (barrier / compute / serialize /
  exchange, from :meth:`MetricsCollector.phase_totals`), so a regression
  can be localized to the phase that slowed down.  ``--phases`` prints
  the breakdown as a table.

Run directly::

    PYTHONPATH=src python benchmarks/bench_parallel.py                      # 100k-vertex workloads
    PYTHONPATH=src python benchmarks/bench_parallel.py --phases             # + phase breakdown
    PYTHONPATH=src python benchmarks/bench_parallel.py --dataset tree --workers 2  # smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

import numpy as np

from _provenance import write_artifact
from repro.algorithms.pagerank import run_pagerank
from repro.algorithms.wcc import run_wcc
from repro.bench.datasets import load_dataset
from repro.bench.tables import render_rows
from repro.graph.partition import hash_partition
from repro.streaming import STREAM_ALGORITHMS, EpochEngine, synthesize_stream

WORKLOADS = {
    "pr-scatter-bulk": lambda g, **kw: run_pagerank(
        g, variant="scatter", iterations=10, mode="bulk", **kw
    ),
    "wcc-bulk": lambda g, **kw: run_wcc(g, variant="basic", mode="bulk", **kw),
}

TRANSPORTS = ("pipe", "shm")
PHASES = ("barrier", "compute", "serialize", "exchange")


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _identical(a, b) -> bool:
    da, db = a[0], b[0]
    same_data = np.array_equal(da, db) if isinstance(da, np.ndarray) else da == db
    ma, mb = a[-1].metrics, b[-1].metrics
    return bool(
        same_data
        and a[-1].data == b[-1].data
        and ma.channel_breakdown() == mb.channel_breakdown()
        and ma.supersteps == mb.supersteps
        and ma.total_rounds == mb.total_rounds
        and ma.total_net_bytes == mb.total_net_bytes
        and ma.total_local_bytes == mb.total_local_bytes
        and ma.total_messages == mb.total_messages
    )


def _phase_row(result) -> dict:
    totals = result.phase_times or {}
    return {p: round(totals.get(p, 0.0), 4) for p in PHASES}


def _run_live_checked(runner, graph, workers, part, **kw):
    """Run one cell with a live segment attached and verify the plane's
    accounting: the per-worker slot counters must sum exactly to the
    final ``MetricsCollector`` totals (ARCHITECTURE.md §11)."""
    from repro.obs import LiveMetrics

    live = LiveMetrics.create(workers)
    try:
        out = runner(graph, num_workers=workers, partition=part, live=live, **kw)
        rows = live.snapshot()
        m = out[-1].metrics
        ok = (
            sum(r["net_bytes"] for r in rows) == m.total_net_bytes
            and sum(r["local_bytes"] for r in rows) == m.total_local_bytes
            and sum(r["messages"] for r in rows) == m.total_messages
            and all(r["superstep"] == m.supersteps for r in rows)
            and not any(r["stale"] for r in rows)
        )
        return out, ok
    finally:
        live.close(unlink=True)


def bench(
    dataset: str, workers_list: list[int], seed: int, live_check: bool = False
) -> list[dict]:
    graph = load_dataset(dataset)
    rows = []
    for name, runner in WORKLOADS.items():
        for workers in workers_list:
            part = hash_partition(graph.num_vertices, workers, seed=seed)

            def cell(**kw):
                if live_check:
                    return _run_live_checked(runner, graph, workers, part, **kw)
                return runner(graph, num_workers=workers, partition=part, **kw), True

            sim, live_sim = cell()
            proc_pairs = {
                t: cell(executor="process", transport=t) for t in TRANSPORTS
            }
            proc = {t: pair[0] for t, pair in proc_pairs.items()}
            live_ok = live_sim and all(ok for _, ok in proc_pairs.values())
            walls = {t: proc[t][-1].metrics.wall_time for t in TRANSPORTS}
            sim_wall = sim[-1].metrics.wall_time
            rows.append(
                {
                    "workload": name,
                    "workers": workers,
                    "supersteps": sim[-1].metrics.supersteps,
                    "net_mb": round(sim[-1].metrics.total_net_bytes / 1e6, 3),
                    "sim_wall_s": round(sim_wall, 4),
                    "pipe_wall_s": round(walls["pipe"], 4),
                    "shm_wall_s": round(walls["shm"], 4),
                    "speedup_shm_vs_sim": round(
                        sim_wall / max(walls["shm"], 1e-9), 2
                    ),
                    "speedup_shm_vs_pipe": round(
                        walls["pipe"] / max(walls["shm"], 1e-9), 2
                    ),
                    "parity_pipe": _identical(sim, proc["pipe"]),
                    "parity_shm": _identical(sim, proc["shm"]),
                    **({"live_parity": live_ok} if live_check else {}),
                    "phases": {
                        "sim": _phase_row(sim[-1]),
                        **{t: _phase_row(proc[t][-1]) for t in TRANSPORTS},
                    },
                }
            )
    return rows


def phase_table(rows: list[dict]) -> list[dict]:
    """Flatten each row's per-backend phase totals for display."""
    out = []
    for r in rows:
        for backend, totals in r["phases"].items():
            out.append(
                {
                    "workload": r["workload"],
                    "workers": r["workers"],
                    "backend": backend,
                    **totals,
                }
            )
    return out


def bench_amortization(
    dataset: str, workers: int, epochs: int, seed: int
) -> list[dict]:
    """Pool amortization: the same N-epoch update stream driven through
    ``EpochEngine(executor="process")`` twice — once reusing one
    persistent worker pool (processes spawn once, then receive each
    epoch's graph/program as control messages) and once spawning a fresh
    pool every epoch (what PR 4's single-run backend effectively did).
    Both must produce identical per-epoch data; the wall-clock ratio is
    what the persistent pool buys."""
    graph = load_dataset(dataset)
    batches = synthesize_stream(
        graph,
        num_epochs=epochs,
        insertions_per_epoch=max(1, graph.num_input_edges // 1000),
        deletions_per_epoch=max(1, graph.num_input_edges // 2000),
        seed=seed,
    )
    rows = []
    results: dict[bool, list] = {}
    for reuse in (True, False):
        engine = EpochEngine(
            graph,
            STREAM_ALGORITHMS["wcc"](),
            num_workers=workers,
            executor="process",
            pool_reuse=reuse,
        )
        t0 = time.perf_counter()
        engine.bootstrap()
        epochs_out = engine.run(batches)
        wall = time.perf_counter() - t0
        # the live pool only knows its own generation; total spawns for
        # the respawn baseline is one pool per engine run
        total_spawned = (
            engine.pool.spawn_count if reuse else workers * (len(batches) + 1)
        )
        engine.close()
        results[reuse] = [e.data for e in epochs_out]
        rows.append(
            {
                "mode": "persistent-pool" if reuse else "respawn-per-epoch",
                "workers": workers,
                "epochs": len(batches) + 1,  # bootstrap included
                "processes_spawned": total_spawned,
                "wall_s": round(wall, 4),
            }
        )
    rows[0]["amortization_speedup"] = round(
        rows[1]["wall_s"] / max(rows[0]["wall_s"], 1e-9), 2
    )
    rows[1]["amortization_speedup"] = 1.0  # the baseline, by definition
    rows[0]["identical"] = rows[1]["identical"] = results[True] == results[False]
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dataset",
        default="bulk-100k",
        help="benchmark graph name (default: the 100k-vertex workload)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[2, 8],
        help="worker counts to compare (default: 2 8)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="hash-partition seed, so reruns measure the same distribution",
    )
    parser.add_argument(
        "--phases",
        action="store_true",
        help="also print the per-phase critical-path breakdown "
        "(barrier/compute/serialize/exchange) for every backend",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="attach a live-telemetry segment (repro.obs.live) to every "
        "cell and fail unless the per-worker slot counters sum exactly "
        "to the collector totals on every backend and transport",
    )
    parser.add_argument(
        "--amortize-epochs",
        type=int,
        default=6,
        metavar="N",
        help="pool-amortization mode: N streaming epochs on one persistent "
        "pool vs a fresh pool per epoch (0 disables)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_parallel.json",
        help="output JSON path (default: repo-root BENCH_parallel.json)",
    )
    args = parser.parse_args(argv)

    cpus = _cpus()
    rows = bench(args.dataset, args.workers, args.seed, live_check=args.live)
    display_cols = [c for c in rows[0] if c != "phases"]
    print(
        render_rows(
            rows,
            title=f"sim vs process backend ({args.dataset}, {cpus} cpus)",
            cols=display_cols,
        )
    )
    if args.phases:
        breakdown = phase_table(rows)
        print(
            render_rows(
                breakdown,
                title="per-phase critical-path seconds",
                cols=list(breakdown[0]),
            )
        )
    amortization: list[dict] = []
    if args.amortize_epochs > 0:
        amortization = bench_amortization(
            args.dataset, min(args.workers), args.amortize_epochs, args.seed
        )
        print(
            render_rows(
                amortization,
                title=(
                    f"pool amortization ({args.dataset}, "
                    f"{args.amortize_epochs} epochs)"
                ),
                cols=list(amortization[0]),
            )
        )
    if cpus < 2:
        print(
            f"NOTE: only {cpus} cpu visible — the process rows measure "
            "protocol overhead, not parallel speedup (the amortization "
            "ratio is still meaningful: it compares process startup, not "
            "parallel compute)",
            file=sys.stderr,
        )

    write_artifact(
        args.out,
        rows,
        dataset=args.dataset,
        workers=args.workers,
        seed=args.seed,
        cpus=cpus,
        speedup_valid=cpus >= 2,
        transports=list(TRANSPORTS),
        amortization=amortization,
    )

    broken = [
        f"{r['workload']}@{r['workers']}:{t}"
        for r in rows
        for t in TRANSPORTS
        if not r[f"parity_{t}"]
    ]
    broken += [
        f"amortization/{r['mode']}" for r in amortization if not r["identical"]
    ]
    broken += [
        f"{r['workload']}@{r['workers']}:live"
        for r in rows
        if not r.get("live_parity", True)
    ]
    if broken:
        print(f"PARITY VIOLATION in: {', '.join(broken)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
