"""Process-backend parity matrix and crash behaviour.

``executor="process"`` must be a pure execution-substrate change: for
every workload × worker count × partitioner × transport, a process
run's result data, per-channel traffic (net/local bytes and message
counts), and superstep/round/byte/message totals are asserted
**bit-identical** to the simulated run's.  Both frame transports —
shared-memory ring buffers (``"shm"``, the default) and OS pipes
(``"pipe"``) — must meet the same bar.  A dying worker process must
surface as a clean :class:`WorkerProcessError`, never a hang, on either
transport, including a death while peers sit blocked *inside* a ring
write.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.algorithms.pagerank import run_pagerank
from repro.algorithms.pointer_jumping import run_pointer_jumping
from repro.algorithms.sssp import run_sssp
from repro.algorithms.wcc import run_wcc
from repro.core import Channel, ChannelEngine, ScatterCombine, SUM_F64, VertexProgram
from repro.graph import rmat
from repro.graph.partition import hash_partition, range_partition
from repro.runtime.parallel import WorkerProcessError

WORKERS = [2, 8]
PARTITIONERS = ["hash", "range"]
TRANSPORTS = ["shm", "pipe"]


@pytest.fixture(scope="module")
def directed_graph():
    return rmat(9, edge_factor=8, seed=31, directed=True)


@pytest.fixture(scope="module")
def weighted_graph():
    return rmat(9, edge_factor=4, seed=32, directed=False, weighted=True)


def _partition(name, n, workers):
    if name == "hash":
        return hash_partition(n, workers)
    return range_partition(n, workers)


def _assert_identical(sim_out, proc_out):
    (data_s, res_s), (data_p, res_p) = sim_out, proc_out
    np.testing.assert_array_equal(data_s, data_p)
    assert res_s.data == res_p.data
    ms, mp_ = res_s.metrics, res_p.metrics
    assert ms.channel_breakdown() == mp_.channel_breakdown()
    assert ms.supersteps == mp_.supersteps
    assert ms.total_rounds == mp_.total_rounds
    assert ms.total_net_bytes == mp_.total_net_bytes
    assert ms.total_local_bytes == mp_.total_local_bytes
    assert ms.total_messages == mp_.total_messages


@pytest.mark.parametrize("transport", TRANSPORTS)
@pytest.mark.parametrize("partitioner", PARTITIONERS)
@pytest.mark.parametrize("workers", WORKERS)
def test_pagerank_scatter_parity(directed_graph, workers, partitioner, transport):
    kw = dict(
        variant="scatter",
        iterations=8,
        mode="bulk",
        num_workers=workers,
        partition=_partition(partitioner, directed_graph.num_vertices, workers),
    )
    _assert_identical(
        run_pagerank(directed_graph, **kw),
        run_pagerank(directed_graph, executor="process", transport=transport, **kw),
    )


@pytest.mark.parametrize("transport", TRANSPORTS)
@pytest.mark.parametrize("partitioner", PARTITIONERS)
@pytest.mark.parametrize("workers", WORKERS)
def test_wcc_parity(directed_graph, workers, partitioner, transport):
    kw = dict(
        mode="bulk",
        num_workers=workers,
        partition=_partition(partitioner, directed_graph.num_vertices, workers),
    )
    _assert_identical(
        run_wcc(directed_graph, **kw),
        run_wcc(directed_graph, executor="process", transport=transport, **kw),
    )


@pytest.mark.parametrize("transport", TRANSPORTS)
@pytest.mark.parametrize("partitioner", PARTITIONERS)
@pytest.mark.parametrize("workers", WORKERS)
def test_sssp_parity(weighted_graph, workers, partitioner, transport):
    kw = dict(
        source=3,
        num_workers=workers,
        partition=_partition(partitioner, weighted_graph.num_vertices, workers),
    )
    _assert_identical(
        run_sssp(weighted_graph, **kw),
        run_sssp(weighted_graph, executor="process", transport=transport, **kw),
    )


class TestOtherChannels:
    """Channels outside the main matrix also survive the process hop."""

    def test_reqresp_pointer_jumping_parity(self, directed_graph):
        from repro.graph import random_tree

        g = random_tree(400, seed=7)
        kw = dict(variant="reqresp", num_workers=4)
        _assert_identical(
            run_pointer_jumping(g, **kw),
            run_pointer_jumping(g, executor="process", **kw),
        )

    def test_propagation_wcc_parity(self, directed_graph):
        kw = dict(variant="prop", num_workers=4)
        _assert_identical(
            run_wcc(directed_graph, **kw),
            run_wcc(directed_graph, executor="process", **kw),
        )

    def test_mirrored_pagerank_parity(self, directed_graph):
        kw = dict(variant="mirror", iterations=6, num_workers=4)
        _assert_identical(
            run_pagerank(directed_graph, **kw),
            run_pagerank(directed_graph, executor="process", **kw),
        )


class TestEngineIntegration:
    def test_initial_active_seeding(self, directed_graph):
        seeds = np.array([3, 17, 90], dtype=np.int64)
        kw = dict(mode="bulk", num_workers=4, initial_active=seeds)
        _assert_identical(
            run_wcc(directed_graph, **kw),
            run_wcc(directed_graph, executor="process", **kw),
        )

    def test_sync_state_restores_parent_workers(self, directed_graph):
        kw = dict(variant="scatter", iterations=5, mode="bulk", num_workers=4)
        _, res_sim = run_pagerank(directed_graph, **kw)

        from repro.algorithms.pagerank import PageRankScatterBulk

        class PR(PageRankScatterBulk):
            iterations = 5

        engine = ChannelEngine(
            directed_graph, PR, num_workers=4, executor="process", sync_state=True
        )
        res = engine.run()
        assert res.data == res_sim.data
        # parent-side program state now reflects the run that happened in
        # the worker processes
        merged = {}
        for worker in engine.workers:
            merged.update(worker.program.finalize())
        assert merged == res.data
        assert all(w.halted.all() for w in engine.workers)

    def test_unknown_executor_rejected(self, directed_graph):
        with pytest.raises(ValueError, match="executor"):
            ChannelEngine(directed_graph, object, executor="threads")

    def test_bad_transport_options_rejected(self, directed_graph):
        with pytest.raises(ValueError, match="transport"):
            ChannelEngine(
                directed_graph, object, executor="process", transport="tcp"
            )
        # transport is a process-executor knob; sim has no frame plane
        with pytest.raises(ValueError, match="transport"):
            ChannelEngine(directed_graph, object, transport="shm")

    def test_pool_transport_mismatch_rejected(self, directed_graph):
        from repro.runtime.parallel import WorkerPool

        pool = WorkerPool(2, transport="pipe")
        try:
            with pytest.raises(ValueError, match="transport"):
                ChannelEngine(
                    directed_graph,
                    object,
                    num_workers=2,
                    executor="process",
                    transport="shm",
                    pool=pool,
                )
        finally:
            pool.shutdown()

    def test_second_run_is_noop_like_sim(self, directed_graph):
        # the persistent pool keeps worker state alive between runs, so a
        # second run() matches the simulator's semantics exactly: every
        # vertex is halted, zero supersteps execute, results repeat —
        # and no new worker processes are spawned
        from repro.algorithms.wcc import WCCBasicBulk

        sim = ChannelEngine(directed_graph, WCCBasicBulk, num_workers=2)
        sim_first = sim.run()
        sim_second = sim.run()

        engine = ChannelEngine(
            directed_graph, WCCBasicBulk, num_workers=2, executor="process"
        )
        first = engine.run()
        spawned = engine.backend.pool.spawn_count
        second = engine.run()
        assert engine.backend.pool.spawn_count == spawned == 2
        assert first.data == sim_first.data
        assert second.data == sim_second.data
        assert (
            second.metrics.supersteps
            == first.metrics.supersteps
            == sim_second.metrics.supersteps
        )

    def test_process_checkpointing_counts_like_sim(self, directed_graph):
        # fault tolerance is no longer sim-only: a checkpoint-only process
        # run captures worker-side snapshots whose sizes match the sim's
        from repro.algorithms.wcc import WCCBasicBulk

        sim = ChannelEngine(
            directed_graph, WCCBasicBulk, num_workers=2, checkpoint_every=2
        ).run()
        proc = ChannelEngine(
            directed_graph,
            WCCBasicBulk,
            num_workers=2,
            checkpoint_every=2,
            executor="process",
        ).run()
        assert proc.data == sim.data
        assert proc.metrics.num_checkpoints == sim.metrics.num_checkpoints
        assert proc.metrics.checkpoint_bytes == sim.metrics.checkpoint_bytes

    def test_max_supersteps_guard(self):
        from helpers import line_graph

        class Forever(VertexProgram):
            def compute(self, v):
                pass  # never halts

        engine = ChannelEngine(
            line_graph(6), Forever, num_workers=2, executor="process"
        )
        with pytest.raises(RuntimeError, match="max_supersteps"):
            engine.run(max_supersteps=3)


class _DieAtSuperstep2(VertexProgram):
    """Worker 1's process exits hard at superstep 2 — an OOM-kill/segfault
    stand-in.  Everyone keeps one ScatterCombine busy so the death happens
    mid-protocol, with peers blocked on its frames."""

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = ScatterCombine(worker, SUM_F64)

    def compute(self, v):
        if self.step_num == 1 and v.out_degree > 0:
            self.msg.add_edges(v, v.edges)
        if self.step_num == 2 and self.worker.worker_id == 1:
            os._exit(3)
        if self.step_num >= 4:
            v.vote_to_halt()
        self.msg.set_message(v, 1.0)


class _RaiseAtSuperstep2(VertexProgram):
    def compute(self, v):
        if self.step_num == 2 and self.worker.worker_id == 1:
            raise ValueError("deliberate child failure")
        if self.step_num >= 4:
            v.vote_to_halt()


class _BombChannel(Channel):
    """Keeps every peer waiting on this worker's frames, then detonates on
    worker 1 during superstep 2's exchange round — while peers are blocked
    mid-exchange, the worst place for a death to go unnoticed."""

    hard = False  # os._exit (crash) vs raise (error with traceback)
    frame_bytes = 64

    def serialize(self):
        if self.worker.step_num == 2 and self.worker.worker_id == 1:
            if self.hard:
                os._exit(7)
            raise ValueError("boom in serialize")
        for peer in range(self.num_workers):
            if peer != self.worker.worker_id:
                self.emit(peer, b"x" * self.frame_bytes)

    def deserialize(self, payloads):
        self.round += 1

    def snapshot(self):
        return {}

    def restore(self, state):
        pass


class _HardBombChannel(_BombChannel):
    hard = True


class _DieInExchange(VertexProgram):
    channel_cls = _BombChannel

    def __init__(self, worker):
        super().__init__(worker)
        self.chan = self.channel_cls(worker)

    def compute(self, v):
        if self.step_num >= 4:
            v.vote_to_halt()


class _CrashInExchange(_DieInExchange):
    channel_cls = _HardBombChannel


class _RingFloodBombChannel(_HardBombChannel):
    """Big enough frames that with a deliberately tiny ring every survivor
    is blocked *inside* ``RingBuffer.write_all`` (full outbound ring, dead
    consumer) at the moment worker 1 exits."""

    frame_bytes = 64 * 1024


class _CrashInRingWrite(_DieInExchange):
    channel_cls = _RingFloodBombChannel


class TestCrashHandling:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_worker_process_death_surfaces_cleanly(self, directed_graph, transport):
        engine = ChannelEngine(
            directed_graph,
            _DieAtSuperstep2,
            num_workers=4,
            executor="process",
            transport=transport,
        )
        with pytest.raises(WorkerProcessError, match=r"worker process 1 died"):
            engine.run()

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_child_exception_carries_traceback(self, directed_graph, transport):
        engine = ChannelEngine(
            directed_graph,
            _RaiseAtSuperstep2,
            num_workers=4,
            executor="process",
            transport=transport,
        )
        with pytest.raises(WorkerProcessError, match="deliberate child failure"):
            engine.run()

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_hard_death_mid_exchange_round_no_hang(self, directed_graph, transport):
        # worker 1 exits inside channel.serialize while its peers block on
        # its frames; supervision must notice the dead process and abort
        # instead of waiting on a reply that can never come
        engine = ChannelEngine(
            directed_graph,
            _CrashInExchange,
            num_workers=4,
            executor="process",
            transport=transport,
        )
        with pytest.raises(
            WorkerProcessError, match=r"worker process 1 died \(exit code 7\)"
        ):
            engine.run()

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_exception_mid_exchange_round_keeps_traceback(
        self, directed_graph, transport
    ):
        # the dying worker ships its traceback and exits before the parent
        # gets around to reading it; the supervisor must scavenge the
        # buffered error so the cause isn't flattened to "died (exit 0)"
        engine = ChannelEngine(
            directed_graph,
            _DieInExchange,
            num_workers=4,
            executor="process",
            transport=transport,
        )
        with pytest.raises(WorkerProcessError, match="boom in serialize"):
            engine.run()

    def test_hard_death_with_peers_blocked_in_ring_write(self, directed_graph):
        # the shm-specific worst case: each survivor's 64 KiB frames are
        # 64x the 1 KiB rings, so when worker 1 exits its peers are parked
        # inside RingBuffer.write_all with full outbound rings and a
        # consumer that will never drain them.  Workers carry no liveness
        # checks — the parent must notice the death on the control pipes,
        # raise, and terminate the blocked children at shutdown.
        from repro.runtime.parallel import WorkerPool

        pool = WorkerPool(4, transport="shm", ring_capacity=1024)
        engine = ChannelEngine(
            directed_graph,
            _CrashInRingWrite,
            num_workers=4,
            executor="process",
            pool=pool,
        )
        try:
            with pytest.raises(
                WorkerProcessError, match=r"worker process 1 died \(exit code 7\)"
            ):
                engine.run()
            assert pool.broken
        finally:
            pool.shutdown()
        assert all(not p.is_alive() for p in pool._state.procs)

    def test_crash_poisons_the_pool(self, directed_graph):
        engine = ChannelEngine(
            directed_graph, _CrashInExchange, num_workers=4, executor="process"
        )
        with pytest.raises(WorkerProcessError):
            engine.run()
        pool = engine.backend.pool
        assert pool.broken and pool.closed
        assert all(not p.is_alive() for p in pool._state.procs)
        with pytest.raises(WorkerProcessError, match="shut down"):
            engine.run()
