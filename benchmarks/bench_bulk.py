"""Scalar-vs-bulk compute-path speedup (BENCH_bulk.json).

Not a pytest-benchmark module: run it directly to measure how much the
columnar ``compute_bulk`` path gains over the per-vertex scalar loop for
every ported algorithm, and to persist the result next to the repo's
other benchmark artifacts::

    PYTHONPATH=src python benchmarks/bench_bulk.py                 # full 100k run
    PYTHONPATH=src python benchmarks/bench_bulk.py --dataset tree  # smoke

Each row also re-asserts the parity contract (same supersteps, message
count, and byte volume in both modes) so a speedup can never come from
silently doing less work.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from _provenance import write_artifact
from repro.bench.runner import bulk_speedup_rows
from repro.bench.tables import render_rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dataset",
        default="bulk-100k",
        help="benchmark graph name (default: the 100k-vertex workload)",
    )
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="hash-partition seed, so reruns measure the same distribution",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_bulk.json",
        help="output JSON path (default: repo-root BENCH_bulk.json)",
    )
    args = parser.parse_args(argv)

    rows = bulk_speedup_rows(
        dataset=args.dataset, num_workers=args.workers, seed=args.seed
    )
    print(
        render_rows(
            rows,
            title=f"scalar vs bulk compute ({args.dataset}, {args.workers} workers)",
            cols=list(rows[0]),
        )
    )

    write_artifact(
        args.out, rows, dataset=args.dataset, workers=args.workers, seed=args.seed
    )

    broken = [r["algorithm"] for r in rows if not r["traffic_identical"]]
    if broken:
        print(f"PARITY VIOLATION in: {', '.join(broken)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
