"""Min-Label SCC: channel variants and the Pregel+ baseline vs networkx."""

import numpy as np
import pytest

from repro.algorithms.scc import run_scc
from repro.graph import rmat
from repro.graph.graph import Graph
from repro.pregel_algorithms.scc import run_scc_pregel
from helpers import nx_scc


def ring(n: int, offset: int = 0) -> list[tuple[int, int]]:
    return [(offset + i, offset + (i + 1) % n) for i in range(n)]


@pytest.fixture(scope="module")
def web():
    return rmat(8, edge_factor=3, seed=11, directed=True)


RUNNERS = [
    ("channel-basic", lambda g, **kw: run_scc(g, variant="basic", **kw)),
    ("channel-prop", lambda g, **kw: run_scc(g, variant="prop", **kw)),
    ("pregel", run_scc_pregel),
]


@pytest.mark.parametrize("name,runner", RUNNERS, ids=[r[0] for r in RUNNERS])
class TestCorrectness:
    def test_power_law(self, web, name, runner):
        labels, _ = runner(web, num_workers=4)
        np.testing.assert_array_equal(labels, nx_scc(web))

    def test_single_ring(self, name, runner):
        g = Graph.from_edges(6, ring(6), directed=True)
        labels, _ = runner(g, num_workers=2)
        assert np.all(labels == 0)

    def test_two_rings_bridged(self, name, runner):
        # ring {0..3}, ring {4..7}, one bridge 3->4 (not strongly connecting)
        edges = ring(4) + ring(4, offset=4) + [(3, 4)]
        g = Graph.from_edges(8, edges, directed=True)
        labels, _ = runner(g, num_workers=3)
        assert labels.tolist() == [0, 0, 0, 0, 4, 4, 4, 4]

    def test_dag_all_trivial(self, name, runner):
        # a DAG: every vertex is its own SCC
        edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
        g = Graph.from_edges(4, edges, directed=True)
        labels, _ = runner(g, num_workers=2)
        assert labels.tolist() == [0, 1, 2, 3]

    def test_chain_of_rings(self, name, runner):
        # three rings connected in a line: trimming alone cannot finish
        edges = ring(3) + ring(3, 3) + ring(3, 6) + [(0, 3), (3, 6)]
        g = Graph.from_edges(9, edges, directed=True)
        labels, _ = runner(g, num_workers=3)
        np.testing.assert_array_equal(labels, nx_scc(g))

    def test_isolated_vertices(self, name, runner):
        g = Graph.from_edges(3, [(0, 1)], directed=True)
        labels, _ = runner(g, num_workers=2)
        assert labels.tolist() == [0, 1, 2]

    def test_self_loop(self, name, runner):
        g = Graph.from_edges(2, [(0, 0), (0, 1)], directed=True)
        labels, _ = runner(g, num_workers=1)
        assert labels.tolist() == [0, 1]


class TestBehaviour:
    def test_rejects_undirected(self):
        g = Graph.from_edges(2, [(0, 1)], directed=False)
        with pytest.raises(ValueError):
            run_scc(g)

    def test_prop_converges_in_fewer_supersteps(self):
        # one big ring: basic needs O(n) label-propagation supersteps
        g = Graph.from_edges(48, ring(48), directed=True)
        _, rb = run_scc(g, variant="basic", num_workers=4)
        _, rp = run_scc(g, variant="prop", num_workers=4)
        assert rp.supersteps < rb.supersteps / 3

    def test_channel_uses_fewer_bytes_than_pregel(self, web):
        """Table IV SCC row: per-channel types roughly halve traffic."""
        part = np.arange(web.num_vertices) % 4
        _, rc = run_scc(web, variant="basic", num_workers=4, partition=part)
        _, rp = run_scc_pregel(web, num_workers=4, partition=part)
        assert rc.metrics.total_net_bytes < 0.8 * rp.metrics.total_net_bytes

    def test_labels_form_valid_partition(self, web):
        labels, _ = run_scc(web, variant="basic", num_workers=4)
        # every label is the minimum member of its class
        for lbl in np.unique(labels):
            members = np.flatnonzero(labels == lbl)
            assert members.min() == lbl
