"""Table VII: the Min-Label SCC algorithm with a propagation channel for
the forward/backward label phases.

Programs: Pregel+ basic, channel basic, channel + Propagation — raw and
partitioned input.
Shape targets: the propagation version cuts both supersteps and bytes
(paper: 2x raw, ~4x partitioned); "this optimization is not possible in
any of the existing systems".
"""

import pytest


@pytest.mark.parametrize("partitioned", [False, True], ids=["raw", "metis"])
@pytest.mark.parametrize("program", ["pregel-basic", "channel-basic", "channel-prop"])
def test_table7_scc(cell, program, partitioned):
    row = cell("scc", program, "wikipedia", partitioned=partitioned)
    assert row["supersteps"] >= 3
