"""Unit tests for the standard channels: DirectMessage, CombinedMessage,
Aggregator (Table I)."""

import numpy as np
import pytest

from repro.core import (
    Aggregator,
    ChannelEngine,
    CombinedMessage,
    DirectMessage,
    MAX_F64,
    MIN_I64,
    SUM_F64,
    SUM_I64,
    VertexProgram,
)
from repro.graph.graph import Graph
from repro.runtime.serialization import INT32, INT64, pair_codec
from helpers import line_graph, two_triangles


def run(graph, program_cls, workers=2, **kw):
    return ChannelEngine(graph, program_cls, num_workers=workers, **kw).run()


class TestDirectMessage:
    def test_delivery_and_iteration(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.msg = DirectMessage(worker, value_codec=INT64)
                self.got = {}

            def compute(self, v):
                if self.step_num == 1:
                    # everyone sends its id to vertex 0, twice
                    self.msg.send_message(0, v.id)
                    self.msg.send_message(0, v.id * 10)
                else:
                    self.got[v.id] = sorted(self.msg.get_iterator(v).tolist())
                v.vote_to_halt()

            def finalize(self):
                return self.got

        g = line_graph(4)
        res = run(g, P, workers=2)
        assert res.data[0] == sorted(
            [0, 0, 1, 10, 2, 20, 3, 30]
        )

    def test_has_messages(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.msg = DirectMessage(worker)
                self.flags = {}

            def compute(self, v):
                if self.step_num == 1:
                    if v.id == 0:
                        self.msg.send_message(1, 7)
                else:
                    self.flags[v.id] = self.msg.has_messages(v)
                v.vote_to_halt()

            def finalize(self):
                return self.flags

        res = run(line_graph(3), P)
        assert res.data[1] is True
        assert 2 not in res.data or res.data[2] is False  # 2 was never woken

    def test_messages_live_one_superstep(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.msg = DirectMessage(worker)
                self.counts = []

            def compute(self, v):
                if self.step_num == 1 and v.id == 0:
                    self.msg.send_message(1, 5)
                if v.id == 1:
                    self.counts.append(self.msg.get_iterator(v).size)
                if self.step_num < 3:
                    pass
                else:
                    v.vote_to_halt()

            def finalize(self):
                return {"counts": self.counts} if self.counts else {}

        res = run(line_graph(3), P, workers=1)
        # step1: nothing yet; step2: one message; step3: drained
        assert res.data["counts"] == [0, 1, 0]

    def test_bulk_send_matches_scalar(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.msg = DirectMessage(worker, value_codec=INT32)
                self.got = {}

            def compute(self, v):
                if self.step_num == 1:
                    if v.id == 0:
                        self.msg.send_message_bulk(
                            np.array([1, 2, 1]), np.array([5, 6, 7])
                        )
                else:
                    self.got[v.id] = sorted(self.msg.get_iterator(v).tolist())
                v.vote_to_halt()

            def finalize(self):
                return self.got

        res = run(line_graph(3), P)
        assert res.data[1] == [5, 7]
        assert res.data[2] == [6]

    def test_structured_codec_payload(self):
        pc = pair_codec(INT32, INT32)

        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.msg = DirectMessage(worker, value_codec=pc)
                self.got = {}

            def compute(self, v):
                if self.step_num == 1 and v.id == 0:
                    self.msg.send_message(1, (3, 9))
                elif self.step_num == 2 and v.id == 1:
                    rec = self.msg.get_iterator(v)[0]
                    self.got[1] = (int(rec["a"]), int(rec["b"]))
                v.vote_to_halt()

            def finalize(self):
                return self.got

        res = run(line_graph(2), P)
        assert res.data[1] == (3, 9)


class TestCombinedMessage:
    def _sum_program(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.msg = CombinedMessage(worker, SUM_I64)
                self.got = {}

            def compute(self, v):
                if self.step_num == 1:
                    self.msg.send_message(0, v.id + 1)
                else:
                    self.got[v.id] = (
                        int(self.msg.get_message(v)),
                        self.msg.has_message(v),
                    )
                v.vote_to_halt()

            def finalize(self):
                return self.got

        return P

    def test_receiver_side_combining(self):
        res = run(line_graph(4), self._sum_program(), workers=2)
        assert res.data[0] == (1 + 2 + 3 + 4, True)

    def test_identity_when_no_message(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.msg = CombinedMessage(worker, MIN_I64)
                self.got = {}

            def compute(self, v):
                if self.step_num == 2:
                    self.got[v.id] = (
                        int(self.msg.get_message(v)),
                        self.msg.has_message(v),
                    )
                    v.vote_to_halt()
                # step 1: send nothing, stay active

            def finalize(self):
                return self.got

        res = run(line_graph(3), P)
        assert all(val == (MIN_I64.identity, False) for val in res.data.values())

    def test_wire_bytes_match_direct_message(self):
        """CombinedMessage must not change wire sizes (the Table IV
        'identical message size' rows): one (dst,value) record per send."""

        def bytes_of(channel_cls, combiner):
            class P(VertexProgram):
                def __init__(self, worker):
                    super().__init__(worker)
                    if combiner is None:
                        self.msg = channel_cls(worker, value_codec=INT64)
                    else:
                        self.msg = channel_cls(worker, combiner)

                def compute(self, v):
                    if self.step_num == 1:
                        for e in v.edges:
                            self.msg.send_message(int(e), 7)
                    v.vote_to_halt()

            g = two_triangles()
            part = np.array([0, 1, 0, 1, 0, 1])
            res = ChannelEngine(g, P, num_workers=2, partition=part).run()
            return res.metrics.total_net_bytes

        assert bytes_of(DirectMessage, None) == bytes_of(CombinedMessage, SUM_I64)

    def test_min_combining(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.msg = CombinedMessage(worker, MIN_I64)
                self.got = {}

            def compute(self, v):
                if self.step_num == 1:
                    self.msg.send_message(0, 100 - v.id)
                else:
                    self.got[v.id] = int(self.msg.get_message(v))
                v.vote_to_halt()

            def finalize(self):
                return self.got

        res = run(line_graph(5), P)
        assert res.data[0] == 96  # min(100, 99, 98, 97, 96)


class TestAggregator:
    def test_global_sum_visible_next_superstep(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.agg = Aggregator(worker, SUM_F64)
                self.got = {}

            def compute(self, v):
                if self.step_num == 1:
                    self.agg.add(1.5)
                else:
                    self.got[v.id] = float(self.agg.result())
                    v.vote_to_halt()

            def finalize(self):
                return self.got

        g = line_graph(6)
        res = run(g, P, workers=3)
        assert all(val == pytest.approx(9.0) for val in res.data.values())

    def test_result_is_identity_before_any_add(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.agg = Aggregator(worker, MAX_F64)
                self.first = {}

            def compute(self, v):
                if self.step_num == 1:
                    self.first[v.id] = self.agg.result()
                v.vote_to_halt()

            def finalize(self):
                return self.first

        res = run(line_graph(3), P)
        assert all(val == MAX_F64.identity for val in res.data.values())

    def test_aggregation_resets_every_superstep(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.agg = Aggregator(worker, SUM_I64)
                self.seen = []

            def compute(self, v):
                if v.id == 0:
                    self.seen.append(int(self.agg.result()))
                if self.step_num == 1:
                    self.agg.add(2)  # only contributed in step 1
                if self.step_num >= 3:
                    v.vote_to_halt()

            def finalize(self):
                return {"seen": self.seen} if self.seen else {}

        res = run(line_graph(4), P, workers=2)
        # step1 result: identity; step2: sum of step1 adds; step3: reset to 0
        assert res.data["seen"] == [0, 8, 0]

    def test_costs_two_exchange_rounds(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.agg = Aggregator(worker, SUM_I64)

            def compute(self, v):
                self.agg.add(1)
                v.vote_to_halt()

        res = run(line_graph(4), P)
        assert res.metrics.records[0].rounds == 2

    def test_works_with_single_worker(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.agg = Aggregator(worker, SUM_I64)
                self.out = {}

            def compute(self, v):
                if self.step_num == 1:
                    self.agg.add(3)
                else:
                    self.out[v.id] = int(self.agg.result())
                    v.vote_to_halt()

            def finalize(self):
                return self.out

        res = run(line_graph(2), P, workers=1)
        assert res.data[0] == 6


class TestMessageFuzz:
    """Property: arbitrary message batches survive the full wire trip
    identically on one worker and on many."""

    from hypothesis import given, settings, strategies as st

    @settings(max_examples=25, deadline=None)
    @given(
        sends=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=-(2**31), max_value=2**31 - 1),
            ),
            max_size=40,
        ),
        workers=st.integers(min_value=1, max_value=4),
    )
    def test_direct_message_delivery_fuzz(self, sends, workers):
        from repro.runtime.serialization import INT32

        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.msg = DirectMessage(worker, value_codec=INT32)
                self.got = {}

            def compute(self, v):
                if self.step_num == 1:
                    if v.id == 0:
                        for dst, val in sends:
                            self.msg.send_message(dst, val)
                else:
                    self.got[v.id] = sorted(self.msg.get_iterator(v).tolist())
                v.vote_to_halt()

            def finalize(self):
                return self.got

        expected = {}
        for dst, val in sends:
            expected.setdefault(dst, []).append(val)
        expected = {k: sorted(v) for k, v in expected.items()}

        res = ChannelEngine(line_graph(10), P, num_workers=workers).run()
        got = {k: v for k, v in res.data.items() if v}
        assert got == expected
