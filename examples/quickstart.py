"""Quickstart: PageRank over channels, and the one-line optimization.

This is the paper's Fig. 1 walk-through: write PageRank with a
CombinedMessage channel plus an Aggregator, then swap the message channel
for a ScatterCombine (Section III-B) and watch the traffic drop.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Aggregator,
    ChannelEngine,
    CombinedMessage,
    ScatterCombine,
    SUM_F64,
    VertexProgram,
)
from repro.graph import rmat


class PageRank(VertexProgram):
    """The Fig. 1 program: rank shares over `msg`, dead-end mass over
    `agg`."""

    ITERATIONS = 30

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = CombinedMessage(worker, SUM_F64)  # <- the one line to change
        self.agg = Aggregator(worker, SUM_F64)
        self.rank = np.zeros(worker.num_local)

    def compute(self, v):
        n = self.num_vertices
        if self.step_num == 1:
            self.rank[v.local] = 1.0 / n
        else:
            sink = self.agg.result() / n
            self.rank[v.local] = 0.15 / n + 0.85 * (self.msg.get_message(v) + sink)
        if self.step_num <= self.ITERATIONS:
            if v.out_degree > 0:
                share = self.rank[v.local] / v.out_degree
                for e in v.edges:
                    self.msg.send_message(int(e), share)
            else:
                self.agg.add(self.rank[v.local])
        else:
            v.vote_to_halt()

    def finalize(self):
        return {int(g): self.rank[i] for i, g in enumerate(self.worker.local_ids)}


class PageRankScatter(PageRank):
    """The optimized version: a ScatterCombine channel for the static
    messaging pattern.  Only the channel construction and the send path
    change — five lines, as the paper says."""

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = ScatterCombine(worker, SUM_F64)

    def compute(self, v):
        if self.step_num == 1 and v.out_degree > 0:
            self.msg.add_edges(v, v.edges)  # register the static edges once
        n = self.num_vertices
        if self.step_num == 1:
            self.rank[v.local] = 1.0 / n
        else:
            sink = self.agg.result() / n
            self.rank[v.local] = 0.15 / n + 0.85 * (self.msg.get_message(v) + sink)
        if self.step_num <= self.ITERATIONS:
            if v.out_degree > 0:
                self.msg.set_message(v, self.rank[v.local] / v.out_degree)
            else:
                self.agg.add(self.rank[v.local])
        else:
            v.vote_to_halt()


def main():
    graph = rmat(12, edge_factor=8, seed=7)
    print(f"input: {graph}")

    results = {}
    for name, program in [("basic", PageRank), ("scatter-combine", PageRankScatter)]:
        result = ChannelEngine(graph, program, num_workers=8).run()
        m = result.metrics
        results[name] = result
        print(
            f"{name:16s}  simulated time {m.simulated_time:7.3f}s   "
            f"network {m.total_net_bytes / 1e6:7.2f} MB   "
            f"supersteps {m.supersteps}"
        )

    # identical ranks either way
    basic = results["basic"].data
    scatter = results["scatter-combine"].data
    worst = max(abs(basic[v] - scatter[v]) for v in basic)
    print(f"max |rank difference| between variants: {worst:.2e}")

    top = sorted(basic.items(), key=lambda kv: -kv[1])[:5]
    print("top-5 vertices:", ", ".join(f"{v} ({r:.5f})" for v, r in top))


if __name__ == "__main__":
    main()
