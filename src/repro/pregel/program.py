"""Pregel+ program and vertex API.

The programming model mirrors Pregel: ``compute(v, messages)`` is called
on every active vertex with the messages delivered to it, and the vertex
handle exposes ``send_message``/``broadcast``/``request``/``get_resp``
plus ``vote_to_halt``.  Unlike the channel system, all traffic shares one
message type (``message_codec``) and at most one global combiner.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.combiner import Combiner
from repro.runtime.serialization import Codec, INT64

if TYPE_CHECKING:  # pragma: no cover
    from repro.pregel.system import _PregelWorker

__all__ = ["PregelProgram", "PregelVertex"]


class PregelVertex:
    """Flyweight vertex handle for Pregel+ programs."""

    __slots__ = ("_worker", "id", "local")

    def __init__(self, worker: "_PregelWorker") -> None:
        self._worker = worker
        self.id = -1
        self.local = -1

    def _bind(self, local_idx: int) -> "PregelVertex":
        self.local = local_idx
        self.id = int(self._worker.local_ids[local_idx])
        return self

    # -- adjacency -------------------------------------------------------
    @property
    def out_degree(self) -> int:
        return self._worker.graph.out_degree(self.id)

    @property
    def edges(self) -> np.ndarray:
        return self._worker.graph.neighbors(self.id)

    @property
    def edge_weights(self) -> np.ndarray:
        return self._worker.graph.edge_weights(self.id)

    # -- communication ------------------------------------------------------
    def send_message(self, dst: int, value) -> None:
        self._worker.send_message(dst, value)

    def broadcast(self, value) -> None:
        """Send ``value`` to every out-neighbor (the pattern the ghost
        mode's mirroring optimizes)."""
        self._worker.broadcast(self.id, value)

    def request(self, dst: int) -> None:
        """reqresp mode: ask for ``dst``'s respond value (next superstep)."""
        self._worker.add_request(dst)

    def get_resp(self, dst: int):
        """reqresp mode: the value requested from ``dst`` last superstep."""
        return self._worker.get_resp(dst)

    # -- control ----------------------------------------------------------
    def vote_to_halt(self) -> None:
        self._worker.halt(self.local)

    @property
    def step_num(self) -> int:
        return self._worker.step_num


class PregelProgram:
    """Base class for Pregel+ vertex programs.

    Class attributes configure the monolithic message layer:

    ``message_codec``
        The single wire codec shared by *all* messages in the program.
    ``combiner``
        Optional global combiner; legal only if every message in the
        program admits it (this is Pregel's rule the paper criticizes).
    ``aggregator_combiner``
        Optional combiner enabling the global aggregator.
    ``respond_value``
        reqresp mode: ``(program, local_idx) -> value``, the attribute
        served to requesters.
    """

    message_codec: Codec = INT64
    combiner: Combiner | None = None
    aggregator_combiner: Combiner | None = None

    def __init__(self, worker: "_PregelWorker") -> None:
        self.worker = worker

    def compute(self, v: PregelVertex, messages) -> None:
        """``messages`` is the combined value (with a global combiner) or a
        list of values (without); ``None``/empty when nothing arrived."""
        raise NotImplementedError

    def before_superstep(self) -> None:
        """Per-worker hook before every superstep (same contract as the
        channel system's :meth:`VertexProgram.before_superstep`)."""

    def respond_value(self, local_idx: int):  # pragma: no cover - overridden
        raise NotImplementedError("reqresp mode needs respond_value()")

    def finalize(self) -> dict:
        return {}

    # -- context ------------------------------------------------------------
    @property
    def step_num(self) -> int:
        return self.worker.step_num

    @property
    def num_vertices(self) -> int:
        return self.worker.graph.num_vertices

    # -- aggregator -----------------------------------------------------------
    def aggregate(self, value) -> None:
        self.worker.aggregate(value)

    @property
    def agg_result(self):
        """Aggregate of last superstep's contributions (None in step 1)."""
        return self.worker.agg_result
