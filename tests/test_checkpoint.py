"""Unit tests for the snapshot layer: the state codec, program
state_dict defaults, channel snapshot/restore, and checkpoint capture."""

import numpy as np
import pytest

from repro.core import ChannelEngine, SUM_F64, VertexProgram
from repro.core.channels.combined import CombinedMessage
from repro.runtime.checkpoint import (
    SNAPSHOT_VERSION,
    capture_snapshot,
    decode_state,
    encode_state,
)
from repro.runtime.serialization import INT64, pair_codec
from helpers import line_graph


class TestStateCodec:
    def test_round_trip_everything(self):
        state = {
            "none": None,
            "flag": True,
            "count": -17,
            "ratio": 0.25,
            "name": "wörker",
            "blob": b"\x00\xffraw",
            "arr_f": np.linspace(0, 1, 7),
            "arr_2d": np.arange(12, dtype=np.int32).reshape(3, 4),
            "arr_empty": np.empty(0, dtype=np.float32),
            "arr_bool": np.array([True, False, True]),
            "a_list": [1, "two", np.arange(3)],
            "a_tuple": (1.5, None),
            "nested": {"inner": {"deep": np.ones(2)}, 42: "int-keyed"},
        }
        out = decode_state(encode_state(state))
        assert set(out) == set(state)
        assert out["none"] is None
        assert out["flag"] is True and isinstance(out["flag"], bool)
        assert out["count"] == -17
        assert out["ratio"] == 0.25
        assert out["name"] == "wörker"
        assert out["blob"] == b"\x00\xffraw"
        np.testing.assert_array_equal(out["arr_f"], state["arr_f"])
        assert out["arr_f"].dtype == np.float64
        np.testing.assert_array_equal(out["arr_2d"], state["arr_2d"])
        assert out["arr_2d"].shape == (3, 4)
        assert out["arr_empty"].size == 0 and out["arr_empty"].dtype == np.float32
        assert out["arr_bool"].dtype == bool
        assert out["a_list"][1] == "two"
        np.testing.assert_array_equal(out["a_list"][2], np.arange(3))
        assert out["a_tuple"] == (1.5, None)
        np.testing.assert_array_equal(out["nested"]["inner"]["deep"], np.ones(2))
        assert out["nested"][42] == "int-keyed"

    def test_structured_dtype_round_trip(self):
        codec = pair_codec(INT64, INT64)
        arr = np.zeros(3, dtype=codec.dtype)
        arr["a"] = [1, 2, 3]
        arr["b"] = [-1, -2, -3]
        out = decode_state(encode_state({"pairs": arr}))["pairs"]
        assert out.dtype == codec.dtype
        np.testing.assert_array_equal(out["a"], arr["a"])
        np.testing.assert_array_equal(out["b"], arr["b"])

    def test_decoded_arrays_are_writable(self):
        out = decode_state(encode_state({"x": np.arange(4)}))
        out["x"][0] = 99  # must not raise (no read-only frombuffer views)

    def test_rejects_unknown_version(self):
        blob = bytearray(encode_state({"x": 1}))
        blob[:8] = (SNAPSHOT_VERSION + 1).to_bytes(8, "little")
        with pytest.raises(ValueError, match="version"):
            decode_state(bytes(blob))

    def test_rejects_unencodable_value(self):
        with pytest.raises(TypeError, match="cannot checkpoint"):
            encode_state({"fn": lambda: None})

    def test_byte_counts_are_real(self):
        small = len(encode_state({"x": np.zeros(10)}))
        large = len(encode_state({"x": np.zeros(1000)}))
        assert large - small == 990 * 8  # payload grows by exactly the data


class _Prog(VertexProgram):
    def __init__(self, worker):
        super().__init__(worker)
        self.msg = CombinedMessage(worker, SUM_F64)
        self.rank = np.zeros(worker.num_local)
        self.phase = "init"
        self.iters = 3

    def compute(self, v):
        v.vote_to_halt()


class _BadProg(_Prog):
    def __init__(self, worker):
        super().__init__(worker)
        self.oracle = object()  # not checkpointable


class TestProgramStateDict:
    def _worker(self, program_cls=_Prog):
        engine = ChannelEngine(line_graph(6), program_cls, num_workers=2)
        return engine.workers[0]

    def test_generic_capture_skips_worker_and_channels(self):
        state = self._worker().program.state_dict()
        assert set(state) == {"rank", "phase", "iters"}

    def test_load_restores_arrays_in_place(self):
        prog = self._worker().program
        alias = prog.rank
        state = prog.state_dict()
        prog.rank[:] = 7.0
        prog.phase = "late"
        prog.load_state_dict(state)
        assert prog.rank is alias  # aliasing closures keep working
        assert np.all(prog.rank == 0.0)
        assert prog.phase == "init"

    def test_state_dict_copies(self):
        prog = self._worker().program
        state = prog.state_dict()
        prog.rank[:] = 5.0
        assert np.all(state["rank"] == 0.0)

    def test_uncapturable_attribute_raises(self):
        with pytest.raises(TypeError, match="override state_dict"):
            self._worker(_BadProg).program.state_dict()


class TestCaptureSnapshot:
    def test_snapshot_shape_and_sizes(self):
        engine = ChannelEngine(line_graph(8), _Prog, num_workers=3)
        snap = capture_snapshot(engine)
        assert snap.version == SNAPSHOT_VERSION
        assert snap.superstep == 0
        assert len(snap.blobs) == 3
        assert snap.nbytes == sum(snap.worker_nbytes)
        assert all(n > 0 for n in snap.worker_nbytes)

    def test_channel_snapshot_round_trip(self):
        engine = ChannelEngine(line_graph(8), _Prog, num_workers=2)
        ch = engine.workers[0].program.msg
        ch._slots[:] = 3.5
        ch._has_msg[:] = True
        state = decode_state(encode_state(ch.snapshot()))
        ch._slots[:] = 0.0
        ch._has_msg[:] = False
        ch.restore(state)
        assert np.all(ch._slots == 3.5)
        assert np.all(ch._has_msg)
