"""The Palgol-lite → channel-program compiler.

Compilation has three parts:

1. **Pattern analysis** — walk the body and collect every
   :class:`NeighborReduce`, :class:`RemoteRead`, and
   :class:`RemoteUpdate`.  Communication expressions are *hoisted*: they
   are issued unconditionally at the start of each round (exactly like
   the hand-written S-V, where every vertex requests its grandparent
   every round even though only one branch uses it).
2. **Channel selection** — each pattern gets a channel.  With
   ``optimize=True`` the compiler makes the Section III-C choices
   (ScatterCombine / RequestRespond); with ``optimize=False`` it emits
   standard channels only, which costs an extra reply superstep per
   round when remote reads are present.
3. **Phase scheduling** — a round becomes 2–4 supersteps:
   ``send`` (issue reads + scatter reduces) → [``reply``, basic mode
   only] → ``body`` (evaluate statements) → [``apply``, only when remote
   updates exist].  Fixpoint iteration counts field changes through an
   Aggregator; fixed iteration just runs N rounds.

Restrictions (checked at compile time): communication expressions may
not appear inside other communication expressions, and their operands
may only read the *current vertex's* own state (no ``Let`` variables).
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    Aggregator,
    ChannelEngine,
    CombinedMessage,
    DirectMessage,
    RequestRespond,
    ScatterCombine,
    SUM_I64,
    Vertex,
    VertexProgram,
)
from repro.palgol.ast import (
    Add,
    Assign,
    Const,
    Deg,
    Div,
    Eq,
    Expr,
    Field,
    FirstNeighbor,
    If,
    Let,
    Lt,
    Mul,
    NeighborReduce,
    NumVertices,
    PalgolSpec,
    RemoteRead,
    RemoteUpdate,
    Stmt,
    Sub,
    Var,
    VertexId,
)
from repro.runtime.serialization import Codec, INT32, INT64

__all__ = ["compile_palgol", "run_palgol", "CompileError"]


class CompileError(ValueError):
    """A spec violates the Palgol-lite restrictions."""


# -- analysis ---------------------------------------------------------------
def _walk_expr(expr: Expr):
    yield expr
    for child in expr.children():
        yield from _walk_expr(child)


def _walk_stmts(stmts):
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from _walk_stmts(stmt.then)
            yield from _walk_stmts(stmt.els)


def _stmt_exprs(stmt: Stmt):
    if isinstance(stmt, Let):
        yield stmt.value
    elif isinstance(stmt, Assign):
        yield stmt.value
    elif isinstance(stmt, If):
        yield stmt.cond
    elif isinstance(stmt, RemoteUpdate):
        yield stmt.at
        yield stmt.value


def _check_sender_local(expr: Expr, what: str) -> None:
    for node in _walk_expr(expr):
        if isinstance(node, (NeighborReduce, RemoteRead)):
            raise CompileError(f"{what} may not nest communication expressions")
        if isinstance(node, Var):
            raise CompileError(
                f"{what} may only read the vertex's own state, not Let variables"
            )


class _Analysis:
    def __init__(self, spec: PalgolSpec):
        self.reduces: list[NeighborReduce] = []
        self.reads: list[RemoteRead] = []
        self.updates: list[RemoteUpdate] = []
        seen: dict[int, int] = {}
        for stmt in _walk_stmts(spec.body):
            if isinstance(stmt, RemoteUpdate):
                if stmt not in self.updates:
                    self.updates.append(stmt)
                _check_sender_local(stmt.at, "RemoteUpdate.at")
            for expr in _stmt_exprs(stmt):
                for node in _walk_expr(expr):
                    if isinstance(node, NeighborReduce):
                        if id(node) not in seen:
                            seen[id(node)] = len(self.reduces)
                            self.reduces.append(node)
                            _check_sender_local(node.value, "NeighborReduce.value")
                    elif isinstance(node, RemoteRead):
                        if id(node) not in seen:
                            seen[id(node)] = len(self.reads)
                            self.reads.append(node)
                            _check_sender_local(node.at, "RemoteRead.at")
                            if node.field not in spec.fields:
                                raise CompileError(
                                    f"RemoteRead of unknown field {node.field!r}"
                                )
        for stmt in _walk_stmts(spec.body):
            if isinstance(stmt, Assign) and stmt.field not in spec.fields:
                raise CompileError(f"Assign to unknown field {stmt.field!r}")
        self.index = seen


def compile_palgol(
    spec: PalgolSpec,
    optimize: bool = True,
    codecs: dict[str, Codec] | None = None,
):
    """Compile a spec into a :class:`VertexProgram` subclass.

    ``codecs`` maps field names to wire codecs (default ``int64``), used
    for remote-read responses and the in-memory field arrays.
    """
    analysis = _Analysis(spec)
    codecs = dict(codecs or {})
    for name in spec.fields:
        codecs.setdefault(name, INT64)

    fixpoint = spec.iterate == "fixpoint"
    # phase layout for one round
    phases: list[str] = []
    if analysis.reduces or analysis.reads:
        phases.append("send")
    if analysis.reads and not optimize:
        phases.append("reply")
    phases.append("body")
    if analysis.updates:
        phases.append("apply")
    cycle = len(phases)

    class PalgolProgram(VertexProgram):
        _spec = spec
        _phases = phases

        def __init__(self, worker):
            super().__init__(worker)
            n = worker.num_local
            self.fields = {
                name: np.zeros(n, dtype=codecs[name].dtype) for name in spec.fields
            }
            self._init_done = False
            self.changed = np.zeros(n, dtype=np.int64) if fixpoint else None

            # channels per pattern
            self.reduce_ch = []
            for node in analysis.reduces:
                if optimize:
                    self.reduce_ch.append(ScatterCombine(worker, node.combiner))
                else:
                    self.reduce_ch.append(CombinedMessage(worker, node.combiner))
            # stash for basic mode: reduce results arrive one phase early
            self._reduce_stash = [
                np.zeros(n, dtype=node.combiner.codec.dtype)
                for node in analysis.reduces
            ]
            self.read_ch = []
            self._read_targets = [
                np.zeros(n, dtype=np.int64) for _ in analysis.reads
            ]
            for node in analysis.reads:
                fld = node.field
                if optimize:
                    self.read_ch.append(
                        RequestRespond(
                            worker,
                            respond_fn=lambda v, f=fld: self.fields[f][v.local],
                            codec=codecs[fld],
                            respond_fn_bulk=lambda idx, f=fld: self.fields[f][idx],
                        )
                    )
                else:
                    self.read_ch.append(
                        (
                            DirectMessage(worker, value_codec=INT32),  # requests
                            DirectMessage(worker, value_codec=codecs[fld]),  # replies
                        )
                    )
            self._read_results = [
                np.zeros(n, dtype=codecs[node.field].dtype) for node in analysis.reads
            ]
            self.update_ch = [
                CombinedMessage(worker, node.combiner) for node in analysis.updates
            ]
            self.agg = Aggregator(worker, SUM_I64) if fixpoint else None

        # -- expression evaluation ---------------------------------------
        def _eval(self, expr, v: Vertex, env: dict):
            if isinstance(expr, Const):
                return expr.value
            if isinstance(expr, Var):
                return env[expr.name]
            if isinstance(expr, Field):
                return self.fields[expr.name][v.local]
            if isinstance(expr, VertexId):
                return v.id
            if isinstance(expr, Deg):
                return v.out_degree
            if isinstance(expr, FirstNeighbor):
                nb = v.edges
                return int(nb[0]) if nb.size else v.id
            if isinstance(expr, NumVertices):
                return self.num_vertices
            if isinstance(expr, Add):
                return self._eval(expr.left, v, env) + self._eval(expr.right, v, env)
            if isinstance(expr, Sub):
                return self._eval(expr.left, v, env) - self._eval(expr.right, v, env)
            if isinstance(expr, Mul):
                return self._eval(expr.left, v, env) * self._eval(expr.right, v, env)
            if isinstance(expr, Div):
                return self._eval(expr.left, v, env) / self._eval(expr.right, v, env)
            if isinstance(expr, Eq):
                return self._eval(expr.left, v, env) == self._eval(expr.right, v, env)
            if isinstance(expr, Lt):
                return self._eval(expr.left, v, env) < self._eval(expr.right, v, env)
            if isinstance(expr, NeighborReduce):
                k = analysis.index[id(expr)]
                if optimize or not analysis.reads:
                    return self.reduce_ch[k].get_message(v)
                return self._reduce_stash[k][v.local]
            if isinstance(expr, RemoteRead):
                return self._read_results[analysis.index[id(expr)]][v.local]
            raise CompileError(f"cannot evaluate {type(expr).__name__}")

        # -- statement execution ------------------------------------------
        def _exec(self, stmts, v: Vertex, env: dict) -> None:
            i = v.local
            for stmt in stmts:
                if isinstance(stmt, Let):
                    env[stmt.name] = self._eval(stmt.value, v, env)
                elif isinstance(stmt, Assign):
                    new = self._eval(stmt.value, v, env)
                    arr = self.fields[stmt.field]
                    if new != arr[i]:
                        arr[i] = new
                        if self.changed is not None:
                            self.changed[i] += 1
                elif isinstance(stmt, If):
                    if self._eval(stmt.cond, v, env):
                        self._exec(stmt.then, v, env)
                    else:
                        self._exec(stmt.els, v, env)
                elif isinstance(stmt, RemoteUpdate):
                    k = analysis.updates.index(stmt)
                    target = int(self._eval(stmt.at, v, env))
                    value = self._eval(stmt.value, v, env)
                    self.update_ch[k].send_message(target, value)
                else:  # pragma: no cover - defensive
                    raise CompileError(f"unknown statement {type(stmt).__name__}")

        # -- phase bodies -----------------------------------------------------
        def _phase_send(self, v: Vertex) -> None:
            env: dict = {}
            if v.out_degree:  # vertices without edges scatter nothing
                for k, node in enumerate(analysis.reduces):
                    value = self._eval(node.value, v, env)
                    ch = self.reduce_ch[k]
                    if optimize:
                        if self.step_num == 1:
                            ch.add_edges(v, v.edges)
                        ch.set_message(v, value)
                    else:
                        send = ch.send_message
                        for e in v.edges:
                            send(int(e), value)
            for k, node in enumerate(analysis.reads):
                target = int(self._eval(node.at, v, env))
                self._read_targets[k][v.local] = target
                if optimize:
                    self.read_ch[k].add_request(v, target)
                else:
                    self.read_ch[k][0].send_message(target, v.id)

        def _phase_reply(self, v: Vertex) -> None:
            # basic mode: serve read requests; stash reduce arrivals
            for k, node in enumerate(analysis.reads):
                req_ch, rep_ch = self.read_ch[k]
                value = self.fields[node.field][v.local]
                for requester in req_ch.get_iterator(v):
                    rep_ch.send_message(int(requester), value)
            for k in range(len(analysis.reduces)):
                self._reduce_stash[k][v.local] = self.reduce_ch[k].get_message(v)

        def _phase_body(self, v: Vertex) -> None:
            i = v.local
            for k in range(len(analysis.reads)):
                if optimize:
                    target = int(self._read_targets[k][i])
                    self._read_results[k][i] = self.read_ch[k].get_respond(target)
                else:
                    replies = self.read_ch[k][1].get_iterator(v)
                    self._read_results[k][i] = replies[0]
            self._exec(spec.body, v, {})

        def _phase_apply(self, v: Vertex) -> None:
            i = v.local
            delta = 0
            for k, node in enumerate(analysis.updates):
                arr = self.fields[node.field]
                incoming = self.update_ch[k].get_message(v)
                if self.update_ch[k].has_message(v):
                    folded = node.combiner.combine(arr[i], incoming)
                    if folded != arr[i]:
                        arr[i] = folded
                        delta += 1
            if self.changed is not None:
                self.agg.add(int(self.changed[i]) + delta)
                self.changed[i] = 0

        # -- the superstep dispatcher ---------------------------------------------
        def compute(self, v: Vertex) -> None:
            step = self.step_num
            if step == 1:
                # field initialization
                env: dict = {}
                for name, init in spec.fields.items():
                    self.fields[name][v.local] = self._eval(init, v, env)
            phase_idx = (step - 1) % cycle
            phase = phases[phase_idx]
            round_no = (step - 1) // cycle + 1
            if phase_idx == 0:
                # round boundary: decide termination before doing anything
                if fixpoint and round_no > 1 and self.agg.result() == 0:
                    v.vote_to_halt()
                    return
                if not fixpoint and round_no > spec.iterate:
                    v.vote_to_halt()
                    return
            if phase == "send":
                self._phase_send(v)
            elif phase == "reply":
                self._phase_reply(v)
            elif phase == "body":
                self._phase_body(v)
                if not analysis.updates and self.changed is not None:
                    self.agg.add(int(self.changed[v.local]))
                    self.changed[v.local] = 0
            elif phase == "apply":
                self._phase_apply(v)

        def finalize(self) -> dict:
            out: dict = {}
            for i, g in enumerate(self.worker.local_ids):
                out[int(g)] = {
                    name: arr[i].item() for name, arr in self.fields.items()
                }
            return out

    PalgolProgram.__name__ = f"Palgol_{spec.name}"
    PalgolProgram.__qualname__ = PalgolProgram.__name__
    return PalgolProgram


def run_palgol(
    spec: PalgolSpec,
    graph,
    optimize: bool = True,
    codecs: dict[str, Codec] | None = None,
    **engine_kwargs,
):
    """Compile and run a spec; returns ``({field: array}, EngineResult)``."""
    program = compile_palgol(spec, optimize=optimize, codecs=codecs)
    result = ChannelEngine(graph, program, **engine_kwargs).run()
    fields = {
        name: np.zeros(graph.num_vertices, dtype=(codecs or {}).get(name, INT64).dtype)
        for name in spec.fields
    }
    for vid, values in result.data.items():
        for name, val in values.items():
            fields[name][vid] = val
    return fields, result
