"""High-diameter workloads: SSSP and WCC on a road network.

Road networks are where convergence-speed optimizations matter most: the
graph's diameter is huge, so one-hop-per-superstep algorithms crawl.  The
Propagation channel runs each label/distance fixpoint *inside* one
superstep, and a locality-preserving partition (our METIS stand-in)
shrinks its cross-worker traffic further.

Run:  python examples/road_network_sssp.py
"""

from repro.algorithms.sssp import run_sssp
from repro.algorithms.wcc import run_wcc
from repro.graph import grid_road
from repro.graph.partition import hash_partition, metis_like_partition, partition_quality


def main():
    graph = grid_road(150, 120, seed=3)
    print(f"input: {graph} (thinned grid; a USA-road stand-in)\n")

    # -- partitions -----------------------------------------------------
    ph = hash_partition(graph.num_vertices, 8, seed=0)
    pm = metis_like_partition(graph, 8, seed=0)
    qh, qm = partition_quality(graph, ph), partition_quality(graph, pm)
    print(
        f"partition quality (fraction of edges kept worker-local):\n"
        f"  hash       {qh['internal_fraction']:.2%}\n"
        f"  metis-like {qm['internal_fraction']:.2%}\n"
    )

    # -- SSSP: Bellman-Ford channel vs Propagation channel ------------------
    # source: a well-connected vertex (edge thinning may isolate corners)
    source = int(graph.out_degrees.argmax())
    print(f"{'SSSP program':34s} {'sim time':>9s} {'net MB':>8s} {'supersteps':>10s}")
    dist_ref = None
    for name, variant, part in [
        ("basic (one hop per superstep)", "basic", ph),
        ("propagation channel", "prop", ph),
        ("propagation + metis-like", "prop", pm),
    ]:
        dists, result = run_sssp(
            graph, source=source, variant=variant, num_workers=8, partition=part
        )
        if dist_ref is None:
            dist_ref = dists
        assert ((dists == dist_ref) | (dists != dists)).all() or (
            abs(dists - dist_ref) < 1e-9
        ).all()
        m = result.metrics
        print(
            f"{name:34s} {m.simulated_time:9.4f} {m.total_net_bytes / 1e6:8.2f} "
            f"{m.supersteps:10d}"
        )

    reachable = (dist_ref < float("inf")).sum()
    print(f"\nreachable from vertex {source}: {reachable}/{graph.num_vertices} vertices")

    # -- WCC on the same graph ---------------------------------------------
    print(f"\n{'WCC program':34s} {'sim time':>9s} {'net MB':>8s} {'supersteps':>10s}")
    for name, variant, part in [
        ("hash-min, basic channel", "basic", ph),
        ("hash-min, propagation channel", "prop", ph),
        ("propagation + metis-like", "prop", pm),
    ]:
        labels, result = run_wcc(graph, variant=variant, num_workers=8, partition=part)
        m = result.metrics
        print(
            f"{name:34s} {m.simulated_time:9.4f} {m.total_net_bytes / 1e6:8.2f} "
            f"{m.supersteps:10d}"
        )
    print(f"\ncomponents: {len(set(labels.tolist()))}")


if __name__ == "__main__":
    main()
