"""Tests for the graph analysis utilities."""

import numpy as np
import pytest

from repro.graph import chain, complete, grid_road, rmat, star
from repro.graph.analysis import (
    clustering_coefficient,
    degree_histogram,
    degree_skew,
    estimate_diameter,
    graph_summary,
)
from repro.graph.graph import Graph
from helpers import line_graph, two_triangles


class TestDegreeStats:
    def test_histogram_star(self):
        g = star(10)
        degrees, counts = degree_histogram(g)
        assert dict(zip(degrees.tolist(), counts.tolist())) == {1: 9, 9: 1}

    def test_histogram_sums_to_n(self):
        g = rmat(7, edge_factor=3, seed=0)
        _, counts = degree_histogram(g)
        # every vertex lands in exactly one degree bucket (including 0)
        assert counts.sum() == g.num_vertices

    def test_skew_star_vs_line(self):
        assert degree_skew(star(50)) > 10 * degree_skew(line_graph(50))

    def test_skew_regular(self):
        assert degree_skew(complete(6)) == pytest.approx(1.0)

    def test_skew_empty(self):
        assert degree_skew(Graph.from_edges(3, [])) == 0.0


class TestDiameter:
    def test_exact_on_path(self):
        g = line_graph(50)
        assert estimate_diameter(g, sweeps=4) == 49

    def test_complete_graph(self):
        assert estimate_diameter(complete(8)) == 1

    def test_lower_bound_property(self):
        import networkx as nx

        g = grid_road(8, 8, seed=0, weighted=False)
        G = nx.Graph()
        G.add_nodes_from(range(g.num_vertices))
        s, d = g.edge_array()
        G.add_edges_from(zip(s.tolist(), d.tolist()))
        true_diam = max(
            nx.diameter(G.subgraph(c)) for c in nx.connected_components(G)
        )
        est = estimate_diameter(g, sweeps=6)
        assert est <= true_diam
        assert est >= true_diam // 2  # double sweep is at least half

    def test_empty(self):
        assert estimate_diameter(Graph.from_edges(0, [])) == 0


class TestClustering:
    def test_triangle(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2), (2, 0)], directed=False)
        assert clustering_coefficient(g) == pytest.approx(1.0)

    def test_path_has_none(self):
        assert clustering_coefficient(line_graph(10)) == 0.0

    def test_matches_networkx(self):
        import networkx as nx

        g = rmat(6, edge_factor=3, seed=4, directed=False)
        G = nx.Graph()
        G.add_nodes_from(range(g.num_vertices))
        s, d = g.edge_array()
        G.add_edges_from(zip(s.tolist(), d.tolist()))
        assert clustering_coefficient(g) == pytest.approx(nx.transitivity(G))

    def test_rejects_directed(self):
        with pytest.raises(ValueError):
            clustering_coefficient(Graph.from_edges(2, [(0, 1)], directed=True))


class TestSummary:
    def test_keys_and_values(self):
        g = two_triangles()
        s = graph_summary(g)
        assert s["vertices"] == 6
        assert s["edges"] == 6
        assert not s["directed"]
        assert s["max_degree"] == 2
        assert s["diameter_lb"] == 1

    def test_chain_diameter(self):
        s = graph_summary(chain(40), diameter_sweeps=4)
        # directed chain: traversal follows arcs toward the root
        assert s["diameter_lb"] >= 1
        assert s["degree_skew"] == pytest.approx(1.0, rel=0.05)
