"""Baseline: a faithful re-implementation of Pregel+ (Yan et al.).

This is the system the paper compares against in Tables IV–VI.  It keeps
Pregel+'s design decisions on purpose:

* **monolithic message type** — one codec serves every message in the
  program, so heterogeneous algorithms (S-V, SCC, MSF) must widen all
  messages to the largest variant and tag them;
* **global combiner** — a combiner may be declared only when *every*
  message in the program admits it (receiver-side combining);
* **reqresp mode** — request/respond conversations with per-worker dedup
  but ``(id, value)``-echoing responses;
* **ghost (mirroring) mode** — sender-side combining for vertices whose
  degree exceeds a threshold, via per-worker mirror adjacency.
"""

from repro.pregel.program import PregelProgram, PregelVertex
from repro.pregel.system import PregelPlusEngine

__all__ = ["PregelProgram", "PregelVertex", "PregelPlusEngine"]
