"""Unit tests for the optimized channels: ScatterCombine, RequestRespond,
Propagation (Table II)."""

import numpy as np
import pytest

from repro.core import (
    ChannelEngine,
    CombinedMessage,
    MIN_F64,
    MIN_I64,
    Propagation,
    RequestRespond,
    ScatterCombine,
    SUM_F64,
    SUM_I64,
    VertexProgram,
)
from repro.graph import rmat, star
from repro.runtime.serialization import INT32, INT64
from helpers import line_graph, two_triangles


def run(graph, program_cls, workers=2, **kw):
    return ChannelEngine(graph, program_cls, num_workers=workers, **kw).run()


class TestScatterCombine:
    def _program(self, combiner=SUM_F64, rounds=2):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.msg = ScatterCombine(worker, combiner)
                self.got = {}

            def compute(self, v):
                if self.step_num == 1:
                    if v.out_degree:
                        self.msg.add_edges(v, v.edges)
                    self.msg.set_message(v, float(v.id + 1))
                elif self.step_num <= rounds:
                    self.got[v.id] = float(self.msg.get_message(v))
                    self.msg.set_message(v, float(v.id + 1))
                else:
                    self.got[v.id] = float(self.msg.get_message(v))
                    v.vote_to_halt()

            def finalize(self):
                return self.got

        return P

    def test_combined_per_receiver(self):
        g = two_triangles()
        res = run(g, self._program())
        # vertex 0's neighbors are 1 and 2 -> 2 + 3
        assert res.data[0] == 5.0
        assert res.data[3] == 5.0 + 6.0

    def test_values_refresh_each_superstep(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.msg = ScatterCombine(worker, SUM_F64)
                self.seen = {}

            def compute(self, v):
                if self.step_num == 1:
                    self.msg.add_edges(v, v.edges)
                    self.msg.set_message(v, 1.0)
                elif self.step_num == 2:
                    self.seen.setdefault(v.id, []).append(float(self.msg.get_message(v)))
                    self.msg.set_message(v, 10.0)
                else:
                    self.seen.setdefault(v.id, []).append(float(self.msg.get_message(v)))
                    v.vote_to_halt()

            def finalize(self):
                return self.seen

        res = run(line_graph(3), P)
        # middle vertex has 2 neighbors: 2.0 then 20.0
        assert res.data[1] == [2.0, 20.0]

    def test_nothing_sent_when_no_set_message(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.msg = ScatterCombine(worker, SUM_F64)

            def compute(self, v):
                if self.step_num == 1:
                    self.msg.add_edges(v, v.edges)
                    # no set_message at all
                v.vote_to_halt()

        res = run(line_graph(4), P)
        assert res.supersteps == 1  # nobody woken: no traffic

    def test_dedups_destinations_per_worker(self):
        """The Fig. 5 byte saving: per unique destination, not per edge.
        Only the leaves scatter (all toward the single hub)."""
        hub = star(9, center=0)  # leaves 1..8 all point at 0

        def net_bytes(channel):
            class P(VertexProgram):
                def __init__(self, worker):
                    super().__init__(worker)
                    if channel == "scatter":
                        self.msg = ScatterCombine(worker, SUM_F64)
                    else:
                        self.msg = CombinedMessage(worker, SUM_F64)

                def compute(self, v):
                    if self.step_num == 1 and v.id != 0:
                        if channel == "scatter":
                            self.msg.add_edges(v, v.edges)
                            self.msg.set_message(v, 1.0)
                        else:
                            for e in v.edges:
                                self.msg.send_message(int(e), 1.0)
                    else:
                        v.vote_to_halt()

            part = np.zeros(9, dtype=np.int64)
            part[1:] = 1  # all leaves on worker 1, hub on worker 0
            res = ChannelEngine(hub, P, num_workers=2, partition=part).run()
            return res.metrics.total_net_bytes

        # 8 leaf->hub records collapse into 1 for scatter
        assert net_bytes("scatter") < net_bytes("basic") / 3

    def test_matches_combined_message_results(self):
        """Same traffic semantics as CombinedMessage for static patterns."""
        g = rmat(6, edge_factor=3, seed=2)

        results = {}
        for mode in ("scatter", "basic"):

            class P(VertexProgram):
                def __init__(self, worker):
                    super().__init__(worker)
                    if mode == "scatter":
                        self.msg = ScatterCombine(worker, SUM_F64)
                    else:
                        self.msg = CombinedMessage(worker, SUM_F64)
                    self.got = {}

                def compute(self, v):
                    if self.step_num == 1:
                        if mode == "scatter":
                            self.msg.add_edges(v, v.edges)
                            self.msg.set_message(v, float(v.id))
                        else:
                            for e in v.edges:
                                self.msg.send_message(int(e), float(v.id))
                    else:
                        self.got[v.id] = float(self.msg.get_message(v))
                        v.vote_to_halt()

                def finalize(self):
                    return self.got

            results[mode] = run(g, P, workers=3).data

        assert results["scatter"] == results["basic"]


class TestRequestRespond:
    def _program(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.val = worker.local_ids * 100
                self.rr = RequestRespond(
                    worker,
                    respond_fn=lambda v: int(self.val[v.local]),
                    codec=INT64,
                )
                self.got = {}

            def compute(self, v):
                if self.step_num == 1:
                    self.rr.add_request(v, (v.id + 1) % self.num_vertices)
                else:
                    target = (v.id + 1) % self.num_vertices
                    self.got[v.id] = int(self.rr.get_respond(target))
                    v.vote_to_halt()

            def finalize(self):
                return self.got

        return P

    def test_basic_conversation(self):
        g = line_graph(4)
        res = run(g, self._program())
        assert res.data == {0: 100, 1: 200, 2: 300, 3: 0}

    def test_two_rounds_per_superstep(self):
        res = run(line_graph(4), self._program())
        assert res.metrics.records[0].rounds == 2

    def test_missing_respond_raises(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.rr = RequestRespond(worker, respond_fn=lambda v: 0)
                self.raised = {}

            def compute(self, v):
                if self.step_num == 2 and v.id == 0:
                    with pytest.raises(KeyError):
                        self.rr.get_respond(1)
                    self.raised[0] = True
                if self.step_num == 1:
                    pass  # no requests at all
                else:
                    v.vote_to_halt()

            def finalize(self):
                return self.raised

        res = run(line_graph(2), P)
        assert res.data.get(0)

    def test_request_dedup_on_wire(self):
        """N requesters of the same destination put ONE id on the wire."""
        hub = star(9, center=0)

        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.rr = RequestRespond(
                    worker, respond_fn=lambda v: v.id, codec=INT32
                )

            def compute(self, v):
                if self.step_num == 1:
                    if v.id != 0:
                        self.rr.add_request(v, 0)
                else:
                    v.vote_to_halt()

        part = np.zeros(9, dtype=np.int64)
        part[1:] = 1
        res = ChannelEngine(hub, P, num_workers=2, partition=part).run()
        # worker1 -> worker0: one 4-byte id (+frame); back: one 4-byte value
        assert res.metrics.total_messages == 2

    def test_responses_are_positional_no_id_echo(self):
        """Respond payloads carry bare values: k requests cost k ids one
        way and k values back — not k (id, value) pairs."""
        g = line_graph(8)

        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.rr = RequestRespond(
                    worker, respond_fn=lambda v: v.id, codec=INT32
                )

            def compute(self, v):
                if self.step_num == 1:
                    self.rr.add_request(v, (v.id + 4) % 8)
                else:
                    assert self.rr.get_respond((v.id + 4) % 8) == (v.id + 4) % 8
                    v.vote_to_halt()

        part = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        res = ChannelEngine(g, P, num_workers=2, partition=part).run()
        # 8 requests cross (4 each way), 8 responses cross back;
        # payload bytes = 8*4 (ids) + 8*4 (values) = 64
        frame_overhead = 8 * 4  # 4 frames (2 per direction) x 8B header
        assert res.metrics.total_net_bytes == 64 + frame_overhead

    def test_bulk_respond_fn(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.val = worker.local_ids * 7
                self.rr = RequestRespond(
                    worker,
                    respond_fn=lambda v: 0,  # must NOT be used
                    codec=INT64,
                    respond_fn_bulk=lambda idx: self.val[idx],
                )
                self.got = {}

            def compute(self, v):
                if self.step_num == 1:
                    self.rr.add_request(v, 0)
                else:
                    self.got[v.id] = int(self.rr.get_respond(0))
                    v.vote_to_halt()

            def finalize(self):
                return self.got

        res = run(line_graph(3), P)
        assert all(val == 0 for val in res.data.values())

        # now with a non-zero attribute at vertex 0's owner
        class P2(P):
            def __init__(self, worker):
                super().__init__(worker)
                self.val = worker.local_ids + 50
                self.rr.respond_fn_bulk = lambda idx: self.val[idx]

        res2 = run(line_graph(3), P2)
        assert all(val == 50 for val in res2.data.values())


class TestPropagation:
    def test_min_label_fixpoint_single_superstep(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.prop = Propagation(worker, MIN_I64)
                self.out = {}

            def compute(self, v):
                if self.step_num == 1:
                    self.prop.add_edges(v, v.edges)
                    self.prop.set_value(v, v.id)
                else:
                    self.out[v.id] = int(self.prop.get_value(v))
                    v.vote_to_halt()

            def finalize(self):
                return self.out

        g = two_triangles()
        res = run(g, P, workers=3)
        assert [res.data[i] for i in range(6)] == [0, 0, 0, 3, 3, 3]
        assert res.supersteps == 2  # converged inside superstep 1's rounds

    def test_weighted_relaxation(self):
        class P(VertexProgram):
            SRC = 0

            def __init__(self, worker):
                super().__init__(worker)
                self.prop = Propagation(worker, MIN_F64, edge_fn=lambda w, d: w + d)
                self.out = {}

            def compute(self, v):
                if self.step_num == 1:
                    self.prop.add_edges(v, v.edges, np.full(v.out_degree, 2.0))
                    if v.id == self.SRC:
                        self.prop.set_value(v, 0.0)
                else:
                    self.out[v.id] = float(self.prop.get_value(v))
                    v.vote_to_halt()

            def finalize(self):
                return self.out

        g = line_graph(5)
        res = run(g, P, workers=2)
        assert [res.data[i] for i in range(5)] == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_requires_ufunc_combiner(self):
        from repro.core.combiner import make_combiner
        from repro.runtime.serialization import INT64 as I64

        bad = make_combiner(min, 0, I64, ufunc=None)

        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.prop = Propagation(worker, bad)

            def compute(self, v):
                v.vote_to_halt()

        with pytest.raises(ValueError, match="ufunc"):
            ChannelEngine(line_graph(2), P, num_workers=1)

    def test_reset_allows_reuse(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.prop = Propagation(worker, MIN_I64)
                self.out = {}

            def before_superstep(self):
                # re-seed a *smaller* subgraph before superstep 3
                if self.worker.step_num == 2:
                    self.prop.reset()
                    self.worker.activate_local_bulk(
                        np.arange(self.worker.num_local)
                    )

            def compute(self, v):
                if self.step_num == 1:
                    self.prop.add_edges(v, v.edges)
                    self.prop.set_value(v, v.id)
                elif self.step_num == 2:
                    self.out.setdefault("phase1", {})[v.id] = int(
                        self.prop.get_value(v)
                    )
                elif self.step_num == 3:
                    # phase 2: only vertices >= 3 participate
                    if v.id >= 3:
                        self.prop.add_edges(v, v.edges[v.edges >= 3])
                        self.prop.set_value(v, v.id)
                else:
                    if v.id >= 3:
                        self.out.setdefault("phase2", {})[v.id] = int(
                            self.prop.get_value(v)
                        )
                    v.vote_to_halt()

            def finalize(self):
                return self.out

        g = line_graph(6)
        res = run(g, P, workers=2)
        phase1 = {}
        phase2 = {}
        for data in (res.data,):
            phase1.update(data.get("phase1", {}))
            phase2.update(data.get("phase2", {}))
        assert all(lbl == 0 for lbl in phase1.values())
        assert phase2 == {3: 3, 4: 3, 5: 3}

    def test_propagation_blocked_by_missing_edges(self):
        """Edges not added do not forward values (the SCC aliveness
        mechanism relies on this)."""

        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.prop = Propagation(worker, MIN_I64)
                self.out = {}

            def compute(self, v):
                if self.step_num == 1:
                    if v.id != 2:  # vertex 2 adds no edges: blocks the line
                        self.prop.add_edges(v, v.edges)
                    self.prop.set_value(v, v.id)
                else:
                    self.out[v.id] = int(self.prop.get_value(v))
                    v.vote_to_halt()

            def finalize(self):
                return self.out

        g = line_graph(5)
        res = run(g, P, workers=2)
        # 0-1-2 see 0; but 2 does not forward, so 3 sees min(2's push? no)
        # vertex 2 received 0 via 1->2 edge; vertex 3 only via 3<->4 + 2->3?
        # 2 added no edges at all, so nothing flows 2->3.
        assert res.data[0] == 0 and res.data[1] == 0 and res.data[2] == 0
        assert res.data[3] == 3 and res.data[4] == 3

    def test_multiworker_matches_singleworker(self):
        g = rmat(7, edge_factor=2, seed=9, directed=False)

        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.prop = Propagation(worker, MIN_I64)
                self.out = {}

            def compute(self, v):
                if self.step_num == 1:
                    self.prop.add_edges(v, v.edges)
                    self.prop.set_value(v, v.id)
                else:
                    self.out[v.id] = int(self.prop.get_value(v))
                    v.vote_to_halt()

            def finalize(self):
                return self.out

        r1 = run(g, P, workers=1)
        r4 = run(g, P, workers=4)
        assert r1.data == r4.data


class TestPropagationHopBudget:
    def _run_wcc(self, g, hops, workers=3):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.prop = Propagation(worker, MIN_I64, max_local_hops=hops)
                self.out = {}

            def compute(self, v):
                if self.step_num == 1:
                    self.prop.add_edges(v, v.edges)
                    self.prop.set_value(v, v.id)
                else:
                    self.out[v.id] = int(self.prop.get_value(v))
                    v.vote_to_halt()

            def finalize(self):
                return self.out

        return ChannelEngine(g, P, num_workers=workers).run()

    @pytest.mark.parametrize("hops", [1, 2, 5, None])
    def test_result_independent_of_budget(self, hops):
        g = rmat(6, edge_factor=2, seed=8, directed=False)
        ref = self._run_wcc(g, None).data
        assert self._run_wcc(g, hops).data == ref

    def test_smaller_budget_needs_more_rounds(self):
        g = line_graph(120)
        shallow = self._run_wcc(g, 1)
        deep = self._run_wcc(g, None)
        assert shallow.metrics.total_rounds > deep.metrics.total_rounds
        assert shallow.data == deep.data

    def test_invalid_budget_rejected(self):
        from repro.core import Worker  # noqa: F401

        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.prop = Propagation(worker, MIN_I64, max_local_hops=0)

            def compute(self, v):
                v.vote_to_halt()

        with pytest.raises(ValueError, match="max_local_hops"):
            ChannelEngine(line_graph(2), P, num_workers=1)
