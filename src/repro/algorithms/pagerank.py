"""PageRank with channels (Fig. 1 of the paper).

Two variants:

* ``PageRankBasic`` — a ``CombinedMessage`` for rank shares plus an
  ``Aggregator`` collecting dead-end rank (the paper's Fig. 1 verbatim).
* ``PageRankScatter`` — the one-line change of Section III-B: the message
  channel becomes a ``ScatterCombine`` (static messaging pattern), which
  the paper reports as a 3.03–3.16× speedup with ~1/3 fewer message bytes.

Each variant also has a bulk port (``mode="bulk"`` on :func:`run_pagerank`)
whose ``compute_bulk`` replaces the per-vertex Python loop with whole
-active-set NumPy passes; results and channel traffic are identical to the
scalar path (see ARCHITECTURE.md).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather, resolve_mode
from repro.core import (
    Aggregator,
    BulkVertexProgram,
    ChannelEngine,
    CombinedMessage,
    MirroredScatter,
    ScatterCombine,
    SUM_F64,
    Vertex,
    VertexProgram,
)
from repro.graph.graph import Graph

__all__ = [
    "PageRankBasic",
    "PageRankScatter",
    "PageRankMirrored",
    "PageRankBasicBulk",
    "PageRankScatterBulk",
    "PageRankMirroredBulk",
    "run_pagerank",
]

DAMPING = 0.85
DEFAULT_ITERS = 30


class _PageRankBase(VertexProgram):
    """Common PageRank logic; subclasses provide the message channel."""

    iterations = DEFAULT_ITERS

    def __init__(self, worker):
        super().__init__(worker)
        self.agg = Aggregator(worker, SUM_F64)
        self.rank = np.zeros(worker.num_local)

    # subclasses: read the combined share sum for v
    def _incoming(self, v: Vertex) -> float:
        raise NotImplementedError

    # subclasses: send share to all of v's out-edges
    def _outgoing(self, v: Vertex, share: float) -> None:
        raise NotImplementedError

    def _setup(self, v: Vertex) -> None:
        """First-superstep channel initialization hook."""

    def compute(self, v: Vertex) -> None:
        n = self.num_vertices
        if self.step_num == 1:
            self._setup(v)
            self.rank[v.local] = 1.0 / n
        else:
            # s: rank mass collected from dead ends, redistributed uniformly
            s = self.agg.result() / n
            self.rank[v.local] = (1.0 - DAMPING) / n + DAMPING * (
                self._incoming(v) + s
            )
        if self.step_num <= self.iterations:
            num_edges = v.out_degree
            if num_edges > 0:
                self._outgoing(v, self.rank[v.local] / num_edges)
            else:
                self.agg.add(self.rank[v.local])
        else:
            v.vote_to_halt()

    def finalize(self) -> dict:
        return {
            int(g): float(self.rank[i])
            for i, g in enumerate(self.worker.local_ids)
        }


class PageRankBasic(_PageRankBase):
    """Standard-channel PageRank (CombinedMessage + Aggregator)."""

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = CombinedMessage(worker, SUM_F64)

    def _incoming(self, v: Vertex) -> float:
        return float(self.msg.get_message(v))

    def _outgoing(self, v: Vertex, share: float) -> None:
        send = self.msg.send_message
        for e in v.edges:
            send(int(e), share)


class PageRankScatter(_PageRankBase):
    """ScatterCombine PageRank — the paper's one-line optimization."""

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = ScatterCombine(worker, SUM_F64)

    def _setup(self, v: Vertex) -> None:
        if v.out_degree > 0:
            self.msg.add_edges(v, v.edges)

    def _incoming(self, v: Vertex) -> float:
        return float(self.msg.get_message(v))

    def _outgoing(self, v: Vertex, share: float) -> None:
        self.msg.set_message(v, share)


class PageRankMirrored(PageRankScatter):
    """PageRank over the :class:`MirroredScatter` extension channel
    (mirroring as a channel — sender-side combining above a degree
    threshold, receiver-side expansion)."""

    mirror_threshold = 16

    def __init__(self, worker):
        _PageRankBase.__init__(self, worker)
        self.msg = MirroredScatter(worker, SUM_F64, threshold=self.mirror_threshold)


class _PageRankBulkBase(BulkVertexProgram):
    """Columnar PageRank: the scalar per-vertex recurrence applied to the
    whole active set at once.  Channel construction order matches
    :class:`_PageRankBase` so per-channel metrics labels line up."""

    iterations = DEFAULT_ITERS

    def __init__(self, worker):
        super().__init__(worker)
        self.agg = Aggregator(worker, SUM_F64)
        self.rank = np.zeros(worker.num_local)

    # subclasses: one-time channel setup over the local adjacency
    def _setup_bulk(self, adj) -> None:
        pass

    # subclasses: full-length combined-inbox array (indexed by local idx)
    def _incoming_bulk(self) -> np.ndarray:
        raise NotImplementedError

    # subclasses: scatter shares[i] along senders[i]'s out-edges
    def _outgoing_bulk(self, adj, senders: np.ndarray, shares: np.ndarray) -> None:
        raise NotImplementedError

    def compute_bulk(self, active: np.ndarray) -> None:
        worker = self.worker
        adj = worker.local_adjacency()
        n = self.num_vertices
        if self.step_num == 1:
            self._setup_bulk(adj)
            self.rank[active] = 1.0 / n
        else:
            # s: rank mass collected from dead ends, redistributed uniformly
            s = self.agg.result() / n
            incoming = self._incoming_bulk()
            self.rank[active] = (1.0 - DAMPING) / n + DAMPING * (
                incoming[active] + s
            )
        if self.step_num <= self.iterations:
            deg = adj.degrees[active]
            has_out = deg > 0
            senders = active[has_out]
            if senders.size:
                self._outgoing_bulk(adj, senders, self.rank[senders] / deg[has_out])
            dead = active[~has_out]
            if dead.size:
                self.agg.add_bulk(self.rank[dead])
        else:
            worker.halt_bulk(active)

    def finalize(self) -> dict:
        return {
            int(g): float(self.rank[i])
            for i, g in enumerate(self.worker.local_ids)
        }


class PageRankBasicBulk(_PageRankBulkBase):
    """Bulk port of :class:`PageRankBasic` (CombinedMessage + Aggregator)."""

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = CombinedMessage(worker, SUM_F64)

    def _incoming_bulk(self) -> np.ndarray:
        return self.msg.get_messages()[0]

    def _outgoing_bulk(self, adj, senders, shares) -> None:
        dsts = adj.gather(senders)
        self.msg.send_messages(dsts, np.repeat(shares, adj.degrees[senders]))


class PageRankScatterBulk(_PageRankBulkBase):
    """Bulk port of :class:`PageRankScatter` (static scatter pattern)."""

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = ScatterCombine(worker, SUM_F64)

    def _setup_bulk(self, adj) -> None:
        src = np.repeat(np.arange(self.num_local, dtype=np.int64), adj.degrees)
        self.msg.add_edges_bulk(src, adj.indices)

    def _incoming_bulk(self) -> np.ndarray:
        return self.msg.get_messages()[0]

    def _outgoing_bulk(self, adj, senders, shares) -> None:
        self.msg.set_messages(senders, shares)


class PageRankMirroredBulk(PageRankScatterBulk):
    """Bulk port of :class:`PageRankMirrored`."""

    mirror_threshold = 16

    def __init__(self, worker):
        _PageRankBulkBase.__init__(self, worker)
        self.msg = MirroredScatter(worker, SUM_F64, threshold=self.mirror_threshold)


_VARIANTS = {
    "basic": {"scalar": PageRankBasic, "bulk": PageRankBasicBulk},
    "scatter": {"scalar": PageRankScatter, "bulk": PageRankScatterBulk},
    "mirror": {"scalar": PageRankMirrored, "bulk": PageRankMirroredBulk},
}


def run_pagerank(
    graph: Graph,
    variant: str = "basic",
    iterations: int = DEFAULT_ITERS,
    mode: str = "scalar",
    **engine_kwargs,
):
    """Run PageRank; returns ``(ranks, EngineResult)``.

    ``variant`` is ``"basic"``, ``"scatter"``, or ``"mirror"``;
    ``mode`` selects the per-vertex (``"scalar"``) or whole-active-set
    (``"bulk"``) compute path — both produce identical ranks and traffic.
    """
    base = resolve_mode(_VARIANTS, variant, mode)
    program = type(base.__name__, (base,), {"iterations": iterations})
    result = ChannelEngine(graph, program, **engine_kwargs).run()
    return gather(result, graph.num_vertices, dtype=np.float64), result
