"""Weakly connected components via HCC hash-min (Kang et al.'s HCC,
the paper's Table V bottom workload).

Every vertex holds the minimum vertex id it has heard of; improvements
propagate to neighbors.  On a directed input the label must flow both
ways (weak connectivity), so programs operate on out- plus in-edges.

* ``WCCBasic`` — one ``CombinedMessage(MIN)`` per superstep; converges in
  O(diameter) supersteps.
* ``WCCPropagation`` — the ``Propagation`` channel: the whole fixpoint
  runs inside one superstep's exchange rounds (paper: up to 5.02× faster,
  especially on partitioned inputs).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather, resolve_mode
from repro.core import (
    BulkVertexProgram,
    ChannelEngine,
    CombinedMessage,
    MIN_I64,
    Propagation,
    Vertex,
    VertexProgram,
)
from repro.graph.graph import Graph

__all__ = ["WCCBasic", "WCCBasicBulk", "WCCPropagation", "run_wcc"]


def _undirected_neighbors(v: Vertex) -> np.ndarray:
    """Out- plus in-neighbors (weak connectivity ignores direction)."""
    g = v._worker.graph
    if not g.directed:
        return v.edges
    return np.concatenate([g.neighbors(v.id), g.in_neighbors(v.id)])


class WCCBasic(VertexProgram):
    """Hash-min with a standard combined-message channel."""

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = CombinedMessage(worker, MIN_I64)
        self.label = np.zeros(worker.num_local, dtype=np.int64)

    def compute(self, v: Vertex) -> None:
        i = v.local
        if self.step_num == 1:
            self.label[i] = v.id
            new = v.id
        else:
            m = self.msg.get_message(v)
            if m >= self.label[i]:
                v.vote_to_halt()
                return
            self.label[i] = m
            new = int(m)
        send = self.msg.send_message
        for e in _undirected_neighbors(v):
            send(int(e), new)
        v.vote_to_halt()

    def finalize(self) -> dict:
        return {int(g): int(self.label[i]) for i, g in enumerate(self.worker.local_ids)}


class WCCBasicBulk(BulkVertexProgram):
    """Bulk port of :class:`WCCBasic`: hash-min over whole frontiers.

    Uses the worker's ``"both"``-direction local CSR, whose per-row order
    (out-edges then in-edges) matches ``_undirected_neighbors`` — so the
    wire traffic is record-for-record identical to the scalar program.
    """

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = CombinedMessage(worker, MIN_I64)
        self.label = np.zeros(worker.num_local, dtype=np.int64)

    def compute_bulk(self, active: np.ndarray) -> None:
        worker = self.worker
        adj = worker.local_adjacency("both")
        if self.step_num == 1:
            new = worker.local_ids[active]
            self.label[active] = new
            senders = active
        else:
            inbox, _ = self.msg.get_messages()
            m = inbox[active]
            improved = m < self.label[active]
            senders = active[improved]
            new = m[improved]
            self.label[senders] = new
        if senders.size:
            dsts = adj.gather(senders)
            self.msg.send_messages(dsts, np.repeat(new, adj.degrees[senders]))
        worker.halt_bulk(active)

    def finalize(self) -> dict:
        return {int(g): int(self.label[i]) for i, g in enumerate(self.worker.local_ids)}


class WCCPropagation(VertexProgram):
    """Hash-min on the Propagation channel — converges within one
    superstep's exchange rounds."""

    def __init__(self, worker):
        super().__init__(worker)
        self.prop = Propagation(worker, MIN_I64)
        self.label = np.zeros(worker.num_local, dtype=np.int64)

    def compute(self, v: Vertex) -> None:
        if self.step_num == 1:
            self.prop.add_edges(v, _undirected_neighbors(v))
            self.prop.set_value(v, v.id)
        else:
            self.label[v.local] = self.prop.get_value(v)
            v.vote_to_halt()

    def finalize(self) -> dict:
        return {int(g): int(self.label[i]) for i, g in enumerate(self.worker.local_ids)}


_VARIANTS = {
    "basic": {"scalar": WCCBasic, "bulk": WCCBasicBulk},
    "prop": {"scalar": WCCPropagation},
}


def run_wcc(graph: Graph, variant: str = "basic", mode: str = "scalar", **engine_kwargs):
    """Run WCC; returns ``(labels, EngineResult)`` where ``labels[v]`` is
    the minimum vertex id of v's weak component.

    ``variant`` is ``"basic"`` or ``"prop"``; ``mode="bulk"`` selects the
    columnar compute path (``"basic"`` only).
    """
    program = resolve_mode(_VARIANTS, variant, mode)
    result = ChannelEngine(graph, program, **engine_kwargs).run()
    return gather(result, graph.num_vertices), result
