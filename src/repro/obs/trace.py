"""Structured run traces: JSON-lines span events with parent/child ids.

One trace file records one process's runs.  Every line is one event —
a dict with a fixed envelope plus free-form ``attrs``::

    {"ev": "B", "span": "superstep", "id": 7, "parent": 1,
     "t": 0.0123, "attrs": {"superstep": 1, "active": 96}}

``ev``
    ``"B"`` begins a span, ``"E"`` ends it (same ``id``), ``"X"`` is a
    complete span (carries ``dur``), ``"I"`` is an instant event.
``span``
    The span kind — one of :data:`SPAN_KINDS`.
``id`` / ``parent``
    Span ids are unique within a trace file and strictly increasing;
    ``parent`` nests spans (``null`` for roots).  An ``"E"`` event
    repeats its ``"B"``'s id and may add closing ``attrs`` (a
    superstep's byte/message totals are only known at its end).
``t`` / ``dur``
    Seconds on a monotonic clock relative to the recorder's creation.

The hierarchy an engine run produces (streaming runs wrap it in
``stream`` → ``epoch`` spans)::

    run
    ├─ superstep (per executed superstep, re-executions included)
    │   ├─ phase  ("X": one per worker per measured phase)
    │   └─ round  ("I": one per exchange round, with byte counts)
    ├─ checkpoint ("I")
    ├─ failure    ("I")
    └─ recovery   ("I")

The recorder is deliberately dumb: it assigns ids, timestamps, writes
lines, and tracks which spans are still open so :meth:`TraceRecorder.
close` can end them (a crashed run still yields a well-formed trace).
All semantic content comes from the instrumentation points in
:class:`~repro.runtime.metrics.MetricsCollector` and
:class:`~repro.streaming.epoch.EpochEngine`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = ["SPAN_KINDS", "TraceRecorder", "load_trace"]

#: every span kind a recorder may emit (closed vocabulary: the report
#: and exporter dispatch on these)
SPAN_KINDS = (
    "stream",
    "epoch",
    "run",
    "superstep",
    "phase",
    "round",
    "checkpoint",
    "alert",
    "failure",
    "recovery",
    "rebalance",
)


class TraceRecorder:
    """Appends span events to a JSON-lines file (or file-like object).

    Pass a path to let the recorder own (open/close) the file, or any
    object with a ``write(str)`` method to keep ownership.  Events are
    flushed on :meth:`close`; the recorder is not thread-safe and is
    only ever driven from the parent process — worker processes report
    their measurements through the existing reply protocol, and the
    parent attributes them.
    """

    def __init__(self, path_or_file) -> None:
        if hasattr(path_or_file, "write"):
            self._fh = path_or_file
            self._owns = False
            self.path = getattr(path_or_file, "name", None)
        else:
            self.path = str(path_or_file)
            self._fh = Path(path_or_file).open("w", encoding="utf-8")
            self._owns = True
        self._t0 = time.perf_counter()
        self._next_id = 1
        #: id -> span kind, for every currently open ("B" without "E") span
        self.open_spans: dict[int, str] = {}
        self.closed = False

    # -- clock ---------------------------------------------------------------
    def now(self) -> float:
        """Seconds since this recorder was created (the trace timebase)."""
        return time.perf_counter() - self._t0

    # -- event emission ------------------------------------------------------
    def begin(self, span: str, parent: int | None = None, **attrs) -> int:
        """Open a span; returns its id (pass to :meth:`end`)."""
        sid = self._emit("B", span, parent, attrs)
        self.open_spans[sid] = span
        return sid

    def end(self, span_id: int, **attrs) -> None:
        """Close an open span, optionally attaching closing attrs."""
        span = self.open_spans.pop(span_id)
        self._write(
            {
                "ev": "E",
                "span": span,
                "id": span_id,
                "t": round(self.now(), 9),
                **({"attrs": attrs} if attrs else {}),
            }
        )

    def complete(
        self,
        span: str,
        dur: float,
        parent: int | None = None,
        t: float | None = None,
        **attrs,
    ) -> int:
        """A span whose begin and end are known at once (e.g. a measured
        phase); ``t`` overrides the timestamp for synthesized layouts."""
        return self._emit("X", span, parent, attrs, dur=dur, t=t)

    def instant(self, span: str, parent: int | None = None, **attrs) -> int:
        """A point event (checkpoint taken, worker failed, ...)."""
        return self._emit("I", span, parent, attrs)

    def close(self) -> None:
        """End any spans still open (innermost first — a crash mid-run
        must still leave a well-formed trace), then flush, then close the
        file if this recorder opened it.  Idempotent."""
        if self.closed:
            return
        for sid in sorted(self.open_spans, reverse=True):
            self.end(sid, forced_close=True)
        self.closed = True
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals -----------------------------------------------------------
    def _emit(self, ev, span, parent, attrs, dur=None, t=None) -> int:
        if span not in SPAN_KINDS:
            raise ValueError(f"unknown span kind {span!r}; expected {SPAN_KINDS}")
        sid = self._next_id
        self._next_id += 1
        event = {
            "ev": ev,
            "span": span,
            "id": sid,
            "parent": parent,
            "t": round(self.now() if t is None else t, 9),
        }
        if dur is not None:
            event["dur"] = round(float(dur), 9)
        if attrs:
            event["attrs"] = attrs
        self._write(event)
        return sid

    def _write(self, event: dict) -> None:
        if self.closed:
            raise RuntimeError("trace recorder is closed")
        self._fh.write(json.dumps(event, separators=(",", ":")) + "\n")


def load_trace(path) -> list[dict]:
    """Read a JSON-lines trace back into a list of event dicts (blank
    lines skipped; raises ``ValueError`` naming the offending line on
    malformed input)."""
    events = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not a trace event: {exc}") from exc
    return events
