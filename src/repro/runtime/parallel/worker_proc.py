"""The worker-process main loop (child side of the process backend).

Each child owns one :class:`~repro.core.worker.Worker` — built against
the shared-memory graph and partition — plus the program instance its
factory constructs, exactly as the simulated engine builds them.  The
child is *persistent*: it serves barrier-protocol commands from the
parent for as long as its :class:`~repro.runtime.parallel.pool.WorkerPool`
lives, across many ``engine.run()`` calls and streaming epochs.

Run-loop commands (one superstep = ``begin`` / ``compute`` / ``exchange``\\*):

``begin``
    ``program.before_superstep()`` + ``worker.begin_superstep()``;
    replies with the active-set size so the parent can decide
    termination globally.
``compute``
    Bump ``step_num`` and run the program on the stored active set.
``exchange``
    One exchange round: serialize the active channel groups, swap the
    raw frame buffers peer-to-peer over the data pipes, deserialize, and
    report which channel groups want another round.  The *same bytes*
    the simulator's :class:`~repro.runtime.buffers.BufferExchange` would
    move now cross real process boundaries; the parent gets only their
    lengths, for cost-model accounting — plus the raw outgoing buffers
    themselves when ``log_frames`` is set, feeding the parent's
    sender-side :class:`~repro.core.recovery.FrameLog` for confined
    recovery.
``finalize``
    Ship ``program.finalize()`` — and, when state sync is requested, the
    full per-worker state in the checkpoint layer's capture format —
    back to the parent through the tagged-binary codec.

Lifecycle commands (how a pool outlives any single engine):

``configure``
    Tear the current worker down and rebuild it for a *new* engine
    configuration: attach the new shared-memory graph segments, apply
    the remapped ownership array and seed set, and construct the new
    program from the factory that rode along as pickle bytes (see
    :class:`~repro.core.program.ProgramSpec`).  This is the delta/remap
    message that replaces respawning — streaming epochs reuse the same
    OS processes for the whole run.
``start_run``
    ``channel.initialize()`` on every channel, mirroring what the
    simulated engine does at the top of each ``run()``.  The superstep
    counter deliberately keeps running across same-engine runs — the
    simulator's ``step_num`` does too — and is reset only by
    ``configure`` (new engine) or ``restore`` (recovery rewind).
``capture`` / ``restore``
    Checkpointing across the process boundary: ``capture`` replies with
    this worker's state as checkpoint-codec wire bytes
    (:func:`repro.runtime.checkpoint.capture_worker_state`); ``restore``
    loads such a blob (rollback recovery, or priming a respawned
    replacement after an injected death) and rewinds ``step_num``.
``die``
    ``os._exit`` immediately — deterministic failure injection through
    the *real* worker-death path (the parent observes a dead process,
    not a polite error reply).
``stop``
    Exit the serve loop.

Channel/worker code runs **unmodified**: the child's
:class:`_WorkerHost` quacks like the engine (graph, owner, metrics,
``step_num``) and its :class:`_ChildCounters` absorbs the byte/message
accounting calls, which the child flushes to the parent with every
reply.
"""

from __future__ import annotations

import gc
import os
import pickle
import threading
import time
import traceback

import numpy as np

from repro.core.worker import Worker
from repro.graph.graph import Graph
from repro.runtime.checkpoint import (
    capture_worker_state,
    decode_state,
    encode_state,
    load_worker_state,
)
from repro.runtime.parallel.protocol import recv_msg, send_msg
from repro.runtime.parallel.shm import attach_array

__all__ = ["worker_main"]


class _ChildCounters:
    """Accumulates the metric calls workers/channels make mid-phase; the
    child flushes the deltas to the parent with every reply, where they
    merge into the real :class:`~repro.runtime.metrics.MetricsCollector`."""

    __slots__ = ("messages", "channel_traffic")

    def __init__(self) -> None:
        self.messages = 0
        self.channel_traffic: dict = {}

    # -- MetricsCollector counting surface (see Worker.emit/count_net_messages)
    def count_messages(self, n: int) -> None:
        self.messages += n

    def count_channel_bytes(self, label: str, nbytes: int, local: bool) -> None:
        entry = self.channel_traffic.setdefault(label, [0, 0, 0])
        entry[1 if local else 0] += nbytes

    def count_channel_messages(self, label: str, n: int) -> None:
        entry = self.channel_traffic.setdefault(label, [0, 0, 0])
        entry[2] += n

    def flush(self) -> dict:
        out = {"messages": self.messages, "channels": self.channel_traffic}
        self.messages = 0
        self.channel_traffic = {}
        return out


class _WorkerHost:
    """Just enough of :class:`~repro.core.engine.ChannelEngine` for a
    :class:`Worker` and its channels to run unchanged in a child."""

    def __init__(self, graph: Graph, owner: np.ndarray, num_workers: int) -> None:
        self.graph = graph
        self.owner = owner
        self.num_workers = num_workers
        self.metrics = _ChildCounters()
        self.step_num = 0


def _exchange_frames(
    worker_id: int,
    num_workers: int,
    out_bufs: list[bytes],
    send_conns: dict,
    recv_conns: dict,
) -> list[bytes]:
    """Swap this round's raw buffers with every peer, pairwise.

    A dedicated sender thread pushes all outgoing buffers while the main
    thread drains the incoming pipes, so no send can wait on a receive —
    every pipe is drained independently of this worker's own send
    progress, which rules out the circular-wait deadlock of a naive
    send-then-receive loop once a buffer outgrows the OS pipe capacity.
    """
    inbox = [b""] * num_workers
    inbox[worker_id] = out_bufs[worker_id]  # self-delivery never hits a pipe
    if num_workers == 1:
        return inbox

    failure: list[BaseException] = []

    def _send_all() -> None:
        try:
            for peer in range(num_workers):
                if peer != worker_id:
                    send_conns[peer].send_bytes(out_bufs[peer])
        except BaseException as exc:  # pragma: no cover - peer death race
            failure.append(exc)

    sender = threading.Thread(target=_send_all, daemon=True)
    sender.start()
    for peer in range(num_workers):
        if peer != worker_id:
            inbox[peer] = recv_conns[peer].recv_bytes()
    sender.join()
    if failure:  # pragma: no cover - peer death race
        raise failure[0]
    return inbox


class _WorkerProcess:
    """One child's whole runtime: shared-memory attachments, the Worker,
    and the command dispatch loop."""

    def __init__(self, worker_id: int, conn, send_conns: dict, recv_conns: dict):
        self.worker_id = worker_id
        self.conn = conn
        self.send_conns = send_conns
        self.recv_conns = recv_conns
        self.segments: list = []
        self.worker: Worker | None = None
        self.host: _WorkerHost | None = None
        self.active = np.empty(0, dtype=np.int64)

    # -- (re)configuration ---------------------------------------------------
    def build(self, cfg: dict, factory) -> int:
        """(Re)build the worker for an engine configuration: attach the
        shared graph/partition, construct the program, apply seeds.
        Returns the channel count for the parent's validation barrier."""
        old_segments = self.segments
        # drop every reference into the old shared segments (worker ->
        # graph -> shm views) before trying to unmap them
        self.worker = None
        self.host = None
        self.active = np.empty(0, dtype=np.int64)

        segments: list = []
        unreg = cfg["unregister_shm"]
        indptr, seg = attach_array(cfg["indptr"], unreg)
        segments.append(seg)
        indices, seg = attach_array(cfg["indices"], unreg)
        segments.append(seg)
        weights = None
        if cfg["weights"] is not None:
            weights, seg = attach_array(cfg["weights"], unreg)
            segments.append(seg)
        owner, seg = attach_array(cfg["owner"], unreg)
        segments.append(seg)

        # validate=False: these views are the parent Graph's own arrays,
        # already validated at construction — don't rescan O(E) per worker
        graph = Graph.from_csr(
            cfg["num_vertices"],
            indptr,
            indices,
            weights,
            directed=cfg["directed"],
            validate=False,
        )
        host = _WorkerHost(graph, owner, cfg["num_workers"])
        worker = Worker(host, self.worker_id, np.flatnonzero(owner == self.worker_id))
        worker.program = factory(worker)
        if cfg["seeds"] is not None:
            worker.seed_active(np.asarray(cfg["seeds"], dtype=np.int64))
        if cfg["init_channels"]:
            # respawned replacements mirror ChannelEngine.rebuild_worker:
            # initialize now, the parent's restore blob overwrites next
            for channel in worker.channels:
                channel.initialize()
        self.worker, self.host, self.segments = worker, host, segments

        if old_segments:
            # the previous generation's mappings: every view should be
            # unreachable now; collect cycles, then unmap best-effort (a
            # surviving stray reference keeps the map until process exit
            # rather than crashing the reconfigure)
            gc.collect()
            for seg in old_segments:
                try:
                    seg.close()
                except BufferError:  # pragma: no cover - stray view
                    pass
                except Exception:  # pragma: no cover
                    pass
        return len(worker.channels)

    def close(self) -> None:
        for seg in self.segments:
            try:
                seg.close()
            except Exception:  # pragma: no cover
                pass

    # -- the serve loop ------------------------------------------------------
    def serve(self) -> None:
        worker_id = self.worker_id
        conn = self.conn

        while True:
            msg = recv_msg(conn)
            cmd = msg["cmd"]
            worker = self.worker
            host = self.host
            counters = host.metrics
            num_workers = host.num_workers

            if cmd == "begin":
                worker.program.before_superstep()
                self.active = worker.begin_superstep()
                send_msg(conn, {"active": int(self.active.size)})

            elif cmd == "compute":
                host.step_num += 1
                t0 = time.perf_counter()
                worker.run_compute(self.active)
                seconds = time.perf_counter() - t0
                send_msg(conn, {"seconds": seconds, "counters": counters.flush()})

            elif cmd == "exchange":
                group_active = msg["group_active"]
                t0 = time.perf_counter()
                if msg["round"] == 0:
                    for channel in worker.channels:
                        channel.reset_round()
                for cid, channel in enumerate(worker.channels):
                    if group_active[cid]:
                        channel.serialize()
                out_bufs = []
                for peer in range(num_workers):
                    writer = worker.buffers.out[peer]
                    out_bufs.append(writer.getvalue())
                    writer.clear()
                seconds = time.perf_counter() - t0

                inbox = _exchange_frames(
                    worker_id, num_workers, out_bufs, self.send_conns, self.recv_conns
                )
                worker.buffers.inbox = inbox

                t0 = time.perf_counter()
                routed = worker.route_inbox()
                next_active = [False] * len(worker.channels)
                for cid, channel in enumerate(worker.channels):
                    if group_active[cid]:
                        channel.deserialize(routed.get(cid, []))
                        if channel.again():
                            next_active[cid] = True
                    elif cid in routed:  # pragma: no cover - defensive
                        raise RuntimeError(f"data arrived for inactive channel {cid}")
                seconds += time.perf_counter() - t0

                reply = {
                    "sent": np.array([len(b) for b in out_bufs], dtype=np.int64),
                    "next_active": next_active,
                    "seconds": seconds,
                    "counters": counters.flush(),
                }
                if msg["log_frames"]:
                    # sender-side frame log (confined recovery): the raw
                    # cross-worker buffers, exactly as the simulator logs
                    # them (self-delivery stays local, hence b"")
                    reply["frames"] = [
                        b"" if peer == worker_id else out_bufs[peer]
                        for peer in range(num_workers)
                    ]
                send_msg(conn, reply)

            elif cmd == "start_run":
                for channel in worker.channels:
                    channel.initialize()
                send_msg(conn, {"ok": True})

            elif cmd == "capture":
                blob = encode_state(capture_worker_state(worker))
                send_msg(conn, {"blob": blob})

            elif cmd == "restore":
                load_worker_state(worker, decode_state(msg["blob"]))
                host.step_num = msg["step_num"]
                send_msg(conn, {"ok": True})

            elif cmd == "configure":
                factory = pickle.loads(msg["factory"])
                num_channels = self.build(msg["cfg"], factory)
                send_msg(conn, {"ready": True, "num_channels": num_channels})

            elif cmd == "finalize":
                reply = {"data": worker.program.finalize()}
                if msg["sync"]:
                    # same capture format as runtime.checkpoint snapshots
                    reply["state"] = capture_worker_state(worker)
                send_msg(conn, reply)

            elif cmd == "die":
                # failure injection: die the way a crashed worker dies —
                # no reply, no cleanup, just a dead process for the
                # parent's supervision to notice
                os._exit(msg["code"])

            elif cmd == "stop":
                return

            else:  # pragma: no cover - protocol bug guard
                raise RuntimeError(f"unknown command {cmd!r}")


def worker_main(worker_id: int, cfg: dict, conn, send_conns: dict, recv_conns: dict) -> None:
    """Child-process entry point; never raises (errors go to the parent).

    ``cfg`` is the spawn-time configuration (shared-array specs plus the
    first run's ``program_factory``, which rides through the process
    start machinery — under ``fork`` it never crosses a pipe, so
    closures and locally defined classes work).  Later configurations
    arrive as ``configure`` commands instead.
    """
    proc = _WorkerProcess(worker_id, conn, send_conns, recv_conns)
    try:
        num_channels = proc.build(cfg, cfg["program_factory"])
        send_msg(conn, {"ready": True, "num_channels": num_channels})
        proc.serve()
    except BaseException:
        try:
            send_msg(conn, {"error": traceback.format_exc()})
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        proc.close()
