"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph import chain, complete, erdos_renyi, grid_road, random_tree, rmat, star


class TestChain:
    def test_structure(self):
        g = chain(5)
        assert g.num_vertices == 5
        assert g.out_degree(0) == 0  # root
        for v in range(1, 5):
            assert g.neighbors(v).tolist() == [v - 1]

    def test_single_vertex(self):
        assert chain(1).num_edges == 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            chain(0)


class TestRandomTree:
    def test_is_forest_rooted_at_zero(self):
        g = random_tree(200, seed=1)
        assert g.out_degree(0) == 0
        for v in range(1, 200):
            parents = g.neighbors(v)
            assert parents.size == 1
            assert parents[0] < v  # recursive tree: parent precedes child

    def test_deterministic(self):
        a, b = random_tree(50, seed=9), random_tree(50, seed=9)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_different_seeds_differ(self):
        a, b = random_tree(100, seed=1), random_tree(100, seed=2)
        assert not np.array_equal(a.indices, b.indices)

    def test_logarithmic_depth(self):
        g = random_tree(4096, seed=0)
        # walk each vertex to the root; depth must be << n
        depth = 0
        for v in range(1, 4096, 97):
            d, u = 0, v
            while g.out_degree(u):
                u = int(g.neighbors(u)[0])
                d += 1
            depth = max(depth, d)
        assert depth < 64


class TestRMAT:
    def test_size_and_range(self):
        g = rmat(8, edge_factor=4, seed=3)
        assert g.num_vertices == 256
        assert 0 < g.num_edges <= 4 * 256
        src, dst = g.edge_array()
        assert src.min() >= 0 and dst.max() < 256

    def test_skewed_degrees(self):
        """RMAT must produce the heavy-tailed degree profile the paper's
        load-balance optimizations target."""
        g = rmat(12, edge_factor=8, seed=0)
        deg = g.out_degrees
        assert deg.max() > 10 * max(deg.mean(), 1.0)

    def test_no_self_loops(self):
        src, dst = rmat(8, seed=5).edge_array()
        assert np.all(src != dst)

    def test_dedupe(self):
        src, dst = rmat(7, edge_factor=8, seed=2, dedupe=True).edge_array()
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert len(pairs) == src.size

    def test_weighted(self):
        g = rmat(6, seed=1, weighted=True)
        assert g.weighted
        assert np.all(g.weights >= 1.0) and np.all(g.weights <= 100.0)

    def test_undirected(self):
        g = rmat(6, seed=1, directed=False)
        assert not g.directed
        for v in range(g.num_vertices):
            for u in g.neighbors(v):
                assert v in g.neighbors(int(u))

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat(5, a=0.5, b=0.4, c=0.2)

    def test_deterministic(self):
        a, b = rmat(8, seed=42), rmat(8, seed=42)
        np.testing.assert_array_equal(a.indices, b.indices)


class TestGridRoad:
    def test_low_average_degree(self):
        g = grid_road(40, 40, seed=0)
        assert 1.0 < g.avg_degree < 2.0  # ~road network (USA: 2.41/2)

    def test_weighted_and_undirected(self):
        g = grid_road(5, 5, seed=0)
        assert g.weighted and not g.directed

    def test_unweighted_option(self):
        assert not grid_road(5, 5, weighted=False).weighted


class TestOthers:
    def test_star_degrees(self):
        g = star(10)
        assert g.out_degree(0) == 9
        for v in range(1, 10):
            assert g.neighbors(v).tolist() == [0]

    def test_star_custom_center(self):
        g = star(5, center=2)
        assert g.out_degree(2) == 4

    def test_complete(self):
        g = complete(5)
        for v in range(5):
            assert g.out_degree(v) == 4

    def test_erdos_renyi_size(self):
        g = erdos_renyi(100, avg_degree=5, seed=0)
        assert abs(g.num_edges - 500) < 50


class TestIndexDtypes:
    """Every generator must emit int64 CSR arrays: narrower indices
    overflow past 2^31 edges and break concatenation with streaming
    deltas (enforced at construction by ``Graph.__init__``)."""

    GENERATORS = [
        lambda: chain(10),
        lambda: random_tree(10, seed=1),
        lambda: rmat(5, edge_factor=4, seed=1),
        lambda: rmat(5, edge_factor=4, seed=1, directed=False, weighted=True),
        lambda: erdos_renyi(50, avg_degree=3, seed=1),
        lambda: grid_road(4, 5, seed=1),
        lambda: star(8),
        lambda: complete(6),
    ]

    @pytest.mark.parametrize("make", GENERATORS)
    def test_int64_csr(self, make):
        g = make()
        assert g.indptr.dtype == np.int64
        assert g.indices.dtype == np.int64
        if g.weighted:
            assert g.weights.dtype == np.float64
