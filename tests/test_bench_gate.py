"""The benchmark regression gate and provenance guard.

``benchmarks/check_regression.py`` is what CI runs between a fresh
``BENCH_*.json`` and the committed baseline of the same kind; these
tests pin its contract: parity failures always gate, wall-time only
gates when both artifacts measured real parallelism, and a dirty-tree
artifact is never acceptable.  The gate covers all five artifact kinds
(parallel / bulk / recovery / scale / streaming), and every committed baseline
at the repo root must self-gate clean while failing on a perturbed
parity field.  ``benchmarks/_provenance.py`` is the producer-side half
of the same guarantee.
"""

from __future__ import annotations

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent
_BENCH_DIR = _REPO_ROOT / "benchmarks"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, _BENCH_DIR / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod  # dataclasses resolve types via sys.modules
    spec.loader.exec_module(mod)
    return mod


check_regression = _load("check_regression")
_provenance = _load("_provenance")


def _artifact(**overrides) -> dict:
    base = {
        "dataset": "bulk-100k",
        "workers": [2, 8],
        "seed": 0,
        "cpus": 2,
        "speedup_valid": True,
        "git": "abc1234",
        "rows": [
            {
                "workload": "pr-scatter-bulk",
                "workers": 2,
                "supersteps": 11,
                "net_mb": 2.64,
                "sim_wall_s": 0.05,
                "pipe_wall_s": 0.15,
                "shm_wall_s": 0.08,
                "speedup_shm_vs_sim": 0.62,
                "speedup_shm_vs_pipe": 1.87,
                "parity_pipe": True,
                "parity_shm": True,
            },
            {
                "workload": "wcc-bulk",
                "workers": 8,
                "supersteps": 25,
                "net_mb": 8.913,
                "sim_wall_s": 0.17,
                "pipe_wall_s": 0.40,
                "shm_wall_s": 0.30,
                "speedup_shm_vs_sim": 0.57,
                "speedup_shm_vs_pipe": 1.33,
                "parity_pipe": True,
                "parity_shm": True,
            },
        ],
        "amortization": [
            {"mode": "persistent-pool", "identical": True},
            {"mode": "respawn-per-epoch", "identical": True},
        ],
    }
    base.update(overrides)
    return base


class TestCheckRegression:
    def test_identical_artifacts_pass(self):
        art = _artifact()
        assert check_regression.check(art, copy.deepcopy(art)) == []

    def test_parity_failure_always_gates(self):
        fresh = _artifact(speedup_valid=False)  # even with no cores
        fresh["rows"][0]["parity_shm"] = False
        base = _artifact(speedup_valid=False)
        failures = check_regression.check(fresh, base)
        assert any("broke sim parity" in f for f in failures)

    def test_changed_work_gates(self):
        fresh = _artifact()
        fresh["rows"][1]["supersteps"] = 99
        failures = check_regression.check(fresh, _artifact())
        assert any("supersteps changed" in f for f in failures)

    def test_dirty_tree_gates(self):
        fresh = _artifact(dirty_tree=True, git="abc1234-dirty")
        failures = check_regression.check(fresh, _artifact())
        assert any("dirty tree" in f for f in failures)

    def test_wall_time_regression_gates_when_valid(self):
        fresh = _artifact()
        fresh["rows"][0]["shm_wall_s"] = 10.0
        failures = check_regression.check(fresh, _artifact(), tolerance=1.5)
        assert any("shm_wall_s regressed" in f for f in failures)

    def test_wall_time_skipped_without_real_cores(self):
        # the same 125x blowup is NOT a failure when either side ran on
        # one CPU — those walls measure protocol overhead, not speed
        for side in ("fresh", "baseline"):
            fresh, base = _artifact(), _artifact()
            fresh["rows"][0]["shm_wall_s"] = 10.0
            (fresh if side == "fresh" else base)["speedup_valid"] = False
            # drop the shm-vs-pipe requirement too when fresh is 1-cpu
            fresh["rows"][0]["speedup_shm_vs_pipe"] = 0.01
            failures = check_regression.check(fresh, base)
            assert not any("regressed" in f for f in failures)

    def test_shm_must_beat_pipe_on_real_cores(self):
        fresh = _artifact()
        fresh["rows"][0]["speedup_shm_vs_pipe"] = 1.1  # the only 2-worker row
        failures = check_regression.check(fresh, _artifact(), min_shm_speedup=1.5)
        assert any("never beat pipe" in f for f in failures)

    def test_subset_smoke_checks_only_shared_rows(self):
        # CI smoke runs --workers 2 against a committed [2, 8] baseline:
        # only the 2-worker row is compared, and that's a pass
        fresh = _artifact(workers=[2])
        fresh["rows"] = [fresh["rows"][0]]
        assert check_regression.check(fresh, _artifact()) == []

    def test_different_dataset_is_incomparable(self):
        failures = check_regression.check(_artifact(dataset="tree"), _artifact())
        assert any("not comparable" in f for f in failures)

    def test_cli_round_trip(self, tmp_path, capsys):
        good = tmp_path / "fresh.json"
        good.write_text(json.dumps(_artifact()))
        base = tmp_path / "base.json"
        base.write_text(json.dumps(_artifact()))
        assert check_regression.main([str(good), "--baseline", str(base)]) == 0
        bad = _artifact()
        bad["rows"][0]["parity_pipe"] = False
        good.write_text(json.dumps(bad))
        assert check_regression.main([str(good), "--baseline", str(base)]) == 1
        assert "REGRESSION" in capsys.readouterr().err


def _bulk_artifact() -> dict:
    return {
        "dataset": "bulk-100k",
        "workers": 8,
        "seed": 0,
        "git": "abc1234",
        "rows": [
            {
                "algorithm": "pr-basic",
                "dataset": "bulk-100k",
                "scalar_wall_s": 3.54,
                "bulk_wall_s": 0.46,
                "speedup": 7.63,
                "supersteps": 6,
                "traffic_identical": True,
            },
            {
                "algorithm": "wcc",
                "dataset": "bulk-100k",
                "scalar_wall_s": 2.1,
                "bulk_wall_s": 0.31,
                "speedup": 6.8,
                "supersteps": 25,
                "traffic_identical": True,
            },
        ],
    }


def _recovery_artifact() -> dict:
    return {
        "dataset": "facebook",
        "workers": 8,
        "checkpoint_every": 2,
        "git": "abc1234",
        "rows": [
            {
                "workload": "bfs-bulk",
                "mode": "checkpoint-only",
                "fail_at": None,
                "supersteps": 7,
                "checkpoint_bytes": 634208,
                "log_bytes": 0,
                "recovery_bytes": 0,
                "recovery_time": 0.0,
                "identical": True,
            },
            {
                "workload": "bfs-bulk",
                "mode": "checkpoint+log",
                "fail_at": 3,
                "supersteps": 7,
                "checkpoint_bytes": 634208,
                "log_bytes": 120_000,
                "recovery_bytes": 90_000,
                "recovery_time": 0.02,
                "identical": True,
            },
        ],
    }


def _scale_artifact() -> dict:
    return {
        "edge_factor": 20,
        "seed": 7,
        "iterations": 10,
        "workers": 4,
        "chunk_edges": 1 << 20,
        "cpus": 1,
        "speedup_valid": False,
        "git": "abc1234",
        "rows": [
            {
                "workload": "pr-scatter-bulk",
                "workers": 4,
                "scale": 16,
                "vertices": 65536,
                "arcs": 1310065,
                "edgelist_mb": 20.961,
                "store_mb": 11.005,
                "supersteps": 11,
                "net_mb": 10.544,
                "build_wall_s": 0.71,
                "sim_wall_s": 0.32,
                "run_wall_s": 1.49,
                "peak_rss_mb": 108.7,
                "peak_rss_growth_mb": 10.113,
                "rss_growth_ratio": 0.48,
                "rss_ok": True,
                "rss_samples": 4,
                "parity": True,
            },
            {
                "workload": "pr-scatter-bulk",
                "workers": 4,
                "scale": 19,
                "vertices": 524288,
                "arcs": 10484537,
                "edgelist_mb": 167.753,
                "store_mb": 88.071,
                "supersteps": 11,
                "net_mb": 72.721,
                "build_wall_s": 6.16,
                "sim_wall_s": 4.85,
                "run_wall_s": 15.35,
                "peak_rss_mb": 544.1,
                "peak_rss_growth_mb": 34.533,
                "rss_growth_ratio": 0.21,
                "rss_ok": True,
                "rss_samples": 4,
                "parity": True,
            },
        ],
    }


def _streaming_artifact() -> dict:
    return {
        "dataset": "stream-road",
        "workers": 8,
        "epochs": 3,
        "seed": 0,
        "git": "abc1234",
        "rows": [
            {
                "algorithm": "pagerank",
                "delta_frac": 0.0001,
                "batch_edges": 1,
                "epochs": 3,
                "inc_supersteps": 11.0,
                "cold_supersteps": 11.0,
                "inc_wall_s": 0.027,
                "cold_wall_s": 0.056,
                "inc_mb": 0.0375,
                "cold_mb": 2.7386,
                "byte_ratio": 0.014,
                "identical": True,
            },
            {
                "algorithm": "wcc",
                "delta_frac": 0.01,
                "batch_edges": 120,
                "epochs": 3,
                "inc_supersteps": 4.0,
                "cold_supersteps": 9.0,
                "inc_wall_s": 0.01,
                "cold_wall_s": 0.04,
                "inc_mb": 0.4,
                "cold_mb": 1.9,
                "byte_ratio": 0.21,
                "identical": True,
            },
        ],
    }


_KIND_FIXTURES = {
    "parallel": _artifact,
    "bulk": _bulk_artifact,
    "recovery": _recovery_artifact,
    "scale": _scale_artifact,
    "streaming": _streaming_artifact,
}

#: per kind: (a parity field to flip, an exact-work field to perturb)
_KIND_FIELDS = {
    "parallel": ("parity_shm", "net_mb"),
    "bulk": ("traffic_identical", "supersteps"),
    "recovery": ("identical", "recovery_bytes"),
    "scale": ("rss_ok", "arcs"),
    "streaming": ("identical", "byte_ratio"),
}


class TestMultiKindGate:
    """The generalized gate: same contract for every artifact kind."""

    @pytest.mark.parametrize("kind", sorted(_KIND_FIXTURES))
    def test_kind_detection(self, kind):
        art = _KIND_FIXTURES[kind]()
        assert check_regression.detect_kind(art) == kind

    def test_kind_detection_falls_back_to_filename(self):
        empty = {"rows": []}
        assert (
            check_regression.detect_kind(empty, "BENCH_streaming_smoke.json")
            == "streaming"
        )
        with pytest.raises(SystemExit, match="cannot detect"):
            check_regression.detect_kind(empty, "results.json")

    @pytest.mark.parametrize("kind", sorted(_KIND_FIXTURES))
    def test_identical_artifacts_pass(self, kind):
        art = _KIND_FIXTURES[kind]()
        assert check_regression.check(art, copy.deepcopy(art)) == []

    @pytest.mark.parametrize("kind", sorted(_KIND_FIXTURES))
    def test_perturbed_parity_field_gates(self, kind):
        parity_field, _ = _KIND_FIELDS[kind]
        fresh = _KIND_FIXTURES[kind]()
        fresh["rows"][0][parity_field] = False
        failures = check_regression.check(fresh, _KIND_FIXTURES[kind]())
        assert any("parity" in f or "diverged" in f for f in failures)

    @pytest.mark.parametrize("kind", sorted(_KIND_FIXTURES))
    def test_changed_work_field_gates(self, kind):
        _, exact_field = _KIND_FIELDS[kind]
        fresh = _KIND_FIXTURES[kind]()
        fresh["rows"][0][exact_field] = 424242
        failures = check_regression.check(fresh, _KIND_FIXTURES[kind]())
        assert any(f"{exact_field} changed" in f for f in failures)

    def test_walls_never_gated_without_speedup_valid(self):
        # bulk/recovery/streaming artifacts don't record speedup_valid,
        # so even a 100x wall blowup is not a regression — those numbers
        # are informational on whatever machine produced them
        fresh = _bulk_artifact()
        fresh["rows"][0]["bulk_wall_s"] = 100.0
        assert check_regression.check(fresh, _bulk_artifact()) == []

    def test_dirty_baseline_fails_only_when_clean_required(self):
        fresh = _streaming_artifact()
        base = _streaming_artifact()
        base["git"] = "abc1234-dirty"
        assert check_regression.check(fresh, base, require_clean=False) == []
        failures = check_regression.check(fresh, base, require_clean=True)
        assert any("dirty tree" in f for f in failures)

    def test_recovery_rows_keyed_by_failure_point(self):
        # same workload+mode at a different fail_at is a *different* row,
        # not a comparison target
        fresh = _recovery_artifact()
        fresh["rows"][1]["fail_at"] = 5
        fresh["rows"][1]["recovery_bytes"] = 999  # would gate if compared
        failures = check_regression.check(fresh, _recovery_artifact())
        assert failures == []

    @pytest.mark.parametrize("kind", sorted(_KIND_FIXTURES))
    def test_committed_baseline_self_gates(self, kind):
        """Acceptance: every committed BENCH_*.json passes against itself
        and fails once a parity field is synthetically perturbed."""
        path = _REPO_ROOT / f"BENCH_{kind}.json"
        payload = json.loads(path.read_text())
        assert check_regression.detect_kind(payload, path) == kind
        assert (
            check_regression.check(
                payload, copy.deepcopy(payload), require_clean=False
            )
            == []
        )
        parity_field, _ = _KIND_FIELDS[kind]
        perturbed = copy.deepcopy(payload)
        perturbed["rows"][0][parity_field] = False
        failures = check_regression.check(
            perturbed, payload, require_clean=False
        )
        assert failures, f"perturbed {parity_field} must gate for {path.name}"

    @pytest.mark.parametrize("kind", sorted(_KIND_FIXTURES))
    def test_committed_baseline_is_clean(self, kind):
        """CI runs the gate with REPRO_BENCH_REQUIRE_CLEAN=1, so every
        committed artifact must come from a clean tree."""
        payload = json.loads((_REPO_ROOT / f"BENCH_{kind}.json").read_text())
        assert not payload.get("dirty_tree")
        assert not str(payload.get("git", "")).endswith("-dirty")

    def test_cli_uses_default_baseline_for_kind(self, capsys):
        # self-gating a committed artifact: fresh path IS the baseline
        path = _REPO_ROOT / "BENCH_streaming.json"
        assert check_regression.main([str(path)]) == 0
        assert "streaming artifact" in capsys.readouterr().out


class TestProvenance:
    def test_clean_tree_writes_plain_artifact(self, tmp_path, monkeypatch):
        monkeypatch.setattr(_provenance, "git_describe", lambda: "abc1234")
        out = tmp_path / "BENCH_x.json"
        _provenance.write_artifact(out, [{"a": 1}], cpus=2)
        payload = json.loads(out.read_text())
        assert payload["git"] == "abc1234"
        assert "dirty_tree" not in payload

    def test_dirty_tree_is_flagged_loudly(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(_provenance, "git_describe", lambda: "abc1234-dirty")
        out = tmp_path / "BENCH_x.json"
        _provenance.write_artifact(out, [{"a": 1}])
        assert json.loads(out.read_text())["dirty_tree"] is True
        assert "WARNING" in capsys.readouterr().err

    def test_dirty_tree_refused_when_required_clean(self, tmp_path, monkeypatch):
        monkeypatch.setattr(_provenance, "git_describe", lambda: "abc1234-dirty")
        monkeypatch.setenv("REPRO_BENCH_REQUIRE_CLEAN", "1")
        out = tmp_path / "BENCH_x.json"
        with pytest.raises(SystemExit, match="refusing to write"):
            _provenance.write_artifact(out, [{"a": 1}])
        assert not out.exists()
