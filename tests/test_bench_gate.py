"""The benchmark regression gate and provenance guard.

``benchmarks/check_regression.py`` is what CI runs between a fresh
``BENCH_parallel*.json`` and the committed baseline; these tests pin its
contract: parity failures always gate, wall-time only gates when both
artifacts measured real parallelism, and a dirty-tree artifact is never
acceptable.  ``benchmarks/_provenance.py`` is the producer-side half of
the same guarantee.
"""

from __future__ import annotations

import copy
import importlib.util
import json
from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, _BENCH_DIR / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


check_regression = _load("check_regression")
_provenance = _load("_provenance")


def _artifact(**overrides) -> dict:
    base = {
        "dataset": "bulk-100k",
        "workers": [2, 8],
        "seed": 0,
        "cpus": 2,
        "speedup_valid": True,
        "git": "abc1234",
        "rows": [
            {
                "workload": "pr-scatter-bulk",
                "workers": 2,
                "supersteps": 11,
                "net_mb": 2.64,
                "sim_wall_s": 0.05,
                "pipe_wall_s": 0.15,
                "shm_wall_s": 0.08,
                "speedup_shm_vs_sim": 0.62,
                "speedup_shm_vs_pipe": 1.87,
                "parity_pipe": True,
                "parity_shm": True,
            },
            {
                "workload": "wcc-bulk",
                "workers": 8,
                "supersteps": 25,
                "net_mb": 8.913,
                "sim_wall_s": 0.17,
                "pipe_wall_s": 0.40,
                "shm_wall_s": 0.30,
                "speedup_shm_vs_sim": 0.57,
                "speedup_shm_vs_pipe": 1.33,
                "parity_pipe": True,
                "parity_shm": True,
            },
        ],
        "amortization": [
            {"mode": "persistent-pool", "identical": True},
            {"mode": "respawn-per-epoch", "identical": True},
        ],
    }
    base.update(overrides)
    return base


class TestCheckRegression:
    def test_identical_artifacts_pass(self):
        art = _artifact()
        assert check_regression.check(art, copy.deepcopy(art)) == []

    def test_parity_failure_always_gates(self):
        fresh = _artifact(speedup_valid=False)  # even with no cores
        fresh["rows"][0]["parity_shm"] = False
        base = _artifact(speedup_valid=False)
        failures = check_regression.check(fresh, base)
        assert any("broke sim parity" in f for f in failures)

    def test_changed_work_gates(self):
        fresh = _artifact()
        fresh["rows"][1]["supersteps"] = 99
        failures = check_regression.check(fresh, _artifact())
        assert any("supersteps changed" in f for f in failures)

    def test_dirty_tree_gates(self):
        fresh = _artifact(dirty_tree=True, git="abc1234-dirty")
        failures = check_regression.check(fresh, _artifact())
        assert any("dirty tree" in f for f in failures)

    def test_wall_time_regression_gates_when_valid(self):
        fresh = _artifact()
        fresh["rows"][0]["shm_wall_s"] = 10.0
        failures = check_regression.check(fresh, _artifact(), tolerance=1.5)
        assert any("shm_wall_s regressed" in f for f in failures)

    def test_wall_time_skipped_without_real_cores(self):
        # the same 125x blowup is NOT a failure when either side ran on
        # one CPU — those walls measure protocol overhead, not speed
        for side in ("fresh", "baseline"):
            fresh, base = _artifact(), _artifact()
            fresh["rows"][0]["shm_wall_s"] = 10.0
            (fresh if side == "fresh" else base)["speedup_valid"] = False
            # drop the shm-vs-pipe requirement too when fresh is 1-cpu
            fresh["rows"][0]["speedup_shm_vs_pipe"] = 0.01
            failures = check_regression.check(fresh, base)
            assert not any("regressed" in f for f in failures)

    def test_shm_must_beat_pipe_on_real_cores(self):
        fresh = _artifact()
        fresh["rows"][0]["speedup_shm_vs_pipe"] = 1.1  # the only 2-worker row
        failures = check_regression.check(fresh, _artifact(), min_shm_speedup=1.5)
        assert any("never beat pipe" in f for f in failures)

    def test_subset_smoke_checks_only_shared_rows(self):
        # CI smoke runs --workers 2 against a committed [2, 8] baseline:
        # only the 2-worker row is compared, and that's a pass
        fresh = _artifact(workers=[2])
        fresh["rows"] = [fresh["rows"][0]]
        assert check_regression.check(fresh, _artifact()) == []

    def test_different_dataset_is_incomparable(self):
        failures = check_regression.check(_artifact(dataset="tree"), _artifact())
        assert any("not comparable" in f for f in failures)

    def test_cli_round_trip(self, tmp_path, capsys):
        good = tmp_path / "fresh.json"
        good.write_text(json.dumps(_artifact()))
        base = tmp_path / "base.json"
        base.write_text(json.dumps(_artifact()))
        assert check_regression.main([str(good), "--baseline", str(base)]) == 0
        bad = _artifact()
        bad["rows"][0]["parity_pipe"] = False
        good.write_text(json.dumps(bad))
        assert check_regression.main([str(good), "--baseline", str(base)]) == 1
        assert "REGRESSION" in capsys.readouterr().err


class TestProvenance:
    def test_clean_tree_writes_plain_artifact(self, tmp_path, monkeypatch):
        monkeypatch.setattr(_provenance, "git_describe", lambda: "abc1234")
        out = tmp_path / "BENCH_x.json"
        _provenance.write_artifact(out, [{"a": 1}], cpus=2)
        payload = json.loads(out.read_text())
        assert payload["git"] == "abc1234"
        assert "dirty_tree" not in payload

    def test_dirty_tree_is_flagged_loudly(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(_provenance, "git_describe", lambda: "abc1234-dirty")
        out = tmp_path / "BENCH_x.json"
        _provenance.write_artifact(out, [{"a": 1}])
        assert json.loads(out.read_text())["dirty_tree"] is True
        assert "WARNING" in capsys.readouterr().err

    def test_dirty_tree_refused_when_required_clean(self, tmp_path, monkeypatch):
        monkeypatch.setattr(_provenance, "git_describe", lambda: "abc1234-dirty")
        monkeypatch.setenv("REPRO_BENCH_REQUIRE_CLEAN", "1")
        out = tmp_path / "BENCH_x.json"
        with pytest.raises(SystemExit, match="refusing to write"):
            _provenance.write_artifact(out, [{"a": 1}])
        assert not out.exists()
