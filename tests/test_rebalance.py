"""Adaptive load rebalancing (ARCHITECTURE.md §13).

Pins the tentpole claims of :mod:`repro.runtime.rebalance`:

* the policy — deterministic plans, hysteresis (cooldown, skew
  threshold, min gain), degenerate inputs (no supersteps, one worker,
  all-zero timings) never migrate, and the greedy balancer's output is
  its own fixed point;
* migration correctness — the parity matrix {PageRank-scatter, WCC,
  SSSP} × {sim, process×{shm,pipe}} × {2, 8} workers: a fired
  superstep-trigger migration reproduces the rebalance-off run's data
  (bit-identical for MIN-combiner workloads, allclose for PageRank,
  whose aggregator regroups float partials), and every backend produces
  bit-identical data *and* counters for the same migrated run;
* the epoch trigger — planted skew fires within two epochs of a
  streaming run, with per-epoch results identical to rebalance-off;
* the observability hooks — "rebalance" trace instants, metrics
  counters, live-plane migration counts, and report rendering;
* the satellite edge cases — :func:`~repro.obs.stats.straggler_scores`
  and :func:`~repro.graph.partition.partition_quality` on degenerate
  inputs.
"""

from __future__ import annotations

import io
import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.algorithms.pagerank import run_pagerank
from repro.algorithms.sssp import run_sssp
from repro.algorithms.wcc import run_wcc
from repro.graph import rmat
from repro.graph.graph import Graph
from repro.graph.partition import partition_quality
from repro.obs import TraceRecorder
from repro.obs.stats import straggler_scores
from repro.runtime.rebalance import (
    MigrationContext,
    RebalancePolicy,
    phase_matrix,
)
from repro.streaming import EpochEngine, WCCStream, synthesize_stream

WORKERS = [2, 8]

_DIRECTED = rmat(7, edge_factor=8, seed=5, directed=True)
_WEIGHTED = rmat(7, edge_factor=8, seed=6, directed=True, weighted=True)

WORKLOADS = {
    "pr-scatter": (
        _DIRECTED,
        lambda g, **kw: run_pagerank(
            g, variant="scatter", iterations=8, mode="bulk", **kw
        ),
    ),
    "wcc": (_DIRECTED, lambda g, **kw: run_wcc(g, variant="basic", mode="bulk", **kw)),
    "sssp": (_WEIGHTED, lambda g, **kw: run_sssp(g, variant="basic", mode="bulk", **kw)),
}

#: a migration regroups the dangling-mass aggregator's per-worker float
#: partials, so PageRank matches to rounding, not bit-for-bit
FLOAT_TOLERANT = {"pr-scatter"}


def planted_skew(num_vertices: int, num_workers: int) -> np.ndarray:
    """Contiguous equal-vertex ranges: worker 0 gets the RMAT hubs."""
    return np.minimum(
        np.arange(num_vertices) * num_workers // num_vertices, num_workers - 1
    ).astype(np.int64)


def skew_matrix(num_workers: int, supersteps: int = 4) -> np.ndarray:
    """A timing matrix with worker 0 at 2x the mean — clears the default
    1.2 skew threshold."""
    return np.tile(np.linspace(2.0, 1.0, num_workers), (supersteps, 1))


def force_plan(owner: np.ndarray, indptr: np.ndarray, num_workers: int):
    """The plan a maximally-skew-observing policy emits (threshold 0)."""
    policy = RebalancePolicy(num_workers=num_workers, cooldown=0)
    policy.skew_threshold = 0.0
    return policy.propose(owner, indptr, skew_matrix(num_workers))


def balanced_partition(graph, num_workers: int) -> np.ndarray:
    """The balancer's own fixed point for ``graph`` (see the bench)."""
    skew = planted_skew(graph.num_vertices, num_workers)
    plan = force_plan(skew, graph.indptr, num_workers)
    return np.asarray(plan.new_owner, dtype=np.int64) if plan is not None else skew


# ---------------------------------------------------------------------------
# policy unit tests
# ---------------------------------------------------------------------------
class TestRebalancePolicy:
    def test_plan_is_deterministic(self):
        g = _DIRECTED
        skew = planted_skew(g.num_vertices, 4)
        plans = [force_plan(skew, g.indptr, 4) for _ in range(2)]
        assert plans[0] is not None
        np.testing.assert_array_equal(plans[0].new_owner, plans[1].new_owner)
        assert plans[0].moves == plans[1].moves
        assert plans[0].summary() == plans[1].summary()

    def test_plan_never_increases_max_load(self):
        g = _DIRECTED
        plan = force_plan(planted_skew(g.num_vertices, 4), g.indptr, 4)
        assert plan.max_load_after <= plan.max_load_before
        assert plan.gain_ratio >= 1.0
        assert plan.moved_vertices > 0 and plan.moved_arcs > 0

    def test_planted_skew_gain_clears_acceptance_bar(self):
        """The ISSUE's planted-skew claim: cost-model gain >= 1.3x."""
        g = rmat(8, edge_factor=8, seed=7, directed=True)
        plan = force_plan(planted_skew(g.num_vertices, 4), g.indptr, 4)
        assert plan is not None and plan.gain_ratio >= 1.3

    def test_plan_output_is_a_fixed_point(self):
        """Re-proposing on a plan's own ownership finds nothing to move —
        the hysteresis anchor the no-false-fire bench rows rely on."""
        g = _DIRECTED
        for workers in WORKERS:
            skew = planted_skew(g.num_vertices, workers)
            plan = force_plan(skew, g.indptr, workers)
            assert plan is not None
            again = force_plan(plan.new_owner, g.indptr, workers)
            assert again is None

    def test_cooldown_suppresses_next_proposal(self):
        g = _DIRECTED
        skew = planted_skew(g.num_vertices, 4)
        policy = RebalancePolicy(num_workers=4, cooldown=1)
        policy.skew_threshold = 0.0
        matrix = skew_matrix(4)
        assert policy.propose(skew, g.indptr, matrix) is not None
        assert policy.propose(skew, g.indptr, matrix) is None  # cooling down
        assert policy.propose(skew, g.indptr, matrix) is not None

    def test_balanced_timings_never_fire(self):
        """Observed-skew gate: all-equal worker timings stay put even on a
        structurally imbalanced partition."""
        g = _DIRECTED
        skew = planted_skew(g.num_vertices, 4)
        policy = RebalancePolicy(num_workers=4)
        assert policy.propose(skew, g.indptr, np.ones((6, 4))) is None

    def test_min_gain_gate(self):
        """A near-balanced partition with observed skew still declines when
        the structural gain is under ``min_gain``."""
        g = _DIRECTED
        owner = balanced_partition(g, 4)
        policy = RebalancePolicy(num_workers=4, min_gain=1.1)
        assert policy.propose(owner, g.indptr, skew_matrix(4)) is None

    @pytest.mark.parametrize(
        "matrix",
        [
            np.zeros((0, 4)),  # no observed supersteps
            np.ones((1, 4)) * 5.0,  # one superstep < min_supersteps
            np.zeros((6, 4)),  # all-zero durations: no straggler evidence
        ],
        ids=["empty", "one-superstep", "all-zero"],
    )
    def test_degenerate_matrices_never_migrate(self, matrix):
        g = _DIRECTED
        skew = planted_skew(g.num_vertices, 4)
        policy = RebalancePolicy(num_workers=4)
        assert policy.propose(skew, g.indptr, matrix) is None

    def test_single_worker_never_migrates(self):
        g = _DIRECTED
        owner = np.zeros(g.num_vertices, dtype=np.int64)
        policy = RebalancePolicy(num_workers=1, cooldown=0)
        policy.skew_threshold = 0.0
        assert policy.propose(owner, g.indptr, np.ones((4, 1)) * 3.0) is None


# ---------------------------------------------------------------------------
# phase_matrix + MigrationContext plumbing
# ---------------------------------------------------------------------------
class TestPlumbing:
    def test_phase_matrix_empty_run(self):
        metrics = SimpleNamespace(records=[], num_workers=3)
        m = phase_matrix(metrics)
        assert m.shape == (0, 3)
        np.testing.assert_array_equal(straggler_scores(m), np.ones(3))

    def test_phase_matrix_sums_work_phases_and_windows(self):
        recs = [
            SimpleNamespace(phases={"compute": [1.0, 2.0], "serialize": [0.5, 0.5]}),
            SimpleNamespace(phases={"compute": [3.0, 1.0]}),
        ]
        metrics = SimpleNamespace(records=recs, num_workers=2)
        np.testing.assert_allclose(
            phase_matrix(metrics), [[1.5, 2.5], [3.0, 1.0]]
        )
        np.testing.assert_allclose(phase_matrix(metrics, window=1), [[3.0, 1.0]])

    def test_migration_context_round_trip(self):
        old = np.array([0, 0, 1, 1, 2, 2], dtype=np.int64)
        new = np.array([0, 2, 1, 0, 2, 1], dtype=np.int64)
        ctx = MigrationContext(old, new, 3)
        per_worker = [np.flatnonzero(old == w) * 10 for w in range(3)]
        glob = ctx.gather(per_worker)
        np.testing.assert_array_equal(glob, np.arange(6) * 10)
        scattered = ctx.scatter(glob)
        for w in range(3):
            np.testing.assert_array_equal(scattered[w], ctx.new_locals[w] * 10)

    def test_migration_context_route_and_localize(self):
        old = np.zeros(6, dtype=np.int64)
        new = np.array([0, 1, 1, 0, 1, 0], dtype=np.int64)
        ctx = MigrationContext(old, new, 2)
        gids = np.array([5, 1, 3], dtype=np.int64)
        routed = {w: g for w, g, _ in ctx.route(gids)}
        np.testing.assert_array_equal(routed[0], [5, 3])
        np.testing.assert_array_equal(routed[1], [1])
        np.testing.assert_array_equal(ctx.localize(1, [1, 4]), [0, 2])

    def test_migration_context_shape_mismatch(self):
        with pytest.raises(ValueError):
            MigrationContext(np.zeros(4, dtype=np.int64), np.zeros(5, dtype=np.int64), 2)


# ---------------------------------------------------------------------------
# the parity matrix: superstep-trigger migrations across backends
# ---------------------------------------------------------------------------
def _run(name, *, workers, partition, executor=None, transport=None, **kw):
    graph, runner = WORKLOADS[name]
    if executor is not None:
        kw["executor"] = executor
    if transport is not None:
        kw["transport"] = transport
    return runner(graph, num_workers=workers, partition=partition.copy(), **kw)


def _assert_same_run(a, b):
    """Bit-identical everything (same config, different backend)."""
    np.testing.assert_array_equal(a[0], b[0])
    ra, rb = a[-1], b[-1]
    assert ra.data == rb.data
    ma, mb = ra.metrics, rb.metrics
    assert ma.channel_breakdown() == mb.channel_breakdown()
    assert ma.supersteps == mb.supersteps
    assert ma.total_net_bytes == mb.total_net_bytes
    assert ma.total_messages == mb.total_messages
    assert ma.num_rebalances == mb.num_rebalances
    assert ma.rebalanced_vertices == mb.rebalanced_vertices
    assert ma.rebalanced_arcs == mb.rebalanced_arcs


def _test_policy(workers: int) -> RebalancePolicy:
    """skew_threshold=0 removes the *measured-timing* gate, making the
    fire superstep a pure function of cadence + structure — that is what
    lets these tests demand bit-identity across backends (with the
    default 1.2 threshold the firing step can drift with wall-clock
    noise; that path is exercised by bench_rebalance and the epoch test
    below, which assert firing, not bit-equal fire steps)."""
    return RebalancePolicy(
        num_workers=workers, min_supersteps=2, skew_threshold=0.0
    )


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_superstep_migration_parity(name, workers):
    """Planted skew fires on every backend; data matches rebalance-off,
    and sim / process-shm / process-pipe are bit-identical to each other
    (data, traffic, and migration counters)."""
    graph, _ = WORKLOADS[name]
    skew = planted_skew(graph.num_vertices, workers)
    off = _run(name, workers=workers, partition=skew)

    reb_kw = dict(
        rebalance="superstep",
        rebalance_every=2,
        rebalance_policy=_test_policy(workers),
    )
    sim = _run(name, workers=workers, partition=skew, **reb_kw)
    m = sim[-1].metrics
    assert m.num_rebalances > 0, "planted skew must trigger a migration"
    assert m.rebalanced_vertices > 0 and m.rebalanced_arcs > 0
    assert m.supersteps == off[-1].metrics.supersteps

    if name in FLOAT_TOLERANT:
        np.testing.assert_allclose(sim[0], off[0], rtol=1e-9, atol=1e-12)
    else:
        np.testing.assert_array_equal(sim[0], off[0])
        assert sim[-1].data == off[-1].data

    for transport in ("shm", "pipe"):
        reb_kw["rebalance_policy"] = _test_policy(workers)
        proc = _run(
            name,
            workers=workers,
            partition=skew,
            executor="process",
            transport=transport,
            **reb_kw,
        )
        _assert_same_run(sim, proc)


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_balanced_partition_never_migrates(name, workers):
    """Hysteresis end-to-end: on the balancer's fixed-point partition the
    armed engine is byte-for-byte the unarmed engine."""
    graph, _ = WORKLOADS[name]
    part = balanced_partition(graph, workers)
    off = _run(name, workers=workers, partition=part)
    reb = _run(
        name,
        workers=workers,
        partition=part,
        rebalance="superstep",
        rebalance_every=2,
        rebalance_policy=_test_policy(workers),
    )
    assert reb[-1].metrics.num_rebalances == 0
    _assert_same_run(off, reb)


def test_migration_records_trace_instants_and_summary():
    graph, _ = WORKLOADS["wcc"]
    skew = planted_skew(graph.num_vertices, 4)
    buf = io.StringIO()
    with TraceRecorder(buf) as rec:
        out = _run(
            "wcc",
            workers=4,
            partition=skew,
            rebalance="superstep",
            rebalance_every=2,
            rebalance_policy=_test_policy(4),
            trace=rec,
        )
    m = out[-1].metrics
    events = [
        json.loads(line)
        for line in buf.getvalue().splitlines()
        if json.loads(line).get("span") == "rebalance"
    ]
    assert len(events) == m.num_rebalances > 0
    attrs = events[0]["attrs"]
    assert attrs["trigger"] == "superstep"
    assert attrs["moved_vertices"] > 0 and attrs["moved_arcs"] > 0
    assert attrs["gain_ratio"] > 1.0
    summary = m.summary()
    assert summary["rebalances"] == m.num_rebalances
    assert summary["rebalanced_vertices"] == m.rebalanced_vertices
    assert summary["rebalanced_arcs"] == m.rebalanced_arcs


# ---------------------------------------------------------------------------
# epoch trigger over a mutation stream
# ---------------------------------------------------------------------------
_EPOCH_GRAPH = rmat(8, edge_factor=8, seed=7, directed=True)


def _run_epochs(graph, batches, workers, partition, **kw):
    eng = EpochEngine(
        graph, WCCStream(), num_workers=workers, partition=partition.copy(), **kw
    )
    try:
        eng.bootstrap()
        eng.run(batches)
    finally:
        eng.close()
    return eng


@pytest.mark.parametrize("executor", ["sim", "process"])
def test_epoch_trigger_fires_within_two_epochs(executor):
    """Planted skew over a 3-epoch stream migrates at an epoch boundary no
    later than epoch 2, with per-epoch data identical to rebalance-off."""
    workers = 4
    skew = planted_skew(_EPOCH_GRAPH.num_vertices, workers)
    batches = synthesize_stream(_EPOCH_GRAPH, 3, 64, 16, seed=7)

    off = _run_epochs(_EPOCH_GRAPH, batches, workers, skew, executor=executor)
    reb = _run_epochs(
        _EPOCH_GRAPH,
        batches,
        workers,
        skew,
        executor=executor,
        rebalance="epoch",
        rebalance_policy=RebalancePolicy(num_workers=workers, min_supersteps=2),
    )
    fired = [
        e.epoch for e in reb.history if e.result.metrics.num_rebalances > 0
    ]
    assert fired and fired[0] <= 2
    assert not np.array_equal(reb.owner, skew), "ownership must actually change"
    for a, b in zip(off.history, reb.history):
        assert a.result.data == b.result.data


def test_epoch_trigger_noop_on_balanced_partition():
    workers = 4
    part = balanced_partition(_EPOCH_GRAPH, workers)
    batches = synthesize_stream(_EPOCH_GRAPH, 2, 64, 16, seed=7)
    reb = _run_epochs(
        _EPOCH_GRAPH,
        batches,
        workers,
        part,
        rebalance="epoch",
        rebalance_policy=RebalancePolicy(num_workers=workers, min_supersteps=2),
    )
    assert sum(e.result.metrics.num_rebalances for e in reb.history) == 0
    np.testing.assert_array_equal(reb.owner, part)


# ---------------------------------------------------------------------------
# satellite: stats + partition_quality degenerate inputs
# ---------------------------------------------------------------------------
class TestStatsEdgeCases:
    def test_straggler_scores_all_zero_is_ones(self):
        np.testing.assert_array_equal(straggler_scores(np.zeros((5, 4))), np.ones(4))

    def test_straggler_scores_single_worker_is_one(self):
        scores = straggler_scores(np.array([[3.0], [5.0]]))
        np.testing.assert_allclose(scores, [1.0])

    def test_straggler_scores_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            straggler_scores(np.ones(4))

    def test_straggler_scores_skips_silent_supersteps(self):
        # the all-zero row carries no signal and must not dilute the skew
        m = np.array([[0.0, 0.0], [3.0, 1.0]])
        np.testing.assert_allclose(straggler_scores(m), [1.5, 0.5])

    def test_partition_quality_single_worker(self):
        g = rmat(5, edge_factor=4, seed=1, directed=True)
        q = partition_quality(g, np.zeros(g.num_vertices, dtype=np.int64))
        assert q["internal_fraction"] == 1.0
        assert q["edge_cut"] == 0
        assert q["imbalance"] == 1.0

    def test_partition_quality_zero_edge_graph(self):
        g = Graph(4, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        q = partition_quality(g, np.array([0, 0, 1, 1], dtype=np.int64))
        assert q["internal_fraction"] == 1.0
        assert q["edge_cut"] == 0
