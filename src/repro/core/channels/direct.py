"""``DirectMessage``: plain point-to-point message passing (Table I).

Wire format per peer and round: an ``int32`` destination array followed by
a value array (the payload length plus the fixed codec sizes recover the
count, so no explicit header is needed).  The receiver groups messages by
destination vertex with one argsort — this is the "message iterator"
the paper credits for DirectMessage being faster than Pregel+'s nested
vectors.
"""

from __future__ import annotations

import numpy as np

from repro.core.channel import Channel
from repro.core.worker import Worker
from repro.core.vertex import Vertex
from repro.runtime.serialization import Codec, INT32, INT64

__all__ = ["DirectMessage"]

_EMPTY = np.empty(0, dtype=np.int64)


class DirectMessage(Channel):
    """Send arbitrary values to arbitrary vertices; read them all next
    superstep via :meth:`get_iterator`.

    Parameters
    ----------
    worker:
        The owning worker (the paper's ``Worker<VertexT> *w``).
    value_codec:
        Wire codec of message values (default ``int64``).
    """

    def __init__(self, worker: Worker, value_codec: Codec = INT64) -> None:
        super().__init__(worker)
        self.value_codec = value_codec
        m = worker.num_workers
        self._pending_dst: list[list[int]] = [[] for _ in range(m)]
        self._pending_val: list[list] = [[] for _ in range(m)]
        # receive side: messages grouped by local vertex
        self._recv_indptr = np.zeros(worker.num_local + 1, dtype=np.int64)
        self._recv_vals = np.empty(0, dtype=value_codec.dtype)

    # -- sending (during compute) -----------------------------------------
    def send_message(self, dst: int, value) -> None:
        peer = self.worker.owner_of(dst)
        self._pending_dst[peer].append(dst)
        self._pending_val[peer].append(value)

    def send_message_bulk(self, dsts: np.ndarray, values: np.ndarray) -> None:
        """Vectorized send: one call for many (dst, value) pairs."""
        owners = self.worker.owner[dsts]
        for peer in np.unique(owners):
            mask = owners == peer
            self._pending_dst[peer].extend(np.asarray(dsts)[mask].tolist())
            self._pending_val[peer].extend(np.asarray(values)[mask].tolist())

    # -- receiving (next superstep's compute) --------------------------------
    def get_iterator(self, v: Vertex) -> np.ndarray:
        """All message values delivered to ``v`` this superstep."""
        vals = self._recv_vals
        if vals.size == 0:  # fast path: nothing arrived on this channel
            return vals
        lo, hi = self._recv_indptr[v.local], self._recv_indptr[v.local + 1]
        return vals[lo:hi]

    def has_messages(self, v: Vertex) -> bool:
        return bool(self._recv_indptr[v.local + 1] > self._recv_indptr[v.local])

    # -- round protocol ----------------------------------------------------
    def serialize(self) -> None:
        if self.round != 0:
            return
        net_msgs = 0
        for peer in range(self.num_workers):
            dsts = self._pending_dst[peer]
            if not dsts:
                continue
            payload = (
                INT32.encode_array(dsts)
                + self.value_codec.encode_array(self._pending_val[peer])
            )
            self.emit(peer, payload)
            if peer != self.worker.worker_id:
                net_msgs += len(dsts)
            self._pending_dst[peer] = []
            self._pending_val[peer] = []
        self.count_net_messages(net_msgs)

    def deserialize(self, payloads: list[tuple[int, memoryview]]) -> None:
        self.round += 1
        worker = self.worker
        itemsize = INT32.itemsize + self.value_codec.itemsize
        all_dst: list[np.ndarray] = []
        all_val: list[np.ndarray] = []
        for _src, payload in payloads:
            count = len(payload) // itemsize
            all_dst.append(INT32.decode_array(payload[: count * INT32.itemsize]))
            all_val.append(
                self.value_codec.decode_array(payload[count * INT32.itemsize :], count)
            )
        if not all_dst:
            self._recv_indptr[:] = 0
            self._recv_vals = self._recv_vals[:0]
            return
        dst = np.concatenate(all_dst).astype(np.int64)
        vals = np.concatenate(all_val)
        local = worker._local_index[dst]
        order = np.argsort(local, kind="stable")
        local_sorted = local[order]
        self._recv_vals = vals[order]
        counts = np.bincount(local_sorted, minlength=worker.num_local)
        self._recv_indptr[0] = 0
        np.cumsum(counts, out=self._recv_indptr[1:])
        worker.activate_local_bulk(np.unique(local_sorted))
