"""The declarative pipeline: Palgol-lite specs compiled to channels.

The paper's conclusion sketches its future work — compiling the Palgol
DSL down to the channel system so that non-expert users get the
optimizations for free.  This example runs that pipeline: the S-V
algorithm written as the paper's own Palgol listing, compiled twice —
once with standard channels only, once letting the compiler pick
optimized channels — plus a custom spec written from scratch.

Run:  python examples/palgol_dsl.py
"""

import numpy as np

from repro.core.combiner import MIN_I64
from repro.graph import rmat
from repro.palgol import (
    Assign,
    Field,
    If,
    Let,
    Lt,
    NeighborReduce,
    PalgolSpec,
    Var,
    VertexId,
    run_palgol,
    sv_spec,
)


def main():
    graph = rmat(11, edge_factor=6, seed=9, directed=False)
    print(f"input: {graph}\n")

    # -- the paper's S-V listing, compiled both ways --------------------
    spec = sv_spec()
    print("S-V from the paper's Palgol listing:")
    results = {}
    for optimize in (False, True):
        fields, res = run_palgol(spec, graph, optimize=optimize, num_workers=8)
        results[optimize] = fields["D"]
        m = res.metrics
        mode = "optimized channels" if optimize else "standard channels "
        print(
            f"  {mode}: sim {m.simulated_time:7.4f}s  "
            f"net {m.total_net_bytes / 1e6:6.2f} MB  supersteps {res.supersteps}"
        )
    assert (results[True] == results[False]).all()
    print("  identical component labels either way\n")

    # -- a custom spec: distance-2 minimum id ---------------------------------
    # every vertex learns the smallest id within two hops (one
    # NeighborReduce per round, two fixpoint-free rounds)
    two_hop = PalgolSpec(
        name="twohop-min",
        fields={"m": VertexId()},
        iterate=2,
        body=[
            Let("t", NeighborReduce(MIN_I64, Field("m"))),
            If(Lt(Var("t"), Field("m")), then=[Assign("m", Var("t"))]),
        ],
    )
    fields, res = run_palgol(two_hop, graph, num_workers=8)
    sample = sorted(np.unique(fields["m"]).tolist())[:8]
    print("custom two-hop-min spec:")
    print(f"  supersteps {res.supersteps}, distinct labels {np.unique(fields['m']).size}")
    print(f"  smallest labels in use: {sample}")


if __name__ == "__main__":
    main()
