"""The Palgol-lite abstract syntax.

A spec is per-vertex fields plus a loop body of statements.  Expressions
are pure; the three *communication expressions/statements* are the ones
the compiler maps to channels:

* :class:`NeighborReduce` — ``minimum [ D[e] | e <- Nbr[u] ]`` —
  every vertex contributes a value along all its edges, each vertex
  reads the reduction of what arrived;
* :class:`RemoteRead` — ``D[D[u]]`` — read a field of another vertex
  (the request-respond conversation);
* :class:`RemoteUpdate` — ``remote D[D[u]] <?= t`` — combine a value
  into another vertex's field.

The mirror of the paper's S-V listing (Section III-C) in this AST is in
:func:`repro.palgol.library.sv_spec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Optional

from repro.core.combiner import Combiner

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Field",
    "VertexId",
    "Deg",
    "FirstNeighbor",
    "NumVertices",
    "Add",
    "Sub",
    "Mul",
    "Div",
    "Eq",
    "Lt",
    "NeighborReduce",
    "RemoteRead",
    "Stmt",
    "Let",
    "Assign",
    "If",
    "RemoteUpdate",
    "PalgolSpec",
]


# -- expressions ----------------------------------------------------------
class Expr:
    """Base class for pure (and communication) expressions."""

    __slots__ = ()

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Const(Expr):
    value: object


@dataclass(frozen=True)
class Var(Expr):
    """A value bound earlier in the body by :class:`Let`."""

    name: str


@dataclass(frozen=True)
class Field(Expr):
    """The current vertex's own field, e.g. ``D[u]``."""

    name: str


@dataclass(frozen=True)
class VertexId(Expr):
    """``u`` — the current vertex's id."""


@dataclass(frozen=True)
class Deg(Expr):
    """The current vertex's out-degree."""


@dataclass(frozen=True)
class FirstNeighbor(Expr):
    """The current vertex's first out-neighbor (its own id when it has
    none) — the parent-pointer convention of rooted-forest inputs."""


@dataclass(frozen=True)
class NumVertices(Expr):
    """``|V|``."""


@dataclass(frozen=True)
class _BinOp(Expr):
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)


class Add(_BinOp):
    pass


class Sub(_BinOp):
    pass


class Mul(_BinOp):
    pass


class Div(_BinOp):
    pass


class Eq(_BinOp):
    pass


class Lt(_BinOp):
    pass


@dataclass(frozen=True)
class NeighborReduce(Expr):
    """``reduce [ value | e <- Nbr[u] ]`` — a static neighborhood
    exchange: every vertex scatters ``value`` (an expression over its own
    state) along all its edges; the expression evaluates to the
    ``combiner``-reduction of everything that arrived at this vertex.

    ``value`` may only reference the *sender's* state (fields, id,
    degree, constants) — the compiler serializes it to the wire.
    """

    combiner: Combiner
    value: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.value,)


@dataclass(frozen=True)
class RemoteRead(Expr):
    """``field[at]`` — read another vertex's field; ``at`` is an
    expression over the current vertex's state naming the target."""

    field: str
    at: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.at,)


# -- statements --------------------------------------------------------------
class Stmt:
    __slots__ = ()


@dataclass(frozen=True)
class Let(Stmt):
    """Bind ``name`` to an expression for the rest of the body."""

    name: str
    value: Expr


@dataclass(frozen=True)
class Assign(Stmt):
    """``field := value`` on the current vertex.  Counts as a change for
    fixpoint detection when the value differs."""

    field: str
    value: Expr


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: tuple[Stmt, ...] = ()
    els: tuple[Stmt, ...] = ()

    def __init__(self, cond: Expr, then=(), els=()):
        object.__setattr__(self, "cond", cond)
        object.__setattr__(self, "then", tuple(then))
        object.__setattr__(self, "els", tuple(els))


@dataclass(frozen=True)
class RemoteUpdate(Stmt):
    """``remote field[at] <combiner= value`` — fold ``value`` into
    another vertex's field; applied at the end of the round.  Counts as a
    change for fixpoint detection when it modifies the target."""

    field: str
    at: Expr
    value: Expr
    combiner: Combiner


# -- the program ----------------------------------------------------------------
@dataclass(frozen=True)
class PalgolSpec:
    """A complete Palgol-lite program.

    Attributes
    ----------
    fields:
        name -> init expression (evaluated per vertex in the first
        superstep; may use VertexId/Deg/NumVertices/Const only).
    body:
        The loop body (a tuple of statements).
    iterate:
        ``"fixpoint"`` (the paper's ``until fix[...]``) or an int for a
        fixed number of rounds.
    name:
        Used for the generated program class.
    """

    fields: dict
    body: tuple
    iterate: object = "fixpoint"
    name: str = "palgol"

    def __init__(self, fields, body, iterate="fixpoint", name="palgol"):
        object.__setattr__(self, "fields", dict(fields))
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "iterate", iterate)
        object.__setattr__(self, "name", name)
        if iterate != "fixpoint" and not isinstance(iterate, int):
            raise ValueError("iterate must be 'fixpoint' or an int")
