"""Ablation benches for the design decisions DESIGN.md calls out (D1–D5).

These isolate *single* mechanisms the paper's channels rely on, holding
everything else fixed:

* **D1 — positional vs id-echo responses** (RequestRespond.echo_ids)
* **D2 — sorted linear-scan vs hash combining** (ScatterCombine.use_hash)
* **D3 — per-channel message types** (exercised by Table IV S-V/SCC/MSF)
* **D4 — propagation vs partition quality**
* **D5 — cost-model sensitivity** (orderings stable under other networks)
"""

import numpy as np
import pytest

from repro.algorithms.pagerank import PageRankScatter
from repro.algorithms.pointer_jumping import PointerJumpingReqResp
from repro.algorithms.wcc import run_wcc
from repro.algorithms.sv import run_sv
from repro.bench.datasets import load_dataset
from repro.core import ChannelEngine
from repro.graph.partition import hash_partition, metis_like_partition
from repro.pregel_algorithms.sv import run_sv_pregel
from repro.runtime.costmodel import NetworkModel


def _run(graph, program_cls, benchmark, **kw):
    res = benchmark.pedantic(
        lambda: ChannelEngine(graph, program_cls, num_workers=8, **kw).run(),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info.update(
        {
            "message_mb": round(res.metrics.total_net_bytes / 1e6, 3),
            "simulated_time": round(res.metrics.simulated_time, 4),
            "supersteps": res.supersteps,
        }
    )
    return res


# -- D1: response format --------------------------------------------------
@pytest.mark.parametrize("echo", [False, True], ids=["positional", "id-echo"])
def test_ablation_respond_format(benchmark, echo):
    graph = load_dataset("tree")

    class PJ(PointerJumpingReqResp):
        def __init__(self, worker):
            super().__init__(worker)
            self.rr.echo_ids = echo

    res = _run(graph, PJ, benchmark)
    benchmark.extra_info["echo_ids"] = echo
    assert res.supersteps > 2


def test_ablation_respond_format_saves_bytes():
    """The paper's constant ~33% respond-size saving, isolated."""
    graph = load_dataset("tree")

    def bytes_with(echo):
        class PJ(PointerJumpingReqResp):
            def __init__(self, worker):
                super().__init__(worker)
                self.rr.echo_ids = echo

        return ChannelEngine(graph, PJ, num_workers=8).run().metrics.total_net_bytes

    positional, echoed = bytes_with(False), bytes_with(True)
    assert positional < echoed


# -- D2: combine strategy ----------------------------------------------------
@pytest.mark.parametrize("use_hash", [False, True], ids=["linear-scan", "hash"])
def test_ablation_scan_vs_hash(benchmark, use_hash):
    graph = load_dataset("wikipedia")

    class PR(PageRankScatter):
        iterations = 10

        def __init__(self, worker):
            super().__init__(worker)
            self.msg.use_hash = use_hash

    res = _run(graph, PR, benchmark)
    benchmark.extra_info["use_hash"] = use_hash
    assert res.supersteps == 11


# -- D4: propagation vs partition quality --------------------------------------
@pytest.mark.parametrize("partitioner", ["hash", "metis-like"])
def test_ablation_prop_partition_quality(benchmark, partitioner):
    graph = load_dataset("usa-road")  # high diameter: partition matters most
    if partitioner == "hash":
        part = hash_partition(graph.num_vertices, 8, seed=0)
    else:
        part = metis_like_partition(graph, 8, seed=0)

    def run():
        return run_wcc(graph, variant="prop", num_workers=8, partition=part)[1]

    res = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(
        {
            "partitioner": partitioner,
            "rounds": res.metrics.total_rounds,
            "message_mb": round(res.metrics.total_net_bytes / 1e6, 3),
        }
    )


def test_ablation_prop_partition_quality_ordering():
    graph = load_dataset("usa-road")
    ph = hash_partition(graph.num_vertices, 8, seed=0)
    pm = metis_like_partition(graph, 8, seed=0)
    _, rh = run_wcc(graph, variant="prop", num_workers=8, partition=ph)
    _, rm = run_wcc(graph, variant="prop", num_workers=8, partition=pm)
    assert rm.metrics.total_net_bytes < rh.metrics.total_net_bytes


# -- D5: cost-model sensitivity ---------------------------------------------------
NETWORKS = {
    "paper-750mbps": NetworkModel(latency=1e-3, bandwidth=93.75e6),
    "slow-100mbps": NetworkModel(latency=5e-3, bandwidth=12.5e6),
    "fast-10gbps": NetworkModel(latency=1e-4, bandwidth=1.25e9),
}


@pytest.mark.parametrize("network", sorted(NETWORKS))
def test_ablation_costmodel_table6_ordering(benchmark, network):
    """Table VI's headline ordering must hold under any plausible network:
    channel-both < pregel-reqresp in simulated time."""
    graph = load_dataset("facebook")
    nm = NETWORKS[network]

    def run():
        _, best = run_sv(graph, variant="both", num_workers=8, network=nm)
        _, prior = run_sv_pregel(graph, mode="reqresp", num_workers=8, network=nm)
        return best, prior

    best, prior = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(
        {
            "network": network,
            "channel_both": round(best.metrics.simulated_time, 4),
            "pregel_reqresp": round(prior.metrics.simulated_time, 4),
        }
    )
    assert best.metrics.simulated_time < prior.metrics.simulated_time


# -- extension: mirroring as a channel ------------------------------------------
@pytest.mark.parametrize(
    "program", ["channel-scatter", "channel-mirror", "pregel-ghost"]
)
def test_ablation_mirror_channel(cell, program):
    """Beyond the paper: Pregel+'s ghost mode re-packaged as a channel
    (`MirroredScatter`), compared against ScatterCombine and the engine-
    mode original on the same PageRank workload."""
    kwargs = {"ghost_threshold": 16} if program == "pregel-ghost" else {}
    row = cell("pr", program, "webuk", **kwargs)
    assert row["supersteps"] == 31


# -- D4b: local fixpoint depth --------------------------------------------------
@pytest.mark.parametrize("hops", [1, 2, 8, None], ids=lambda h: f"hops-{h}")
def test_ablation_prop_hop_budget(benchmark, hops):
    """Interpolate between per-superstep messaging (1 hop per round) and
    the paper's full block-style convergence (unlimited): the exchange-
    round count falls as the local fixpoint is allowed to run deeper."""
    from repro.core import ChannelEngine, MIN_I64, Propagation, VertexProgram

    graph = load_dataset("usa-road")

    class WCCHops(VertexProgram):
        def __init__(self, worker):
            super().__init__(worker)
            self.prop = Propagation(worker, MIN_I64, max_local_hops=hops)

        def compute(self, v):
            if self.step_num == 1:
                self.prop.add_edges(v, v.edges)
                self.prop.set_value(v, v.id)
            else:
                v.vote_to_halt()

    res = benchmark.pedantic(
        lambda: ChannelEngine(graph, WCCHops, num_workers=8).run(),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info.update(
        {
            "max_local_hops": hops,
            "rounds": res.metrics.total_rounds,
            "message_mb": round(res.metrics.total_net_bytes / 1e6, 3),
        }
    )
