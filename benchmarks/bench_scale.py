"""Out-of-core scale benchmark: disk-built RMAT graphs (BENCH_scale.json).

For each ``--scales`` entry this script proves the out-of-core story end
to end on one row:

1. **Disk build** — :func:`repro.graph.generators.rmat_to_disk` streams
   a ``2**scale * edge_factor``-arc RMAT graph through the two-pass
   counting CSR build into an mmap store; the full edge list is never in
   RAM.  ``build_wall_s`` and the store's on-disk footprint are recorded.
2. **Parity** — the same PageRank (scatter, bulk) runs on the simulated
   backend over an **in-memory copy** of the CSR arrays and on the
   process backend over the **mmap store** (attach-by-path: children get
   a path, not segments).  The row's ``parity`` flag demands
   bit-identical ranks, per-channel traffic breakdown, and
   superstep/byte/message totals — one flag covering both the
   memory-vs-mmap store swap and the sim-vs-process executor swap.
3. **Bounded memory** — a sampler thread polls the run's live-metrics
   segment (PR 8's ``rss_bytes`` gauge, republished by every worker at
   every superstep); each worker's first publish lands right after the
   graph attach and before any compute, so ``peak - first`` is the RSS
   the *run* added (the absolute baseline is polluted by fork-inherited
   parent pages, so growth is the honest quantity).  ``rss_ok`` requires
   the worst worker's growth to stay under the full edge-list size
   (``arcs * 16`` bytes).  The store contributes only the owned
   adjacency slice each worker faults in (``arcs * 8 / workers``,
   contiguous under the degree partition); the rest of the growth is
   per-superstep message temporaries, also ``~arcs * 8 / workers``
   scaled by a small constant — which is why the bound assumes the
   default 4 workers.  A worker materializing the edge list or the full
   CSR blows straight through it.

The artifact is gated in CI by ``check_regression.py`` (kind
``scale``): parity and ``rss_ok`` always, work fields exactly, walls
only between ``speedup_valid`` artifacts.

Run directly::

    PYTHONPATH=src python benchmarks/bench_scale.py                   # scales 16 + 19 (~10M arcs)
    PYTHONPATH=src python benchmarks/bench_scale.py --scales 16 --out BENCH_scale_smoke.json
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from _provenance import write_artifact
from repro.algorithms.pagerank import run_pagerank
from repro.bench.tables import render_rows
from repro.graph.generators import rmat_to_disk
from repro.graph.graph import Graph
from repro.graph.partition import degree_range_partition


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _identical(a, b) -> bool:
    da, db = a[0], b[0]
    same_data = np.array_equal(da, db) if isinstance(da, np.ndarray) else da == db
    ma, mb = a[-1].metrics, b[-1].metrics
    return bool(
        same_data
        and a[-1].data == b[-1].data
        and ma.channel_breakdown() == mb.channel_breakdown()
        and ma.supersteps == mb.supersteps
        and ma.total_rounds == mb.total_rounds
        and ma.total_net_bytes == mb.total_net_bytes
        and ma.total_local_bytes == mb.total_local_bytes
        and ma.total_messages == mb.total_messages
    )


class _RssSampler(threading.Thread):
    """Poll a live segment for per-worker RSS: first publish and peak.

    Workers zero-publish their slot during build — after attaching the
    graph store, before any compute — so the first non-zero ``rss_bytes``
    seen per worker is the pre-compute baseline.
    """

    def __init__(self, live, interval: float = 0.02):
        super().__init__(name="bench-scale-rss", daemon=True)
        self.live = live
        self.interval = interval
        self.first: dict[int, int] = {}
        self.peak: dict[int, int] = {}
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.is_set():
            self.sample()
            self._halt.wait(self.interval)

    def sample(self) -> None:
        try:
            rows = self.live.snapshot()
        except Exception:  # segment mid-teardown
            return
        for row in rows:
            w, rss = int(row["worker"]), int(row["rss_bytes"])
            if rss > 0:
                self.first.setdefault(w, rss)
                self.peak[w] = max(self.peak.get(w, 0), rss)

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)
        self.sample()  # the final published values


def bench_one(
    scale: int,
    edge_factor: int,
    workers: int,
    iterations: int,
    seed: int,
    chunk_edges: int,
    store_root: Path,
) -> dict:
    from repro.obs import LiveMetrics

    store_dir = store_root / f"rmat{scale}"
    t0 = time.perf_counter()
    graph = rmat_to_disk(
        store_dir,
        scale=scale,
        edge_factor=edge_factor,
        seed=seed,
        chunk_edges=chunk_edges,
    )
    build_wall = time.perf_counter() - t0
    arcs = graph.num_edges
    edgelist_bytes = arcs * 16  # two int64 endpoints per arc
    on_disk = graph.store.footprint()["on_disk_bytes"]
    part = degree_range_partition(graph, workers)

    def runner(g, **kw):
        return run_pagerank(
            g,
            variant="scatter",
            iterations=iterations,
            mode="bulk",
            num_workers=workers,
            partition=part,
            **kw,
        )

    # the memory-store twin: same CSR bytes on the heap (the pre-PR-9
    # world), driven on the simulated backend
    mem = Graph.from_csr(
        graph.num_vertices,
        np.array(graph.indptr),
        np.array(graph.indices),
        directed=graph.directed,
        validate=False,
    )
    t0 = time.perf_counter()
    sim = runner(mem)
    sim_wall = time.perf_counter() - t0
    del mem

    live = LiveMetrics.create(workers)
    sampler = _RssSampler(live)
    try:
        sampler.start()
        t0 = time.perf_counter()
        proc = runner(graph, executor="process", live=live)
        run_wall = time.perf_counter() - t0
    finally:
        sampler.stop()
        live.close(unlink=True)

    growth = [
        sampler.peak[w] - sampler.first[w] for w in sorted(sampler.peak)
    ]
    peak_growth = max(growth, default=0)
    peak_abs = max(sampler.peak.values(), default=0)
    m = sim[-1].metrics
    return {
        "workload": "pr-scatter-bulk",
        "workers": workers,
        "scale": scale,
        "vertices": graph.num_vertices,
        "arcs": arcs,
        "edgelist_mb": round(edgelist_bytes / 1e6, 3),
        "store_mb": round(on_disk / 1e6, 3),
        "supersteps": m.supersteps,
        "net_mb": round(m.total_net_bytes / 1e6, 3),
        "build_wall_s": round(build_wall, 4),
        "sim_wall_s": round(sim_wall, 4),
        "run_wall_s": round(run_wall, 4),
        "peak_rss_mb": round(peak_abs / 1e6, 3),
        "peak_rss_growth_mb": round(peak_growth / 1e6, 3),
        "rss_growth_ratio": round(peak_growth / edgelist_bytes, 4),
        # the out-of-core claim: no worker's RSS ever grew by the edge-list
        # size.  Growth is dominated by per-superstep message temporaries
        # (a few times arcs*8/workers); the store itself contributes only
        # the owned adjacency slice each worker faults in (arcs*8/workers,
        # contiguous under the degree partition).  Materializing the edge
        # list or the full CSR per worker blows straight through this.
        "rss_ok": bool(peak_growth < edgelist_bytes),
        "rss_samples": len(sampler.peak),
        "parity": _identical(sim, proc),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales",
        type=int,
        nargs="+",
        default=[16, 19],
        help="RMAT scales: 2**scale vertices each (default: 16 19 — "
        "scale 19 at the default edge factor is the ~10M-arc row)",
    )
    parser.add_argument(
        "--edge-factor",
        type=int,
        default=20,
        help="generated arcs per vertex (default 20)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="process-backend workers (default 4; the rss_ok bound assumes "
        "enough workers that per-worker message temporaries stay under "
        "the edge-list size)",
    )
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--chunk-edges",
        type=int,
        default=1 << 20,
        help="arcs per generation chunk; (seed, chunk-edges) identify the "
        "exact graph, so changing this invalidates work-parity baselines",
    )
    parser.add_argument(
        "--store-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="where to build the mmap stores (default: a fresh temp dir, "
        "deleted afterwards; pass a dir to keep/reuse the stores)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_scale.json",
        help="output JSON path (default: repo-root BENCH_scale.json)",
    )
    args = parser.parse_args(argv)

    cpus = _cpus()
    tmp = None
    if args.store_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="bench_scale_")
        store_root = Path(tmp.name)
    else:
        store_root = args.store_dir
        store_root.mkdir(parents=True, exist_ok=True)
    try:
        rows = [
            bench_one(
                scale,
                args.edge_factor,
                args.workers,
                args.iterations,
                args.seed,
                args.chunk_edges,
                store_root,
            )
            for scale in args.scales
        ]
    finally:
        if tmp is not None:
            tmp.cleanup()

    print(
        render_rows(
            rows,
            title=(
                f"out-of-core RMAT, edge factor {args.edge_factor}, "
                f"{args.workers} workers ({cpus} cpus)"
            ),
            cols=list(rows[0]),
        )
    )
    if cpus < 2:
        print(
            f"NOTE: only {cpus} cpu visible — run_wall_s measures protocol "
            "overhead, not parallel speedup (parity and rss_ok are still "
            "meaningful)",
            file=sys.stderr,
        )

    write_artifact(
        args.out,
        rows,
        edge_factor=args.edge_factor,
        seed=args.seed,
        iterations=args.iterations,
        workers=args.workers,
        chunk_edges=args.chunk_edges,
        cpus=cpus,
        speedup_valid=cpus >= 2,
    )

    broken = [
        f"scale {r['scale']}: {field}"
        for r in rows
        for field in ("parity", "rss_ok")
        if not r[field]
    ]
    if broken:
        print(f"SCALE CONTRACT VIOLATION in: {', '.join(broken)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
