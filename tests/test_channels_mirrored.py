"""Unit tests for the MirroredScatter channel (mirroring as a channel —
the library extension beyond the paper's three optimized channels)."""

import numpy as np
import pytest

from repro.core import (
    ChannelEngine,
    MirroredScatter,
    ScatterCombine,
    SUM_F64,
    VertexProgram,
)
from repro.graph import rmat, star
from helpers import line_graph


def make_program(channel_cls, rounds=3, **channel_kwargs):
    class P(VertexProgram):
        def __init__(self, worker):
            super().__init__(worker)
            self.msg = channel_cls(worker, SUM_F64, **channel_kwargs)
            self.got = {}

        def compute(self, v):
            if self.step_num == 1:
                if v.out_degree:
                    self.msg.add_edges(v, v.edges)
                self.msg.set_message(v, float(v.id + 1))
            elif self.step_num <= rounds:
                self.got.setdefault(v.id, []).append(float(self.msg.get_message(v)))
                self.msg.set_message(v, float(v.id + 1))
            else:
                self.got.setdefault(v.id, []).append(float(self.msg.get_message(v)))
                v.vote_to_halt()

        def finalize(self):
            return self.got

    return P


def run(graph, program, workers=3, **kw):
    return ChannelEngine(graph, program, num_workers=workers, **kw).run()


class TestCorrectness:
    @pytest.mark.parametrize("threshold", [1, 2, 4, 10**6])
    def test_matches_scatter_combine(self, threshold):
        """Same combined values as ScatterCombine for every threshold
        (mirroring only changes the wire, never the semantics)."""
        g = rmat(7, edge_factor=4, seed=3)
        ref = run(g, make_program(ScatterCombine)).data
        got = run(g, make_program(MirroredScatter, threshold=threshold)).data
        assert got == ref

    def test_line_graph(self):
        g = line_graph(5)
        res = run(g, make_program(MirroredScatter, threshold=2), workers=2)
        # vertex 1 receives (0+1) from vertex 0 and (2+1) from vertex 2
        assert res.data[1] == [1.0 + 3.0] * 3
        assert res.data[0] == [2.0] * 3

    def test_multiworker_matches_singleworker(self):
        g = rmat(7, edge_factor=3, seed=5)
        r1 = run(g, make_program(MirroredScatter, threshold=4), workers=1).data
        r4 = run(g, make_program(MirroredScatter, threshold=4), workers=4).data
        assert r1 == r4


class TestWireBehaviour:
    def _steady_state_bytes(self, channel_cls, graph, part, rounds=6, **kw):
        """Bytes of the *last* superstep that carried data (setup paid
        off by then)."""
        res = ChannelEngine(
            graph, make_program(channel_cls, rounds=rounds, **kw),
            num_workers=2, partition=part,
        ).run()
        data_steps = [r for r in res.metrics.records if r.net_bytes > 0]
        return data_steps[-1].net_bytes

    def test_hub_broadcast_collapses(self):
        """A hub with all leaves on one remote worker ships one record per
        superstep after setup, instead of one per leaf."""
        g = star(40, center=0)
        part = np.zeros(40, dtype=np.int64)
        part[1:] = 1
        mirrored = self._steady_state_bytes(MirroredScatter, g, part, threshold=4)
        plain = self._steady_state_bytes(ScatterCombine, g, part)
        assert mirrored < plain / 5

    def test_high_threshold_degenerates_to_scatter(self):
        g = rmat(6, edge_factor=4, seed=1)
        part = (np.arange(g.num_vertices) % 2).astype(np.int64)
        mirrored = self._steady_state_bytes(MirroredScatter, g, part, threshold=10**9)
        plain = self._steady_state_bytes(ScatterCombine, g, part)
        # identical records; mirrored pays only its two 4-byte section
        # headers per payload (2 workers -> at most 4 payloads)
        assert plain <= mirrored <= plain + 4 * 8

    def test_setup_cost_paid_once(self):
        g = star(30, center=0)
        part = np.zeros(30, dtype=np.int64)
        part[1:] = 1
        res = ChannelEngine(
            g,
            make_program(MirroredScatter, rounds=5, threshold=2),
            num_workers=2,
            partition=part,
        ).run()
        data_steps = [r.net_bytes for r in res.metrics.records if r.net_bytes > 0]
        # first superstep ships the expansion tables; later ones are tiny
        assert data_steps[0] > 3 * data_steps[-1]
        assert len(set(data_steps[1:])) == 1  # steady state is constant
