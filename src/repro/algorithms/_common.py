"""Shared helpers for the algorithm modules."""

from __future__ import annotations

import numpy as np

from repro.core.engine import EngineResult

__all__ = ["gather", "run_engine"]


def gather(result: EngineResult, n: int, dtype=np.int64) -> np.ndarray:
    """Turn ``result.data`` (global id -> value) into a dense array."""
    out = np.empty(n, dtype=dtype)
    for vid, val in result.data.items():
        out[vid] = val
    return out


def run_engine(engine_cls, graph, program, **kwargs):
    """Instantiate and run an engine; forwards partition/num_workers/etc."""
    max_supersteps = kwargs.pop("max_supersteps", 100_000)
    engine = engine_cls(graph, program, **kwargs)
    return engine.run(max_supersteps=max_supersteps)
