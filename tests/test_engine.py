"""Unit tests for the channel engine: lifecycle, halting, activation."""

import numpy as np
import pytest

from repro.core import (
    Aggregator,
    ChannelEngine,
    CombinedMessage,
    DirectMessage,
    SUM_I64,
    VertexProgram,
)
from repro.graph.graph import Graph
from repro.runtime.serialization import INT64
from helpers import line_graph


class HaltImmediately(VertexProgram):
    def compute(self, v):
        v.vote_to_halt()


class CountSteps(VertexProgram):
    """Runs for `limit` supersteps keeping everyone active."""

    limit = 3

    def __init__(self, worker):
        super().__init__(worker)
        self.seen = []

    def compute(self, v):
        if self.step_num >= self.limit:
            v.vote_to_halt()

    def finalize(self):
        return {f"w{self.worker.worker_id}": self.worker.step_num}


class TestLifecycle:
    def test_halts_after_one_superstep(self):
        g = line_graph(10)
        res = ChannelEngine(g, HaltImmediately, num_workers=2).run()
        assert res.supersteps == 1

    def test_runs_limit_supersteps(self):
        g = line_graph(10)
        res = ChannelEngine(g, CountSteps, num_workers=2).run()
        assert res.supersteps == 3

    def test_step_num_visible_in_finalize(self):
        g = line_graph(4)
        res = ChannelEngine(g, CountSteps, num_workers=2).run()
        assert all(v == 3 for v in res.data.values())

    def test_max_supersteps_guard(self):
        class Forever(VertexProgram):
            def compute(self, v):
                pass  # never halts

        with pytest.raises(RuntimeError, match="max_supersteps"):
            ChannelEngine(line_graph(4), Forever, num_workers=1).run(max_supersteps=5)

    def test_empty_graph_runs_zero_supersteps(self):
        g = Graph.from_edges(0, [])
        res = ChannelEngine(g, HaltImmediately, num_workers=2).run()
        assert res.supersteps == 0


class TestValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ChannelEngine(line_graph(4), HaltImmediately, num_workers=0)

    def test_rejects_bad_partition_shape(self):
        with pytest.raises(ValueError):
            ChannelEngine(
                line_graph(4), HaltImmediately, num_workers=2, partition=np.zeros(3)
            )

    def test_rejects_out_of_range_partition(self):
        with pytest.raises(ValueError):
            ChannelEngine(
                line_graph(4),
                HaltImmediately,
                num_workers=2,
                partition=np.array([0, 1, 2, 0]),
            )

    def test_rejects_mismatched_channel_counts(self):
        class Uneven(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                if worker.worker_id == 0:
                    self.msg = DirectMessage(worker)

            def compute(self, v):
                v.vote_to_halt()

        with pytest.raises(RuntimeError, match="same channels"):
            ChannelEngine(line_graph(4), Uneven, num_workers=2)


class MessageWake(VertexProgram):
    """Vertex 0 pings down the line; each vertex relays once then halts."""

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = DirectMessage(worker, value_codec=INT64)
        self.received = np.zeros(worker.num_local, dtype=np.int64)

    def compute(self, v):
        if self.step_num == 1:
            if v.id == 0 and v.out_degree:
                self.msg.send_message(int(v.edges.max()), 1)
        else:
            for m in self.msg.get_iterator(v):
                self.received[v.local] += int(m)
                nxt = v.edges[v.edges > v.id]
                if nxt.size:
                    self.msg.send_message(int(nxt[0]), int(m))
        v.vote_to_halt()

    def finalize(self):
        return {int(g): int(self.received[i]) for i, g in enumerate(self.worker.local_ids)}


class TestActivation:
    def test_messages_wake_halted_vertices(self):
        n = 6
        g = line_graph(n)
        res = ChannelEngine(g, MessageWake, num_workers=3).run()
        # the ping visits 1, 2, ..., n-1
        assert [res.data[i] for i in range(n)] == [0] + [1] * (n - 1)
        assert res.supersteps == n  # one relay per superstep

    def test_partition_respected(self):
        g = line_graph(8)
        part = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        engine = ChannelEngine(g, HaltImmediately, num_workers=2, partition=part)
        assert engine.workers[0].local_ids.tolist() == [0, 1, 2, 3]
        assert engine.workers[1].local_ids.tolist() == [4, 5, 6, 7]

    def test_single_worker_runs_everything_locally(self):
        g = line_graph(6)
        res = ChannelEngine(g, MessageWake, num_workers=1).run()
        assert res.metrics.total_net_bytes == 0
        assert res.metrics.total_local_bytes > 0


class BeforeSuperstepCounter(VertexProgram):
    def __init__(self, worker):
        super().__init__(worker)
        self.calls = 0

    def before_superstep(self):
        self.calls += 1

    def compute(self, v):
        if self.step_num >= 2:
            v.vote_to_halt()

    def finalize(self):
        return {f"calls{self.worker.worker_id}": self.calls}


def test_before_superstep_called_every_superstep_plus_final_check():
    g = line_graph(4)
    res = ChannelEngine(g, BeforeSuperstepCounter, num_workers=2).run()
    # 2 supersteps ran; the hook also fires before the terminating check
    assert all(v == 3 for v in res.data.values())


class TestMetricsIntegration:
    def test_compute_time_recorded(self):
        g = line_graph(10)
        res = ChannelEngine(g, CountSteps, num_workers=2).run()
        assert res.metrics.wall_time > 0
        assert all(r.compute_time_max >= 0 for r in res.metrics.records)

    def test_active_vertex_counts(self):
        g = line_graph(10)
        res = ChannelEngine(g, CountSteps, num_workers=2).run()
        assert res.metrics.records[0].active_vertices == 10
