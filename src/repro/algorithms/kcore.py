"""k-core decomposition: the coreness of every vertex.

Distributed h-index iteration (Montresor et al.'s locality-based k-core):
every vertex starts with ``core = degree`` and repeatedly lowers it to
the *h-index* of its neighbors' current estimates (the largest ``h`` such
that at least ``h`` neighbors claim ``core >= h``).  Estimates only
decrease and converge to the true coreness.

Each vertex needs its neighbors' *individual* estimates — not a
reduction — so messages are ``(sender, estimate)`` pairs over a
DirectMessage channel; only vertices whose estimate dropped re-broadcast,
and vote-to-halt gives message-driven termination.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather
from repro.core import ChannelEngine, DirectMessage, Vertex, VertexProgram
from repro.graph.graph import Graph
from repro.runtime.serialization import INT32, pair_codec

__all__ = ["KCore", "run_kcore", "h_index"]

PAIR = pair_codec(INT32, INT32, name="kcore_pair")


def h_index(values: np.ndarray) -> int:
    """Largest h such that at least h entries are >= h."""
    if values.size == 0:
        return 0
    vals = np.sort(values)[::-1]
    ranks = np.arange(1, vals.size + 1)
    ok = vals >= ranks
    return int(ranks[ok][-1]) if ok.any() else 0


class KCore(VertexProgram):
    """H-index iteration to the coreness fixpoint."""

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = DirectMessage(worker, value_codec=PAIR)
        self.core = np.zeros(worker.num_local, dtype=np.int64)
        # per-vertex map: neighbor id -> last announced estimate
        self.heard: list[dict[int, int]] = [dict() for _ in range(worker.num_local)]

    def _broadcast(self, v: Vertex, est: int) -> None:
        send = self.msg.send_message
        payload = (v.id, est)
        for e in v.edges:
            send(int(e), payload)

    def compute(self, v: Vertex) -> None:
        i = v.local
        if self.step_num == 1:
            self.core[i] = v.out_degree
            if v.out_degree:
                self._broadcast(v, int(self.core[i]))
            v.vote_to_halt()
            return
        heard = self.heard[i]
        for rec in self.msg.get_iterator(v):
            heard[int(rec["a"])] = int(rec["b"])
        if heard:
            est = h_index(np.fromiter(heard.values(), dtype=np.int64, count=len(heard)))
            if est < self.core[i]:
                self.core[i] = est
                self._broadcast(v, est)
        v.vote_to_halt()

    def finalize(self) -> dict:
        return {int(g): int(self.core[i]) for i, g in enumerate(self.worker.local_ids)}


def run_kcore(graph: Graph, **engine_kwargs):
    """Compute coreness; returns ``(core_numbers, EngineResult)``."""
    if graph.directed:
        raise ValueError("k-core expects an undirected graph")
    result = ChannelEngine(graph, KCore, **engine_kwargs).run()
    return gather(result, graph.num_vertices), result
