"""Channel library: standard (Table I) and optimized (Table II) channels."""

from repro.core.channels.direct import DirectMessage
from repro.core.channels.combined import CombinedMessage
from repro.core.channels.aggregator import Aggregator
from repro.core.channels.scatter_combine import ScatterCombine
from repro.core.channels.request_respond import RequestRespond
from repro.core.channels.propagation import Propagation
from repro.core.channels.mirrored_scatter import MirroredScatter

__all__ = [
    "DirectMessage",
    "CombinedMessage",
    "Aggregator",
    "ScatterCombine",
    "RequestRespond",
    "Propagation",
    "MirroredScatter",
]
