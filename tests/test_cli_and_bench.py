"""Tests for the CLI (`python -m repro`) and the bench harness."""

import json

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.bench.datasets import DATASETS, load_dataset, table3_rows
from repro.bench.runner import CELLS, run_cell
from repro.bench.tables import render_rows
from repro.graph.io import save_edgelist
from helpers import two_triangles


class TestDatasets:
    def test_registry_covers_table3(self):
        assert set(DATASETS) == {
            "wikipedia",
            "webuk",
            "facebook",
            "twitter",
            "tree",
            "chain",
            "usa-road",
            "rmat24",
        }

    def test_loading_is_cached(self):
        a = load_dataset("facebook")
        b = load_dataset("facebook")
        assert a is b

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("orkut")

    def test_table3_rows_shape(self):
        rows = table3_rows()
        assert len(rows) == 8
        for row in rows:
            assert row["|V|"] > 0 and row["|E|"] > 0
            assert row["avg_deg"] > 0

    def test_type_properties_hold(self):
        assert load_dataset("wikipedia").directed
        assert not load_dataset("facebook").directed
        assert load_dataset("usa-road").weighted
        assert load_dataset("rmat24").weighted
        # the dense/sparse contrast Table VI relies on
        assert load_dataset("twitter").avg_degree > 4 * load_dataset("facebook").avg_degree


class TestRunner:
    def test_cells_cover_all_table_programs(self):
        algos = {a for a, _ in CELLS}
        # bfs joined the registry with the scalar-vs-bulk speedup bench
        assert algos == {"pr", "pj", "wcc", "sv", "scc", "msf", "sssp", "bfs"}

    def test_every_bulk_pair_names_registered_cells(self):
        from repro.bench.runner import BULK_PAIRS

        for _name, scalar_cell, bulk_cell, _extra in BULK_PAIRS:
            assert scalar_cell in CELLS
            assert bulk_cell in CELLS

    def test_run_cell_row_schema(self):
        row = run_cell("wcc", "channel-prop", "facebook", num_workers=4)
        for key in (
            "algorithm",
            "program",
            "dataset",
            "runtime",
            "message_mb",
            "messages",
            "supersteps",
            "rounds",
            "wall_s",
        ):
            assert key in row
        assert row["dataset"] == "facebook"
        assert row["runtime"] > 0

    def test_partitioned_flag_marks_dataset(self):
        row = run_cell("wcc", "channel-prop", "facebook", partitioned=True, num_workers=4)
        assert row["dataset"].endswith("(P)")


class TestRenderRows:
    def test_renders_all_columns(self):
        row = run_cell("wcc", "channel-prop", "facebook", num_workers=4)
        text = render_rows([row], title="T")
        assert "T" in text and "facebook" in text and "message_mb" in text

    def test_empty(self):
        assert "(no rows)" in render_rows([], title="X")


class TestCLI:
    def test_run_json(self, capsys):
        rc = cli_main(
            ["run", "wcc", "--dataset", "facebook", "--variant", "prop", "--json"]
        )
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["algorithm"] == "wcc"
        assert out["supersteps"] >= 1

    def test_run_plain_output(self, capsys):
        rc = cli_main(["run", "pj", "--dataset", "chain", "--variant", "reqresp"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "supersteps" in text and "net_bytes" in text

    def test_run_partitioned(self, capsys):
        rc = cli_main(
            ["run", "wcc", "--dataset", "facebook", "--variant", "prop", "--partitioned"]
        )
        assert rc == 0

    def test_run_from_file(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        save_edgelist(two_triangles(), path)
        rc = cli_main(["run", "sv", "--graph", str(path), "--variant", "both", "--json"])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["vertices"] == 6

    def test_bad_variant(self, capsys):
        rc = cli_main(["run", "msf", "--dataset", "usa-road", "--variant", "prop"])
        assert rc == 2
        assert "unknown variant" in capsys.readouterr().err

    def test_datasets_listing(self, capsys):
        assert cli_main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "wikipedia" in out and "avg_deg" in out

    def test_requires_graph_source(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "wcc"])


class TestStreamCLI:
    @pytest.fixture
    def stream_file(self, tmp_path):
        from repro.graph.generators import erdos_renyi
        from repro.graph.io import save_edgelist, save_update_stream
        from repro.streaming import synthesize_stream

        g = erdos_renyi(200, 3.0, seed=21, directed=True)
        gpath = tmp_path / "g.txt"
        save_edgelist(g, gpath)
        upath = tmp_path / "u.txt"
        save_update_stream(synthesize_stream(g, 2, 5, 5, seed=22), upath)
        return str(gpath), str(upath)

    def test_stream_json_rows(self, stream_file, capsys):
        gpath, upath = stream_file
        rc = cli_main(
            [
                "stream", "wcc", "--graph", gpath, "--updates", upath,
                "--workers", "2", "--json",
            ]
        )
        assert rc == 0
        rows = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert len(rows) == 3  # bootstrap + 2 epochs
        assert rows[0]["refresh"] == "full" and rows[0]["epoch"] == 0
        assert rows[1]["refresh"] == "incremental"
        assert all("affected_vertices" in r for r in rows)

    def test_stream_epoch_size_rechunks(self, stream_file, capsys):
        gpath, upath = stream_file
        rc = cli_main(
            [
                "stream", "pagerank", "--graph", gpath, "--updates", upath,
                "--epoch-size", "4", "--iterations", "3", "--workers", "2",
                "--json",
            ]
        )
        assert rc == 0
        rows = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert len(rows) == 1 + 5  # 20 mutations in chunks of 4
        assert all(r["batch_size"] == 4 for r in rows[1:])

    def test_stream_process_executor_matches_sim(self, stream_file, capsys):
        gpath, upath = stream_file
        rows = {}
        for executor in ("sim", "process"):
            rc = cli_main(
                [
                    "stream", "wcc", "--graph", gpath, "--updates", upath,
                    "--workers", "2", "--executor", executor, "--json",
                ]
            )
            assert rc == 0
            rows[executor] = [
                json.loads(line) for line in capsys.readouterr().out.splitlines()
            ]
        for sim_row, proc_row in zip(rows["sim"], rows["process"]):
            for key in ("supersteps", "rounds", "net_bytes", "local_bytes",
                        "messages", "epoch", "refresh", "batch_size", "seeds"):
                assert proc_row[key] == sim_row[key], key

    def test_run_process_executor_with_recovery(self, capsys):
        rc = cli_main(
            [
                "run", "wcc", "--dataset", "facebook", "--workers", "4",
                "--executor", "process", "--checkpoint-every", "2",
                "--fail", "1:3", "--recovery", "confined", "--json",
            ]
        )
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert out["executor"] == "process"
        assert out["failures"] == 1 and out["checkpoint_bytes"] > 0

    def test_run_rejects_bad_fail_spec_via_engine_validation(self, capsys):
        rc = cli_main(
            [
                "run", "wcc", "--dataset", "facebook", "--workers", "2",
                "--fail", "7:3",
            ]
        )
        assert rc == 2
        assert "bad run options" in capsys.readouterr().err

    def test_stream_bad_compact_threshold(self, stream_file, capsys):
        gpath, upath = stream_file
        rc = cli_main(
            [
                "stream", "wcc", "--graph", gpath, "--updates", upath,
                "--compact-threshold", "0",
            ]
        )
        assert rc == 2
        assert "compact-threshold" in capsys.readouterr().err

    def test_stream_bad_updates_file(self, stream_file, tmp_path, capsys):
        gpath, _ = stream_file
        bad = tmp_path / "bad.txt"
        bad.write_text("nonsense\n")
        rc = cli_main(
            ["stream", "wcc", "--graph", gpath, "--updates", str(bad)]
        )
        assert rc == 2
        assert "bad --updates" in capsys.readouterr().err

    def test_stream_deleting_missing_edge_fails_cleanly(self, stream_file, tmp_path, capsys):
        gpath, _ = stream_file
        upd = tmp_path / "missing.txt"
        upd.write_text("0 - 0 199\n0 - 199 0\n")
        rc = cli_main(
            ["stream", "wcc", "--graph", gpath, "--updates", upd.as_posix()]
        )
        assert rc in (1, 0)  # 1 unless that edge happens to exist
        if rc == 1:
            assert "stream application failed" in capsys.readouterr().err
