"""Parent-side orchestration of the multiprocess backend.

:class:`ProcessBackend` implements the
:class:`~repro.runtime.executor.ExecutorBackend` primitives over real OS
worker processes drawn from a persistent
:class:`~repro.runtime.parallel.pool.WorkerPool`:

* **shared state** — the graph's CSR arrays and the partition array are
  exported once per engine configuration into
  ``multiprocessing.shared_memory`` and attached read-only by every
  worker (no per-worker graph copies);
* **barrier protocol** — one duplex control pipe per worker carries
  ``begin`` / ``compute`` / ``exchange`` commands and their replies; the
  shared drive loop in :meth:`ExecutorBackend.run` is the barrier (no
  worker starts a phase before every worker finished the previous one);
* **peer-to-peer frames** — per-superstep channel frames travel directly
  between worker processes as the exact wire bytes the codec layer
  produced: over per-pair shared-memory ring buffers on
  ``transport="shm"`` pools (the default — barrier votes batch into the
  ring headers and the parent drives a whole superstep with one
  broadcast + one consolidated reply per worker, see ARCHITECTURE.md
  §9), or over dedicated pipes on ``transport="pipe"`` pools; either
  way the parent receives only byte counts and feeds them to the same
  :meth:`MetricsCollector.record_exchange` the simulator uses;
* **fault tolerance for real** — checkpoints are captured worker-side
  and shipped to the parent as checkpoint-codec wire bytes; an injected
  failure kills the worker's OS process outright (the parent observes
  the death through the same supervision that catches genuine crashes),
  a replacement is respawned onto the surviving frame pipes, and both
  recovery modes restore it: rollback pushes the latest checkpoint blob
  to *every* worker, confined replays the lost supersteps from the
  parent's sender-side frame log and ships only the recovered state to
  the replacement.

Because compute, serialization, and byte accounting all run the same
code on the same inputs, a process run's ``result.data``, per-channel
traffic, and byte/message totals are **bit-identical** to a simulated
run — with or without checkpoints, injected failures, or streaming
epochs — as enforced by ``tests/test_parallel.py`` and
``tests/test_executor_backends.py``.  What stays simulated is the cost
model: ``simulated_time`` is still modeled from byte counts, while
``wall_time`` reflects genuinely parallel execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.recovery import confined_recovery, rollback_recovery
from repro.runtime.checkpoint import (
    capture_worker_state,
    decode_state,
    encode_state,
    load_worker_state,
)
from repro.runtime.executor import ExecutorBackend
from repro.runtime.rebalance import MigrationContext, remap_worker_states
from repro.runtime.parallel.pool import WorkerPool
from repro.runtime.parallel.protocol import WorkerProcessError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import ChannelEngine

__all__ = ["ProcessBackend"]


class ProcessBackend(ExecutorBackend):
    """Runs an engine's program over persistent worker processes."""

    name = "process"

    def __init__(self, engine: "ChannelEngine", pool: WorkerPool | None = None) -> None:
        super().__init__(engine)
        #: whether this backend owns its pool's lifecycle (it created it)
        self.owns_pool = pool is None
        self.pool = (
            pool
            if pool is not None
            else WorkerPool(engine.num_workers, transport=engine.transport)
        )
        self._seq = 0  # current superstep's ring-vote sequence (shm only)

    # -- template entry: poison the pool on any escaping error ---------------
    def run(self, **kwargs):
        try:
            return super().run(**kwargs)
        except BaseException:
            # an error escaping mid-protocol leaves worker processes in
            # unknown states (possibly blocked on frame pipes); the pool
            # cannot be trusted again
            self.pool.broken = True
            self.pool.shutdown()
            raise

    # -- primitives ----------------------------------------------------------
    def begin_run(self, fault_tolerant: bool) -> None:
        engine = self.engine
        pool = self.pool
        # the wall clock is already running: export/spawn/reconfigure are
        # real costs of this backend and belong in wall_time, just as
        # channel initialization is inside the simulator's window
        pool.ensure(
            {
                "graph": engine.graph,
                "owner": engine.owner,
                "seeds": engine.initial_active,
                "factory": engine.program_factory,
                "live": engine.live.spec if engine.live is not None else None,
            },
            engine.generation,
        )
        if pool.num_channels != engine.num_channels:
            raise WorkerProcessError(
                f"worker processes constructed {pool.num_channels} channels, "
                f"expected {engine.num_channels}"
            )
        pool.start_run()
        if fault_tolerant:
            # keep the parent's mirror workers usable: recovery rebuilds
            # and restores them (confined replay *runs* on them), and the
            # documented channel lifecycle promises initialize() first
            for worker in engine.workers:
                for channel in worker.channels:
                    channel.initialize()

    def barrier_vote(self) -> int:
        pool = self.pool
        if pool.transport == "shm":
            # one broadcast starts the whole superstep; the children vote
            # through their ring-header slots and proceed autonomously
            # (or go back to the command loop when the global total is 0)
            self._seq = pool.next_seq()
            pool.broadcast(
                {
                    "cmd": "superstep",
                    "seq": self._seq,
                    "log_frames": self.engine.frame_log is not None,
                }
            )
            return sum(
                pool.read_vote(w, self._seq) for w in range(pool.num_workers)
            )
        pool.broadcast({"cmd": "begin"})
        return sum(int(reply["active"]) for reply in pool.gather("superstep begin"))

    def compute_phase(self) -> None:
        if self.pool.transport == "shm":
            return  # already running inside the children's superstep
        # vertex compute, genuinely parallel across processes
        self.pool.broadcast({"cmd": "compute"})
        for w, reply in enumerate(self.pool.gather("compute")):
            self._merge(w, reply)

    def exchange_phase(self) -> None:
        if self.pool.transport == "shm":
            return self._exchange_phase_shm()
        engine = self.engine
        metrics = engine.metrics
        pool = self.pool
        n = engine.num_workers
        log_frames = engine.frame_log is not None
        step_log: list[tuple[list[bool], list[list[bytes]]]] = []

        group_active = [True] * engine.num_channels
        round_num = 0
        while any(group_active):
            pool.broadcast(
                {
                    "cmd": "exchange",
                    "group_active": group_active,
                    "round": round_num,
                    "log_frames": log_frames,
                }
            )
            sent = np.zeros((n, n), dtype=np.int64)
            next_active = [False] * engine.num_channels
            frames: list[list[bytes]] = []
            for w, reply in enumerate(pool.gather("exchange")):
                self._merge(w, reply)
                sent[w] = reply["sent"]
                for cid, flag in enumerate(reply["next_active"]):
                    if flag:
                        next_active[cid] = True
                if log_frames:
                    frames.append(reply["frames"])
            if log_frames:
                # sender-side frame log, identical to the simulator's:
                # the raw cross-worker buffers of this round, pre-exchange
                step_log.append((list(group_active), frames))
                metrics.record_log_bytes(
                    sum(len(buf) for row in frames for buf in row)
                )
            local_bytes = int(np.trace(sent))
            send_bytes = sent.sum(axis=1) - np.diag(sent)
            recv_bytes = sent.sum(axis=0) - np.diag(sent)
            metrics.record_exchange(send_bytes, recv_bytes, local_bytes=local_bytes)
            group_active = next_active
            round_num += 1

        if log_frames:
            engine.frame_log.append_step(engine.step_num, step_log)

    def _exchange_phase_shm(self) -> None:
        """Collect the consolidated superstep replies and replay the
        per-round accounting the children performed off-pipe, producing
        byte-for-byte the same metrics and frame-log entries as the
        round-by-round pipe protocol (and the simulator)."""
        engine = self.engine
        metrics = engine.metrics
        pool = self.pool
        n = engine.num_workers
        log_frames = engine.frame_log is not None
        step_log: list[tuple[list[bool], list[list[bytes]]]] = []

        replies = pool.gather("superstep")
        for w, reply in enumerate(replies):
            self._merge(w, reply)

        num_rounds = {len(reply["rounds"]) for reply in replies}
        if len(num_rounds) != 1:  # pragma: no cover - protocol bug guard
            raise WorkerProcessError(
                f"workers disagree on exchange round count: {sorted(num_rounds)}"
            )

        group_active = [True] * engine.num_channels
        for r in range(num_rounds.pop()):
            sent = np.zeros((n, n), dtype=np.int64)
            next_active = [False] * engine.num_channels
            frames: list[list[bytes]] = []
            for w, reply in enumerate(replies):
                rnd = reply["rounds"][r]
                sent[w] = rnd["sent"]
                for cid, flag in enumerate(rnd["next_active"]):
                    if flag:
                        next_active[cid] = True
                if log_frames:
                    frames.append([bytes(b) for b in rnd["frames"]])
            if log_frames:
                step_log.append((list(group_active), frames))
                metrics.record_log_bytes(
                    sum(len(buf) for row in frames for buf in row)
                )
            local_bytes = int(np.trace(sent))
            send_bytes = sent.sum(axis=1) - np.diag(sent)
            recv_bytes = sent.sum(axis=0) - np.diag(sent)
            metrics.record_exchange(send_bytes, recv_bytes, local_bytes=local_bytes)
            # the same OR-merge every child applied in-stream
            group_active = next_active

        if log_frames:
            engine.frame_log.append_step(engine.step_num, step_log)

    def capture_state_blobs(self) -> list[bytes]:
        # snapshots are captured worker-side and cross the control pipes
        # as the exact checkpoint-codec wire bytes the simulator would
        # have written, so checkpoint sizes are bit-identical too
        self.pool.broadcast({"cmd": "capture"})
        return [bytes(reply["blob"]) for reply in self.pool.gather("checkpoint capture")]

    def migrate(self, plan) -> None:
        """Migrate vertex ownership across the live worker processes.

        All children are quiescent (blocked on their control pipes at
        this superstep barrier), so the sequence is race-free: capture
        every child's state over the control protocol (checkpoint wire
        format), remap it parent-side, rewrite the *shared* ownership
        array in place, then have each child rebuild its Worker against
        the migrated partition and load its remapped state (``remap``
        keeps the graph attachments, ``step_num``, and the live writer).
        The parent's mirror workers rebuild last, so recovery and
        confined replay keep operating on the new ownership.
        """
        engine = self.engine
        pool = self.pool
        states = [decode_state(blob) for blob in self.capture_state_blobs()]
        ctx = MigrationContext(engine.owner, plan.new_owner, engine.num_workers)
        new_states = remap_worker_states(states, ctx, engine.workers[0].channels)
        pool.update_owner(plan.new_owner)
        engine.owner = np.asarray(plan.new_owner, dtype=np.int64)
        for w in range(engine.num_workers):
            pool.send(w, {"cmd": "remap", "blob": encode_state(new_states[w])})
        pool.gather("rebalance remap")
        for w in range(engine.num_workers):
            engine.rebuild_worker(w)

    def recover(self, doomed: list[int], mode: str) -> None:
        engine = self.engine
        pool = self.pool

        # the failure is real: each doomed worker's OS process exits hard
        # and its death surfaces through the standard supervision path as
        # a WorkerProcessError, which recovery absorbs; the replacement
        # then joins the surviving peers' frame pipes.  Kill/respawn one
        # worker at a time so the pool's supervision never trips over a
        # *previously* injected death while confirming the next respawn.
        for w in doomed:
            try:
                pool.kill(w)
            except WorkerProcessError:
                pass
            pool.respawn(w)

        # 3. the recovery procedures themselves run on the engine's
        # in-process mirror workers — the same code path as the simulator,
        # operating purely on checkpoint blobs and the parent-side frame
        # log — and the recovered state then ships to the children
        if mode == "confined":
            confined_recovery(engine, doomed)
            # only the failed workers' state changed; survivors' live
            # processes keep their current state, exactly per the paper
            for w in doomed:
                blob = encode_state(capture_worker_state(engine.workers[w]))
                pool.send(
                    w,
                    {"cmd": "restore", "blob": blob, "step_num": engine.step_num},
                )
            for w in doomed:
                pool.reply(w, "confined restore")
        else:
            rollback_recovery(engine, doomed)
            snapshot = engine.checkpoint
            for w in range(engine.num_workers):
                pool.send(
                    w,
                    {
                        "cmd": "restore",
                        "blob": snapshot.blobs[w],
                        "step_num": snapshot.superstep,
                    },
                )
            pool.gather("rollback restore")

    def collect_results(self) -> dict:
        engine = self.engine
        pool = self.pool
        sync = engine.sync_state
        pool.broadcast({"cmd": "finalize", "sync": sync})
        data: dict = {}
        for w, reply in enumerate(pool.gather("finalize")):
            data.update(reply["data"])
            if sync:
                self._restore_worker(w, reply["state"])
        return data

    def shutdown(self) -> None:
        if self.owns_pool:
            self.pool.shutdown()

    # -- helpers -------------------------------------------------------------
    def _merge(self, worker_id: int, reply: dict) -> None:
        """Fold one worker's phase reply into the run's metrics, through
        the same counting surface the channels use in-process."""
        metrics = self.engine.metrics
        metrics.record_compute(worker_id, reply["seconds"])
        for phase, seconds in reply.get("phases", {}).items():
            metrics.record_phase(worker_id, phase, seconds)
        counters = reply["counters"]
        if counters["messages"]:
            metrics.count_messages(counters["messages"])
        for label, (net, local, msgs) in counters["channels"].items():
            metrics.count_channel_bytes(label, net, local=False)
            metrics.count_channel_bytes(label, local, local=True)
            metrics.count_channel_messages(label, msgs)

    def _restore_worker(self, w: int, state: dict) -> None:
        """Load a child's end-of-run state into the parent's worker ``w``
        (checkpoint capture format), so post-run introspection of
        ``engine.workers`` sees what actually ran."""
        load_worker_state(self.engine.workers[w], state)
