"""Shared test utilities: serial oracles and tiny graph fixtures."""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph

__all__ = [
    "nx_components",
    "nx_scc",
    "nx_mst_weight",
    "nx_sssp",
    "pagerank_oracle",
    "line_graph",
    "two_triangles",
]


def _nx_graph(graph: Graph, directed: bool):
    import networkx as nx

    G = nx.DiGraph() if directed else nx.Graph()
    G.add_nodes_from(range(graph.num_vertices))
    src, dst = graph.edge_array()
    if graph.weighted:
        G.add_weighted_edges_from(zip(src.tolist(), dst.tolist(), graph.weights.tolist()))
    else:
        G.add_edges_from(zip(src.tolist(), dst.tolist()))
    return G


def nx_components(graph: Graph) -> np.ndarray:
    """labels[v] = min vertex id of v's weak component."""
    import networkx as nx

    G = _nx_graph(graph, directed=False)
    labels = np.zeros(graph.num_vertices, dtype=np.int64)
    for comp in nx.connected_components(G):
        mn = min(comp)
        for u in comp:
            labels[u] = mn
    return labels


def nx_scc(graph: Graph) -> np.ndarray:
    """labels[v] = min vertex id of v's strong component."""
    import networkx as nx

    G = _nx_graph(graph, directed=True)
    labels = np.zeros(graph.num_vertices, dtype=np.int64)
    for comp in nx.strongly_connected_components(G):
        mn = min(comp)
        for u in comp:
            labels[u] = mn
    return labels


def nx_mst_weight(graph: Graph) -> float:
    import networkx as nx

    G = _nx_graph(graph, directed=False)
    return sum(d["weight"] for _, _, d in nx.minimum_spanning_edges(G, data=True))


def nx_sssp(graph: Graph, source: int) -> np.ndarray:
    import networkx as nx

    G = _nx_graph(graph, directed=graph.directed)
    weight = "weight" if graph.weighted else None
    dists = nx.single_source_dijkstra_path_length(G, source, weight=weight)
    out = np.full(graph.num_vertices, np.inf)
    for v, d in dists.items():
        out[v] = d
    return out


def pagerank_oracle(graph: Graph, iterations: int, damping: float = 0.85) -> np.ndarray:
    """Dense power iteration with a dead-end sink, matching the paper's
    Fig. 1 formulation exactly."""
    n = graph.num_vertices
    deg = graph.out_degrees
    M = np.zeros((n, n))
    for v in range(n):
        d = deg[v]
        if d:
            # np.add.at accumulates parallel edges (fancy indexing would not)
            np.add.at(M[:, v], graph.neighbors(v), 1.0 / d)
    r = np.full(n, 1.0 / n)
    for _ in range(iterations):
        s = r[deg == 0].sum() / n
        r = (1 - damping) / n + damping * (M @ r + s)
    return r


def line_graph(n: int, weighted: bool = False) -> Graph:
    """Undirected path 0-1-2-...-(n-1)."""
    src = np.arange(n - 1, dtype=np.int64)
    dst = src + 1
    w = np.ones(n - 1) if weighted else None
    return Graph(n, src, dst, weights=w, directed=False)


def two_triangles() -> Graph:
    """Two disjoint triangles: {0,1,2} and {3,4,5}."""
    edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
    return Graph.from_edges(6, edges, directed=False)
