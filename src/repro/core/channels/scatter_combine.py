"""``ScatterCombine``: the static-messaging-pattern channel (Fig. 5).

For algorithms where every vertex sends one value to *all* of its
neighbors every superstep (PageRank, the S-V tree-merging broadcast), the
message dispatch structure never changes.  This channel pre-sorts the
worker's local edge list by destination once; every subsequent superstep
produces the per-destination combined values with a single segmented
reduction over that sorted order — no hashing, no per-message routing.

Sender-side combining across local edges also removes the redundant
(destination, value) records a basic implementation would emit once per
edge: each unique destination is sent at most once per worker per
superstep, which is where the paper's ~1/3 message-size reduction on
PageRank comes from.
"""

from __future__ import annotations

import numpy as np

from repro.core.channel import Channel
from repro.core.combiner import Combiner
from repro.core.vertex import Vertex
from repro.core.worker import Worker
from repro.runtime.serialization import INT32
from repro.util import group_starts

__all__ = ["ScatterCombine"]


class ScatterCombine(Channel):
    """Scatter one value per vertex along static edges, combine per receiver.

    Parameters
    ----------
    worker:
        Owning worker.
    combiner:
        Reduction applied to all values arriving at one vertex (must carry
        a NumPy ufunc; all built-ins do).
    """

    def __init__(self, worker: Worker, combiner: Combiner, use_hash: bool = False) -> None:
        super().__init__(worker)
        self.combiner = combiner
        self.value_codec = combiner.codec
        #: ablation switch (D2 in DESIGN.md): combine per destination with
        #: a hash map instead of the pre-sorted linear scan of Fig. 5
        self.use_hash = use_hash
        # edge collection phase (scalar appends + bulk array chunks)
        self._edge_src: list[int] = []
        self._edge_dst: list[int] = []
        self._edge_src_chunks: list[np.ndarray] = []
        self._edge_dst_chunks: list[np.ndarray] = []
        self._built = False
        # per-superstep state
        self._values = np.full(
            worker.num_local, combiner.identity, dtype=combiner.codec.dtype
        )
        self._sent_mask = np.zeros(worker.num_local, dtype=bool)
        self._dirty = False
        # receive side
        self._slots = np.full(
            worker.num_local, combiner.identity, dtype=combiner.codec.dtype
        )
        self._has_msg = np.zeros(worker.num_local, dtype=bool)
        # static dispatch structure (built lazily)
        self._seg_edge_src: np.ndarray | None = None  # edge -> sender local idx
        self._seg_starts: np.ndarray | None = None  # segment starts (per unique dst)
        self._edge_dst_sorted: np.ndarray = np.empty(0, dtype=np.int64)
        self._uniq_dst_wire: list[np.ndarray] = []  # per peer: int32 dst ids
        self._uniq_positions: list[np.ndarray] = []  # per peer: positions in uniq order

    # -- setup (usually superstep 1) ----------------------------------------
    def add_edge(self, v: Vertex, dst: int) -> None:
        """Register a static edge from ``v`` to global vertex ``dst``."""
        self._edge_src.append(v.local)
        self._edge_dst.append(dst)
        self._built = False

    def add_edges(self, v: Vertex, dsts: np.ndarray) -> None:
        """Register all of ``v``'s static out-edges at once."""
        self._edge_src.extend([v.local] * len(dsts))
        self._edge_dst.extend(np.asarray(dsts).tolist())
        self._built = False

    def add_edges_bulk(self, local_src: np.ndarray, dsts: np.ndarray) -> None:
        """Register many edges in one call: ``local_src[i]`` (a *local*
        sender index) scatters to global vertex ``dsts[i]``.  The bulk
        analogue of calling :meth:`add_edges` over a whole frontier."""
        local_src = np.asarray(local_src, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        if local_src.shape != dsts.shape:
            raise ValueError("local_src and dsts must have equal length")
        self._edge_src_chunks.append(local_src)
        self._edge_dst_chunks.append(dsts)
        self._built = False

    def _collected_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """All registered edges so far, scalar appends first then bulk
        chunks, as two flat int64 arrays."""
        src = np.concatenate(
            [np.asarray(self._edge_src, dtype=np.int64)] + self._edge_src_chunks
        )
        dst = np.concatenate(
            [np.asarray(self._edge_dst, dtype=np.int64)] + self._edge_dst_chunks
        )
        return src, dst

    def _build(self) -> None:
        """Pre-sort edges by destination (the one-time cost of Fig. 5)."""
        src, dst = self._collected_edges()
        order = np.argsort(dst, kind="stable")
        dst_sorted = dst[order]
        self._seg_edge_src = src[order]
        self._edge_dst_sorted = dst_sorted  # kept for the D2 hash ablation
        uniq_dst, starts = group_starts(dst_sorted)
        self._seg_starts = starts

        owners = self.worker.owner[uniq_dst]
        self._uniq_dst_wire = []
        self._uniq_positions = []
        for peer in range(self.num_workers):
            pos = np.flatnonzero(owners == peer)
            self._uniq_positions.append(pos)
            self._uniq_dst_wire.append(uniq_dst[pos].astype(np.int32))
        self._built = True

    # -- per-superstep API ---------------------------------------------------
    def set_message(self, v: Vertex, value) -> None:
        """Set the value ``v`` scatters to all its registered edges this
        superstep."""
        self._values[v.local] = value
        self._sent_mask[v.local] = True
        self._dirty = True

    # alias matching the paper's prose ("emits an initial message using the
    # send_message() interface")
    send_message = set_message

    def set_messages(self, local_idx: np.ndarray, values: np.ndarray) -> None:
        """Array form of :meth:`set_message`: ``local_idx[i]`` scatters
        ``values[i]`` along its registered edges this superstep."""
        self._values[local_idx] = values
        self._sent_mask[local_idx] = True
        self._dirty = True

    def get_message(self, v: Vertex):
        """Combined value of everything scattered to ``v`` last superstep."""
        return self._slots[v.local]

    def get_messages(self) -> tuple[np.ndarray, np.ndarray]:
        """``(values, has_msg)`` views over all local vertices — the
        combined value per local index plus a mask of who received
        anything.  Treat both as read-only; they are rewritten on the next
        exchange."""
        return self._slots, self._has_msg

    def has_message(self, v: Vertex) -> bool:
        return bool(self._has_msg[v.local])

    # -- checkpointing -------------------------------------------------------
    def snapshot(self) -> dict:
        src, dst = self._collected_edges()
        return {
            "edge_src": src,
            "edge_dst": dst,
            "values": self._values.copy(),
            "sent_mask": self._sent_mask.copy(),
            "dirty": self._dirty,
            "slots": self._slots.copy(),
            "has_msg": self._has_msg.copy(),
        }

    def restore(self, state: dict) -> None:
        # the static dispatch structure is rebuilt lazily by _build(),
        # which is deterministic given the same flat edge arrays
        self._edge_src, self._edge_dst = [], []
        self._edge_src_chunks = [state["edge_src"].copy()]
        self._edge_dst_chunks = [state["edge_dst"].copy()]
        self._built = False
        self._values[...] = state["values"]
        self._sent_mask[...] = state["sent_mask"]
        self._dirty = state["dirty"]
        self._slots[...] = state["slots"]
        self._has_msg[...] = state["has_msg"]

    def migrate_states(self, states: list[dict], ctx) -> list[dict]:
        # per-vertex halves follow their vertices; the static edge sets
        # are globalized through each old worker's local ids, routed by
        # the new owner of the *sender*, and re-localized — _build() then
        # re-derives the dispatch structure deterministically
        values = ctx.remap_vertex_arrays([s["values"] for s in states])
        sent = ctx.remap_vertex_arrays([s["sent_mask"] for s in states])
        slots = ctx.remap_vertex_arrays([s["slots"] for s in states])
        has_msg = ctx.remap_vertex_arrays([s["has_msg"] for s in states])
        src_g = np.concatenate(
            [ctx.old_locals[w][s["edge_src"]] for w, s in enumerate(states)]
        )
        dst_g = np.concatenate([s["edge_dst"] for s in states])
        out = []
        for w, gids, (dsts,) in ctx.route(src_g, dst_g):
            out.append(
                {
                    "edge_src": ctx.localize(w, gids),
                    "edge_dst": dsts,
                    "values": values[w],
                    "sent_mask": sent[w],
                    # serialize round 0 always runs and clears _dirty, so
                    # at a superstep boundary no worker is mid-scatter
                    "dirty": any(s["dirty"] for s in states),
                    "slots": slots[w],
                    "has_msg": has_msg[w],
                }
            )
        return out

    # -- round protocol -----------------------------------------------------
    def serialize(self) -> None:
        if self.round != 0 or not self._dirty:
            return
        if not self._built:
            self._build()
        assert self._seg_edge_src is not None and self._seg_starts is not None
        self._dirty = False
        self._sent_mask[:] = False
        if self._seg_edge_src.size == 0:
            return
        if self.use_hash:
            combined = self._hash_combine()
        else:
            # Fig. 5: one linear pass over the pre-sorted edges produces
            # the combined message value for every unique destination.
            per_edge = self._values[self._seg_edge_src]
            combined = self.combiner.reduceat(per_edge, self._seg_starts)
        net_msgs = 0
        for peer in range(self.num_workers):
            pos = self._uniq_positions[peer]
            if pos.size == 0:
                continue
            payload = self._uniq_dst_wire[peer].tobytes() + self.value_codec.encode_array(
                combined[pos]
            )
            self.emit(peer, payload)
            if peer != self.worker.worker_id:
                net_msgs += int(pos.size)
        self.count_net_messages(net_msgs)

    def _hash_combine(self) -> np.ndarray:
        """D2 ablation: the general-case per-message hash combining that a
        basic message channel performs — one lookup and one combine per
        edge.  Because the edges are iterated in sorted-destination order,
        dict insertion order equals the sorted-unique order the linear
        scan produces, so results are identical; only the cost differs."""
        assert self._seg_edge_src is not None
        fn = self.combiner.fn
        values = self._values
        table: dict = {}
        for dst, src in zip(
            self._edge_dst_sorted.tolist(), self._seg_edge_src.tolist()
        ):
            val = values[src]
            if dst in table:
                table[dst] = fn(table[dst], val)
            else:
                table[dst] = val
        return np.fromiter(
            table.values(), dtype=self.value_codec.dtype, count=len(table)
        )

    def deserialize(self, payloads: list[tuple[int, memoryview]]) -> None:
        self.round += 1
        worker = self.worker
        self._slots[:] = self.combiner.identity
        self._has_msg[:] = False
        if not payloads:
            return
        itemsize = INT32.itemsize + self.value_codec.itemsize
        for _src, payload in payloads:
            count = len(payload) // itemsize
            dst = INT32.decode_array(payload[: count * INT32.itemsize]).astype(np.int64)
            vals = self.value_codec.decode_array(payload[count * INT32.itemsize :], count)
            local = worker._local_index[dst]
            self.combiner.accumulate_at(self._slots, local, vals)
            self._has_msg[local] = True
        worker.activate_local_bulk(np.flatnonzero(self._has_msg))
