"""Command-line interface: run any library algorithm on a dataset.

Examples::

    python -m repro run pagerank --dataset wikipedia --variant scatter
    python -m repro run pagerank --dataset bulk-100k --variant scatter --mode bulk
    python -m repro run sv --dataset twitter --variant both --workers 16
    python -m repro run wcc --graph my_edges.txt --variant prop --partitioned
    python -m repro datasets
    python -m repro tables 6
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.bench.datasets import DATASETS, EXTRA_DATASETS, load_dataset, table3_rows
from repro.bench.runner import CELLS
from repro.graph.io import load_edgelist
from repro.graph.partition import metis_like_partition

__all__ = ["main"]

#: algorithm -> its channel-system variants exposed on the CLI
VARIANTS = {
    "pagerank": {
        "basic": ("pr", "channel-basic"),
        "scatter": ("pr", "channel-scatter"),
        "mirror": ("pr", "channel-mirror"),
    },
    "pj": {"basic": ("pj", "channel-basic"), "reqresp": ("pj", "channel-reqresp")},
    "wcc": {"basic": ("wcc", "channel-basic"), "prop": ("wcc", "channel-prop")},
    "sv": {
        "basic": ("sv", "channel-basic"),
        "reqresp": ("sv", "channel-reqresp"),
        "scatter": ("sv", "channel-scatter"),
        "both": ("sv", "channel-both"),
    },
    "scc": {"basic": ("scc", "channel-basic"), "prop": ("scc", "channel-prop")},
    "msf": {"basic": ("msf", "channel-basic")},
    "sssp": {"basic": ("sssp", "channel-basic"), "prop": ("sssp", "channel-prop")},
    "bfs": {"basic": ("bfs", "channel-basic")},
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="channel-based vertex-centric graph processing"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one algorithm and print metrics")
    run.add_argument("algorithm", choices=sorted(VARIANTS))
    src = run.add_mutually_exclusive_group(required=True)
    src.add_argument(
        "--dataset",
        choices=sorted(DATASETS) + sorted(EXTRA_DATASETS),
        help="built-in dataset",
    )
    src.add_argument("--graph", help="edge-list file (see repro.graph.io)")
    run.add_argument("--variant", default="basic")
    run.add_argument(
        "--mode",
        choices=["scalar", "bulk"],
        default="scalar",
        help="compute path: per-vertex (scalar) or columnar (bulk)",
    )
    run.add_argument("--workers", type=int, default=8)
    run.add_argument(
        "--partitioned",
        action="store_true",
        help="use the METIS-like partitioner instead of hash partitioning",
    )
    run.add_argument("--json", action="store_true", help="machine-readable output")

    sub.add_parser("datasets", help="print the Table III dataset inventory")

    tables = sub.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument("which", nargs="*", help="table numbers (default: all)")
    return parser


def _cmd_run(args) -> int:
    variants = VARIANTS[args.algorithm]
    if args.variant not in variants:
        print(
            f"unknown variant {args.variant!r} for {args.algorithm}; "
            f"choose from {sorted(variants)}",
            file=sys.stderr,
        )
        return 2
    algo, program = variants[args.variant]
    if args.mode == "bulk":
        if (algo, program + "-bulk") not in CELLS:
            print(
                f"{args.algorithm} variant {args.variant!r} has no bulk port",
                file=sys.stderr,
            )
            return 2
        program += "-bulk"
    runner = CELLS[(algo, program)]

    graph = load_dataset(args.dataset) if args.dataset else load_edgelist(args.graph)
    kwargs = {"num_workers": args.workers}
    if args.partitioned:
        kwargs["partition"] = metis_like_partition(graph, args.workers, seed=0)

    out = runner(graph, **kwargs)
    result = out[-1]
    m = result.metrics
    row = {
        "algorithm": args.algorithm,
        "variant": args.variant,
        "graph": args.dataset or args.graph,
        "vertices": graph.num_vertices,
        "edges": graph.num_input_edges,
        "workers": args.workers,
        **m.summary(),
    }
    if args.json:
        print(json.dumps(row))
    else:
        for k, v in row.items():
            if isinstance(v, float):
                v = round(v, 6)
            print(f"{k:16s} {v}")
    return 0


def _cmd_datasets() -> int:
    rows = table3_rows()
    cols = list(rows[0])
    print("  ".join(c.ljust(12) for c in cols))
    for r in rows:
        print("  ".join(str(r[c]).ljust(12) for c in cols))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "tables":
        from repro.bench.tables import main as tables_main

        tables_main(args.which)
        return 0
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
