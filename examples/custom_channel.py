"""Extending the channel library: a custom Top-K channel.

The paper's Fig. 3 contract — ``initialize / serialize / deserialize /
again`` — is the whole interface an expert needs to add an optimization.
This example implements a **TopK channel** (a bounded aggregator that
keeps the k largest (score, vertex) pairs, merging per worker before
anything hits the wire) and uses it to track the top PageRank vertices
online, without a second pass over the result.

Run:  python examples/custom_channel.py
"""

import heapq

import numpy as np

from repro import Aggregator, Channel, ChannelEngine, CombinedMessage, SUM_F64, VertexProgram
from repro.graph import rmat
from repro.runtime.serialization import FLOAT64, INT32

_MASTER = 0


class TopKChannel(Channel):
    """Global top-k reduction: each vertex offers (score, id); every
    worker keeps only its k best before sending, the master merges, and
    the global top-k is readable everywhere next superstep.

    Wire format per round-0 payload: k' records of (id:int32, score:f64).
    Round 1 broadcasts the merged list — two exchange rounds, like the
    Aggregator.
    """

    def __init__(self, worker, k: int):
        super().__init__(worker)
        self.k = k
        self._local: list[tuple[float, int]] = []  # min-heap of (score, id)
        self._merged: list[tuple[float, int]] = []  # master scratch
        self._result: list[tuple[int, float]] = []

    # -- vertex-facing API ----------------------------------------------
    def offer(self, vid: int, score: float) -> None:
        """Propose (vid, score) for the global top-k."""
        if len(self._local) < self.k:
            heapq.heappush(self._local, (score, vid))
        elif score > self._local[0][0]:
            heapq.heapreplace(self._local, (score, vid))

    def result(self) -> list[tuple[int, float]]:
        """Last superstep's global top-k, best first."""
        return list(self._result)

    # -- the Fig. 3 contract ------------------------------------------------
    def _encode(self, pairs: list[tuple[float, int]]) -> bytes:
        ids = INT32.encode_array([vid for _, vid in pairs])
        scores = FLOAT64.encode_array([s for s, _ in pairs])
        return ids + scores

    def _decode(self, payload) -> list[tuple[float, int]]:
        count = len(payload) // (INT32.itemsize + FLOAT64.itemsize)
        ids = INT32.decode_array(payload[: count * INT32.itemsize])
        scores = FLOAT64.decode_array(payload[count * INT32.itemsize :], count)
        return [(float(s), int(v)) for s, v in zip(scores, ids)]

    def serialize(self) -> None:
        me = self.worker.worker_id
        if self.round == 0:
            if self._local:
                self.emit(_MASTER, self._encode(self._local))
                if me != _MASTER:
                    self.worker.count_net_messages(len(self._local))
                self._local = []
        elif self.round == 1 and me == _MASTER:
            payload = self._encode(self._merged)
            for peer in range(self.num_workers):
                self.emit(peer, payload)
            self.worker.count_net_messages(
                (self.num_workers - 1) * len(self._merged)
            )

    def deserialize(self, payloads) -> None:
        if self.round == 0:
            if self.worker.worker_id == _MASTER:
                candidates: list[tuple[float, int]] = []
                for _src, payload in payloads:
                    candidates.extend(self._decode(payload))
                self._merged = heapq.nlargest(self.k, candidates)
        elif self.round == 1:
            for _src, payload in payloads:
                best = self._decode(payload)
                self._result = [(vid, s) for s, vid in sorted(best, reverse=True)]
        self.round += 1

    def again(self) -> bool:
        return self.round == 1 and self.worker.worker_id == _MASTER


class PageRankTopK(VertexProgram):
    """PageRank that reports the global top-10 as it converges."""

    ITERATIONS = 15
    K = 10

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = CombinedMessage(worker, SUM_F64)
        self.agg = Aggregator(worker, SUM_F64)
        self.topk = TopKChannel(worker, k=self.K)
        self.rank = np.zeros(worker.num_local)

    def compute(self, v):
        n = self.num_vertices
        if self.step_num == 1:
            self.rank[v.local] = 1.0 / n
        else:
            s = self.agg.result() / n
            self.rank[v.local] = 0.15 / n + 0.85 * (self.msg.get_message(v) + s)
        self.topk.offer(v.id, float(self.rank[v.local]))
        if self.step_num <= self.ITERATIONS:
            if v.out_degree > 0:
                share = self.rank[v.local] / v.out_degree
                for e in v.edges:
                    self.msg.send_message(int(e), share)
            else:
                self.agg.add(self.rank[v.local])
        else:
            v.vote_to_halt()

    def finalize(self):
        return {f"top{self.worker.worker_id}": self.topk.result()}


def main():
    graph = rmat(11, edge_factor=8, seed=5)
    print(f"input: {graph}\n")
    result = ChannelEngine(graph, PageRankTopK, num_workers=8).run()

    # every worker holds the same broadcast top-k
    tops = [v for v in result.data.values() if v]
    assert all(t == tops[0] for t in tops)
    print(f"global top-{PageRankTopK.K} PageRank vertices (via the custom channel):")
    for vid, score in tops[0]:
        print(f"  vertex {vid:6d}   rank {score:.6f}")

    m = result.metrics
    print(
        f"\nwhole run: {m.supersteps} supersteps, "
        f"{m.total_net_bytes / 1e6:.2f} MB network traffic — the top-k "
        f"channel added only {PageRankTopK.K}-record payloads per worker "
        f"per superstep."
    )


if __name__ == "__main__":
    main()
