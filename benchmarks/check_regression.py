"""CI regression gate for every committed ``BENCH_*.json`` artifact.

Compares a freshly produced benchmark artifact against the committed
baseline of the same kind and fails (exit 1) on anything that should
never regress.  The artifact kind — ``parallel``, ``bulk``,
``recovery``, ``scale`` or ``streaming`` — is auto-detected from the row schema
(or the filename), and each kind gates on its own field set:

* **Parity is environment-independent and always enforced.**  Every
  fresh row must report its parity flags true (``parity_shm`` /
  ``parity_pipe`` for the parallel artifact, ``traffic_identical`` for
  bulk, ``identical`` for recovery and streaming), and on the row
  intersection with the baseline the *work done* must be exactly the
  baseline's — supersteps, bytes, messages, byte ratios.  A CI smoke
  that runs a subset (say ``--workers 2`` against a baseline with
  ``[2, 8]``) checks just the rows it has.
* **Wall-time is environment-dependent and gated on ``speedup_valid``.**
  Wall-clock ratios (fresh / baseline) fail above ``--tolerance`` only
  when *both* artifacts were produced with ``speedup_valid: true`` — a
  1-CPU baseline or a 1-CPU smoke measures protocol overhead, and
  comparing those against multi-core numbers would gate merges on
  noise.  (The bulk / recovery / streaming artifacts don't record the
  flag, so their walls are never ratio-gated.)
* **The transport's reason to exist** (parallel artifact only).  When
  the fresh artifact has ``speedup_valid: true``, at least one bulk
  workload at 2 workers must show ``speedup_shm_vs_pipe >=
  --min-shm-speedup`` (default 1.5).
* A fresh artifact flagged ``dirty_tree`` fails outright: its numbers
  are not traceable to any commit.  With ``REPRO_BENCH_REQUIRE_CLEAN=1``
  (CI sets it) a dirty *baseline* fails too — the committed artifact
  itself must be traceable.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py FRESH.json \\
        [--baseline BENCH_<kind>.json] [--kind auto] [--tolerance 1.5]

With no ``--baseline`` the committed ``BENCH_<kind>.json`` at the repo
root is used, so ``check_regression.py BENCH_streaming.json`` self-gates
a committed artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = ["GateSpec", "SPECS", "detect_kind", "check", "main"]

REPO_ROOT = Path(__file__).resolve().parent.parent


@dataclass(frozen=True)
class GateSpec:
    """What one artifact kind gates on."""

    kind: str
    #: row fields forming the identity used to match fresh rows to baseline rows
    key: tuple[str, ...]
    #: boolean row fields that must be true on every fresh row
    parity: tuple[str, ...]
    #: row fields that must be *exactly* the baseline's on the intersection
    exact: tuple[str, ...]
    #: row wall-second fields, ratio-gated only when both sides are speedup_valid
    wall: tuple[str, ...]
    #: top-level meta fields that must match for the artifacts to be comparable
    comparable: tuple[str, ...]


SPECS: dict[str, GateSpec] = {
    spec.kind: spec
    for spec in (
        GateSpec(
            kind="parallel",
            key=("workload", "workers"),
            parity=("parity_pipe", "parity_shm"),
            exact=("supersteps", "net_mb"),
            wall=("pipe_wall_s", "shm_wall_s"),
            comparable=("dataset", "seed"),
        ),
        GateSpec(
            kind="bulk",
            key=("algorithm", "dataset"),
            parity=("traffic_identical",),
            exact=("supersteps",),
            wall=("scalar_wall_s", "bulk_wall_s"),
            comparable=("dataset", "seed"),
        ),
        GateSpec(
            kind="recovery",
            key=("workload", "mode", "fail_at"),
            parity=("identical",),
            exact=("supersteps", "checkpoint_bytes", "log_bytes", "recovery_bytes"),
            wall=(),
            comparable=("dataset", "checkpoint_every"),
        ),
        GateSpec(
            kind="scale",
            key=("workload", "workers", "scale"),
            # rss_ok is the out-of-core claim itself: peak per-worker RSS
            # growth stayed well under the full edge-list size
            parity=("parity", "rss_ok"),
            exact=("vertices", "arcs", "supersteps", "net_mb"),
            wall=("build_wall_s", "run_wall_s", "sim_wall_s"),
            comparable=("edge_factor", "seed", "iterations"),
        ),
        GateSpec(
            kind="rebalance",
            key=("workload", "trigger"),
            # fired / no_false_fire / gain_ok are the tentpole claims:
            # planted skew must trigger, converged partitions must not,
            # and the cost-model win must clear the 1.3x bar
            parity=("identical", "fired", "no_false_fire", "gain_ok"),
            exact=("supersteps", "rebalances", "moved_vertices", "moved_arcs"),
            wall=("off_wall_s", "reb_wall_s"),
            comparable=("scale", "edge_factor", "workers", "seed", "epochs"),
        ),
        GateSpec(
            kind="streaming",
            key=("algorithm", "delta_frac"),
            parity=("identical",),
            exact=(
                "batch_edges",
                "inc_supersteps",
                "cold_supersteps",
                "inc_mb",
                "cold_mb",
                "byte_ratio",
            ),
            wall=("inc_wall_s", "cold_wall_s"),
            comparable=("dataset", "seed", "epochs"),
        ),
    )
}


def detect_kind(payload: dict, path: Path | str | None = None) -> str:
    """Artifact kind from the row schema, falling back to the filename."""
    rows = payload.get("rows") or []
    row = rows[0] if rows else {}
    if "parity_shm" in row or "parity_pipe" in row:
        return "parallel"
    if "traffic_identical" in row:
        return "bulk"
    if "fail_at" in row or "recovery_bytes" in row:
        return "recovery"
    if "rss_ok" in row or "peak_rss_growth_mb" in row:
        return "scale"
    if "no_false_fire" in row or "gain_ratio" in row:
        return "rebalance"
    if "delta_frac" in row:
        return "streaming"
    if path is not None:
        name = Path(path).name
        for kind in SPECS:
            if name.startswith(f"BENCH_{kind}"):
                return kind
    raise SystemExit(
        "cannot detect the artifact kind: rows match no known schema"
        + (f" and the filename {Path(path).name!r} is no help" if path else "")
    )


def _rows_by_key(payload: dict, spec: GateSpec) -> dict[tuple, dict]:
    return {tuple(r.get(k) for k in spec.key): r for r in payload["rows"]}


def _cell(key: tuple) -> str:
    return "@".join(str(k) for k in key)


def check(
    fresh: dict,
    baseline: dict,
    tolerance: float = 1.5,
    min_shm_speedup: float = 1.5,
    kind: str | None = None,
    require_clean: bool | None = None,
) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    if kind is None:
        kind = detect_kind(fresh)
    spec = SPECS[kind]
    if require_clean is None:
        require_clean = os.environ.get("REPRO_BENCH_REQUIRE_CLEAN") == "1"
    failures: list[str] = []

    if fresh.get("dirty_tree"):
        failures.append(
            f"fresh artifact was produced from a dirty tree ({fresh.get('git')}) "
            "— numbers are untraceable; rerun from a clean checkout"
        )
    if require_clean and (
        baseline.get("dirty_tree")
        or str(baseline.get("git", "")).endswith("-dirty")
    ):
        failures.append(
            f"baseline was produced from a dirty tree ({baseline.get('git')}) "
            "and REPRO_BENCH_REQUIRE_CLEAN=1 — regenerate the committed "
            "artifact from a clean checkout"
        )

    # -- parity: absolute, environment-independent -------------------------
    for row in fresh["rows"]:
        cell = _cell(tuple(row.get(k) for k in spec.key))
        if kind == "parallel":
            for t in ("pipe", "shm"):
                if not row.get(f"parity_{t}", False):
                    failures.append(f"{cell}: transport {t!r} broke sim parity")
        else:
            for field in spec.parity:
                if not row.get(field, False):
                    failures.append(
                        f"{cell}: {field} is false — the two runs this row "
                        "compares diverged; that is a correctness bug, not a "
                        "performance number"
                    )
    for row in fresh.get("amortization", []):
        if not row.get("identical", False):
            failures.append(
                f"amortization/{row.get('mode')}: per-epoch data diverged"
            )

    # -- work parity vs baseline on the row intersection --------------------
    mismatched = [
        k for k in spec.comparable if fresh.get(k) != baseline.get(k)
    ]
    comparable = not mismatched
    if not comparable:
        detail = ", ".join(
            f"{k}: fresh={fresh.get(k)!r} baseline={baseline.get(k)!r}"
            for k in mismatched
        )
        failures.append(f"artifacts are not comparable ({detail})")
    base_rows = _rows_by_key(baseline, spec)
    shared = [
        (key, row)
        for key, row in _rows_by_key(fresh, spec).items()
        if key in base_rows
    ]
    if not shared and comparable:
        failures.append(
            f"no ({', '.join(spec.key)}) rows in common with the baseline"
        )
    for key, row in shared if comparable else []:
        cell = _cell(key)
        base = base_rows[key]
        for field in spec.exact:
            if row.get(field) != base.get(field):
                failures.append(
                    f"{cell}: {field} changed "
                    f"(baseline {base.get(field)}, fresh {row.get(field)}) — "
                    "the backend is doing different work, not running slower"
                )

    # -- wall time: only when both sides measured real parallelism ----------
    walls_meaningful = fresh.get("speedup_valid") and baseline.get("speedup_valid")
    for key, row in shared if (comparable and walls_meaningful) else []:
        cell = _cell(key)
        base = base_rows[key]
        for field in spec.wall:
            b, f = base.get(field), row.get(field)
            if not b or not f:
                continue
            ratio = f / b
            if ratio > tolerance:
                failures.append(
                    f"{cell}: {field} regressed {ratio:.2f}x "
                    f"(baseline {b}s, fresh {f}s, tolerance {tolerance}x)"
                )

    # -- shm must beat pipe somewhere real (parallel artifact only) ----------
    if kind == "parallel" and fresh.get("speedup_valid"):
        two_worker = [r for r in fresh["rows"] if r.get("workers") == 2]
        best = max(
            (r.get("speedup_shm_vs_pipe", 0.0) for r in two_worker),
            default=0.0,
        )
        if two_worker and best < min_shm_speedup:
            failures.append(
                f"shm never beat pipe by {min_shm_speedup}x at 2 workers "
                f"(best speedup_shm_vs_pipe = {best}) — the ring transport "
                "is not earning its keep on this machine"
            )

    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path, help="just-produced artifact")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="committed artifact to compare against "
        "(default: BENCH_<kind>.json at the repo root)",
    )
    parser.add_argument(
        "--kind",
        choices=("auto", *SPECS),
        default="auto",
        help="artifact kind (default: detect from the row schema / filename)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        help="max allowed fresh/baseline wall-time ratio (default 1.5; "
        "only enforced when both artifacts have speedup_valid)",
    )
    parser.add_argument(
        "--min-shm-speedup",
        type=float,
        default=1.5,
        help="required speedup_shm_vs_pipe on >=1 workload at 2 workers "
        "when the fresh run had real cores (default 1.5; parallel only)",
    )
    args = parser.parse_args(argv)

    fresh = json.loads(args.fresh.read_text())
    kind = detect_kind(fresh, args.fresh) if args.kind == "auto" else args.kind
    baseline_path = (
        args.baseline
        if args.baseline is not None
        else REPO_ROOT / f"BENCH_{kind}.json"
    )
    baseline = json.loads(baseline_path.read_text())
    failures = check(
        fresh, baseline, args.tolerance, args.min_shm_speedup, kind=kind
    )
    if failures:
        for msg in failures:
            print(f"REGRESSION: {msg}", file=sys.stderr)
        return 1
    walls = (
        "enforced"
        if fresh.get("speedup_valid") and baseline.get("speedup_valid")
        else "skipped (speedup_valid false on at least one side)"
    )
    print(
        f"regression gate passed: {kind} artifact, {len(fresh['rows'])} rows "
        f"checked, parity exact, wall-time {walls}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
