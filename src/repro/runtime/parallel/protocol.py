"""Pickle-free control-plane messages and crash-aware receives.

Every command and reply crossing a control pipe is a plain dict of
scalars/arrays/lists, serialized with the checkpoint layer's tagged
binary codec (:func:`repro.runtime.checkpoint.encode_state`) and moved
with ``Connection.send_bytes`` — the process backend never pickles
anything, matching how the channels themselves refuse to ship live
object references.

Receives are supervised: the parent polls with a short timeout and
checks worker liveness between polls, so a worker process dying (OOM
kill, segfault, ``os._exit``) surfaces as a :class:`WorkerProcessError`
instead of a hang.
"""

from __future__ import annotations

from multiprocessing.connection import Connection

from repro.runtime.checkpoint import decode_state, encode_state

__all__ = [
    "WorkerProcessError",
    "send_msg",
    "recv_msg",
    "recv_supervised",
    "check_liveness",
]

#: seconds between liveness checks while waiting on a reply
_POLL_INTERVAL = 0.05


class WorkerProcessError(RuntimeError):
    """A worker process died or reported a failure."""


def send_msg(conn: Connection, msg: dict) -> None:
    conn.send_bytes(encode_state(msg))


def recv_msg(conn: Connection) -> dict:
    return decode_state(conn.recv_bytes())


def _scavenge_error(conn: Connection | None) -> str | None:
    """A dead worker's last words: if its control pipe holds a buffered
    ``error`` reply (the child traceback it managed to send before
    exiting), return the traceback text.

    A worker that *raises* — e.g. inside a channel's ``serialize`` during
    an exchange round — ships the traceback and then exits; by the time
    the parent's liveness check notices the death, the message is sitting
    unread in the pipe.  Without scavenging it, the failure would surface
    as a bare "died (exit code 0)" and the actual cause would be lost.
    """
    if conn is None:
        return None
    try:
        if conn.poll(0):
            msg = recv_msg(conn)
            if isinstance(msg, dict) and "error" in msg:
                return msg["error"]
    except (EOFError, OSError, ValueError):
        pass
    return None


def _death_error(w: int, proc, phase: str, conn: Connection | None) -> WorkerProcessError:
    traceback = _scavenge_error(conn)
    if traceback is not None:
        return WorkerProcessError(
            f"worker process {w} failed during {phase}:\n{traceback}"
        )
    return WorkerProcessError(
        f"worker process {w} died (exit code {proc.exitcode}) during {phase}"
    )


def check_liveness(procs, phase: str, conns=None) -> None:
    """Raise :class:`WorkerProcessError` if any worker process is dead
    (scavenging its buffered traceback when ``conns`` is given).  This is
    the supervision predicate shared by :func:`recv_supervised`'s poll
    loop and the shm transport's blocking ring waits."""
    for w, proc in enumerate(procs):
        if not proc.is_alive():
            raise _death_error(
                w, proc, phase, conns[w] if conns is not None else None
            )


def recv_supervised(
    conn: Connection, worker_id: int, procs, phase: str, conns=None
) -> dict:
    """Receive worker ``worker_id``'s reply, watching *all* processes.

    Any worker dying aborts the wait — not just the one being awaited:
    with peer-to-peer frame pipes a live worker may itself be blocked on
    frames from the dead one, so its reply would never come.  When
    ``conns`` (all control pipes, in worker order) is given, a dead
    worker's buffered traceback is scavenged so mid-exchange failures
    keep their cause (see :func:`_scavenge_error`).

    A reply carrying an ``error`` key (a formatted child traceback) is
    also raised as :class:`WorkerProcessError`.
    """
    try:
        while not conn.poll(_POLL_INTERVAL):
            check_liveness(procs, phase, conns)
        msg = recv_msg(conn)
    except EOFError:
        # the awaited worker's pipe closed without a reply: it died
        # between liveness checks (poll reports readable on EOF)
        proc = procs[worker_id]
        proc.join(timeout=1)
        raise WorkerProcessError(
            f"worker process {worker_id} died (exit code {proc.exitcode}) "
            f"during {phase}"
        ) from None
    if "error" in msg:
        raise WorkerProcessError(
            f"worker process {worker_id} failed during {phase}:\n{msg['error']}"
        )
    return msg
