"""CI smoke for the live telemetry plane (ARCHITECTURE.md §11).

Launches a real ``python -m repro run ... --executor process
--metrics-port 0`` as a subprocess, then acts as the *external observer*
the plane exists for:

1. parses the serving line off the run's stderr to learn the bound port
   and segment name,
2. polls ``GET /metrics`` over plain HTTP until a worker has published a
   non-zero superstep — proving the run is scrape-able while in flight,
3. renders ``repro top <segment> --once`` against the same segment,
   mid-run, from yet another process,
4. keeps scraping until the run exits, saves the last successful scrape
   (``--out``), and checks the run still finished cleanly with byte
   totals consistent between the scrape and the run's ``--json`` row.

Exits non-zero on any failure, so CI can gate on it directly::

    PYTHONPATH=src python benchmarks/live_smoke.py --out live_scrape.txt
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

#: printed (flushed) by the CLI before the run starts
SERVING_RE = re.compile(r"http://127\.0\.0\.1:(\d+)/metrics \(segment (\S+);")
#: a worker slot with at least one completed superstep
LIVE_STEP_RE = re.compile(r"repro_supersteps_total\{[^}]*\} [1-9]")
NET_SAMPLE_RE = re.compile(r"repro_net_bytes_total\{[^}]*\} (\d+)")


def _fail(msg: str, proc: subprocess.Popen | None = None) -> int:
    if proc is not None and proc.poll() is None:
        proc.kill()
        proc.wait()
    print(f"FAIL: {msg}", file=sys.stderr)
    return 1


def _scrape(port: int) -> str | None:
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=5
        ) as resp:
            return resp.read().decode("utf-8")
    except (urllib.error.URLError, ConnectionError, OSError):
        return None  # server already gone (run finished) or not up yet


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="bulk-100k")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--timeout", type=float, default=300.0, help="overall deadline (seconds)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("live_scrape.txt"),
        help="where to save the last successful /metrics scrape",
    )
    args = parser.parse_args(argv)
    deadline = time.monotonic() + args.timeout

    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    # wcc-bulk is the slowest committed parallel workload, so the run
    # stays alive long enough to be observed mid-flight
    cmd = [
        sys.executable, "-m", "repro", "run", "wcc",
        "--dataset", args.dataset, "--variant", "basic", "--mode", "bulk",
        "--workers", str(args.workers), "--executor", "process",
        "--metrics-port", "0", "--json",
    ]
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env
    )

    # 1. the serving line announces port + segment before the run starts
    port = segment = None
    assert proc.stderr is not None and proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        m = SERVING_RE.search(line)
        if m:
            port, segment = int(m.group(1)), m.group(2)
            break
    if port is None:
        return _fail("never saw the serving line on stderr", proc)
    print(f"serving line parsed: port {port}, segment {segment}")

    # 2. scrape mid-run until a superstep lands
    mid_run = None
    while proc.poll() is None and time.monotonic() < deadline:
        body = _scrape(port)
        if body is not None and LIVE_STEP_RE.search(body):
            mid_run = body
            break
        time.sleep(0.02)
    if mid_run is None:
        return _fail("no mid-run scrape showed a completed superstep", proc)
    print("mid-run scrape: worker supersteps visible over HTTP")

    # 3. repro top from a third process against the same segment
    top = subprocess.run(
        [sys.executable, "-m", "repro", "top", segment, "--once"],
        capture_output=True, text=True, env=env, timeout=60,
    )
    if top.returncode != 0 or f"segment {segment}" not in top.stdout:
        return _fail(
            f"repro top --once failed mid-run (rc {top.returncode}): "
            f"{top.stderr.strip()}",
            proc,
        )
    print("repro top --once rendered mid-run:")
    print("\n".join(f"  {line}" for line in top.stdout.splitlines()))

    # 4. follow the run to completion, keeping the freshest scrape
    last = mid_run
    while proc.poll() is None and time.monotonic() < deadline:
        body = _scrape(port)
        if body is not None:
            last = body
        time.sleep(0.02)
    try:
        stdout, stderr = proc.communicate(timeout=max(deadline - time.monotonic(), 1))
    except subprocess.TimeoutExpired:
        return _fail("run did not finish before the deadline", proc)
    if proc.returncode != 0:
        return _fail(f"run exited {proc.returncode}: {stderr.strip()}")

    args.out.write_text(last)
    print(f"saved last scrape to {args.out}")

    row = json.loads(stdout)
    nets = [int(v) for v in NET_SAMPLE_RE.findall(last)]
    if len(nets) != args.workers:
        return _fail(f"expected {args.workers} net-bytes samples, got {len(nets)}")
    if not any(nets):
        return _fail("all repro_net_bytes_total samples are zero")
    # the scrape is a superstep-boundary prefix of the final accounting
    if sum(nets) > row["net_bytes"]:
        return _fail(
            f"scraped net bytes {sum(nets)} exceed the run's final "
            f"total {row['net_bytes']}"
        )
    print(
        f"scraped net bytes {sum(nets)} (final total {row['net_bytes']}), "
        f"run exited 0 — live plane OK"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
