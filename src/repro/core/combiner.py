"""Combiners: associative, commutative reductions over message values.

A combiner is what Pregel's ``Combiner<ValT>`` is in the paper's Table I/II:
a binary function plus its identity.  Channels use the scalar ``fn`` when
combining one message at a time and the NumPy ``ufunc`` when combining whole
arrays (the scatter-combine channel's linear scan is a ``ufunc.reduceat``).

The monoid laws (associativity, commutativity, identity) are what make
receiver- and sender-side combining interchangeable; the property-based
tests assert them for all built-ins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.runtime.serialization import Codec, FLOAT64, INT32, INT64

__all__ = [
    "Combiner",
    "make_combiner",
    "SUM_F64",
    "SUM_I64",
    "SUM_I32",
    "MIN_F64",
    "MIN_I64",
    "MIN_I32",
    "MAX_F64",
    "MAX_I64",
    "MAX_I32",
]


@dataclass(frozen=True)
class Combiner:
    """An associative+commutative binary operation with identity.

    Attributes
    ----------
    fn:
        Scalar binary function ``(a, b) -> a`` used by per-message paths.
    identity:
        Neutral element: ``fn(identity, x) == x``.
    codec:
        Wire codec of the combined value type.
    ufunc:
        Optional NumPy ufunc implementing the same operation for bulk
        combining (``np.add``, ``np.minimum``...).  When absent, channels
        fall back to the scalar function.
    name:
        Used in reprs and table output.
    """

    fn: Callable
    identity: object
    codec: Codec = FLOAT64
    ufunc: np.ufunc | None = None
    name: str = "combiner"

    def combine(self, a, b):
        return self.fn(a, b)

    def combine_array(self, values: np.ndarray) -> object:
        """Reduce a whole array to one value."""
        if values.size == 0:
            return self.identity
        if self.ufunc is not None:
            return self.ufunc.reduce(values)
        acc = self.identity
        for v in values:
            acc = self.fn(acc, v)
        return acc

    def reduceat(self, values: np.ndarray, starts: np.ndarray) -> np.ndarray:
        """Segmented reduction: combine ``values[starts[i]:starts[i+1]]``
        for each i (the scatter-combine linear scan of Fig. 5)."""
        if self.ufunc is not None:
            return self.ufunc.reduceat(values, starts)
        out = []
        bounds = list(starts) + [len(values)]
        for i in range(len(starts)):
            out.append(self.combine_array(values[bounds[i] : bounds[i + 1]]))
        return np.asarray(out, dtype=self.codec.dtype)

    def accumulate_at(self, target: np.ndarray, index: np.ndarray, values: np.ndarray) -> None:
        """``target[index[i]] = fn(target[index[i]], values[i])`` — bulk
        receiver-side combining into per-vertex slots."""
        if self.ufunc is not None:
            self.ufunc.at(target, index, values)
        else:
            for i, v in zip(index, values):
                target[i] = self.fn(target[i], v)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Combiner({self.name})"


def make_combiner(
    fn: Callable,
    identity,
    codec: Codec = FLOAT64,
    ufunc: np.ufunc | None = None,
    name: str = "custom",
) -> Combiner:
    """Construct a combiner (the paper's ``make_combiner(c_sum, 0.0)``)."""
    return Combiner(fn=fn, identity=identity, codec=codec, ufunc=ufunc, name=name)


_I64_MAX = np.iinfo(np.int64).max
_I64_MIN = np.iinfo(np.int64).min
_I32_MAX = int(np.iinfo(np.int32).max)
_I32_MIN = int(np.iinfo(np.int32).min)

SUM_F64 = Combiner(lambda a, b: a + b, 0.0, FLOAT64, np.add, "sum_f64")
SUM_I64 = Combiner(lambda a, b: a + b, 0, INT64, np.add, "sum_i64")
SUM_I32 = Combiner(lambda a, b: a + b, 0, INT32, np.add, "sum_i32")
MIN_F64 = Combiner(min, float("inf"), FLOAT64, np.minimum, "min_f64")
MIN_I64 = Combiner(min, _I64_MAX, INT64, np.minimum, "min_i64")
MIN_I32 = Combiner(min, _I32_MAX, INT32, np.minimum, "min_i32")
MAX_F64 = Combiner(max, float("-inf"), FLOAT64, np.maximum, "max_f64")
MAX_I64 = Combiner(max, _I64_MIN, INT64, np.maximum, "max_i64")
MAX_I32 = Combiner(max, _I32_MIN, INT32, np.maximum, "max_i32")
