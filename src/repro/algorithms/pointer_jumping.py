"""Pointer jumping: every vertex of a rooted forest finds its root.

The minimal request-respond workload (Table V, middle).  Input graphs are
directed with each non-root vertex's first out-edge pointing at its
parent (what :func:`repro.graph.generators.chain` / ``random_tree``
produce).

* ``PointerJumpingBasic`` — request/reply with two ``DirectMessage``
  channels: one jump costs two supersteps (ask, answer).
* ``PointerJumpingReqResp`` — the ``RequestRespond`` channel: dedup'd
  requests, positional responses, one superstep per jump.

Wire sizes match the paper's setup: parent pointers travel as ``int32``
("the smallest one is just an int").
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather
from repro.core import ChannelEngine, DirectMessage, RequestRespond, Vertex, VertexProgram
from repro.graph.graph import Graph
from repro.runtime.serialization import INT32

__all__ = ["PointerJumpingBasic", "PointerJumpingReqResp", "run_pointer_jumping"]


def _init_parent(v: Vertex) -> int:
    nb = v.edges
    return int(nb[0]) if nb.size else v.id


class PointerJumpingBasic(VertexProgram):
    """Two-superstep jump cycle with plain messages.

    Odd supersteps: unfinished vertices ask their parent.  Even supersteps:
    parents answer each requester individually (per-requester replies are
    exactly the load-imbalance the request-respond pattern removes).
    """

    def __init__(self, worker):
        super().__init__(worker)
        self.req = DirectMessage(worker, value_codec=INT32)
        self.reply = DirectMessage(worker, value_codec=INT32)
        self.D = np.zeros(worker.num_local, dtype=np.int64)
        self.done = np.zeros(worker.num_local, dtype=bool)

    def compute(self, v: Vertex) -> None:
        i = v.local
        if self.step_num == 1:
            self.D[i] = _init_parent(v)
            if self.D[i] == v.id:
                self.done[i] = True
                v.vote_to_halt()
            else:
                self.req.send_message(int(self.D[i]), v.id)
            return
        # answer anyone asking for my pointer (any superstep)
        for requester in self.req.get_iterator(v):
            self.reply.send_message(int(requester), int(self.D[i]))
        if self.done[i]:
            v.vote_to_halt()
            return
        replies = self.reply.get_iterator(v)
        if replies.size:
            p = int(self.D[i])
            gp = int(replies[0])
            if gp == p:
                # parent is a root
                self.done[i] = True
                v.vote_to_halt()
            else:
                self.D[i] = gp
                self.req.send_message(gp, v.id)

    def finalize(self) -> dict:
        return {int(g): int(self.D[i]) for i, g in enumerate(self.worker.local_ids)}


class PointerJumpingReqResp(VertexProgram):
    """One superstep per jump via the RequestRespond channel."""

    def __init__(self, worker):
        super().__init__(worker)
        self.D = np.zeros(worker.num_local, dtype=np.int64)
        self.rr = RequestRespond(
            worker,
            respond_fn=lambda v: int(self.D[v.local]),
            codec=INT32,
            respond_fn_bulk=lambda idx: self.D[idx],
        )

    def compute(self, v: Vertex) -> None:
        i = v.local
        if self.step_num == 1:
            self.D[i] = _init_parent(v)
            if self.D[i] == v.id:
                v.vote_to_halt()
            else:
                self.rr.add_request(v, int(self.D[i]))
            return
        p = int(self.D[i])
        gp = int(self.rr.get_respond(p))
        if gp == p:
            v.vote_to_halt()
        else:
            self.D[i] = gp
            self.rr.add_request(v, gp)

    def finalize(self) -> dict:
        return {int(g): int(self.D[i]) for i, g in enumerate(self.worker.local_ids)}


def run_pointer_jumping(graph: Graph, variant: str = "basic", **engine_kwargs):
    """Run pointer jumping; returns ``(roots, EngineResult)``.

    ``variant`` is ``"basic"`` or ``"reqresp"``.
    """
    program = {
        "basic": PointerJumpingBasic,
        "reqresp": PointerJumpingReqResp,
    }[variant]
    result = ChannelEngine(graph, program, **engine_kwargs).run()
    return gather(result, graph.num_vertices), result
