"""Channel-based implementations of the paper's six evaluation algorithms
(plus SSSP), each in the variants the experiments need.

Every module exposes program classes and a ``run_*`` helper returning
``(values, EngineResult)`` where ``values`` is a dense per-vertex array.
"""

from repro.algorithms.pagerank import (
    run_pagerank,
    PageRankBasic,
    PageRankScatter,
    PageRankBasicBulk,
    PageRankScatterBulk,
)
from repro.algorithms.pointer_jumping import (
    run_pointer_jumping,
    PointerJumpingBasic,
    PointerJumpingReqResp,
)
from repro.algorithms.wcc import run_wcc, WCCBasic, WCCBasicBulk, WCCPropagation
from repro.algorithms.sssp import run_sssp, SSSPBasic, SSSPBasicBulk, SSSPPropagation
from repro.algorithms.sv import run_sv, make_sv_program
from repro.algorithms.scc import run_scc, SCCBasic, SCCPropagation
from repro.algorithms.msf import run_msf, MSFBasic
from repro.algorithms.bfs import run_bfs, BFSBasic, BFSBasicBulk, BFSPropagation
from repro.algorithms.triangles import run_triangles, TriangleCounting
from repro.algorithms.kcore import run_kcore, KCore
from repro.algorithms.mis import run_mis, LubyMIS
from repro.algorithms.lpa import run_lpa, LabelPropagation

__all__ = [
    "run_pagerank",
    "PageRankBasic",
    "PageRankScatter",
    "PageRankBasicBulk",
    "PageRankScatterBulk",
    "run_pointer_jumping",
    "PointerJumpingBasic",
    "PointerJumpingReqResp",
    "run_wcc",
    "WCCBasic",
    "WCCBasicBulk",
    "WCCPropagation",
    "run_sssp",
    "SSSPBasic",
    "SSSPBasicBulk",
    "SSSPPropagation",
    "run_sv",
    "make_sv_program",
    "run_scc",
    "SCCBasic",
    "SCCPropagation",
    "run_msf",
    "MSFBasic",
    "run_bfs",
    "BFSBasic",
    "BFSBasicBulk",
    "BFSPropagation",
    "run_triangles",
    "TriangleCounting",
    "run_kcore",
    "KCore",
    "run_mis",
    "LubyMIS",
    "run_lpa",
    "LabelPropagation",
]
