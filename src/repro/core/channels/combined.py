"""``CombinedMessage``: message passing with receiver-side combining
(Table I).

The wire format is identical to :class:`DirectMessage` — one ``(dst,
value)`` record per ``send_message`` call — so its byte counts match a
basic Pregel implementation exactly (Table IV shows identical message
sizes for PR/WCC/PJ).  The difference is on the receive path: values are
folded straight into one slot per local vertex with a bulk ``ufunc.at``,
so the receiver never materializes per-vertex message lists.
"""

from __future__ import annotations

import numpy as np

from repro.core.channel import Channel
from repro.core.combiner import Combiner
from repro.core.vertex import Vertex
from repro.core.worker import Worker
from repro.runtime.serialization import INT32

__all__ = ["CombinedMessage"]


class CombinedMessage(Channel):
    """Combine all messages for one receiver into a single value.

    Parameters
    ----------
    worker:
        Owning worker.
    combiner:
        The associative/commutative reduction (paper: ``Combiner<ValT> c``).
    """

    def __init__(self, worker: Worker, combiner: Combiner) -> None:
        super().__init__(worker)
        self.combiner = combiner
        self.value_codec = combiner.codec
        m = worker.num_workers
        self._pending_dst: list[list[int]] = [[] for _ in range(m)]
        self._pending_val: list[list] = [[] for _ in range(m)]
        self._slots = np.full(
            worker.num_local, combiner.identity, dtype=combiner.codec.dtype
        )
        self._has_msg = np.zeros(worker.num_local, dtype=bool)

    # -- sending ----------------------------------------------------------
    def send_message(self, dst: int, value) -> None:
        peer = self.worker.owner_of(dst)
        self._pending_dst[peer].append(dst)
        self._pending_val[peer].append(value)

    def send_message_bulk(self, dsts: np.ndarray, values: np.ndarray) -> None:
        owners = self.worker.owner[dsts]
        for peer in np.unique(owners):
            mask = owners == peer
            self._pending_dst[peer].extend(np.asarray(dsts)[mask].tolist())
            self._pending_val[peer].extend(np.asarray(values)[mask].tolist())

    # -- receiving -----------------------------------------------------------
    def get_message(self, v: Vertex):
        """Combined value of all messages delivered to ``v`` (the
        combiner's identity if none arrived)."""
        return self._slots[v.local]

    def has_message(self, v: Vertex) -> bool:
        return bool(self._has_msg[v.local])

    # -- round protocol ----------------------------------------------------
    def serialize(self) -> None:
        if self.round != 0:
            return
        net_msgs = 0
        for peer in range(self.num_workers):
            dsts = self._pending_dst[peer]
            if not dsts:
                continue
            payload = (
                INT32.encode_array(dsts)
                + self.value_codec.encode_array(self._pending_val[peer])
            )
            self.emit(peer, payload)
            if peer != self.worker.worker_id:
                net_msgs += len(dsts)
            self._pending_dst[peer] = []
            self._pending_val[peer] = []
        self.count_net_messages(net_msgs)

    def deserialize(self, payloads: list[tuple[int, memoryview]]) -> None:
        self.round += 1
        worker = self.worker
        self._slots[:] = self.combiner.identity
        self._has_msg[:] = False
        if not payloads:
            return
        itemsize = INT32.itemsize + self.value_codec.itemsize
        for _src, payload in payloads:
            count = len(payload) // itemsize
            dst = INT32.decode_array(payload[: count * INT32.itemsize]).astype(np.int64)
            vals = self.value_codec.decode_array(payload[count * INT32.itemsize :], count)
            local = worker._local_index[dst]
            self.combiner.accumulate_at(self._slots, local, vals)
            self._has_msg[local] = True
        received = np.flatnonzero(self._has_msg)
        worker.activate_local_bulk(received)
