"""Shared helpers for the algorithm modules."""

from __future__ import annotations

import numpy as np

from repro.core.engine import EngineResult

__all__ = ["gather", "run_engine", "resolve_mode"]


def resolve_mode(variants: dict, variant: str, mode: str):
    """Pick the program class for ``(variant, mode)`` from a table of
    ``{variant: {"scalar": cls, "bulk": cls}}`` entries.

    Raises ``ValueError`` for unknown variants/modes and for variants
    that have no bulk port (e.g. the Propagation-channel versions, whose
    compute is already trivial — see ARCHITECTURE.md).
    """
    if variant not in variants:
        raise ValueError(f"unknown variant {variant!r}; have {sorted(variants)}")
    modes = variants[variant]
    if mode not in ("scalar", "bulk"):
        raise ValueError(f"mode must be 'scalar' or 'bulk', got {mode!r}")
    if mode not in modes:
        raise ValueError(
            f"variant {variant!r} has no {mode!r} port; available: {sorted(modes)}"
        )
    return modes[mode]


def gather(result: EngineResult, n: int, dtype=np.int64) -> np.ndarray:
    """Turn ``result.data`` (global id -> value) into a dense array."""
    out = np.empty(n, dtype=dtype)
    for vid, val in result.data.items():
        out[vid] = val
    return out


def run_engine(engine_cls, graph, program, **kwargs):
    """Instantiate and run an engine; forwards partition/num_workers/etc."""
    max_supersteps = kwargs.pop("max_supersteps", 100_000)
    engine = engine_cls(graph, program, **kwargs)
    return engine.run(max_supersteps=max_supersteps)
