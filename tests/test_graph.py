"""Unit tests for the CSR graph container."""

import numpy as np
import pytest

from repro.graph.graph import Graph
from helpers import line_graph, two_triangles


class TestConstruction:
    def test_directed_basic(self):
        g = Graph.from_edges(3, [(0, 1), (0, 2), (1, 2)], directed=True)
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.num_input_edges == 3
        assert g.out_degree(0) == 2
        assert sorted(g.neighbors(0).tolist()) == [1, 2]
        assert g.out_degree(2) == 0

    def test_undirected_symmetrizes(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)], directed=False)
        assert g.num_edges == 4  # both arc directions stored
        assert g.num_input_edges == 2
        assert g.neighbors(1).tolist() == sorted([0, 2]) or set(
            g.neighbors(1).tolist()
        ) == {0, 2}

    def test_self_loop_not_duplicated_when_symmetrizing(self):
        g = Graph.from_edges(2, [(0, 0), (0, 1)], directed=False)
        assert g.out_degree(0) == 2  # loop once + edge to 1

    def test_weighted(self):
        g = Graph.from_edges(2, [(0, 1)], weights=[2.5], directed=True)
        assert g.weighted
        assert g.edge_weights(0).tolist() == [2.5]
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(0, 1)]).edge_weights(0)

    def test_undirected_weights_mirrored(self):
        g = Graph.from_edges(2, [(0, 1)], weights=[4.0], directed=False)
        assert g.edge_weights(0).tolist() == [4.0]
        assert g.edge_weights(1).tolist() == [4.0]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(0, 5)])
        with pytest.raises(ValueError):
            Graph(2, np.array([-1]), np.array([0]))

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, np.array([0]), np.array([1]), weights=np.array([1.0, 2.0]))

    def test_empty_graph(self):
        g = Graph.from_edges(5, [])
        assert g.num_edges == 0
        assert g.out_degree(3) == 0
        assert g.avg_degree == 0.0

    def test_zero_vertices(self):
        g = Graph.from_edges(0, [])
        assert g.num_vertices == 0


class TestAccessors:
    def test_out_degrees_vector(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (3, 1)])
        assert g.out_degrees.tolist() == [2, 0, 0, 1]

    def test_edge_array_roundtrip(self):
        edges = [(0, 1), (0, 2), (2, 1)]
        g = Graph.from_edges(3, edges)
        src, dst = g.edge_array()
        assert sorted(zip(src.tolist(), dst.tolist())) == sorted(edges)

    def test_edges_iterator(self):
        g = Graph.from_edges(3, [(0, 1), (2, 0)])
        assert sorted(g.edges()) == [(0, 1), (2, 0)]

    def test_in_neighbors_directed(self):
        g = Graph.from_edges(3, [(0, 2), (1, 2)])
        assert sorted(g.in_neighbors(2).tolist()) == [0, 1]
        assert g.in_degree(2) == 2
        assert g.in_degree(0) == 0
        assert g.in_degrees.tolist() == [0, 0, 2]

    def test_in_neighbors_undirected_equals_out(self):
        g = two_triangles()
        for v in range(6):
            assert set(g.in_neighbors(v).tolist()) == set(g.neighbors(v).tolist())

    def test_avg_degree(self):
        g = line_graph(5)
        assert g.avg_degree == pytest.approx(4 / 5)


class TestTransforms:
    def test_reverse(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        r = g.reverse()
        assert sorted(r.edges()) == [(1, 0), (2, 1)]

    def test_reverse_preserves_weights(self):
        g = Graph.from_edges(2, [(0, 1)], weights=[3.0])
        r = g.reverse()
        assert r.edge_weights(1).tolist() == [3.0]

    def test_relabel_permutation(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        perm = np.array([2, 0, 1])  # old -> new
        h = g.relabel(perm)
        assert sorted(h.edges()) == [(0, 1), (2, 0)]

    def test_relabel_rejects_non_permutation(self):
        g = Graph.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.relabel(np.array([0, 0, 1]))
        with pytest.raises(ValueError):
            g.relabel(np.array([0, 1]))

    def test_csr_sorted_by_source(self):
        g = Graph.from_edges(4, [(3, 0), (1, 2), (3, 1), (0, 3)])
        # indptr monotone; each vertex's slice holds its own out-edges
        assert np.all(np.diff(g.indptr) >= 0)
        assert set(g.neighbors(3).tolist()) == {0, 1}


class TestCsrExportAttach:
    """The zero-copy pair used by the multiprocess backend."""

    def test_from_csr_wraps_without_copy(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (2, 3)], weights=[1.0, 2.0, 3.0])
        arrs = g.csr_arrays()
        h = Graph.from_csr(4, arrs["indptr"], arrs["indices"], arrs["weights"])
        assert h.indptr is g.indptr and h.indices is g.indices
        assert h.weights is g.weights
        assert sorted(h.edges()) == sorted(g.edges())
        assert h.in_degree(3) == 1  # reverse adjacency builds lazily

    def test_from_csr_validates(self):
        indptr = np.array([0, 1, 2], dtype=np.int64)
        indices = np.array([1, 0], dtype=np.int64)
        with pytest.raises(ValueError, match="indptr"):
            Graph.from_csr(3, indptr, indices)  # wrong indptr length
        with pytest.raises(ValueError, match="out-of-range"):
            Graph.from_csr(2, indptr, np.array([1, 5], dtype=np.int64))
        bad = np.array([0, 2, 1, 2], dtype=np.int64)
        with pytest.raises(ValueError, match="non-decreasing"):
            Graph.from_csr(3, bad, indices)

    def test_index_dtype_enforced(self):
        indptr = np.array([0, 1, 2], dtype=np.int32)
        indices = np.array([1, 0], dtype=np.int64)
        with pytest.raises(TypeError, match="int64"):
            Graph.from_csr(2, indptr, indices)
        with pytest.raises(TypeError, match="int64"):
            Graph.from_csr(
                2,
                indptr.astype(np.int64),
                indices.astype(np.int32),
            )

    def test_from_csr_weight_dtype_enforced(self):
        indptr = np.array([0, 1, 2], dtype=np.int64)
        indices = np.array([1, 0], dtype=np.int64)
        with pytest.raises(TypeError, match="float64"):
            Graph.from_csr(2, indptr, indices, np.array([1, 2], dtype=np.float32))
