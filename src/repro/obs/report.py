"""Turn a recorded trace into phase breakdowns, stragglers, anomalies.

This is the analysis half of the observability subsystem: it consumes
only the JSON-lines events (never a live engine), so it can run on a
trace produced yesterday, on another machine, by either backend.

:func:`validate_trace` checks the structural invariants every recorder
output must satisfy (ids increase, every ``E`` matches an open ``B``,
every opened span is closed, parents exist and nest correctly); the
trace-invariant tests and ``repro report`` both call it.

:class:`TraceReport` aggregates per-run:

* **phase breakdown** — critical-path seconds per phase (Σ over
  supersteps of the slowest worker), the same quantity as
  :meth:`~repro.runtime.metrics.MetricsCollector.phase_totals`;
* **straggler report** — per-worker skew scores from
  :func:`~repro.obs.stats.straggler_scores` over the compute+serialize
  timing matrix, with workers above a threshold flagged;
* **anomaly report** — per-superstep critical-path durations streamed
  through an :class:`~repro.obs.stats.EwmaBaseline` (z-score spikes)
  plus :func:`~repro.obs.stats.detect_drift` (sustained level shifts);
* **fault-tolerance timeline** — checkpoint / failure / recovery
  instants, in order.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.obs.stats import EwmaBaseline, detect_drift, straggler_scores

__all__ = ["validate_trace", "TraceReport"]

#: phases a worker spends superstep time in, in engine execution order
PHASE_ORDER = ("barrier", "compute", "serialize", "exchange")

#: phases where one slow worker stalls its peers at the next barrier —
#: the straggler signal (barrier/exchange are shared waits, not work)
WORKER_PHASES = ("compute", "serialize")


def validate_trace(events: list[dict]) -> list[str]:
    """Structural invariants of a well-formed trace; returns problem
    descriptions (empty = valid)."""
    problems: list[str] = []
    open_spans: dict[int, dict] = {}
    seen_ids: set[int] = set()
    last_id = 0

    for i, ev in enumerate(events):
        kind = ev.get("ev")
        if kind not in ("B", "E", "X", "I"):
            problems.append(f"event {i}: unknown ev {kind!r}")
            continue
        sid = ev.get("id")
        if kind == "E":
            if sid not in open_spans:
                problems.append(f"event {i}: E for span {sid} which is not open")
            else:
                open_spans.pop(sid)
            continue
        if sid in seen_ids:
            problems.append(f"event {i}: duplicate span id {sid}")
        if sid is not None and sid <= last_id:
            problems.append(f"event {i}: span id {sid} not increasing")
        last_id = sid if sid is not None else last_id
        seen_ids.add(sid)
        parent = ev.get("parent")
        if parent is not None and parent not in open_spans:
            problems.append(
                f"event {i}: parent {parent} of span {sid} is not an open span"
            )
        if kind == "B":
            open_spans[sid] = ev
        if kind == "X" and "dur" not in ev:
            problems.append(f"event {i}: X span {sid} has no dur")

    for sid, ev in open_spans.items():
        problems.append(f"span {sid} ({ev.get('span')}) was never closed")
    return problems


class TraceReport:
    """Aggregated view of one trace file's events."""

    def __init__(self, events: list[dict]):
        self.events = events
        self.problems = validate_trace(events)
        self._begin: dict[int, dict] = {}
        self._end: dict[int, dict] = {}
        for ev in events:
            if ev["ev"] in ("B", "X", "I"):
                self._begin[ev["id"]] = ev
            elif ev["ev"] == "E":
                self._end[ev["id"]] = ev
        #: run span ids, in file order (a streaming trace has one per epoch)
        self.run_ids = [
            ev["id"] for ev in events if ev["ev"] == "B" and ev["span"] == "run"
        ]

    # -- low-level accessors -------------------------------------------------
    def attrs(self, span_id: int) -> dict:
        """Begin-attrs merged with closing attrs (closing wins)."""
        out = dict(self._begin[span_id].get("attrs") or {})
        end = self._end.get(span_id)
        if end:
            out.update(end.get("attrs") or {})
        return out

    def children(self, span_id: int, span: str | None = None) -> list[dict]:
        return [
            ev
            for ev in self.events
            if ev["ev"] in ("B", "X", "I")
            and ev.get("parent") == span_id
            and (span is None or ev["span"] == span)
        ]

    def supersteps(self, run_id: int) -> list[dict]:
        """Per-superstep summaries for one run span: merged attrs plus
        ``span_id``, wall duration, and the per-worker phase table.

        Mirrors the MetricsCollector's final records: supersteps a
        rollback abandoned mid-flight (closed ``aborted``) or that a
        crash left open (``forced_close``) are excluded, and when a
        recovery re-executed a superstep only the *last* span with that
        superstep number counts — the earlier execution's counters were
        rolled back.  The raw spans, re-executions included, remain
        reachable via :meth:`children`.
        """
        out = []
        for ev in self.children(run_id, "superstep"):
            sid = ev["id"]
            end = self._end.get(sid)
            end_attrs = (end or {}).get("attrs") or {}
            if end_attrs.get("aborted") or end_attrs.get("forced_close"):
                continue
            phases: dict[str, dict[int, float]] = defaultdict(dict)
            for ph in self.children(sid, "phase"):
                a = ph.get("attrs") or {}
                phases[a.get("phase", "?")][int(a.get("worker", 0))] = ph.get(
                    "dur", 0.0
                )
            out.append(
                {
                    "span_id": sid,
                    "wall": (end["t"] - ev["t"]) if end else None,
                    "phases": {k: dict(v) for k, v in phases.items()},
                    "round_events": self.children(sid, "round"),
                    **self.attrs(sid),
                }
            )
        # last execution wins: a rollback re-runs superstep numbers, and
        # only the final execution's counters survived in the metrics
        final: dict = {}
        for step in out:
            final[step.get("superstep", step["span_id"])] = step
        return [final[k] for k in sorted(final)]

    # -- aggregations --------------------------------------------------------
    def superstep_totals(self, run_id: int) -> dict:
        """Sums of the per-superstep byte/message attrs of one run —
        must agree exactly with the run's MetricsCollector totals."""
        steps = self.supersteps(run_id)
        return {
            "supersteps": len(steps),
            "net_bytes": sum(s.get("net_bytes", 0) for s in steps),
            "local_bytes": sum(s.get("local_bytes", 0) for s in steps),
            "messages": sum(s.get("messages", 0) for s in steps),
            "rounds": sum(s.get("rounds", len(s["round_events"])) for s in steps),
        }

    def phase_breakdown(self, run_id: int) -> dict:
        """Critical-path seconds per phase (Σ over supersteps of the
        slowest worker), like ``MetricsCollector.phase_totals``."""
        totals: dict[str, float] = {}
        for step in self.supersteps(run_id):
            for phase, per_worker in step["phases"].items():
                if per_worker:
                    totals[phase] = totals.get(phase, 0.0) + max(per_worker.values())
        return totals

    def worker_matrix(self, run_id: int, phases=WORKER_PHASES):
        """``supersteps × workers`` seconds each worker spent in the
        given phases (missing entries are 0)."""
        steps = self.supersteps(run_id)
        workers = sorted(
            {
                w
                for s in steps
                for per_worker in s["phases"].values()
                for w in per_worker
            }
        )
        m = np.zeros((len(steps), len(workers)))
        index = {w: i for i, w in enumerate(workers)}
        for si, step in enumerate(steps):
            for phase in phases:
                for w, sec in step["phases"].get(phase, {}).items():
                    m[si, index[w]] += sec
        return m, workers

    def straggler_report(self, run_id: int, threshold: float = 1.5) -> dict:
        """Per-worker skew scores over :data:`WORKER_PHASES`; workers at
        or above ``threshold`` are flagged as stragglers."""
        matrix, workers = self.worker_matrix(run_id)
        if not workers:
            return {"workers": [], "scores": [], "stragglers": [], "threshold": threshold}
        scores = straggler_scores(matrix)
        return {
            "workers": workers,
            "scores": [round(float(s), 4) for s in scores],
            "stragglers": [
                w for w, s in zip(workers, scores) if float(s) >= threshold
            ],
            "threshold": threshold,
        }

    def anomaly_report(
        self,
        run_id: int,
        z_threshold: float = 3.0,
        drift_threshold: float = 0.5,
    ) -> dict:
        """Flag per-superstep critical-path durations that spike
        (EWMA z-score) or drift (fast-vs-slow EWMA separation)."""
        steps = self.supersteps(run_id)
        durations = []
        for step in steps:
            crit = sum(
                max(per_worker.values())
                for per_worker in step["phases"].values()
                if per_worker
            )
            if crit == 0.0 and step["wall"] is not None:
                crit = step["wall"]
            durations.append(crit)
        baseline = EwmaBaseline()
        scores = [baseline.update(d) for d in durations]
        spikes = [
            {"superstep": steps[i].get("superstep", i), "zscore": round(s, 3)}
            for i, s in enumerate(scores)
            if s > z_threshold
        ]
        # longer warmup than the library default: short converging runs
        # legitimately speed up as the active set shrinks, and flagging
        # a 6-superstep run's tail as "drift" would be pure noise
        drift = detect_drift(durations, threshold=drift_threshold, warmup=8)
        return {
            "durations": durations,
            "spikes": spikes,
            "drift_supersteps": [steps[i].get("superstep", i) for i in drift],
        }

    def fault_events(self, run_id: int) -> list[dict]:
        """Checkpoint / failure / recovery instants of one run, in order."""
        return [
            {"span": ev["span"], "t": ev["t"], **(ev.get("attrs") or {})}
            for ev in self.children(run_id)
            if ev["span"] in ("checkpoint", "failure", "recovery")
        ]

    def rebalance_events(self, run_id: int) -> list[dict]:
        """"rebalance" instants affecting one run, each with a post-hoc
        ``realized_win_seconds`` next to the policy's estimate.

        Superstep-triggered instants are children of the run span; an
        epoch-triggered migration fires *before* the run starts and is
        parented to the wrapping epoch span, so both parents are
        scanned.  The realized win compares the per-superstep
        max-over-workers busy time (compute + serialize) before and
        after the migration — from this run's own supersteps for a
        superstep trigger, or the previous epoch's run versus this one
        for an epoch trigger.
        """
        events = list(self.children(run_id, "rebalance"))
        parent = self._begin[run_id].get("parent")
        pev = self._begin.get(parent) if parent is not None else None
        if pev is not None and pev.get("span") == "epoch":
            events = list(self.children(parent, "rebalance")) + events
        if not events:
            return []
        matrix, _ = self.worker_matrix(run_id)
        per_step = matrix.max(axis=1) if matrix.size else np.zeros(0)
        prev_steps = None  # previous run's per-step maxima, lazily found
        out = []
        for ev in events:
            attrs = dict(ev.get("attrs") or {})
            realized = None
            if attrs.get("trigger") == "epoch":
                if prev_steps is None:
                    ids = self.run_ids
                    at = ids.index(run_id)
                    if at > 0:
                        pm, _ = self.worker_matrix(ids[at - 1])
                        prev_steps = pm.max(axis=1) if pm.size else np.zeros(0)
                    else:
                        prev_steps = np.zeros(0)
                before, after = prev_steps, per_step
            else:
                cut = int(attrs.get("superstep", 0))
                before, after = per_step[:cut], per_step[cut:]
            if len(before) and len(after):
                realized = round(
                    float(before.mean() - after.mean()) * max(len(after), 1), 9
                )
            out.append(
                {"t": ev["t"], **attrs, "realized_win_seconds": realized}
            )
        return out

    def live_alerts(self, run_id: int) -> list[dict]:
        """"alert" instants the live monitor raised during one run."""
        return [
            {"t": ev["t"], **(ev.get("attrs") or {})}
            for ev in self.children(run_id, "alert")
        ]

    def epoch_context(self, run_id: int) -> dict:
        """Attrs of the streaming epoch span wrapping ``run_id``, ``{}``
        for non-streaming runs.

        A streaming trace nests each per-epoch run under its own epoch
        span, and the epoch labels (epoch number, batch size, refresh
        mode, affected vertices) live *there* — without this merge, a
        ``repro report --json`` over a stream>epoch trace would present
        all epochs as indistinguishable run-level aggregates.
        """
        parent = self._begin[run_id].get("parent")
        if parent is None:
            return {}
        pev = self._begin.get(parent)
        if pev is None or pev.get("span") != "epoch":
            return {}
        return self.attrs(parent)

    # -- whole-report assembly ----------------------------------------------
    def as_dict(self, straggler_threshold: float = 1.5, z_threshold: float = 3.0) -> dict:
        runs = []
        for rid in self.run_ids:
            attrs = self.attrs(rid)
            runs.append(
                {
                    "run": rid,
                    # epoch labels first, so the run's own attrs win a
                    # (never expected) key collision
                    **self.epoch_context(rid),
                    **attrs,
                    "live_alerts": self.live_alerts(rid),
                    "totals": self.superstep_totals(rid),
                    "phase_breakdown": {
                        k: round(v, 6) for k, v in self.phase_breakdown(rid).items()
                    },
                    "stragglers": self.straggler_report(rid, straggler_threshold),
                    "anomalies": {
                        k: v
                        for k, v in self.anomaly_report(
                            rid, z_threshold=z_threshold
                        ).items()
                        if k != "durations"
                    },
                    "fault_events": self.fault_events(rid),
                    "rebalance_events": self.rebalance_events(rid),
                }
            )
        return {"problems": self.problems, "runs": runs}

    def render(self, straggler_threshold: float = 1.5, z_threshold: float = 3.0) -> str:
        """Human-readable report for the ``repro report`` subcommand."""
        lines: list[str] = []
        for problem in self.problems:
            lines.append(f"WARNING: malformed trace: {problem}")
        payload = self.as_dict(straggler_threshold, z_threshold)
        for run in payload["runs"]:
            totals = run["totals"]
            head = f"run {run['run']}"
            for key in ("executor", "workers", "epoch", "refresh", "batch_size"):
                if key in run:
                    head += f"  {key}={run[key]}"
            lines.append(head)
            lines.append(
                f"  supersteps {totals['supersteps']}  rounds {totals['rounds']}  "
                f"net_bytes {totals['net_bytes']}  messages {totals['messages']}"
            )
            breakdown = run["phase_breakdown"]
            if breakdown:
                ordered = [p for p in PHASE_ORDER if p in breakdown] + sorted(
                    set(breakdown) - set(PHASE_ORDER)
                )
                lines.append(
                    "  phases (critical-path s): "
                    + "  ".join(f"{p}={breakdown[p]:.4f}" for p in ordered)
                )
            stragglers = run["stragglers"]
            if stragglers["workers"]:
                pairs = "  ".join(
                    f"w{w}={s:.2f}"
                    for w, s in zip(stragglers["workers"], stragglers["scores"])
                )
                lines.append(f"  worker skew (1.0 = balanced): {pairs}")
                if stragglers["stragglers"]:
                    flagged = ", ".join(f"worker {w}" for w in stragglers["stragglers"])
                    lines.append(
                        f"  STRAGGLERS (score >= {stragglers['threshold']}): {flagged}"
                    )
            anomalies = run["anomalies"]
            for spike in anomalies["spikes"]:
                lines.append(
                    f"  ANOMALY: superstep {spike['superstep']} critical path "
                    f"z-score {spike['zscore']}"
                )
            if anomalies["drift_supersteps"]:
                lines.append(
                    "  DRIFT: sustained timing shift at supersteps "
                    + ", ".join(str(s) for s in anomalies["drift_supersteps"])
                )
            for alert in run["live_alerts"]:
                lines.append(
                    f"  LIVE ALERT: {alert.get('kind')} worker "
                    f"{alert.get('worker')} at superstep "
                    f"{alert.get('superstep')} (value {alert.get('value')}, "
                    f"threshold {alert.get('threshold')})"
                )
            for ev in run["fault_events"]:
                detail = "  ".join(
                    f"{k}={v}" for k, v in ev.items() if k not in ("span", "t")
                )
                lines.append(f"  {ev['span']} @ t={ev['t']:.4f}s  {detail}".rstrip())
            for ev in run["rebalance_events"]:
                realized = ev.get("realized_win_seconds")
                lines.append(
                    f"  REBALANCE ({ev.get('trigger')}) at superstep "
                    f"{ev.get('superstep')}: moved {ev.get('moved_vertices')} "
                    f"vertices / {ev.get('moved_arcs')} arcs, "
                    f"gain {ev.get('gain_ratio')}x, estimated win "
                    f"{ev.get('est_win_seconds')}s, realized "
                    f"{'n/a' if realized is None else f'{realized}s'}"
                )
        return "\n".join(lines)
