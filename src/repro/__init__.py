"""repro — channel-based vertex-centric graph processing.

A from-scratch Python reproduction of *"Composing Optimization Techniques
for Vertex-Centric Graph Processing via Communication Channels"*
(Zhang & Hu, IPDPS 2019).  See README.md for a tour and DESIGN.md for the
system inventory and experiment index.

Top-level re-exports cover the public API a downstream user needs:

>>> from repro import ChannelEngine, VertexProgram, CombinedMessage, SUM_F64
"""

from repro.core import (
    ChannelEngine,
    EngineResult,
    VertexProgram,
    Vertex,
    Worker,
    Channel,
    Combiner,
    make_combiner,
    SUM_F64,
    SUM_I64,
    SUM_I32,
    MIN_F64,
    MIN_I64,
    MIN_I32,
    MAX_F64,
    MAX_I64,
    MAX_I32,
    DirectMessage,
    CombinedMessage,
    Aggregator,
    ScatterCombine,
    RequestRespond,
    Propagation,
    MirroredScatter,
)
from repro.graph import Graph
from repro.runtime import NetworkModel, MetricsCollector

__version__ = "1.0.0"

__all__ = [
    "ChannelEngine",
    "EngineResult",
    "VertexProgram",
    "Vertex",
    "Worker",
    "Channel",
    "Combiner",
    "make_combiner",
    "SUM_F64",
    "SUM_I64",
    "SUM_I32",
    "MIN_F64",
    "MIN_I64",
    "MIN_I32",
    "MAX_F64",
    "MAX_I64",
    "MAX_I32",
    "DirectMessage",
    "CombinedMessage",
    "Aggregator",
    "ScatterCombine",
    "RequestRespond",
    "Propagation",
    "MirroredScatter",
    "Graph",
    "NetworkModel",
    "MetricsCollector",
    "__version__",
]
