"""Table V (top): the scatter-combine channel on PageRank.

Programs: Pregel+ basic, Pregel+ ghost (mirroring, threshold 16 as in the
paper), channel basic, channel scatter-combine.
Shape targets: scatter ~3x faster than basic with ~1/3 fewer bytes; ghost
cuts bytes but not runtime.
"""

import pytest


@pytest.mark.parametrize("dataset", ["wikipedia", "webuk"])
@pytest.mark.parametrize(
    "program", ["pregel-basic", "pregel-ghost", "channel-basic", "channel-scatter"]
)
def test_table5_scatter(cell, dataset, program):
    kwargs = {"ghost_threshold": 16} if program == "pregel-ghost" else {}
    row = cell("pr", program, dataset, **kwargs)
    assert row["supersteps"] == 31  # 30 iterations + final halt step
