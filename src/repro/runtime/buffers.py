"""Per-worker raw buffers and the pairwise buffer exchange.

This mirrors Fig. 2 of the paper: each worker owns ``M`` outgoing buffers
(one per peer; the self buffer is delivered locally and its bytes are
accounted separately as *local*, not network, traffic).  Channels write
binary data into the outgoing buffers during ``serialize()`` and read from
the received buffers during ``deserialize()``.  The exchange itself is the
only place where data crosses worker boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.metrics import MetricsCollector
from repro.runtime.serialization import BufferWriter

__all__ = ["WorkerBuffers", "BufferExchange"]


class WorkerBuffers:
    """One worker's outgoing writers and incoming byte buffers."""

    __slots__ = ("worker_id", "num_workers", "out", "inbox")

    def __init__(self, worker_id: int, num_workers: int) -> None:
        self.worker_id = worker_id
        self.num_workers = num_workers
        self.out: list[BufferWriter] = [BufferWriter() for _ in range(num_workers)]
        self.inbox: list[bytes] = [b""] * num_workers

    def writer(self, peer: int) -> BufferWriter:
        return self.out[peer]

    def out_nbytes(self) -> tuple[int, int]:
        """(network bytes, local bytes) currently queued for sending."""
        net = 0
        for peer, writer in enumerate(self.out):
            if peer != self.worker_id:
                net += writer.nbytes
        return net, self.out[self.worker_id].nbytes

    def clear_inbox(self) -> None:
        self.inbox = [b""] * self.num_workers


class BufferExchange:
    """Performs the pairwise buffer exchange between all workers.

    The simulator delivers every outgoing buffer to the matching peer's
    inbox, records byte totals with the metrics collector (which also
    charges modeled network time), and resets the writers for the next
    round.
    """

    def __init__(self, metrics: MetricsCollector) -> None:
        self.metrics = metrics

    def exchange(self, buffers: list[WorkerBuffers]) -> None:
        m = len(buffers)
        send_bytes = np.zeros(m, dtype=np.int64)
        recv_bytes = np.zeros(m, dtype=np.int64)
        local_bytes = 0

        for wb in buffers:
            wb.clear_inbox()

        for src, wb in enumerate(buffers):
            for dst in range(m):
                data = wb.out[dst].getvalue()
                wb.out[dst].clear()
                if not data:
                    continue
                buffers[dst].inbox[src] = data
                if src == dst:
                    local_bytes += len(data)
                else:
                    send_bytes[src] += len(data)
                    recv_bytes[dst] += len(data)

        self.metrics.record_exchange(send_bytes, recv_bytes, local_bytes=local_bytes)
