"""Community detection by label propagation (LPA, Raghavan et al.).

Synchronous LPA: every vertex starts in its own community and repeatedly
adopts the most frequent label among its neighbors (ties -> smallest
label).  Runs a fixed number of rounds — synchronous LPA can oscillate,
so the round cap is part of the algorithm's contract.

Vertices need the full per-neighbor label multiset (a frequency count,
not a reduction), making this a DirectMessage workload.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.algorithms._common import gather
from repro.core import ChannelEngine, DirectMessage, Vertex, VertexProgram
from repro.graph.graph import Graph
from repro.runtime.serialization import INT32

__all__ = ["LabelPropagation", "run_lpa"]


class LabelPropagation(VertexProgram):
    rounds = 10

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = DirectMessage(worker, value_codec=INT32)
        self.label = np.zeros(worker.num_local, dtype=np.int64)

    def _broadcast(self, v: Vertex) -> None:
        lbl = int(self.label[v.local])
        send = self.msg.send_message
        for e in v.edges:
            send(int(e), lbl)

    def compute(self, v: Vertex) -> None:
        i = v.local
        if self.step_num == 1:
            self.label[i] = v.id
        else:
            heard = self.msg.get_iterator(v)
            if heard.size:
                counts = Counter(heard.tolist())
                best = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))
                self.label[i] = best[0]
        if self.step_num <= self.rounds:
            self._broadcast(v)
        else:
            v.vote_to_halt()

    def finalize(self) -> dict:
        return {int(g): int(self.label[i]) for i, g in enumerate(self.worker.local_ids)}


def run_lpa(graph: Graph, rounds: int = 10, **engine_kwargs):
    """Run synchronous LPA; returns ``(labels, EngineResult)``."""
    program = type("LabelPropagation", (LabelPropagation,), {"rounds": rounds})
    result = ChannelEngine(graph, program, **engine_kwargs).run()
    return gather(result, graph.num_vertices), result
