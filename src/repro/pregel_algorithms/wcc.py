"""HCC hash-min WCC on the Pregel+ baseline.

WCC is single-message-type (an int64 label), so Pregel's global combiner
*is* applicable here — message bytes match the channel version exactly
(Table IV/V show identical sizes); only the receive-path costs differ.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather
from repro.core.combiner import MIN_I64
from repro.graph.graph import Graph
from repro.pregel import PregelPlusEngine, PregelProgram
from repro.runtime.serialization import INT64

__all__ = ["WCCPregel", "run_wcc_pregel"]


class WCCPregel(PregelProgram):
    message_codec = INT64
    combiner = MIN_I64

    def __init__(self, worker):
        super().__init__(worker)
        self.label = np.zeros(worker.num_local, dtype=np.int64)

    def _neighbors(self, v) -> np.ndarray:
        g = self.worker.graph
        if not g.directed:
            return v.edges
        return np.concatenate([g.neighbors(v.id), g.in_neighbors(v.id)])

    def compute(self, v, messages) -> None:
        i = v.local
        if self.step_num == 1:
            self.label[i] = v.id
            new = v.id
        else:
            m = messages if messages is not None else None
            if m is None or m >= self.label[i]:
                v.vote_to_halt()
                return
            self.label[i] = m
            new = int(m)
        for e in self._neighbors(v):
            v.send_message(int(e), new)
        v.vote_to_halt()

    def finalize(self) -> dict:
        return {int(g): int(self.label[i]) for i, g in enumerate(self.worker.local_ids)}


def run_wcc_pregel(graph: Graph, **engine_kwargs):
    """Run Pregel+ WCC; returns ``(labels, EngineResult)``."""
    result = PregelPlusEngine(graph, WCCPregel, mode="basic", **engine_kwargs).run()
    return gather(result, graph.num_vertices), result
