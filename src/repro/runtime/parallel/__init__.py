"""True multiprocess execution backend (``executor="process"``).

The simulated engine runs every worker sequentially inside one Python
process; this package runs each worker as a real OS process instead,
while reproducing the simulated superstep / exchange-round loop exactly:

* the CSR graph and the partition array live in
  ``multiprocessing.shared_memory`` segments, mapped read-only into every
  worker process (:mod:`repro.runtime.parallel.shm`);
* all per-superstep traffic crosses process boundaries as the *same wire
  bytes* the channels serialize in the simulator — frames travel peer to
  peer through per-pair shared-memory ring buffers (``transport="shm"``,
  the default: barrier votes batch into the ring headers and one
  control-pipe round trip drives a whole superstep) or over OS pipes
  (``transport="pipe"``, the portable fallback), and the parent only
  collects byte counts — so the byte/message accounting is bit-identical
  to a simulated run (:mod:`repro.runtime.parallel.worker_proc`);
* worker processes are **persistent**: a :class:`WorkerPool` spawns them
  once and reconfigures them for new engines (new graph views, remapped
  partitions, next-epoch programs) through control messages, so
  streaming epochs and repeated runs never pay process startup again
  (:mod:`repro.runtime.parallel.pool`);
* a command/reply barrier protocol over per-worker control pipes drives
  the superstep loop (:mod:`repro.runtime.parallel.backend`, built on
  the :class:`~repro.runtime.executor.ExecutorBackend` seam); control
  messages are encoded with the checkpoint layer's tagged binary codec
  (:func:`repro.runtime.checkpoint.encode_state`) — the one exception is
  the program factory itself, which is code and crosses as pickle bytes
  when a live pool is reconfigured;
* fault tolerance runs for real: checkpoints are captured worker-side,
  injected failures kill actual worker processes, and both recovery
  modes (rollback, confined) restore respawned replacements through the
  checkpoint wire format.

Entry point: ``ChannelEngine(..., executor="process")``; pass an
explicit ``pool=`` to share one persistent pool across engines (the
streaming :class:`~repro.streaming.epoch.EpochEngine` does this for
``executor="process"``).
"""

from repro.runtime.parallel.backend import ProcessBackend
from repro.runtime.parallel.pool import WorkerPool
from repro.runtime.parallel.protocol import WorkerProcessError

__all__ = ["ProcessBackend", "WorkerPool", "WorkerProcessError"]
