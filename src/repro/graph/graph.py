"""Compressed-sparse-row graph container.

The simulator's graphs are static inputs, so one read-only CSR structure is
shared by all simulated workers (each worker *owns* a disjoint vertex set;
adjacency lookup is free locally, exactly as in a real Pregel worker after
``load_graph()``).  Vertex identifiers are dense integers ``0..n-1``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.graph.store import GraphStore, MemoryStore

__all__ = ["Graph"]


class Graph:
    """An immutable directed or undirected graph in CSR form.

    For an undirected graph every edge is stored in both directions, which
    matches how vertex-centric systems receive undirected inputs (each
    endpoint sees the edge in its adjacency list).

    Parameters
    ----------
    num_vertices:
        Number of vertices; identifiers are ``0..num_vertices-1``.
    src, dst:
        Arrays of equal length giving the (directed) edge list.  For
        undirected graphs pass each edge once and set ``directed=False``;
        the constructor symmetrizes.
    weights:
        Optional per-edge weights, same length as ``src``.
    directed:
        Whether the edge list is to be interpreted as directed arcs.
    """

    __slots__ = (
        "num_vertices",
        "directed",
        "indptr",
        "indices",
        "weights",
        "store",
        "_rev_indptr",
        "_rev_indices",
        "_rev_weights",
    )

    def __init__(
        self,
        num_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray | None = None,
        directed: bool = True,
    ) -> None:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have equal length")
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != src.shape:
                raise ValueError("weights must match the edge list length")
        if src.size and (src.min() < 0 or max(src.max(), dst.max()) >= num_vertices):
            raise ValueError("edge endpoints out of range")

        if not directed:
            # store both directions; drop self-loop duplicates introduced by
            # symmetrization
            loop = src == dst
            src2 = np.concatenate([src, dst[~loop]])
            dst2 = np.concatenate([dst, src[~loop]])
            if weights is not None:
                weights = np.concatenate([weights, weights[~loop]])
            src, dst = src2, dst2

        self.num_vertices = int(num_vertices)
        self.directed = bool(directed)
        self.indptr, self.indices, self.weights = _build_csr(
            num_vertices, src, dst, weights
        )
        _check_index_dtype("indptr", self.indptr)
        _check_index_dtype("indices", self.indices)
        self.store: GraphStore = MemoryStore(
            self.num_vertices, self.directed, self.indptr, self.indices, self.weights
        )
        self._rev_indptr: np.ndarray | None = None
        self._rev_indices: np.ndarray | None = None
        self._rev_weights: np.ndarray | None = None

    # -- constructors --------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        weights: Iterable[float] | None = None,
        directed: bool = True,
    ) -> "Graph":
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        w = None if weights is None else np.asarray(list(weights), dtype=np.float64)
        return cls(num_vertices, arr[:, 0], arr[:, 1], weights=w, directed=directed)

    @classmethod
    def from_csr(
        cls,
        num_vertices: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray | None = None,
        directed: bool = True,
        validate: bool = True,
        store: GraphStore | None = None,
    ) -> "Graph":
        """Wrap already-built CSR arrays **without copying them**.

        This is the attach half of the zero-copy pair used by the
        multiprocess backend (the export half is :meth:`csr_arrays`): a
        worker process maps the parent's ``indptr``/``indices``/``weights``
        buffers out of shared memory and hands the views straight to this
        constructor.  The arrays are validated (shape, dtype, monotone
        ``indptr``, in-range ``indices``) but never copied, so every
        worker reads the same physical graph.

        ``validate=False`` skips the O(V+E) content scans (shape/dtype
        checks remain) for arrays that provably came out of a validated
        ``Graph`` already — e.g. every worker process attaching the
        parent's exported CSR; re-scanning it N times per run would be
        pure startup cost.
        """
        indptr = np.asarray(indptr)
        indices = np.asarray(indices)
        _check_index_dtype("indptr", indptr)
        _check_index_dtype("indices", indices)
        if indptr.shape != (num_vertices + 1,):
            raise ValueError(
                f"indptr must have num_vertices+1 entries, got {indptr.shape}"
            )
        if weights is not None:
            weights = np.asarray(weights)
            if weights.dtype != np.float64:
                raise TypeError(f"weights must be float64, got {weights.dtype}")
            if weights.shape != indices.shape:
                raise ValueError("weights must match indices length")
        if validate:
            if indptr.size and (indptr[0] != 0 or indptr[-1] != indices.size):
                raise ValueError("indptr must start at 0 and end at len(indices)")
            if np.any(np.diff(indptr) < 0):
                raise ValueError("indptr must be non-decreasing")
            if indices.size and (indices.min() < 0 or indices.max() >= num_vertices):
                raise ValueError("indices contain out-of-range vertex ids")
        g = cls.__new__(cls)
        g.num_vertices = int(num_vertices)
        g.directed = bool(directed)
        g.indptr = indptr
        g.indices = indices
        g.weights = weights
        g.store = store or MemoryStore(
            g.num_vertices, g.directed, indptr, indices, weights
        )
        g._rev_indptr = None
        g._rev_indices = None
        g._rev_weights = None
        return g

    @classmethod
    def from_store(cls, store: GraphStore, validate: bool = False) -> "Graph":
        """A Graph served by ``store``'s arrays, wherever they live.

        The store remembers where the bytes came from (``graph.store.kind``
        is ``"memory"``, ``"mmap"`` or ``"shm"``), which is how the
        process executor decides between attach-by-path and copy-into-shm.
        Stores are built by validated code paths, so content scans are
        skipped by default.
        """
        arrs = store.arrays()
        return cls.from_csr(
            store.num_vertices,
            arrs["indptr"],
            arrs["indices"],
            weights=arrs.get("weights"),
            directed=store.directed,
            validate=validate,
            store=store,
        )

    def csr_arrays(self) -> dict[str, np.ndarray]:
        """The graph's backing CSR arrays, by name (``weights`` only when
        present) — the export half of the zero-copy pair; see
        :meth:`from_csr`.  The returned views are the live arrays: treat
        them as read-only."""
        out = {"indptr": self.indptr, "indices": self.indices}
        if self.weights is not None:
            out["weights"] = self.weights
        return out

    # -- basic accessors -------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of stored arcs (undirected edges count twice)."""
        return int(self.indices.size)

    @property
    def num_input_edges(self) -> int:
        """Number of edges as the input counted them."""
        return self.num_edges if self.directed else self.num_edges // 2

    @property
    def weighted(self) -> bool:
        return self.weights is not None

    def out_degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def out_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Read-only view of v's out-neighbors."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        if self.weights is None:
            raise ValueError("graph is unweighted")
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def edges(self) -> Iterator[tuple[int, int]]:
        for v in range(self.num_vertices):
            for u in self.neighbors(v):
                yield v, int(u)

    def edge_array(self) -> tuple[np.ndarray, np.ndarray]:
        """(src, dst) arrays of all stored arcs."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.out_degrees)
        return src, self.indices.copy()

    # -- reverse adjacency (for in-neighbors) -----------------------------
    def _ensure_reverse(self) -> None:
        if self._rev_indptr is None:
            src, dst = self.edge_array()
            w = self.weights
            self._rev_indptr, self._rev_indices, self._rev_weights = _build_csr(
                self.num_vertices, dst, src, w
            )

    def in_degree(self, v: int) -> int:
        if not self.directed:
            return self.out_degree(v)
        self._ensure_reverse()
        assert self._rev_indptr is not None
        return int(self._rev_indptr[v + 1] - self._rev_indptr[v])

    def in_neighbors(self, v: int) -> np.ndarray:
        if not self.directed:
            return self.neighbors(v)
        self._ensure_reverse()
        assert self._rev_indices is not None and self._rev_indptr is not None
        return self._rev_indices[self._rev_indptr[v] : self._rev_indptr[v + 1]]

    @property
    def in_degrees(self) -> np.ndarray:
        if not self.directed:
            return self.out_degrees
        self._ensure_reverse()
        assert self._rev_indptr is not None
        return np.diff(self._rev_indptr)

    # -- transforms --------------------------------------------------------
    def reverse(self) -> "Graph":
        """Graph with every arc flipped (directed graphs)."""
        src, dst = self.edge_array()
        return Graph(self.num_vertices, dst, src, weights=self.weights, directed=True)

    def to_undirected(self) -> "Graph":
        src, dst = self.edge_array()
        keep = src <= dst
        # keep one copy of each arc pair where present; symmetrize the rest
        return Graph(
            self.num_vertices,
            src,
            dst,
            weights=self.weights,
            directed=False,
        )

    def relabel(self, perm: np.ndarray) -> "Graph":
        """Apply the permutation ``perm`` (old id -> new id) to all vertices."""
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self.num_vertices,):
            raise ValueError("perm must have one entry per vertex")
        if np.unique(perm).size != self.num_vertices:
            raise ValueError("perm must be a permutation")
        src, dst = self.edge_array()
        return Graph(
            self.num_vertices, perm[src], perm[dst], weights=self.weights, directed=True
        )

    # -- stats ---------------------------------------------------------------
    @property
    def avg_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_input_edges / self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover
        kind = "directed" if self.directed else "undirected"
        w = ", weighted" if self.weighted else ""
        return (
            f"Graph({kind}{w}, |V|={self.num_vertices}, |E|={self.num_input_edges})"
        )


def _check_index_dtype(name: str, arr: np.ndarray) -> None:
    """Assert a CSR index array is ``int64``.

    Every generator and transform is expected to emit 64-bit indices so
    that synthetic graphs past 2^31 edges survive concatenation with
    streaming deltas (NumPy would silently upcast-or-wrap mixed-width
    concatenations depending on platform).  Catch a narrower dtype at
    construction instead.
    """
    if arr.dtype != np.int64:
        raise TypeError(
            f"graph {name} must be int64, got {arr.dtype}; narrow index "
            "arrays overflow on >=2^31-edge graphs and break concatenation "
            "with streaming deltas"
        )


def _build_csr(
    n: int, src: np.ndarray, dst: np.ndarray, weights: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    order = np.argsort(src, kind="stable")
    src_sorted = src[order]
    indices = dst[order]
    w = None if weights is None else weights[order]
    counts = np.bincount(src_sorted, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, indices, w
