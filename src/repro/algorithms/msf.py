"""Minimum spanning forest via distributed Boruvka
(Chung & Condon's parallel Boruvka, the paper's MSF workload).

Each Boruvka round, over the current component graph:

1. **pick** — every component root picks its minimum-weight incident edge
   (totally ordered by ``(w, min_endpoint, max_endpoint)`` so ties are
   impossible) and points its disjoint-set pointer at the other side;
2. **cycle resolution** — the pointer graph is a pseudo-forest whose only
   cycles are 2-cycles of components that picked the same edge; the
   smaller id becomes the merged root, and the edge joins the forest once;
3. **pointer jumping** — every vertex (current and former roots alike)
   shortcuts its pointer until the structure is a forest of stars;
4. **relabel & ship** — edge holders rewrite each edge's endpoint to its
   new component root (a query/reply conversation), drop now-internal
   edges, and ship the survivors to their new root.

Rounds repeat until no inter-component edge survives.  MSF exercises the
paper's *heterogeneous message* point: pointer traffic is a single int
while edge records are a 4-field struct, so a monolithic Pregel message
type must widen everything to the edge record (Table IV shows the
resulting 23–44% message overhead).

This module is the channel version (one minimal codec per channel);
:mod:`repro.pregel_algorithms.msf` is the monolithic baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    Aggregator,
    ChannelEngine,
    DirectMessage,
    SUM_I64,
    Vertex,
    VertexProgram,
)
from repro.graph.graph import Graph
from repro.runtime.serialization import INT32, pair_codec, struct_codec, FLOAT32

__all__ = ["MSFBasic", "run_msf", "EDGE_CODEC"]

#: the "4-tuple of integer values for storing an edge": original endpoints,
#: weight, and the destination component
EDGE_CODEC = struct_codec(
    [("ou", INT32), ("ov", INT32), ("w", FLOAT32), ("dst", INT32)], name="msf_edge"
)
#: relabel replies carry (queried component, its new root)
PAIR_I32 = pair_codec(INT32, INT32, name="msf_pair")


def _edge_key(w: float, ou: int, ov: int) -> tuple:
    """Total order over edges: weight, then normalized original endpoints.

    Uniqueness of the minimum is what limits pointer cycles to 2-cycles
    (any longer cycle would need equal-key edges)."""
    return (w, min(ou, ov), max(ou, ov))


class MSFBasic(VertexProgram):
    """Boruvka MSF on standard channels.

    Per-vertex state: a disjoint-set pointer ``D`` and, for edge holders,
    the list of surviving edges ``(ou, ov, w, dst_component)``.
    """

    def __init__(self, worker):
        super().__init__(worker)
        # pointer conversations (int32 payloads)
        self.cyc_q = DirectMessage(worker, value_codec=INT32)  # pick queries
        self.cyc_r = DirectMessage(worker, value_codec=INT32)  # D[c] replies
        self.jreq = DirectMessage(worker, value_codec=INT32)
        self.jrep = DirectMessage(worker, value_codec=INT32)
        # relabel conversation
        self.rel_q = DirectMessage(worker, value_codec=INT32)
        self.rel_r = DirectMessage(worker, value_codec=PAIR_I32)
        # edge shipping (the wide messages)
        self.ship = DirectMessage(worker, value_codec=EDGE_CODEC)
        self.agg = Aggregator(worker, SUM_I64)

        n = worker.num_local
        self.D = np.full(n, -1, dtype=np.int64)
        self.edges: list[list[tuple]] = [[] for _ in range(n)]  # (ou, ov, w, dst)
        self.pending_pick: list[tuple | None] = [None] * n
        self.jdone = np.zeros(n, dtype=bool)
        self.forest: list[tuple] = []  # (ou, ov, w)
        self.state = "init"

    # -- controller (runs identically on every worker) ---------------------
    def before_superstep(self) -> None:
        s = self.state
        if s == "init":
            self.state = "pick"  # everyone starts active holding its edges
        elif s == "pick":
            self.state = "cycle_reply"
        elif s == "cycle_reply":
            self.state = "cycle_resolve"
        elif s == "cycle_resolve":
            self.state = "jump_send"
            self.jdone[:] = False
            self.worker.activate_local_bulk(np.arange(self.worker.num_local))
        elif s == "jump_send":
            # result = number of vertices that sent a jump query last step;
            # zero means every pointer already reaches a root
            if self.agg.result() == 0:
                self.state = "relabel_query"
                self._wake_holders()
            else:
                self.state = "jump_reply"
        elif s == "jump_reply":
            self.state = "jump_send"
        elif s == "relabel_query":
            self.state = "relabel_reply"
        elif s == "relabel_reply":
            self.state = "ship"
        elif s == "ship":
            # result = edges shipped; zero means the forest is complete
            if self.agg.result() == 0:
                self.state = "end"
            else:
                self.state = "pick"

    def _wake_holders(self) -> None:
        holders = [i for i, e in enumerate(self.edges) if e]
        if holders:
            self.worker.activate_local_bulk(np.asarray(holders, dtype=np.int64))

    # -- dispatch -------------------------------------------------------------
    def compute(self, v: Vertex) -> None:
        s = self.state
        if s == "pick":
            self._phase_pick(v)
        elif s == "cycle_reply":
            self._phase_cycle_reply(v)
        elif s == "cycle_resolve":
            self._phase_cycle_resolve(v)
        elif s == "jump_send":
            self._phase_jump_send(v)
        elif s == "jump_reply":
            self._phase_jump_reply(v)
        elif s == "relabel_query":
            self._phase_relabel_query(v)
        elif s == "relabel_reply":
            self._phase_relabel_reply(v)
        elif s == "ship":
            self._phase_ship(v)
        else:  # "end"
            v.vote_to_halt()

    # -- phases -----------------------------------------------------------------
    def _phase_pick(self, v: Vertex) -> None:
        i = v.local
        if self.D[i] == -1:
            # first round: adopt the input adjacency as component edges
            self.D[i] = v.id
            if v.out_degree:
                ws = (
                    v.edge_weights
                    if self.worker.graph.weighted
                    else np.ones(v.out_degree)
                )
                self.edges[i] = [
                    (v.id, int(e), float(w), int(e)) for e, w in zip(v.edges, ws)
                ]
        # merge edges shipped to me at the end of the previous round
        for rec in self.ship.get_iterator(v):
            self.edges[i].append(
                (int(rec["ou"]), int(rec["ov"]), float(rec["w"]), int(rec["dst"]))
            )
        if not self.edges[i]:
            v.vote_to_halt()
            return
        best = min(self.edges[i], key=lambda e: _edge_key(e[2], e[0], e[1]))
        self.pending_pick[i] = best
        c = best[3]
        self.D[i] = c
        self.cyc_q.send_message(c, v.id)

    def _phase_cycle_reply(self, v: Vertex) -> None:
        d = int(self.D[v.local])
        for requester in self.cyc_q.get_iterator(v):
            self.cyc_r.send_message(int(requester), d)

    def _phase_cycle_resolve(self, v: Vertex) -> None:
        i = v.local
        replies = self.cyc_r.get_iterator(v)
        if replies.size == 0:
            return  # not a picker (was only answering queries)
        best = self.pending_pick[i]
        self.pending_pick[i] = None
        c = int(self.D[i])
        dc = int(replies[0])
        if dc == v.id and v.id < c:
            # 2-cycle: I win the merge and become the root; my partner
            # records our shared minimum edge
            self.D[i] = v.id
        else:
            self.forest.append((best[0], best[1], best[2]))

    def _phase_jump_send(self, v: Vertex) -> None:
        i = v.local
        if self.jdone[i]:
            return
        replies = self.jrep.get_iterator(v)
        if replies.size:
            p = int(self.D[i])
            gp = int(replies[0])
            if gp == p:
                self.jdone[i] = True  # parent is a root
                return
            self.D[i] = gp
        d = int(self.D[i])
        if d == v.id:
            self.jdone[i] = True
            return
        self.jreq.send_message(d, v.id)
        self.agg.add(1)

    def _phase_jump_reply(self, v: Vertex) -> None:
        d = int(self.D[v.local])
        for requester in self.jreq.get_iterator(v):
            self.jrep.send_message(int(requester), d)

    def _phase_relabel_query(self, v: Vertex) -> None:
        targets = {e[3] for e in self.edges[v.local]}
        for c in sorted(targets):
            self.rel_q.send_message(c, v.id)

    def _phase_relabel_reply(self, v: Vertex) -> None:
        d = int(self.D[v.local])
        for requester in self.rel_q.get_iterator(v):
            self.rel_r.send_message(int(requester), (v.id, d))

    def _phase_ship(self, v: Vertex) -> None:
        i = v.local
        root = {int(r["a"]): int(r["b"]) for r in self.rel_r.get_iterator(v)}
        my_root = int(self.D[i])
        shipped = 0
        for ou, ov, w, dst in self.edges[i]:
            new_dst = root[dst]
            if new_dst == my_root:
                continue  # both sides merged: the edge became internal
            self.ship.send_message(my_root, (ou, ov, w, new_dst))
            shipped += 1
        self.edges[i] = []
        self.agg.add(shipped)
        v.vote_to_halt()

    def finalize(self) -> dict:
        total = sum(w for _, _, w in self.forest)
        return {
            f"forest_{self.worker.worker_id}": list(self.forest),
            f"weight_{self.worker.worker_id}": total,
        }


def run_msf(graph: Graph, **engine_kwargs):
    """Run Boruvka MSF; returns ``(forest_edges, total_weight, EngineResult)``.

    ``forest_edges`` is a list of ``(u, v, w)`` in original vertex ids.
    """
    if graph.directed:
        raise ValueError("MSF needs an undirected graph")
    result = ChannelEngine(graph, MSFBasic, **engine_kwargs).run()
    forest: list[tuple] = []
    weight = 0.0
    for key, val in result.data.items():
        if str(key).startswith("forest_"):
            forest.extend(val)
        elif str(key).startswith("weight_"):
            weight += val
    return forest, weight, result
