"""The block-centric engine.

One block per worker (Blogel supports many blocks per worker; for the
comparison the distinction is immaterial — what matters is block-local
computation between exchanges).  Each superstep the engine calls the
block program's ``block_compute`` with the messages the block received,
and ships whatever messages it returns.  Termination: every block votes
to halt and no messages are in flight.

Blogel's "special treatment of partition information": because the block
program knows the partition, messages carry ``int32`` values keyed by
``int32`` vertex ids — no wider generic payloads — which is the constant
message-size edge Table V (bottom) shows over the Propagation channel.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.core.engine import EngineResult
from repro.graph.graph import Graph
from repro.graph.partition import hash_partition
from repro.runtime.buffers import BufferExchange, WorkerBuffers
from repro.runtime.costmodel import NetworkModel, DEFAULT_NETWORK
from repro.runtime.metrics import MetricsCollector
from repro.runtime.serialization import Codec, INT32

__all__ = ["BlockProgram", "BlogelEngine"]


class BlockProgram:
    """Base class for block programs (the user-written B-compute)."""

    #: wire codec for message values
    value_codec: Codec = INT32

    def __init__(self, engine: "BlogelEngine", block_id: int, local_ids: np.ndarray):
        self.engine = engine
        self.block_id = block_id
        self.local_ids = local_ids
        self.num_local = int(local_ids.size)
        self.halted = False

    def block_compute(
        self, incoming: tuple[np.ndarray, np.ndarray]
    ) -> list[tuple[int, object]]:
        """One B-compute step.

        ``incoming`` is ``(dst_global_ids, values)`` received this
        superstep.  Return the messages to send as ``(dst_global_id,
        value)`` pairs and set ``self.halted`` when the block is done
        (message arrival re-activates it).
        """
        raise NotImplementedError

    def finalize(self) -> dict:
        return {}


class BlogelEngine:
    """Runs one block program instance per worker."""

    def __init__(
        self,
        graph: Graph,
        program_factory: Callable[["BlogelEngine", int, np.ndarray], BlockProgram],
        num_workers: int = 8,
        partition: np.ndarray | None = None,
        network: NetworkModel = DEFAULT_NETWORK,
    ) -> None:
        self.graph = graph
        self.num_workers = num_workers
        if partition is None:
            partition = hash_partition(graph.num_vertices, num_workers)
        self.owner = np.asarray(partition, dtype=np.int64)
        self.metrics = MetricsCollector(num_workers=num_workers, network=network)
        self.step_num = 0
        self.blocks = [
            program_factory(self, w, np.flatnonzero(self.owner == w))
            for w in range(num_workers)
        ]
        self.buffers = [WorkerBuffers(w, num_workers) for w in range(num_workers)]
        self._exchange = BufferExchange(self.metrics)
        self._pending: list[bool] = [True] * num_workers  # has incoming work

    def run(self, max_supersteps: int = 100_000) -> EngineResult:
        metrics = self.metrics
        metrics.start_run()
        incoming: list[tuple[np.ndarray, np.ndarray]] = [
            (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        ] * self.num_workers

        while True:
            runnable = [
                w
                for w in range(self.num_workers)
                if not self.blocks[w].halted or incoming[w][0].size
            ]
            if not runnable:
                break
            self.step_num += 1
            if self.step_num > max_supersteps:
                raise RuntimeError(f"exceeded max_supersteps={max_supersteps}")
            metrics.start_superstep(len(runnable))

            outgoing: list[list[tuple[int, object]]] = [[] for _ in range(self.num_workers)]
            for w in runnable:
                block = self.blocks[w]
                t0 = time.perf_counter()
                block.halted = True  # re-set by block_compute if needed
                outgoing[w] = block.block_compute(incoming[w]) or []
                metrics.record_compute(w, time.perf_counter() - t0)
            incoming = [
                (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
            ] * self.num_workers

            # serialize (dst, value) per destination block
            for w in runnable:
                t0 = time.perf_counter()
                self._serialize(w, outgoing[w])
                metrics.record_compute(w, time.perf_counter() - t0)
            self._exchange.exchange(self.buffers)
            for w in range(self.num_workers):
                t0 = time.perf_counter()
                incoming[w] = self._deserialize(w)
                metrics.record_compute(w, time.perf_counter() - t0)
            metrics.end_superstep()

        metrics.end_run()
        result = EngineResult(metrics=metrics)
        for block in self.blocks:
            result.data.update(block.finalize())
        return result

    def _serialize(self, w: int, messages: list[tuple[int, object]]) -> None:
        if not messages:
            return
        codec = self.blocks[w].value_codec
        by_peer_dst: dict[int, list[int]] = {}
        by_peer_val: dict[int, list] = {}
        for dst, val in messages:
            peer = int(self.owner[dst])
            by_peer_dst.setdefault(peer, []).append(dst)
            by_peer_val.setdefault(peer, []).append(val)
        net = 0
        for peer, dsts in by_peer_dst.items():
            payload = INT32.encode_array(dsts) + codec.encode_array(by_peer_val[peer])
            writer = self.buffers[w].out[peer]
            writer.write_bytes(payload)
            if peer != w:
                net += len(dsts)
        if net:
            self.metrics.count_messages(net)

    def _deserialize(self, w: int) -> tuple[np.ndarray, np.ndarray]:
        codec = self.blocks[w].value_codec
        itemsize = INT32.itemsize + codec.itemsize
        all_dst, all_val = [], []
        for data in self.buffers[w].inbox:
            if not data:
                continue
            count = len(data) // itemsize
            view = memoryview(data)
            all_dst.append(INT32.decode_array(view[: count * INT32.itemsize]).astype(np.int64))
            all_val.append(codec.decode_array(view[count * INT32.itemsize :], count))
        self.buffers[w].clear_inbox()
        if not all_dst:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(all_dst), np.concatenate(all_val)
