"""Unit tests for the NumPy helpers."""

import numpy as np
from hypothesis import given, strategies as st

from repro.util import expand_ranges, group_starts


class TestExpandRanges:
    def test_basic(self):
        out = expand_ranges(np.array([0, 10]), np.array([3, 2]))
        assert out.tolist() == [0, 1, 2, 10, 11]

    def test_empty_counts(self):
        out = expand_ranges(np.array([5, 8, 20]), np.array([0, 2, 0]))
        assert out.tolist() == [8, 9]

    def test_all_empty(self):
        assert expand_ranges(np.array([1, 2]), np.array([0, 0])).size == 0

    def test_no_ranges(self):
        assert expand_ranges(np.array([]), np.array([])).size == 0

    def test_single_range(self):
        assert expand_ranges(np.array([7]), np.array([4])).tolist() == [7, 8, 9, 10]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=30,
        )
    )
    def test_matches_naive(self, ranges):
        starts = np.array([r[0] for r in ranges], dtype=np.int64)
        counts = np.array([r[1] for r in ranges], dtype=np.int64)
        expected = [x for s, c in ranges for x in range(s, s + c)]
        assert expand_ranges(starts, counts).tolist() == expected


class TestGroupStarts:
    def test_basic(self):
        keys = np.array([2, 2, 5, 7, 7, 7])
        uniq, starts = group_starts(keys)
        assert uniq.tolist() == [2, 5, 7]
        assert starts.tolist() == [0, 2, 3]

    def test_empty(self):
        uniq, starts = group_starts(np.array([], dtype=np.int64))
        assert uniq.size == 0 and starts.size == 0

    def test_single_group(self):
        uniq, starts = group_starts(np.array([4, 4, 4]))
        assert uniq.tolist() == [4] and starts.tolist() == [0]

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=50))
    def test_matches_numpy_unique(self, values):
        keys = np.sort(np.asarray(values, dtype=np.int64))
        uniq, starts = group_starts(keys)
        exp_uniq, exp_starts = np.unique(keys, return_index=True)
        assert uniq.tolist() == exp_uniq.tolist()
        assert starts.tolist() == exp_starts.tolist()
