"""Table IV: the channel mechanism vs Pregel+ basic implementations.

Six algorithms, two datasets each, both systems' *basic* versions.
Shape targets (paper): the channel system matches or beats Pregel+ on
runtime for PR/WCC/PJ/S-V/MSF; message sizes are identical for PR/WCC/PJ
and 23–82% smaller for S-V/MSF/SCC (per-channel message types).
"""

import pytest

CELLS = [
    ("pr", "webuk"),
    ("pr", "wikipedia"),
    ("wcc", "wikipedia"),
    ("pj", "chain"),
    ("pj", "tree"),
    ("sv", "facebook"),
    ("sv", "twitter"),
    ("msf", "usa-road"),
    ("msf", "rmat24"),
    ("scc", "wikipedia"),
]


@pytest.mark.parametrize("algo,dataset", CELLS, ids=[f"{a}-{d}" for a, d in CELLS])
@pytest.mark.parametrize("system", ["pregel-basic", "channel-basic"])
def test_table4(cell, algo, dataset, system):
    row = cell(algo, system, dataset)
    assert row["supersteps"] > 0


# the paper also reports WCC and SCC on METIS-partitioned wikipedia
@pytest.mark.parametrize("algo", ["wcc", "scc"])
@pytest.mark.parametrize("system", ["pregel-basic", "channel-basic"])
def test_table4_partitioned(cell, algo, system):
    row = cell(algo, system, "wikipedia", partitioned=True)
    assert row["supersteps"] > 0
