"""Tests for the Palgol-lite DSL and compiler (the paper's future-work
pipeline: declarative specs -> channel programs with automatic channel
selection)."""

import numpy as np
import pytest

from repro.algorithms.sv import run_sv
from repro.core.combiner import MIN_I64, SUM_F64, SUM_I64
from repro.graph import chain, random_tree, rmat
from repro.graph.graph import Graph
from repro.palgol import (
    Add,
    Assign,
    CompileError,
    Const,
    Deg,
    Div,
    Eq,
    Field,
    FirstNeighbor,
    If,
    Let,
    Lt,
    NeighborReduce,
    PalgolSpec,
    RemoteRead,
    RemoteUpdate,
    Var,
    VertexId,
    compile_palgol,
    pagerank_spec,
    pointer_jumping_spec,
    run_palgol,
    sv_spec,
    wcc_spec,
)
from repro.runtime.serialization import FLOAT64
from helpers import nx_components, line_graph


@pytest.fixture(scope="module")
def social():
    return rmat(7, edge_factor=2, seed=5, directed=False)


class TestSVSpec:
    @pytest.mark.parametrize("optimize", [True, False], ids=["optimized", "basic"])
    def test_matches_components(self, social, optimize):
        fields, _ = run_palgol(sv_spec(), social, optimize=optimize, num_workers=4)
        np.testing.assert_array_equal(fields["D"], nx_components(social))

    def test_matches_handwritten_sv(self, social):
        fields, _ = run_palgol(sv_spec(), social, optimize=True, num_workers=4)
        labels, _ = run_sv(social, variant="both", num_workers=4)
        np.testing.assert_array_equal(fields["D"], labels)

    def test_optimizer_reduces_traffic_and_supersteps(self, social):
        part = np.arange(social.num_vertices) % 4
        _, opt = run_palgol(
            sv_spec(), social, optimize=True, num_workers=4, partition=part
        )
        _, basic = run_palgol(
            sv_spec(), social, optimize=False, num_workers=4, partition=part
        )
        assert opt.metrics.total_net_bytes < basic.metrics.total_net_bytes
        assert opt.supersteps < basic.supersteps  # no reply phase

    def test_channel_selection(self):
        from repro.core import CombinedMessage, RequestRespond, ScatterCombine

        program_cls = compile_palgol(sv_spec(), optimize=True)
        from repro.core import ChannelEngine

        engine = ChannelEngine(line_graph(4), program_cls, num_workers=1)
        prog = engine.workers[0].program
        assert isinstance(prog.reduce_ch[0], ScatterCombine)
        assert isinstance(prog.read_ch[0], RequestRespond)
        assert isinstance(prog.update_ch[0], CombinedMessage)

    def test_basic_mode_uses_standard_channels_only(self):
        from repro.core import ChannelEngine, CombinedMessage, DirectMessage

        program_cls = compile_palgol(sv_spec(), optimize=False)
        engine = ChannelEngine(line_graph(4), program_cls, num_workers=1)
        prog = engine.workers[0].program
        assert isinstance(prog.reduce_ch[0], CombinedMessage)
        assert isinstance(prog.read_ch[0], tuple)
        assert all(isinstance(c, DirectMessage) for c in prog.read_ch[0])


class TestOtherSpecs:
    @pytest.mark.parametrize("optimize", [True, False])
    def test_wcc(self, social, optimize):
        fields, _ = run_palgol(wcc_spec(), social, optimize=optimize, num_workers=4)
        np.testing.assert_array_equal(fields["label"], nx_components(social))

    @pytest.mark.parametrize("optimize", [True, False])
    def test_pointer_jumping_tree(self, optimize):
        t = random_tree(200, seed=7)
        fields, _ = run_palgol(
            pointer_jumping_spec(), t, optimize=optimize, num_workers=4
        )
        assert (fields["D"] == 0).all()

    def test_pointer_jumping_chain_logarithmic(self):
        c = chain(128)
        fields, res = run_palgol(pointer_jumping_spec(), c, optimize=True, num_workers=4)
        assert (fields["D"] == 0).all()
        # reqresp round = 2 supersteps; pointer doubling -> O(log n) rounds
        assert res.supersteps <= 2 * 9

    def test_pagerank_matches_sink_free_reference(self):
        g = rmat(7, edge_factor=6, seed=3)
        fields, _ = run_palgol(
            pagerank_spec(iterations=8),
            g,
            optimize=True,
            num_workers=4,
            codecs={"rank": FLOAT64},
        )
        n = g.num_vertices
        deg = g.out_degrees
        M = np.zeros((n, n))
        for v in range(n):
            if deg[v]:
                np.add.at(M[:, v], g.neighbors(v), 1.0 / deg[v])
        r = np.full(n, 1.0 / n)
        for _ in range(8):
            r = 0.15 / n + 0.85 * (M @ r)
        np.testing.assert_allclose(fields["rank"], r, atol=1e-12)

    def test_pagerank_fixed_iterations(self):
        g = rmat(6, edge_factor=4, seed=1)
        _, res = run_palgol(
            pagerank_spec(iterations=5),
            g,
            num_workers=2,
            codecs={"rank": FLOAT64},
        )
        # 2 supersteps per round (send, body) x 5 rounds + terminating step
        assert res.supersteps == 11


class TestCompileErrors:
    def test_nested_communication_rejected(self):
        bad = PalgolSpec(
            fields={"x": VertexId()},
            body=[Let("a", NeighborReduce(MIN_I64, RemoteRead("x", at=Field("x"))))],
        )
        with pytest.raises(CompileError, match="nest"):
            compile_palgol(bad)

    def test_let_var_in_read_target_rejected(self):
        bad = PalgolSpec(
            fields={"x": VertexId()},
            body=[Let("a", Const(1)), Let("b", RemoteRead("x", at=Var("a")))],
        )
        with pytest.raises(CompileError, match="own state"):
            compile_palgol(bad)

    def test_unknown_field_read_rejected(self):
        bad = PalgolSpec(
            fields={"x": VertexId()},
            body=[Let("a", RemoteRead("y", at=Field("x")))],
        )
        with pytest.raises(CompileError, match="unknown field"):
            compile_palgol(bad)

    def test_unknown_field_assign_rejected(self):
        bad = PalgolSpec(fields={"x": VertexId()}, body=[Assign("y", Const(1))])
        with pytest.raises(CompileError, match="unknown field"):
            compile_palgol(bad)

    def test_bad_iterate_rejected(self):
        with pytest.raises(ValueError):
            PalgolSpec(fields={}, body=[], iterate="forever")


class TestSmallPrograms:
    def test_pure_local_program(self):
        """No communication at all: one phase per round."""
        spec = PalgolSpec(
            name="double",
            fields={"x": VertexId()},
            iterate=3,
            body=[Assign("x", Add(Field("x"), Const(1)))],
        )
        fields, res = run_palgol(spec, line_graph(4), num_workers=2)
        assert fields["x"].tolist() == [3, 4, 5, 6]
        assert res.supersteps == 4  # 3 rounds + terminating step

    def test_degree_sum(self):
        """Sum of neighbor degrees via NeighborReduce(SUM)."""
        spec = PalgolSpec(
            name="degsum",
            fields={"s": Const(0)},
            iterate=1,
            body=[Assign("s", NeighborReduce(SUM_I64, Deg()))],
        )
        g = line_graph(4)  # degrees 1,2,2,1
        fields, _ = run_palgol(spec, g, num_workers=2)
        assert fields["s"].tolist() == [2, 3, 3, 2]

    def test_remote_update_folds_with_combiner(self):
        """Everyone min-updates vertex 0 with its own id + 10."""
        spec = PalgolSpec(
            name="minupd",
            fields={"m": Const(10**6)},
            iterate=1,
            body=[
                RemoteUpdate(
                    "m", at=Const(0), value=Add(VertexId(), Const(10)), combiner=MIN_I64
                )
            ],
        )
        fields, _ = run_palgol(spec, line_graph(5), num_workers=2)
        assert fields["m"][0] == 10
        assert (fields["m"][1:] == 10**6).all()

    def test_first_neighbor_expr(self):
        spec = PalgolSpec(
            name="fn",
            fields={"p": FirstNeighbor()},
            iterate=1,
            body=[],
        )
        t = chain(4)
        fields, _ = run_palgol(spec, t, num_workers=2)
        assert fields["p"].tolist() == [0, 0, 1, 2]

    def test_fixpoint_of_pure_local_converges(self):
        """x := min(x, 5) reaches fixpoint in two rounds."""
        spec = PalgolSpec(
            name="clamp",
            fields={"x": VertexId()},
            iterate="fixpoint",
            body=[
                If(Lt(Const(5), Field("x")), then=[Assign("x", Const(5))]),
            ],
        )
        fields, res = run_palgol(spec, line_graph(10), num_workers=2)
        assert (fields["x"] == np.minimum(np.arange(10), 5)).all()
