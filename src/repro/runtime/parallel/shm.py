"""Shared-memory primitives: read-only array export and SPSC ring buffers.

Two independent facilities live here:

* **Array export** (:class:`SharedArrayExport` / :func:`attach_array`) —
  the parent exports each array once (one copy into a fresh segment);
  every worker process attaches by name and gets a read-only zero-copy
  view.  The specs that travel to the children are plain
  ``(name, dtype, shape)`` tuples, so they cross the control pipes
  through the same tagged-binary codec as everything else.

* **Ring buffers** (:class:`RingBuffer`) — single-producer /
  single-consumer byte FIFOs over a ``SharedMemory`` segment, the data
  plane of the process backend's ``transport="shm"`` mode.  Codec frame
  bytes flow worker-to-worker through these rings instead of through OS
  pipes; a small fixed *slot* in each ring's header carries the batched
  barrier votes (see ARCHITECTURE.md §9).
"""

from __future__ import annotations

import struct
import time
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "SharedArrayExport",
    "attach_array",
    "RingBuffer",
    "RingTimeout",
    "untrack_segment",
    "DEFAULT_RING_CAPACITY",
]


def _spec(name: str, arr: np.ndarray) -> dict:
    return {"name": name, "dtype": arr.dtype.str, "shape": list(arr.shape)}


class SharedArrayExport:
    """Parent-side owner of a set of shared-memory arrays.

    ``share()`` copies an array into a new segment and returns its spec;
    ``close()`` releases (and by default unlinks) every segment.  The
    parent must keep this object alive for as long as children are
    attached.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []

    def share(self, arr: np.ndarray) -> dict:
        arr = np.ascontiguousarray(arr)
        # zero-size segments are rejected by the OS; keep 1 byte and let
        # the spec's shape reconstruct the empty view
        seg = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
        self._segments.append(seg)
        if arr.nbytes:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
            view[...] = arr
        return _spec(seg.name, arr)

    def share_writable(self, arr: np.ndarray) -> tuple[dict, np.ndarray]:
        """Like :meth:`share`, but also return the parent's live view of
        the segment, so the parent can rewrite the shared contents in
        place later (children attach the same buffer and observe the
        update — used for ownership migration at quiescent barriers)."""
        arr = np.ascontiguousarray(arr)
        seg = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
        self._segments.append(seg)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        if arr.nbytes:
            view[...] = arr
        return _spec(seg.name, arr), view

    def close(self, unlink: bool = True) -> None:
        for seg in self._segments:
            try:
                seg.close()
                if unlink:
                    seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []

    def __enter__(self) -> "SharedArrayExport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_array(
    spec: dict, unregister: bool = False
) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Map a shared array read-only in this process.

    Returns the view *and* the segment handle; the caller must keep the
    handle alive while the view is in use and ``close()`` it afterwards
    (never ``unlink()`` — the parent owns the segment).

    ``unregister`` works around bpo-39959 for **spawned** children: their
    private resource tracker would treat the attached segment as leaked
    on exit and unlink it under the parent.  Forked children share the
    parent's tracker, where attaching is an idempotent re-register —
    unregistering there would instead erase the parent's claim, so the
    caller must pass ``unregister`` matching the start method in use.
    """
    seg = shared_memory.SharedMemory(name=spec["name"])
    if unregister:
        untrack_segment(seg)
    shape = tuple(spec["shape"])
    arr = np.ndarray(shape, dtype=np.dtype(spec["dtype"]), buffer=seg.buf)
    arr.flags.writeable = False
    return arr, seg


def untrack_segment(seg: shared_memory.SharedMemory) -> None:
    """Drop this process's private resource-tracker claim on a segment
    another process owns (bpo-39959; see :func:`attach_array`).  Shared
    by every independent attacher in the tree — spawned workers, the
    live-metrics plane (`repro.obs.live`), external `repro top`."""
    try:  # pragma: no cover - spawn-only path
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass


# ---------------------------------------------------------------------------
# SPSC ring buffers (transport="shm" data plane)
# ---------------------------------------------------------------------------

#: default per-ring data capacity; big enough that a typical superstep's
#: frames to one peer fit without wrapping, small enough that an 8-worker
#: pool's 56 rings stay modest (56 MiB)
DEFAULT_RING_CAPACITY = 1 << 20

# header layout: the producer-owned and consumer-owned cursors sit on
# separate cache lines so the two processes never write the same line
_OFF_HEAD = 0  # consumer cursor (monotonic, u64) — written by the reader
_OFF_TAIL = 64  # producer cursor (monotonic, u64) — written by the writer
_OFF_SLOT_SEQ = 128  # seqlock for the vote slot — written by the writer
_OFF_SLOT_VAL = 136  # vote slot payload (u64) — written by the writer
_HEADER_SIZE = 192

_U64 = struct.Struct("<Q")

#: spin iterations before the wait loops start sleeping
_SPIN = 200
#: ceiling for the backoff sleep (keeps peer-death detection prompt)
_MAX_SLEEP = 0.002


class RingTimeout(RuntimeError):
    """A blocking ring operation exceeded its deadline (e.g. the peer
    process died and will never produce/consume another byte)."""


class RingBuffer:
    """A single-producer/single-consumer byte FIFO in shared memory.

    The ring is a plain byte stream: ``write_some``/``read_some`` are the
    non-blocking primitives (move as many bytes as space/data allow) that
    the frame transport's pump interleaves across peers, and
    ``write_all``/``read_exact``/``send``/``recv`` are blocking helpers
    built on a spin-then-backoff wait (no futexes, no OS handles to
    inherit — everything lives in the segment, so a respawned replacement
    worker adopts the live cursors just by attaching).

    Cursors are monotonic u64s (data offset = cursor mod capacity), so
    "empty" (head == tail) and "exactly full" (tail - head == capacity)
    are distinct without a wasted byte.  Exactly one process may write
    (tail, slot) and exactly one may advance head; any number may *read*
    the slot — the parent observes barrier votes through it without
    consuming stream bytes.

    Blocking waits take an optional ``check`` callable, invoked
    periodically once the wait starts sleeping; it may raise to abort the
    wait (the parent raises ``WorkerProcessError`` from its process-
    liveness check, which is how a writer dying mid-frame surfaces
    instead of hanging), and a ``timeout`` in seconds after which
    :class:`RingTimeout` is raised.
    """

    __slots__ = ("_seg", "_buf", "capacity", "spec")

    def __init__(self, seg: shared_memory.SharedMemory, capacity: int) -> None:
        self._seg = seg
        self._buf = seg.buf
        self.capacity = int(capacity)
        self.spec = {"name": seg.name, "capacity": int(capacity)}

    # -- lifecycle -----------------------------------------------------------
    @classmethod
    def create(cls, capacity: int = DEFAULT_RING_CAPACITY) -> "RingBuffer":
        if capacity < 16:
            raise ValueError("ring capacity must be at least 16 bytes")
        seg = shared_memory.SharedMemory(create=True, size=_HEADER_SIZE + capacity)
        seg.buf[:_HEADER_SIZE] = bytes(_HEADER_SIZE)
        return cls(seg, capacity)

    @classmethod
    def attach(cls, spec: dict, unregister: bool = False) -> "RingBuffer":
        seg = shared_memory.SharedMemory(name=spec["name"])
        if unregister:
            untrack_segment(seg)
        return cls(seg, spec["capacity"])

    def close(self, unlink: bool = False) -> None:
        try:
            self._buf = None
            self._seg.close()
            if unlink:
                self._seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    # -- cursor access ---------------------------------------------------------
    def _load(self, off: int) -> int:
        return _U64.unpack_from(self._buf, off)[0]

    def _store(self, off: int, value: int) -> None:
        _U64.pack_into(self._buf, off, value)

    @property
    def pending(self) -> int:
        """Bytes currently buffered (written but not yet consumed)."""
        return self._load(_OFF_TAIL) - self._load(_OFF_HEAD)

    # -- non-blocking primitives ----------------------------------------------
    def write_some(self, data) -> int:
        """Copy as much of ``data`` into the ring as fits; returns the
        number of bytes consumed from ``data`` (0 when full)."""
        head = self._load(_OFF_HEAD)
        tail = self._load(_OFF_TAIL)
        space = self.capacity - (tail - head)
        if space <= 0:
            return 0
        data = memoryview(data)
        n = min(space, len(data))
        pos = tail % self.capacity
        first = min(n, self.capacity - pos)
        base = _HEADER_SIZE
        self._buf[base + pos : base + pos + first] = data[:first]
        if n > first:
            self._buf[base : base + (n - first)] = data[first:n]
        # publish after the payload copy: the consumer only trusts bytes
        # below tail
        self._store(_OFF_TAIL, tail + n)
        return n

    def read_some(self, max_bytes: int | None = None) -> bytes:
        """Consume up to ``max_bytes`` available bytes (b"" when empty)."""
        head = self._load(_OFF_HEAD)
        tail = self._load(_OFF_TAIL)
        avail = tail - head
        if avail <= 0:
            return b""
        n = avail if max_bytes is None else min(avail, max_bytes)
        pos = head % self.capacity
        first = min(n, self.capacity - pos)
        base = _HEADER_SIZE
        if n > first:
            out = bytes(self._buf[base + pos : base + pos + first]) + bytes(
                self._buf[base : base + (n - first)]
            )
        else:
            out = bytes(self._buf[base + pos : base + pos + n])
        self._store(_OFF_HEAD, head + n)
        return out

    # -- the vote slot ----------------------------------------------------------
    def write_slot(self, seq: int, value: int) -> None:
        """Publish ``value`` under sequence number ``seq`` (writer only).
        Readers spinning on ``seq`` see the payload fully written first."""
        self._store(_OFF_SLOT_VAL, value)
        self._store(_OFF_SLOT_SEQ, seq)

    def peek_slot(self) -> tuple[int, int]:
        """(seq, value) currently published — non-blocking, non-consuming."""
        seq = self._load(_OFF_SLOT_SEQ)
        return seq, self._load(_OFF_SLOT_VAL)

    def read_slot(self, seq: int, check=None, timeout: float | None = None) -> int:
        """Block until the slot reaches sequence ``seq``; returns its value."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        spins = 0
        while True:
            have, value = self.peek_slot()
            if have >= seq:
                return value
            spins += 1
            if spins > _SPIN:
                time.sleep(min(_MAX_SLEEP, 5e-5 * (spins - _SPIN)))
                if check is not None:
                    check()
                if deadline is not None and time.perf_counter() > deadline:
                    raise RingTimeout(
                        f"vote slot never reached seq {seq} (stuck at {have})"
                    )

    # -- blocking helpers ---------------------------------------------------------
    def write_all(self, data, check=None, timeout: float | None = None) -> None:
        """Write all of ``data``, spinning/backing off while the ring is
        full.  Frames larger than the ring stream through in chunks."""
        data = memoryview(data)
        off = 0
        deadline = None if timeout is None else time.perf_counter() + timeout
        spins = 0
        while off < len(data):
            n = self.write_some(data[off:])
            if n:
                off += n
                spins = 0
                continue
            spins += 1
            if spins > _SPIN:
                time.sleep(min(_MAX_SLEEP, 5e-5 * (spins - _SPIN)))
                if check is not None:
                    check()
                if deadline is not None and time.perf_counter() > deadline:
                    raise RingTimeout(
                        f"ring full for {timeout}s ({len(data) - off} bytes unsent)"
                    )

    def read_exact(self, n: int, check=None, timeout: float | None = None) -> bytes:
        """Read exactly ``n`` bytes, blocking until the writer provides
        them.  ``check`` fires while waiting — this is where a reader
        notices the writer died mid-frame instead of hanging."""
        parts: list[bytes] = []
        got = 0
        deadline = None if timeout is None else time.perf_counter() + timeout
        spins = 0
        while got < n:
            chunk = self.read_some(n - got)
            if chunk:
                parts.append(chunk)
                got += len(chunk)
                spins = 0
                continue
            spins += 1
            if spins > _SPIN:
                time.sleep(min(_MAX_SLEEP, 5e-5 * (spins - _SPIN)))
                if check is not None:
                    check()
                if deadline is not None and time.perf_counter() > deadline:
                    raise RingTimeout(
                        f"writer stalled: got {got} of {n} expected bytes"
                    )
        return b"".join(parts)

    # -- framed messages (length-prefixed), used by tests and small payloads -------
    def send(self, payload, check=None, timeout: float | None = None) -> None:
        self.write_all(_U64.pack(len(payload)), check, timeout)
        self.write_all(payload, check, timeout)

    def recv(self, check=None, timeout: float | None = None) -> bytes:
        (length,) = _U64.unpack(self.read_exact(8, check, timeout))
        return self.read_exact(length, check, timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingBuffer({self.spec['name']}, cap={self.capacity}, pending={self.pending})"
