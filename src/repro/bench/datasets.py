"""Scaled counterparts of the paper's Table III datasets.

The paper's graphs are 18M–42M vertices on an 8-node cluster; the
simulator runs laptop-scale versions that preserve the properties each
experiment leans on:

================  ===============================  =========================
paper dataset     property that matters            scaled counterpart
================  ===============================  =========================
Wikipedia         directed, power-law, avg deg ~9  RMAT(13), ef 9
WebUK             directed, heavy (avg deg ~24)    RMAT(13), ef 24
Facebook          undirected, sparse (avg ~3)      undirected RMAT(13), ef 2
Twitter           undirected, dense (avg ~70)      undirected RMAT(12), ef 18
Tree              random rooted tree               random_tree(2^16)
Chain             depth-n pathological tree        chain(2^15)
USA Road          near-planar, avg deg 2.4,        thinned grid 180x140,
                  weighted, huge diameter          weighted
RMAT24            weighted power-law               undirected weighted
                                                   RMAT(12), ef 8
================  ===============================  =========================

All are deterministic (fixed seeds) and cached after first construction.
"""

from __future__ import annotations

from typing import Callable

from repro.graph import chain, erdos_renyi, grid_road, random_tree, rmat
from repro.graph.graph import Graph

__all__ = ["DATASETS", "EXTRA_DATASETS", "load_dataset", "table3_rows"]

#: name -> (constructor, kind) where kind explains the Table III "Type"
DATASETS: dict[str, tuple[Callable[[], Graph], str]] = {
    "wikipedia": (lambda: rmat(13, edge_factor=9, seed=101, directed=True), "directed"),
    "webuk": (lambda: rmat(13, edge_factor=24, seed=102, directed=True), "directed"),
    "facebook": (
        lambda: rmat(13, edge_factor=2, seed=103, directed=False),
        "undirected",
    ),
    "twitter": (
        lambda: rmat(12, edge_factor=18, seed=104, directed=False),
        "undirected",
    ),
    "tree": (lambda: random_tree(1 << 16, seed=105), "rooted tree"),
    "chain": (lambda: chain(1 << 15), "rooted tree"),
    "usa-road": (lambda: grid_road(180, 140, seed=106), "undirected & weighted"),
    "rmat24": (
        lambda: rmat(12, edge_factor=8, seed=107, directed=False, weighted=True),
        "undirected & weighted",
    ),
}

#: workloads that are not Table III rows (kept out of ``DATASETS`` so the
#: table inventory stays the paper's): the scalar-vs-bulk speedup
#: benchmark's 100k-vertex graph (BENCH_bulk.json) and the streaming
#: benchmark's graphs (BENCH_streaming.json) — a 10k-vertex weighted road
#: grid whose slow frontier growth favors locality, plus a power-law
#: contrast where the dirty region explodes
EXTRA_DATASETS: dict[str, tuple[Callable[[], Graph], str]] = {
    "bulk-100k": (
        lambda: erdos_renyi(100_000, 8.0, seed=108, directed=True),
        "directed",
    ),
    "stream-road": (
        lambda: grid_road(100, 100, seed=109),
        "undirected & weighted",
    ),
    "stream-er": (
        lambda: erdos_renyi(20_000, 8.0, seed=110, directed=True),
        "directed",
    ),
}

_cache: dict[str, Graph] = {}


def load_dataset(name: str) -> Graph:
    """Build (or fetch the cached) benchmark graph by name (Table III
    names plus the extras)."""
    registry = DATASETS if name in DATASETS else EXTRA_DATASETS
    if name not in registry:
        raise KeyError(
            f"unknown dataset {name!r}; have {sorted(DATASETS) + sorted(EXTRA_DATASETS)}"
        )
    if name not in _cache:
        _cache[name] = registry[name][0]()
    return _cache[name]


def table3_rows() -> list[dict]:
    """Regenerate Table III (the dataset inventory) for our scaled graphs."""
    rows = []
    for name, (_, kind) in DATASETS.items():
        g = load_dataset(name)
        rows.append(
            {
                "dataset": name,
                "type": kind,
                "|V|": g.num_vertices,
                "|E|": g.num_input_edges,
                "avg_deg": round(g.avg_degree, 2),
            }
        )
    return rows
