"""Unit tests for graph IO."""

import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.graph.io import load_edgelist, load_npz, save_edgelist, save_npz
from repro.graph import rmat, grid_road


class TestEdgelist:
    def test_roundtrip_directed(self, tmp_path):
        g = rmat(6, edge_factor=3, seed=1)
        path = tmp_path / "g.txt"
        save_edgelist(g, path)
        h = load_edgelist(path)
        assert h.num_vertices == g.num_vertices
        assert h.directed == g.directed
        assert sorted(h.edges()) == sorted(g.edges())

    def test_roundtrip_undirected_weighted(self, tmp_path):
        g = grid_road(6, 6, seed=0)
        path = tmp_path / "g.txt"
        save_edgelist(g, path)
        h = load_edgelist(path)
        assert not h.directed
        assert h.num_edges == g.num_edges
        for v in range(g.num_vertices):
            np.testing.assert_array_equal(
                np.sort(h.neighbors(v)), np.sort(g.neighbors(v))
            )

    def test_headerless_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        g = load_edgelist(path)
        assert g.num_vertices == 3
        assert g.directed
        assert g.num_edges == 2

    def test_isolated_trailing_vertices_preserved(self, tmp_path):
        g = Graph.from_edges(10, [(0, 1)])
        path = tmp_path / "g.txt"
        save_edgelist(g, path)
        assert load_edgelist(path).num_vertices == 10

    def test_partial_weights_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 2.0\n1 2\n")
        with pytest.raises(ValueError):
            load_edgelist(path)


class TestNpz:
    def test_roundtrip(self, tmp_path):
        g = rmat(7, edge_factor=2, seed=4)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        h = load_npz(path)
        assert h.num_vertices == g.num_vertices
        np.testing.assert_array_equal(h.indptr, g.indptr)
        np.testing.assert_array_equal(h.indices, g.indices)

    def test_roundtrip_weighted_undirected(self, tmp_path):
        g = grid_road(5, 7, seed=2)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        h = load_npz(path)
        assert not h.directed
        assert h.weighted
        np.testing.assert_allclose(h.weights, g.weights)
        assert h.num_input_edges == g.num_input_edges
