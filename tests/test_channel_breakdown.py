"""Tests for the per-channel traffic breakdown and send-path validation."""

import numpy as np
import pytest

from repro.algorithms.sv import run_sv
from repro.core import (
    ChannelEngine,
    CombinedMessage,
    DirectMessage,
    SUM_I64,
    VertexProgram,
)
from repro.graph import rmat
from helpers import line_graph


class TestBreakdown:
    def test_labels_and_conservation(self):
        """Per-channel net bytes must sum to the run's total net payload
        (frame headers are the only difference)."""
        g = rmat(7, edge_factor=2, seed=3, directed=False)
        _, res = run_sv(g, variant="both", num_workers=4)
        breakdown = res.metrics.channel_breakdown()
        # S-V 'both' = RequestRespond + ScatterCombine + CombinedMessage + Aggregator
        names = {label.split(":")[1] for label in breakdown}
        assert names == {
            "RequestRespond",
            "ScatterCombine",
            "CombinedMessage",
            "Aggregator",
        }
        payload_net = sum(v["net_bytes"] for v in breakdown.values())
        # total includes 8B frame headers per emitted frame
        assert payload_net <= res.metrics.total_net_bytes
        assert payload_net > 0.8 * res.metrics.total_net_bytes

    def test_message_attribution_sums_to_total(self):
        g = rmat(7, edge_factor=2, seed=3, directed=False)
        _, res = run_sv(g, variant="both", num_workers=4)
        breakdown = res.metrics.channel_breakdown()
        assert (
            sum(v["messages"] for v in breakdown.values())
            == res.metrics.total_messages
        )

    def test_dominant_pattern_identifiable(self):
        """The analysis use case: on a dense graph the neighborhood
        broadcast dominates S-V's traffic."""
        g = rmat(7, edge_factor=8, seed=1, directed=False)
        _, res = run_sv(g, variant="basic", num_workers=4)
        breakdown = res.metrics.channel_breakdown()
        bcast = next(
            v for k, v in breakdown.items() if "CombinedMessage" in k and k[0] == "2"
        )
        # channel ids: 0=req, 1=reply, 2=bcast, 3=upd, 4=agg
        others = sum(
            v["net_bytes"] for k, v in breakdown.items() if not k.startswith("2")
        )
        assert bcast["net_bytes"] > others

    def test_local_bytes_attributed(self):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.msg = DirectMessage(worker)

            def compute(self, v):
                if self.step_num == 1:
                    self.msg.send_message(v.id, 1)  # to self: always local
                v.vote_to_halt()

        res = ChannelEngine(line_graph(4), P, num_workers=1).run()
        b = res.metrics.channel_breakdown()
        (entry,) = b.values()
        assert entry["net_bytes"] == 0
        assert entry["local_bytes"] > 0


class TestSendValidation:
    @pytest.mark.parametrize("bad", [-1, 99])
    def test_out_of_range_destination_rejected(self, bad):
        class P(VertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.msg = CombinedMessage(worker, SUM_I64)

            def compute(self, v):
                self.msg.send_message(bad, 1)

        with pytest.raises(IndexError, match="out of range"):
            ChannelEngine(line_graph(4), P, num_workers=2).run()
