"""The worker-process main loop (child side of the process backend).

Each child owns one :class:`~repro.core.worker.Worker` — built against
the shared-memory graph and partition — plus the program instance its
factory constructs, exactly as the simulated engine builds them.  The
child is *persistent*: it serves barrier-protocol commands from the
parent for as long as its :class:`~repro.runtime.parallel.pool.WorkerPool`
lives, across many ``engine.run()`` calls and streaming epochs.

Run-loop commands (one superstep = ``begin`` / ``compute`` / ``exchange``\\*):

``begin``
    ``program.before_superstep()`` + ``worker.begin_superstep()``;
    replies with the active-set size so the parent can decide
    termination globally.
``compute``
    Bump ``step_num`` and run the program on the stored active set.
``exchange``
    One exchange round: serialize the active channel groups, swap the
    raw frame buffers peer-to-peer over the data pipes, deserialize, and
    report which channel groups want another round.  The *same bytes*
    the simulator's :class:`~repro.runtime.buffers.BufferExchange` would
    move now cross real process boundaries; the parent gets only their
    lengths, for cost-model accounting — plus the raw outgoing buffers
    themselves when ``log_frames`` is set, feeding the parent's
    sender-side :class:`~repro.core.recovery.FrameLog` for confined
    recovery.
``superstep`` (``transport="shm"`` pools only)
    The batched alternative to the three commands above: the child runs
    the *whole* superstep autonomously — barrier vote through the ring
    header slots, compute, every exchange round with frames flowing
    worker-to-worker through shared-memory ring buffers
    (:class:`~repro.runtime.parallel.shm.RingBuffer`), and round
    continuation merged from in-stream votes — then sends one
    consolidated reply carrying the per-round byte counts, frame logs,
    and phase timings.  A superstep costs O(peers) control-pipe
    messages instead of O(rounds × workers); see ARCHITECTURE.md §9.
``finalize``
    Ship ``program.finalize()`` — and, when state sync is requested, the
    full per-worker state in the checkpoint layer's capture format —
    back to the parent through the tagged-binary codec.

Lifecycle commands (how a pool outlives any single engine):

``configure``
    Tear the current worker down and rebuild it for a *new* engine
    configuration: attach the new shared-memory graph segments, apply
    the remapped ownership array and seed set, and construct the new
    program from the factory that rode along as pickle bytes (see
    :class:`~repro.core.program.ProgramSpec`).  This is the delta/remap
    message that replaces respawning — streaming epochs reuse the same
    OS processes for the whole run.
``start_run``
    ``channel.initialize()`` on every channel, mirroring what the
    simulated engine does at the top of each ``run()``.  The superstep
    counter deliberately keeps running across same-engine runs — the
    simulator's ``step_num`` does too — and is reset only by
    ``configure`` (new engine) or ``restore`` (recovery rewind).
``capture`` / ``restore``
    Checkpointing across the process boundary: ``capture`` replies with
    this worker's state as checkpoint-codec wire bytes
    (:func:`repro.runtime.checkpoint.capture_worker_state`); ``restore``
    loads such a blob (rollback recovery, or priming a respawned
    replacement after an injected death) and rewinds ``step_num``.
``remap``
    Adaptive rebalancing at a superstep barrier: the parent has already
    rewritten the shared ownership array in place; rebuild the Worker
    against it from the stored program factory and load the remapped
    state blob that rode along.  Unlike ``configure`` this keeps the
    graph attachments, ``step_num``, and the live telemetry writer —
    same engine, same run, new vertex placement.
``die``
    ``os._exit`` immediately — deterministic failure injection through
    the *real* worker-death path (the parent observes a dead process,
    not a polite error reply).
``stop``
    Exit the serve loop.

Channel/worker code runs **unmodified**: the child's
:class:`_WorkerHost` quacks like the engine (graph, owner, metrics,
``step_num``) and its :class:`_ChildCounters` absorbs the byte/message
accounting calls, which the child flushes to the parent with every
reply.
"""

from __future__ import annotations

import gc
import os
import pickle
import struct
import threading
import time
import traceback
from collections import deque

import numpy as np


from repro.core.worker import Worker
from repro.graph.graph import Graph
from repro.graph.store import attach_store
from repro.runtime.checkpoint import (
    capture_worker_state,
    decode_state,
    encode_state,
    load_worker_state,
)
from repro.runtime.parallel.protocol import recv_msg, send_msg
from repro.runtime.parallel.shm import RingBuffer, attach_array

__all__ = ["worker_main"]

_U64 = struct.Struct("<Q")

#: pump-loop spin budget before backing off to sleeps
_SPIN = 200


class _ChildCounters:
    """Accumulates the metric calls workers/channels make mid-phase; the
    child flushes the deltas to the parent with every reply, where they
    merge into the real :class:`~repro.runtime.metrics.MetricsCollector`."""

    __slots__ = ("messages", "channel_traffic")

    def __init__(self) -> None:
        self.messages = 0
        self.channel_traffic: dict = {}

    # -- MetricsCollector counting surface (see Worker.emit/count_net_messages)
    def count_messages(self, n: int) -> None:
        self.messages += n

    def count_channel_bytes(self, label: str, nbytes: int, local: bool) -> None:
        entry = self.channel_traffic.setdefault(label, [0, 0, 0])
        entry[1 if local else 0] += nbytes

    def count_channel_messages(self, label: str, n: int) -> None:
        entry = self.channel_traffic.setdefault(label, [0, 0, 0])
        entry[2] += n

    def flush(self) -> dict:
        out = {"messages": self.messages, "channels": self.channel_traffic}
        self.messages = 0
        self.channel_traffic = {}
        return out


class _WorkerHost:
    """Just enough of :class:`~repro.core.engine.ChannelEngine` for a
    :class:`Worker` and its channels to run unchanged in a child."""

    def __init__(self, graph: Graph, owner: np.ndarray, num_workers: int) -> None:
        self.graph = graph
        self.owner = owner
        self.num_workers = num_workers
        self.metrics = _ChildCounters()
        self.step_num = 0


def _exchange_frames(
    worker_id: int,
    num_workers: int,
    out_bufs: list[bytes],
    send_conns: dict,
    recv_conns: dict,
) -> list[bytes]:
    """Swap this round's raw buffers with every peer, pairwise.

    A dedicated sender thread pushes all outgoing buffers while the main
    thread drains the incoming pipes, so no send can wait on a receive —
    every pipe is drained independently of this worker's own send
    progress, which rules out the circular-wait deadlock of a naive
    send-then-receive loop once a buffer outgrows the OS pipe capacity.
    """
    inbox = [b""] * num_workers
    inbox[worker_id] = out_bufs[worker_id]  # self-delivery never hits a pipe
    if num_workers == 1:
        return inbox

    failure: list[BaseException] = []

    def _send_all() -> None:
        try:
            for peer in range(num_workers):
                if peer != worker_id:
                    send_conns[peer].send_bytes(out_bufs[peer])
        except BaseException as exc:  # pragma: no cover - peer death race
            failure.append(exc)

    sender = threading.Thread(target=_send_all, daemon=True)
    sender.start()
    for peer in range(num_workers):
        if peer != worker_id:
            inbox[peer] = recv_conns[peer].recv_bytes()
    sender.join()
    if failure:  # pragma: no cover - peer death race
        raise failure[0]
    return inbox


class _RingPeer:
    """Per-peer transport state: the outbound send queue and the inbound
    incremental record parser (see :class:`_RingTransport`)."""

    __slots__ = ("out_ring", "in_ring", "pending", "buf", "state", "need",
                 "parts", "votes", "sent", "logged")

    def __init__(self, out_ring: RingBuffer, in_ring: RingBuffer) -> None:
        self.out_ring = out_ring
        self.in_ring = in_ring
        self.pending: deque = deque()  # memoryviews not yet in the ring
        self.buf = bytearray()  # drained but not yet parsed inbound bytes
        self.state = "len"  # "len" | "chunk" | "votes" | "done"
        self.need = 0
        self.parts: list[bytes] = []  # this round's received chunk payloads
        self.votes: bytes | None = None  # this round's received votes record
        self.sent = 0  # bytes queued to this peer this round
        self.logged: list[bytes] = []  # this round's outbound chunks (frame log)


class _RingTransport:
    """The child side of ``transport="shm"``: one outbound SPSC ring per
    peer (this worker produces) and one inbound ring per peer (this
    worker consumes), pumped from the main thread — no sender threads.

    Wire format, per exchange round and directed pair: a sequence of
    ``[u64 length > 0][payload]`` chunks (one per channel flush, so a
    channel's frames publish while later channels are still
    serializing), a ``u64 0`` end-of-round marker, then — after the
    consumer finished deserializing — one *votes record* of
    ``num_channels`` raw bytes (this worker's per-channel
    another-round votes).  Every worker merges the votes identically
    (OR across all workers, its own included), so all children agree on
    the next round's active channel groups without asking the parent.

    Barrier votes ride the rings too: each superstep, the worker
    publishes its active-vertex count into every outbound ring's header
    slot under the parent-issued sequence number, then reads every
    peer's slot — again, all processes independently compute the same
    global total (the parent reads one slot per worker for its copy).

    Everything here is single-threaded and non-blocking at the
    primitive level: :meth:`pump` moves whatever bytes fit right now,
    in both directions, across all peers.  Blocking composites
    (:meth:`finish_round`, :meth:`exchange_votes`) loop the pump, so a
    full outbound ring can never deadlock against an unread inbound
    ring.  Waits carry no liveness checks — a peer dying mid-frame
    leaves this worker spinning, and the *parent's* supervision (which
    polls every PID while gathering replies) surfaces the death and
    tears the pool down, exactly as on the pipe path.
    """

    def __init__(self, worker_id: int, num_workers: int,
                 out_rings: dict[int, RingBuffer], in_rings: dict[int, RingBuffer]):
        self.worker_id = worker_id
        self.num_workers = num_workers
        self.peers = {
            peer: _RingPeer(out_rings[peer], in_rings[peer])
            for peer in range(num_workers)
            if peer != worker_id
        }
        self.nchan = 0
        self.log_frames = False
        self._self_parts: list[bytes] = []
        self._self_sent = 0

    # -- barrier votes ------------------------------------------------------
    def vote_and_total(self, seq: int, my_active: int) -> int:
        for p in self.peers.values():
            p.out_ring.write_slot(seq, my_active)
        total = my_active
        for p in self.peers.values():
            total += p.in_ring.read_slot(seq)
        return total

    # -- the pump -----------------------------------------------------------
    def _parse(self, p: _RingPeer) -> None:
        buf = p.buf
        while True:
            if p.state == "len":
                if len(buf) < 8:
                    return
                (n,) = _U64.unpack_from(buf, 0)
                del buf[:8]
                if n == 0:
                    p.state, p.need = "votes", self.nchan
                else:
                    p.state, p.need = "chunk", n
            elif p.state == "chunk":
                if len(buf) < p.need:
                    return
                p.parts.append(bytes(buf[: p.need]))
                del buf[: p.need]
                p.state = "len"
            elif p.state == "votes":
                if len(buf) < p.need:
                    return
                p.votes = bytes(buf[: p.need])
                del buf[: p.need]
                p.state = "done"
            else:  # "done": anything further is next round's lookahead
                return

    def pump(self) -> bool:
        """One non-blocking pass over every peer: drain inbound rings into
        the parsers, push queued outbound bytes into rings with space.
        Returns whether any byte moved (the backoff signal)."""
        progress = False
        for p in self.peers.values():
            data = p.in_ring.read_some()
            if data:
                p.buf += data
                self._parse(p)
                progress = True
            while p.pending:
                mv = p.pending[0]
                n = p.out_ring.write_some(mv)
                if n == 0:
                    break
                progress = True
                if n == len(mv):
                    p.pending.popleft()
                else:
                    p.pending[0] = mv[n:]
        return progress

    def _pump_until(self, done) -> None:
        spins = 0
        while not done():
            if self.pump():
                spins = 0
                continue
            spins += 1
            if spins > _SPIN:
                time.sleep(min(0.002, 5e-5 * (spins - _SPIN)))

    # -- round lifecycle ------------------------------------------------------
    def begin_round(self, nchan: int, log_frames: bool) -> None:
        self.nchan = nchan
        self.log_frames = log_frames
        self._self_parts = []
        self._self_sent = 0
        for p in self.peers.values():
            p.parts = []
            p.votes = None
            p.sent = 0
            p.logged = []
            p.state = "len"
            # a fast peer may already have published this round's chunks
            # (they queue behind the previous round's votes record)
            self._parse(p)

    def publish(self, out_writers) -> None:
        """Queue whatever the channels appended to the per-peer writers
        since the last call, then pump once — this is the overlap hook,
        called after *each* channel's ``serialize`` so its frames hit the
        rings while later channels are still computing theirs."""
        for peer in range(self.num_workers):
            writer = out_writers[peer]
            if not writer.nbytes:
                continue
            data = writer.getvalue()
            writer.clear()
            if peer == self.worker_id:
                self._self_parts.append(data)
                self._self_sent += len(data)
                continue
            p = self.peers[peer]
            p.sent += len(data)
            if self.log_frames:
                p.logged.append(data)
            p.pending.append(memoryview(_U64.pack(len(data))))
            p.pending.append(memoryview(data))
        self.pump()

    def finish_round(self) -> list[bytes]:
        """Terminate this round's outbound streams and pump until every
        peer's inbound stream is complete; returns the round's inbox."""
        for p in self.peers.values():
            p.pending.append(memoryview(_U64.pack(0)))
        self._pump_until(
            lambda: all(
                not p.pending and p.state in ("votes", "done")
                for p in self.peers.values()
            )
        )
        inbox = [b""] * self.num_workers
        inbox[self.worker_id] = b"".join(self._self_parts)
        for peer, p in self.peers.items():
            inbox[peer] = p.parts[0] if len(p.parts) == 1 else b"".join(p.parts)
        return inbox

    def exchange_votes(self, next_active: list[bool]) -> list[bool]:
        """Swap this round's another-round votes with every peer and
        return the merged (global OR) channel-group activity."""
        record = bytes(bytearray(1 if f else 0 for f in next_active))
        for p in self.peers.values():
            p.pending.append(memoryview(record))
        self._pump_until(
            lambda: all(
                not p.pending and p.votes is not None
                for p in self.peers.values()
            )
        )
        merged = list(next_active)
        for p in self.peers.values():
            for cid in range(self.nchan):
                if p.votes[cid]:
                    merged[cid] = True
        return merged

    # -- per-round accounting for the consolidated reply ----------------------
    def round_sent(self) -> np.ndarray:
        sent = np.zeros(self.num_workers, dtype=np.int64)
        sent[self.worker_id] = self._self_sent
        for peer, p in self.peers.items():
            sent[peer] = p.sent
        return sent

    def round_frames(self) -> list[bytes]:
        frames = [b""] * self.num_workers
        for peer, p in self.peers.items():
            frames[peer] = b"".join(p.logged)
        return frames

    def close(self) -> None:
        for p in self.peers.values():
            p.out_ring.close()
            p.in_ring.close()


class _WorkerProcess:
    """One child's whole runtime: shared-memory attachments, the Worker,
    and the command dispatch loop."""

    def __init__(
        self, worker_id: int, conn, send_conns: dict, recv_conns: dict, rings=None
    ):
        self.worker_id = worker_id
        self.conn = conn
        self.send_conns = send_conns
        self.recv_conns = recv_conns
        self.segments: list = []
        self.worker: Worker | None = None
        self.host: _WorkerHost | None = None
        self.factory = None  # current program factory (for remap rebuilds)
        self.active = np.empty(0, dtype=np.int64)
        self.live = None
        self.live_writer = None
        self.transport: _RingTransport | None = None
        if rings is not None:
            unreg = rings["unregister"]
            self.transport = _RingTransport(
                worker_id,
                rings["num_workers"],
                {int(p): RingBuffer.attach(s, unreg) for p, s in rings["out"].items()},
                {int(p): RingBuffer.attach(s, unreg) for p, s in rings["in"].items()},
            )

    # -- (re)configuration ---------------------------------------------------
    def build(self, cfg: dict, factory) -> int:
        """(Re)build the worker for an engine configuration: attach the
        shared graph/partition, construct the program, apply seeds.
        Returns the channel count for the parent's validation barrier."""
        old_segments = self.segments
        # drop every reference into the old shared segments (worker ->
        # graph -> shm views) before trying to unmap them
        self.worker = None
        self.host = None
        self.active = np.empty(0, dtype=np.int64)

        segments: list = []
        unreg = cfg["unregister_shm"]
        # the graph arrives as a store descriptor: shm segment specs to
        # map, or an mmap path to re-open (attach-by-path; the page cache
        # shares the physical pages, nothing crosses the pipe).  The store
        # joins `segments` — teardown duck-types close()
        store = attach_store(cfg["graph"], unregister=unreg)
        if store.num_vertices != cfg["num_vertices"]:
            raise ValueError(
                f"graph store has {store.num_vertices} vertices, "
                f"configuration says {cfg['num_vertices']}"
            )
        segments.append(store)
        arrs = store.arrays()
        owner, seg = attach_array(cfg["owner"], unreg)
        segments.append(seg)

        # validate=False: these views are the parent Graph's own arrays,
        # already validated at construction — don't rescan O(E) per worker
        graph = Graph.from_csr(
            cfg["num_vertices"],
            arrs["indptr"],
            arrs["indices"],
            arrs.get("weights"),
            directed=cfg["directed"],
            validate=False,
            store=store,
        )
        host = _WorkerHost(graph, owner, cfg["num_workers"])
        worker = Worker(host, self.worker_id, np.flatnonzero(owner == self.worker_id))
        worker.program = factory(worker)
        if cfg["seeds"] is not None:
            worker.seed_active(np.asarray(cfg["seeds"], dtype=np.int64))
        if cfg["init_channels"]:
            # respawned replacements mirror ChannelEngine.rebuild_worker:
            # initialize now, the parent's restore blob overwrites next
            for channel in worker.channels:
                channel.initialize()
        self.worker, self.host, self.segments = worker, host, segments
        self.factory = factory

        # live telemetry plane: (re)attach the engine's segment and start
        # this worker's slot from zero — a reconfigure means a new engine
        # (or streaming epoch), and its collector also starts from zero
        if self.live is not None:
            try:
                self.live.close()
            except Exception:  # pragma: no cover
                pass
            self.live = None
        self.live_writer = None
        if cfg.get("live") is not None:
            # deferred import: obs.live itself imports from this package
            from repro.obs.live import LiveMetrics

            self.live = LiveMetrics.attach(cfg["live"], unregister=unreg)
            self.live_writer = self.live.writer(self.worker_id)

        if old_segments:
            # the previous generation's mappings: every view should be
            # unreachable now; collect cycles, then unmap best-effort (a
            # surviving stray reference keeps the map until process exit
            # rather than crashing the reconfigure)
            gc.collect()
            for seg in old_segments:
                try:
                    seg.close()
                except BufferError:  # pragma: no cover - stray view
                    pass
                except Exception:  # pragma: no cover
                    pass
        return len(worker.channels)

    def close(self) -> None:
        if self.live is not None:
            try:
                self.live.close()
            except Exception:  # pragma: no cover
                pass
        if self.transport is not None:
            try:
                self.transport.close()
            except Exception:  # pragma: no cover
                pass
        for seg in self.segments:
            try:
                seg.close()
            except Exception:  # pragma: no cover
                pass

    # -- the serve loop ------------------------------------------------------
    def serve(self) -> None:
        worker_id = self.worker_id
        conn = self.conn

        while True:
            msg = recv_msg(conn)
            cmd = msg["cmd"]
            worker = self.worker
            host = self.host
            counters = host.metrics
            num_workers = host.num_workers

            if cmd == "begin":
                worker.program.before_superstep()
                self.active = worker.begin_superstep()
                send_msg(conn, {"active": int(self.active.size)})

            elif cmd == "compute":
                host.step_num += 1
                t0 = time.perf_counter()
                worker.run_compute(self.active)
                seconds = time.perf_counter() - t0
                if self.live_writer is not None:
                    # messages are read *before* the reply's counters.flush;
                    # byte/round contributions follow per exchange round
                    self.live_writer.add(
                        superstep=1,
                        active=int(self.active.size),
                        messages=counters.messages,
                        compute=seconds,
                    )
                    self.live_writer.publish()
                send_msg(
                    conn,
                    {
                        "seconds": seconds,
                        "phases": {"compute": seconds},
                        "counters": counters.flush(),
                    },
                )

            elif cmd == "exchange":
                group_active = msg["group_active"]
                t0 = time.perf_counter()
                if msg["round"] == 0:
                    for channel in worker.channels:
                        channel.reset_round()
                for cid, channel in enumerate(worker.channels):
                    if group_active[cid]:
                        channel.serialize()
                out_bufs = []
                for peer in range(num_workers):
                    writer = worker.buffers.out[peer]
                    out_bufs.append(writer.getvalue())
                    writer.clear()
                seconds = time.perf_counter() - t0

                t_wire = time.perf_counter()
                inbox = _exchange_frames(
                    worker_id, num_workers, out_bufs, self.send_conns, self.recv_conns
                )
                wire_seconds = time.perf_counter() - t_wire
                worker.buffers.inbox = inbox

                t0 = time.perf_counter()
                routed = worker.route_inbox()
                next_active = [False] * len(worker.channels)
                for cid, channel in enumerate(worker.channels):
                    if group_active[cid]:
                        channel.deserialize(routed.get(cid, []))
                        if channel.again():
                            next_active[cid] = True
                    elif cid in routed:  # pragma: no cover - defensive
                        raise RuntimeError(f"data arrived for inactive channel {cid}")
                seconds += time.perf_counter() - t0

                if self.live_writer is not None:
                    self.live_writer.add(
                        rounds=1,
                        net_bytes=sum(
                            len(b)
                            for peer, b in enumerate(out_bufs)
                            if peer != worker_id
                        ),
                        local_bytes=len(out_bufs[worker_id]),
                        messages=counters.messages,
                        serialize=seconds,
                        exchange=wire_seconds,
                    )
                    self.live_writer.publish()
                reply = {
                    "sent": np.array([len(b) for b in out_bufs], dtype=np.int64),
                    "next_active": next_active,
                    "seconds": seconds,
                    "phases": {"serialize": seconds, "exchange": wire_seconds},
                    "counters": counters.flush(),
                }
                if msg["log_frames"]:
                    # sender-side frame log (confined recovery): the raw
                    # cross-worker buffers, exactly as the simulator logs
                    # them (self-delivery stays local, hence b"")
                    reply["frames"] = [
                        b"" if peer == worker_id else out_bufs[peer]
                        for peer in range(num_workers)
                    ]
                send_msg(conn, reply)

            elif cmd == "superstep":
                # transport="shm": the whole superstep runs autonomously —
                # barrier votes through the ring slots, frames through the
                # rings, channel-group continuation merged identically by
                # every worker — and the parent gets ONE consolidated
                # reply (or none at all when the global vote was 0)
                transport = self.transport
                worker.program.before_superstep()
                self.active = worker.begin_superstep()
                my_active = int(self.active.size)
                t_vote = time.perf_counter()
                total = transport.vote_and_total(msg["seq"], my_active)
                vote_s = time.perf_counter() - t_vote
                if total == 0:
                    continue  # the parent reads the same votes; run over

                log_frames = msg["log_frames"]
                host.step_num += 1
                t0 = time.perf_counter()
                worker.run_compute(self.active)
                compute_s = time.perf_counter() - t0

                nchan = len(worker.channels)
                for channel in worker.channels:
                    channel.reset_round()
                group_active = [True] * nchan
                rounds: list[dict] = []
                codec_s = 0.0  # serialize + deserialize (matches sim/pipe
                #                accounting: this is what record_compute sees)
                wire_s = 0.0  # ring pumping: pure transport

                while any(group_active):
                    transport.begin_round(nchan, log_frames)
                    for cid, channel in enumerate(worker.channels):
                        if group_active[cid]:
                            t0 = time.perf_counter()
                            channel.serialize()
                            t1 = time.perf_counter()
                            codec_s += t1 - t0
                            # overlap: this channel's frames start crossing
                            # while the next channel is still serializing
                            transport.publish(worker.buffers.out)
                            wire_s += time.perf_counter() - t1
                    t0 = time.perf_counter()
                    worker.buffers.inbox = transport.finish_round()
                    t1 = time.perf_counter()
                    wire_s += t1 - t0

                    routed = worker.route_inbox()
                    next_active = [False] * nchan
                    for cid, channel in enumerate(worker.channels):
                        if group_active[cid]:
                            channel.deserialize(routed.get(cid, []))
                            if channel.again():
                                next_active[cid] = True
                        elif cid in routed:  # pragma: no cover - defensive
                            raise RuntimeError(
                                f"data arrived for inactive channel {cid}"
                            )
                    t0 = time.perf_counter()
                    codec_s += t0 - t1

                    group_active = transport.exchange_votes(next_active)
                    wire_s += time.perf_counter() - t0

                    record = {
                        "sent": transport.round_sent(),
                        "next_active": next_active,
                    }
                    if log_frames:
                        record["frames"] = transport.round_frames()
                    rounds.append(record)

                if self.live_writer is not None:
                    step_net = step_local = 0
                    for record in rounds:
                        sent = record["sent"]
                        step_net += int(sent.sum() - sent[worker_id])
                        step_local += int(sent[worker_id])
                    self.live_writer.add(
                        superstep=1,
                        active=my_active,
                        rounds=len(rounds),
                        net_bytes=step_net,
                        local_bytes=step_local,
                        messages=counters.messages,
                        barrier=vote_s,
                        compute=compute_s,
                        serialize=codec_s,
                        exchange=wire_s,
                    )
                    self.live_writer.publish()
                send_msg(
                    conn,
                    {
                        "active": my_active,
                        "rounds": rounds,
                        "seconds": compute_s + codec_s,
                        "phases": {
                            "compute": compute_s,
                            "serialize": codec_s,
                            "exchange": wire_s,
                        },
                        "counters": counters.flush(),
                    },
                )

            elif cmd == "start_run":
                for channel in worker.channels:
                    channel.initialize()
                send_msg(conn, {"ok": True})

            elif cmd == "capture":
                blob = encode_state(capture_worker_state(worker))
                if self.live_writer is not None:
                    # checkpoint boundary: rollback recovery rewinds the
                    # live counters to exactly this point
                    self.live_writer.mark()
                send_msg(conn, {"blob": blob})

            elif cmd == "restore":
                load_worker_state(worker, decode_state(msg["blob"]))
                host.step_num = msg["step_num"]
                if self.live_writer is not None:
                    self.live_writer.rewind()
                send_msg(conn, {"ok": True})

            elif cmd == "remap":
                # adaptive rebalancing: the parent rewrote the shared
                # ownership array in place before sending this; rebuild
                # the Worker against it (same graph attachments, same
                # program factory) and load this worker's remapped state.
                # step_num and the live writer deliberately survive —
                # same engine, same run, new vertex placement
                new_worker = Worker(
                    host, worker_id, np.flatnonzero(host.owner == worker_id)
                )
                new_worker.program = self.factory(new_worker)
                for channel in new_worker.channels:
                    channel.initialize()
                load_worker_state(new_worker, decode_state(msg["blob"]))
                self.worker = new_worker
                self.active = np.empty(0, dtype=np.int64)
                send_msg(conn, {"ok": True})

            elif cmd == "configure":
                factory = pickle.loads(msg["factory"])
                num_channels = self.build(msg["cfg"], factory)
                send_msg(conn, {"ready": True, "num_channels": num_channels})

            elif cmd == "finalize":
                reply = {"data": worker.program.finalize()}
                if msg["sync"]:
                    # same capture format as runtime.checkpoint snapshots
                    reply["state"] = capture_worker_state(worker)
                send_msg(conn, reply)

            elif cmd == "die":
                # failure injection: die the way a crashed worker dies —
                # no reply, no cleanup, just a dead process for the
                # parent's supervision to notice
                os._exit(msg["code"])

            elif cmd == "stop":
                return

            else:  # pragma: no cover - protocol bug guard
                raise RuntimeError(f"unknown command {cmd!r}")


def worker_main(
    worker_id: int,
    cfg: dict,
    conn,
    send_conns: dict,
    recv_conns: dict,
    rings: dict | None = None,
) -> None:
    """Child-process entry point; never raises (errors go to the parent).

    ``cfg`` is the spawn-time configuration (shared-array specs plus the
    first run's ``program_factory``, which rides through the process
    start machinery — under ``fork`` it never crosses a pipe, so
    closures and locally defined classes work).  Later configurations
    arrive as ``configure`` commands instead.  ``rings`` (shm transport
    only) carries the per-peer ring-buffer specs — pool-lifetime, so a
    respawned replacement re-attaches the same segments.
    """
    proc = _WorkerProcess(worker_id, conn, send_conns, recv_conns, rings)
    try:
        num_channels = proc.build(cfg, cfg["program_factory"])
        send_msg(conn, {"ready": True, "num_channels": num_channels})
        proc.serve()
    except BaseException:
        try:
            send_msg(conn, {"error": traceback.format_exc()})
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        proc.close()
