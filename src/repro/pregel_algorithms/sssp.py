"""SSSP on the Pregel+ baseline (single message type, global min
combiner — the easy case Pregel was designed for)."""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather
from repro.core.combiner import MIN_F64
from repro.graph.graph import Graph
from repro.pregel import PregelPlusEngine, PregelProgram
from repro.runtime.serialization import FLOAT64

__all__ = ["SSSPPregel", "run_sssp_pregel"]


class SSSPPregel(PregelProgram):
    message_codec = FLOAT64
    combiner = MIN_F64
    source = 0

    def __init__(self, worker):
        super().__init__(worker)
        self.dist = np.full(worker.num_local, np.inf)

    def _relax(self, v, d: float) -> None:
        self.dist[v.local] = d
        g = self.worker.graph
        ws = v.edge_weights if g.weighted else np.ones(v.out_degree)
        for e, w in zip(v.edges, ws):
            v.send_message(int(e), d + float(w))

    def compute(self, v, messages) -> None:
        if self.step_num == 1:
            if v.id == self.source:
                self._relax(v, 0.0)
        elif messages is not None and messages < self.dist[v.local]:
            self._relax(v, float(messages))
        v.vote_to_halt()

    def finalize(self) -> dict:
        return {int(g): float(self.dist[i]) for i, g in enumerate(self.worker.local_ids)}


def run_sssp_pregel(graph: Graph, source: int = 0, **engine_kwargs):
    """Run Pregel+ SSSP; returns ``(dists, EngineResult)``."""
    program = type("SSSPPregel", (SSSPPregel,), {"source": source})
    result = PregelPlusEngine(graph, program, mode="basic", **engine_kwargs).run()
    return gather(result, graph.num_vertices, dtype=np.float64), result
