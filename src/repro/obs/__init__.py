"""Observability: structured run traces, streaming statistics, reports.

The engine is instrumented once, at the :class:`~repro.runtime.metrics.
MetricsCollector` seam every backend already feeds, so a simulated run
and a multiprocess run emit schema-identical traces (ARCHITECTURE.md
§10).  Three layers:

* :mod:`repro.obs.trace` — :class:`TraceRecorder` writes JSON-lines span
  events (run / epoch / superstep / per-worker phase / exchange round /
  checkpoint / failure / recovery) with parent/child span ids;
  :func:`load_trace` reads them back.
* :mod:`repro.obs.stats` — streaming statistics over per-superstep
  timing series: EWMA baselines, drift detection, z-score outliers, and
  per-worker straggler/skew scores (the signal adaptive repartitioning
  will consume).
* :mod:`repro.obs.report` — turns a trace file into phase breakdowns,
  straggler reports, and flagged anomalies (the ``repro report``
  subcommand); :mod:`repro.obs.chrome` exports the same trace as a
  ``chrome://tracing`` / Perfetto timeline.
* :mod:`repro.obs.live` + :mod:`repro.obs.export` — the *in-flight*
  plane (ARCHITECTURE.md §11): a shared-memory segment of per-worker
  seqlock'd slots each backend publishes every superstep, the online
  :class:`LiveMonitor` that flags stragglers/anomalies during the run,
  and the exporters over it — Prometheus text via ``--metrics-port``
  and the ``repro top`` table.
"""

from repro.obs.chrome import chrome_trace_events, export_chrome_trace
from repro.obs.export import (
    MetricsHTTPServer,
    format_table,
    format_top,
    prometheus_text,
)
from repro.obs.live import (
    LIVE_COUNTERS,
    LIVE_GAUGES,
    LiveMetrics,
    LiveMonitor,
    LiveSlotWriter,
    read_proc_stats,
)
from repro.obs.report import TraceReport, validate_trace
from repro.obs.stats import (
    EwmaBaseline,
    anomaly_score,
    detect_drift,
    ewma,
    moving_average,
    straggler_scores,
    zscore_outliers,
)
from repro.obs.trace import SPAN_KINDS, TraceRecorder, load_trace

__all__ = [
    "TraceRecorder",
    "load_trace",
    "SPAN_KINDS",
    "TraceReport",
    "validate_trace",
    "chrome_trace_events",
    "export_chrome_trace",
    "ewma",
    "moving_average",
    "anomaly_score",
    "detect_drift",
    "zscore_outliers",
    "straggler_scores",
    "EwmaBaseline",
    "LIVE_COUNTERS",
    "LIVE_GAUGES",
    "LiveMetrics",
    "LiveMonitor",
    "LiveSlotWriter",
    "read_proc_stats",
    "MetricsHTTPServer",
    "format_table",
    "format_top",
    "prometheus_text",
]
