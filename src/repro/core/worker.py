"""The per-worker execution context.

A worker owns a disjoint set of vertices (given by the partition array),
their active/halted flags, the channel instances registered by the
program, and this worker's outgoing/incoming raw buffers.  It implements
the frame layer that lets many channels share one buffer per peer: each
channel payload is framed as ``[channel_id:int32][nbytes:int32][payload]``.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

import numpy as np

from repro.core.adjacency import LocalCSR, build_local_csr
from repro.core.vertex import Vertex
from repro.runtime.buffers import WorkerBuffers

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.channel import Channel
    from repro.core.engine import ChannelEngine

__all__ = ["Worker"]

_FRAME = struct.Struct("<ii")  # channel_id, payload nbytes


class Worker:
    """One worker: vertices + channels + buffers.

    ``engine`` is the execution context, not necessarily the
    :class:`~repro.core.engine.ChannelEngine` itself: the multiprocess
    backend substitutes a per-process host
    (:class:`repro.runtime.parallel.worker_proc._WorkerHost`).  The
    contract this class and the channels rely on is the attribute set
    ``graph``, ``owner``, ``num_workers``, ``step_num``, and ``metrics``
    (with the counting surface ``count_channel_bytes`` /
    ``count_messages`` / ``count_channel_messages``).
    """

    def __init__(
        self,
        engine: "ChannelEngine",
        worker_id: int,
        local_ids: np.ndarray,
    ) -> None:
        self.engine = engine
        self.worker_id = worker_id
        self.graph = engine.graph
        self.owner = engine.owner  # global vertex id -> worker id
        self.num_workers = engine.num_workers
        self.local_ids = np.asarray(local_ids, dtype=np.int64)
        self.num_local = int(self.local_ids.size)

        # global id -> local index (only valid for owned vertices)
        self._local_index = np.full(self.graph.num_vertices, -1, dtype=np.int64)
        self._local_index[self.local_ids] = np.arange(self.num_local)

        # vote-to-halt state
        self.halted = np.zeros(self.num_local, dtype=bool)
        self.woken = np.zeros(self.num_local, dtype=bool)

        self.buffers = WorkerBuffers(worker_id, self.num_workers)
        self.channels: list["Channel"] = []
        self._vertex = Vertex(self)
        self.program = None  # set by the engine after construction
        self._local_adj: dict[str, LocalCSR] = {}

    # -- registration -------------------------------------------------------
    def register_channel(self, channel: "Channel") -> int:
        cid = len(self.channels)
        self.channels.append(channel)
        return cid

    # -- vertex bookkeeping ---------------------------------------------------
    def local_index(self, vid: int) -> int:
        """Local index of an owned vertex (``-1`` if not owned here)."""
        return int(self._local_index[vid])

    def owner_of(self, vid: int) -> int:
        if not 0 <= vid < self.graph.num_vertices:
            raise IndexError(
                f"vertex id {vid} out of range [0, {self.graph.num_vertices})"
            )
        return int(self.owner[vid])

    def halt(self, local_idx: int) -> None:
        self.halted[local_idx] = True

    def halt_bulk(self, local_idx: np.ndarray) -> None:
        """Vote-to-halt a whole array of local indices at once."""
        self.halted[local_idx] = True

    def activate(self, vid: int) -> None:
        """Wake an owned vertex for the next superstep (message arrival)."""
        idx = self._local_index[vid]
        if idx < 0:
            raise ValueError(
                f"vertex {vid} is not owned by worker {self.worker_id}; "
                "activate() only accepts local vertices"
            )
        self.woken[idx] = True

    def activate_local(self, local_idx: int) -> None:
        self.woken[local_idx] = True

    def activate_local_bulk(self, local_idx: np.ndarray) -> None:
        self.woken[local_idx] = True

    def seed_active(self, seeds: np.ndarray) -> None:
        """Restrict the first superstep's active set to the owned subset
        of ``seeds`` (global ids).  Called by the engine before the run
        starts; everything else begins halted."""
        self.halted[:] = True
        local = self._local_index[seeds]
        self.halted[local[local >= 0]] = False

    # -- checkpointing ---------------------------------------------------------
    def snapshot_flags(self) -> dict:
        """Halt/wake state at a superstep boundary (wake flags are set by
        the exchange phase for the *next* superstep, so both matter)."""
        return {"halted": self.halted.copy(), "woken": self.woken.copy()}

    def restore_flags(self, state: dict) -> None:
        self.halted[...] = state["halted"]
        self.woken[...] = state["woken"]

    def begin_superstep(self) -> np.ndarray:
        """Resolve the active set for this superstep and reset wake flags."""
        self.halted &= ~self.woken
        active = np.flatnonzero(~self.halted)
        self.woken[:] = False
        return active

    @property
    def step_num(self) -> int:
        return self.engine.step_num

    # -- adjacency views ------------------------------------------------------
    def local_adjacency(self, direction: str = "out") -> LocalCSR:
        """CSR adjacency of this worker's vertices (built lazily, cached).

        ``direction`` is ``"out"``, ``"in"`` or ``"both"`` (out-edges then
        in-edges per row); bulk programs use it for whole-frontier edge
        gathers instead of per-vertex ``v.edges`` loops.
        """
        if direction not in self._local_adj:
            self._local_adj[direction] = build_local_csr(
                self.graph, self.local_ids, direction
            )
        return self._local_adj[direction]

    # -- compute dispatch ------------------------------------------------------
    def run_compute(self, active: np.ndarray) -> None:
        program = self.program
        if program.is_bulk:
            # bulk path: one call per worker per superstep, no Vertex
            # binding; an idle worker gets no call, matching the scalar loop
            if active.size:
                program.compute_bulk(active)
            return
        v = self._vertex
        for idx in active:
            program.compute(v._bind(idx))

    # -- frame layer -------------------------------------------------------------
    def emit(self, channel_id: int, peer: int, payload: bytes) -> None:
        if not payload:
            return
        writer = self.buffers.out[peer]
        writer.write_bytes(_FRAME.pack(channel_id, len(payload)))
        writer.write_bytes(payload)
        self.engine.metrics.count_channel_bytes(
            self._channel_label(channel_id), len(payload), local=peer == self.worker_id
        )

    def _channel_label(self, channel_id: int) -> str:
        if 0 <= channel_id < len(self.channels):
            return f"{channel_id}:{type(self.channels[channel_id]).__name__}"
        return f"{channel_id}:?"  # raw emit outside the registry

    def route_inbox(self) -> dict[int, list[tuple[int, memoryview]]]:
        """Split received buffers into per-channel payload lists."""
        routed: dict[int, list[tuple[int, memoryview]]] = {}
        for src, data in enumerate(self.buffers.inbox):
            if not data:
                continue
            view = memoryview(data)
            offset = 0
            end = len(view)
            while offset < end:
                cid, nbytes = _FRAME.unpack_from(view, offset)
                offset += _FRAME.size
                routed.setdefault(cid, []).append((src, view[offset : offset + nbytes]))
                offset += nbytes
        self.buffers.clear_inbox()
        return routed

    # -- metrics ---------------------------------------------------------------
    def count_net_messages(self, n: int, channel_id: int | None = None) -> None:
        if n:
            self.engine.metrics.count_messages(n)
            if channel_id is not None:
                self.engine.metrics.count_channel_messages(
                    self._channel_label(channel_id), n
                )

    def __repr__(self) -> str:  # pragma: no cover
        return f"Worker({self.worker_id}, |V_local|={self.num_local})"
