"""Live telemetry plane tests (ARCHITECTURE.md §11).

The contract under test, in order of importance:

1. **Seqlock soundness** — snapshots taken while a writer is publishing
   concurrently are never torn: invariant-linked counters stay linked in
   every non-stale row, and a slot deliberately left mid-publish is
   reported ``stale`` instead of returned as garbage.
2. **Backend parity** — sim and process (both transports) publish the
   *same slot schema with the same values*: per-worker live counters sum
   exactly to the final ``MetricsCollector`` totals, and the process
   rows are bit-identical to the sim rows for the same run.
3. **Online scoring** — a planted straggler produces "alert" trace
   instants and ``EngineResult.live_alerts`` entries *for the right
   worker* while the run is in flight.
4. **Exporters** — the Prometheus exposition is well-formed line by
   line, the HTTP endpoint is scrape-able mid-run by a plain urllib
   client, and ``repro top --once`` renders a snapshot table.
"""

import re
import struct
import threading
import time
import urllib.error
import urllib.request

import pytest

from helpers import line_graph
from repro.algorithms.wcc import WCCBasic, run_wcc
from repro.core import ChannelEngine
from repro.obs import (
    LIVE_COUNTERS,
    LIVE_GAUGES,
    LiveMetrics,
    MetricsHTTPServer,
    TraceRecorder,
    TraceReport,
    format_top,
    load_trace,
    prometheus_text,
)
from repro.obs.live import _HEADER_SIZE, _PAYLOAD, _SEQ, _SLOT_SIZE
from repro.streaming import EpochEngine, WCCStream, synthesize_stream


# ---------------------------------------------------------------------------
# segment lifecycle + slot mechanics
# ---------------------------------------------------------------------------
class TestSegment:
    def test_create_snapshot_roundtrip(self):
        live = LiveMetrics.create(3)
        try:
            w = live.writer(1)
            w.add(superstep=1, active=7, rounds=2, net_bytes=100,
                  local_bytes=40, messages=9, compute=0.5, serialize=0.25)
            w.add(superstep=1, net_bytes=28, messages=1, barrier=0.125)
            w.publish()
            rows = live.snapshot()
            assert [r["worker"] for r in rows] == [0, 1, 2]
            r = rows[1]
            assert not r["stale"]
            assert (r["superstep"], r["active"], r["rounds"]) == (2, 7, 2)
            assert (r["net_bytes"], r["local_bytes"], r["messages"]) == (128, 40, 10)
            assert r["compute_seconds"] == 0.5
            assert r["serialize_seconds"] == 0.25
            assert r["barrier_seconds"] == 0.125
            assert r["updated_at"] > 0
            # untouched slots read as published zeros, not garbage
            assert rows[0]["superstep"] == 0 and not rows[0]["stale"]
        finally:
            live.close(unlink=True)

    def test_attach_by_name_and_spec(self):
        live = LiveMetrics.create(2)
        try:
            live.writer(0).add(superstep=1, messages=5)
            by_name = LiveMetrics.attach(live.name)
            by_spec = LiveMetrics.attach(live.spec)
            try:
                assert by_name.num_workers == 2
                assert by_spec.snapshot()[0]["seq"] == live.snapshot()[0]["seq"]
            finally:
                by_name.close()
                by_spec.close()
        finally:
            live.close(unlink=True)

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=256)
        try:
            with pytest.raises(ValueError, match="not a live metrics segment"):
                LiveMetrics.attach(seg.name)
        finally:
            seg.close()
            seg.unlink()

    def test_unknown_phase_rejected(self):
        live = LiveMetrics.create(1)
        try:
            with pytest.raises(ValueError, match="unknown live phase"):
                live.writer(0).add(compute_time=1.0)
        finally:
            live.close(unlink=True)

    def test_mark_and_rewind(self):
        live = LiveMetrics.create(1)
        try:
            w = live.writer(0)
            w.add(superstep=1, messages=3, compute=0.5)
            w.publish()
            w.mark()
            w.add(superstep=1, messages=4, compute=0.5)
            w.publish()
            assert live.snapshot()[0]["messages"] == 7
            w.rewind()  # rollback recovery replays from the checkpoint
            r = live.snapshot()[0]
            assert (r["superstep"], r["messages"]) == (1, 3)
            assert r["compute_seconds"] == 0.5
            # a writer with no mark rewinds to zero
            w2 = live.writer(0)
            w2.add(superstep=2, messages=9)
            w2.publish()
            w2.rewind()
            assert live.snapshot()[0]["superstep"] == 0
        finally:
            live.close(unlink=True)

    def test_fresh_writer_zero_publishes(self):
        live = LiveMetrics.create(1)
        try:
            w = live.writer(0)
            w.add(superstep=5, messages=100)
            w.publish()
            live.writer(0)  # a new run/epoch starts from a clean slot
            assert live.snapshot()[0]["superstep"] == 0
        finally:
            live.close(unlink=True)

    def test_alert_counters(self):
        live = LiveMetrics.create(3)
        try:
            live.bump_alert(1)
            live.bump_alert(1)
            live.bump_alert(2)
            assert live.alert_counts() == [0, 2, 1]
        finally:
            live.close(unlink=True)

    def test_roll_epoch_preserves_created_at(self):
        live = LiveMetrics.create(2)
        try:
            created = live.header()["created_at"]
            live.roll_epoch(4)
            h = live.header()
            assert h["epoch"] == 4
            assert h["created_at"] == created
        finally:
            live.close(unlink=True)


# ---------------------------------------------------------------------------
# seqlock consistency
# ---------------------------------------------------------------------------
class TestSeqlock:
    def test_snapshots_consistent_under_concurrent_writer(self):
        """Readers racing a publishing writer never observe a torn payload.

        The writer maintains ``messages == 3 * superstep`` and
        ``net_bytes == 8 * superstep`` — any snapshot mixing bytes from
        two publishes breaks the linkage.
        """
        live = LiveMetrics.create(1)
        stop = threading.Event()

        def hammer():
            w = live.writer(0)
            while not stop.is_set():
                w.add(superstep=1, messages=3, net_bytes=8)
                w.publish()

        t = threading.Thread(target=hammer)
        t.start()
        try:
            checked = 0
            deadline = time.perf_counter() + 0.5
            while time.perf_counter() < deadline:
                row = live.snapshot(stale_after=0.2)[0]
                if row["stale"]:
                    continue
                assert row["messages"] == 3 * row["superstep"]
                assert row["net_bytes"] == 8 * row["superstep"]
                checked += 1
            assert checked > 10
        finally:
            stop.set()
            t.join()
            live.close(unlink=True)

    def test_torn_slot_reported_stale(self):
        """A slot whose writer died mid-publish (odd seq) is returned with
        ``stale: True`` and the last payload, never spun on forever."""
        live = LiveMetrics.create(1)
        try:
            w = live.writer(0)
            w.add(superstep=2, messages=6)
            w.publish()
            off = _HEADER_SIZE  # worker 0's slot
            _SEQ.pack_into(live._buf, off, 7)  # fake an in-flight publish
            row = live.snapshot(stale_after=0.02)[0]
            assert row["stale"]
            assert row["messages"] == 6  # the last complete payload
            # a successor writer repairs the odd seq (crash recovery)
            live.writer(0)
            assert not live.snapshot(stale_after=0.02)[0]["stale"]
        finally:
            live.close(unlink=True)

    def test_reader_retries_through_in_flight_publish(self):
        """A reader that lands inside a slow publish retries and returns
        the *completed* payload, not the half-written one."""
        live = LiveMetrics.create(1)
        try:
            off = _HEADER_SIZE

            def slow_publish():
                # hand-rolled seqlock write with a stall in the middle
                _SEQ.pack_into(live._buf, off, 1)
                time.sleep(0.05)
                _PAYLOAD.pack_into(
                    live._buf, off + _SEQ.size, 9, 1, 0, 72, 0, 27,
                    *([0.0] * len(LIVE_GAUGES)),
                )
                _SEQ.pack_into(live._buf, off, 2)

            t = threading.Thread(target=slow_publish)
            t.start()
            time.sleep(0.01)  # land mid-publish
            row = live.snapshot(stale_after=1.0)[0]
            t.join()
            assert not row["stale"]
            assert (row["superstep"], row["net_bytes"], row["messages"]) == (9, 72, 27)
        finally:
            live.close(unlink=True)


# ---------------------------------------------------------------------------
# backend parity: sim and process publish identical slots
# ---------------------------------------------------------------------------
def _run_with_live(**engine_kwargs):
    graph = line_graph(16)
    live = LiveMetrics.create(2)
    try:
        _, result = run_wcc(
            graph, variant="prop", num_workers=2, live=live, **engine_kwargs
        )
        return live.snapshot(), result.metrics
    finally:
        live.close(unlink=True)


class TestBackendParity:
    def test_sim_rows_match_collector_totals(self):
        rows, metrics = _run_with_live()
        assert sum(r["net_bytes"] for r in rows) == metrics.total_net_bytes
        assert sum(r["local_bytes"] for r in rows) == metrics.total_local_bytes
        assert sum(r["messages"] for r in rows) == metrics.total_messages
        for r in rows:
            assert r["superstep"] == metrics.supersteps
            assert r["rounds"] == metrics.total_rounds
            assert r["compute_seconds"] >= 0.0

    @pytest.mark.parametrize("transport", ["shm", "pipe"])
    def test_process_rows_bit_identical_to_sim(self, transport):
        sim_rows, sim_metrics = _run_with_live()
        proc_rows, proc_metrics = _run_with_live(
            executor="process", transport=transport
        )
        # identical schema...
        assert {k for r in proc_rows for k in r} == {k for r in sim_rows for k in r}
        assert set(sim_rows[0]) >= set(LIVE_COUNTERS) | set(LIVE_GAUGES)
        # ...identical per-worker accounting (not just identical sums)
        for s, p in zip(sim_rows, proc_rows):
            for key in ("superstep", "rounds", "net_bytes", "local_bytes", "messages"):
                assert p[key] == s[key], key
        assert proc_metrics.total_net_bytes == sim_metrics.total_net_bytes
        assert proc_metrics.total_messages == sim_metrics.total_messages
        # process slots count exactly what the collector counted
        assert sum(r["net_bytes"] for r in proc_rows) == proc_metrics.total_net_bytes
        assert sum(r["messages"] for r in proc_rows) == proc_metrics.total_messages


# ---------------------------------------------------------------------------
# online anomaly scoring
# ---------------------------------------------------------------------------
class SleepyWCC(WCCBasic):
    """WCCBasic with worker 1 planted as a straggler."""

    def compute(self, v):
        if self.worker.worker_id == 1:
            time.sleep(0.002)
        super().compute(v)


class TestLiveMonitor:
    def test_planted_straggler_raises_alerts(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        graph = line_graph(16)
        live = LiveMetrics.create(2)
        try:
            with TraceRecorder(path) as rec:
                result = ChannelEngine(
                    graph, SleepyWCC, num_workers=2, trace=rec, live=live
                ).run()
            assert result.live_alerts, "planted straggler raised no alerts"
            assert all(a["worker"] == 1 for a in result.live_alerts)
            assert all(a["kind"] in ("straggler", "anomaly") for a in result.live_alerts)
            assert any(a["kind"] == "straggler" for a in result.live_alerts)
            for a in result.live_alerts:
                assert a["value"] >= a["threshold"]
            # the segment's ALERT column saw the same events
            assert live.alert_counts()[1] == len(result.live_alerts)
            assert live.alert_counts()[0] == 0
        finally:
            live.close(unlink=True)
        # ...and so did the trace, as "alert" instants under the run span
        events = load_trace(path)
        instants = [e for e in events if e.get("ev") == "I" and e["span"] == "alert"]
        assert len(instants) == len(result.live_alerts)
        assert all(e["attrs"]["worker"] == 1 for e in instants)
        # repro report surfaces them on the run entry
        report = TraceReport(events)
        entry = report.as_dict()["runs"][0]
        assert len(entry["live_alerts"]) == len(result.live_alerts)
        assert "LIVE ALERT" in report.render()

    def test_uniform_run_raises_no_alerts(self):
        rows, _ = _run_with_live()
        graph = line_graph(16)
        live = LiveMetrics.create(2)
        try:
            result = ChannelEngine(graph, WCCBasic, num_workers=2, live=live).run()
            assert result.live_alerts == []
            assert live.alert_counts() == [0, 0]
        finally:
            live.close(unlink=True)

    def test_worker_count_mismatch_rejected(self):
        live = LiveMetrics.create(4)
        try:
            with pytest.raises(ValueError, match="worker slots"):
                ChannelEngine(line_graph(8), WCCBasic, num_workers=2, live=live)
        finally:
            live.close(unlink=True)


# ---------------------------------------------------------------------------
# streaming: one segment across epochs
# ---------------------------------------------------------------------------
class TestStreamingRollover:
    def test_epoch_rollover_resets_slots(self):
        graph = line_graph(24)
        batches = synthesize_stream(graph, 2, 6, 0, seed=9)
        live = LiveMetrics.create(2)
        try:
            eng = EpochEngine(graph, WCCStream(), num_workers=2, live=live)
            eng.bootstrap()
            assert live.header()["epoch"] == 0
            boot_rows = live.snapshot()
            assert all(r["superstep"] > 0 for r in boot_rows)
            for i, batch in enumerate(batches):
                eng.run_epoch(batch)
                assert live.header()["epoch"] == i + 1
                rows = live.snapshot()
                m = eng.latest.result.metrics
                # slots restarted: they describe only the latest epoch
                for r in rows:
                    assert r["superstep"] == m.supersteps
                assert sum(r["net_bytes"] for r in rows) == m.total_net_bytes
                assert sum(r["messages"] for r in rows) == m.total_messages
            eng.close()
        finally:
            live.close(unlink=True)


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------
def _synthetic_segment():
    live = LiveMetrics.create(2)
    w0 = live.writer(0)
    w0.add(superstep=3, active=5, rounds=4, net_bytes=4096, local_bytes=512,
           messages=41, barrier=0.1, compute=1.5, serialize=0.25, exchange=0.4)
    w0.publish()
    w1 = live.writer(1)
    w1.add(superstep=3, active=2, rounds=4, net_bytes=1024, local_bytes=128,
           messages=17, compute=0.75)
    w1.publish()
    live.bump_alert(1)
    return live


_SAMPLE_RE = re.compile(
    r'^[a-z_][a-z0-9_]*(\{[a-z_][a-z0-9_]*="[^"]*"(,[a-z_][a-z0-9_]*="[^"]*")*\})? '
    r"-?[0-9][0-9a-z+.e-]*$"
)


class TestPrometheusText:
    def test_exposition_well_formed_line_by_line(self):
        live = _synthetic_segment()
        try:
            text = prometheus_text(live, labels={"workload": "wcc"})
        finally:
            live.close(unlink=True)
        assert text.endswith("\n")
        lines = text.splitlines()
        seen_help, seen_type = set(), {}
        current = None
        for line in lines:
            if line.startswith("# HELP "):
                name = line.split()[2]
                assert name not in seen_help, "duplicate HELP"
                seen_help.add(name)
                current = name
            elif line.startswith("# TYPE "):
                _, _, name, typ = line.split()
                assert name == current, "TYPE must follow its HELP"
                assert typ in ("counter", "gauge")
                seen_type[name] = typ
            else:
                assert _SAMPLE_RE.match(line), f"malformed sample line: {line!r}"
                name = re.split(r"[{ ]", line, maxsplit=1)[0]
                assert name == current, "sample outside its family block"
        # every family has both headers; counters carry the _total suffix
        assert seen_help == set(seen_type)
        for name, typ in seen_type.items():
            assert name.endswith("_total") == (typ == "counter"), name

    def test_exposition_values_match_snapshot(self):
        live = _synthetic_segment()
        try:
            text = prometheus_text(live, labels={"workload": "wcc"})
        finally:
            live.close(unlink=True)
        assert 'repro_supersteps_total{workload="wcc",worker="0"} 3' in text
        assert 'repro_net_bytes_total{workload="wcc",worker="0"} 4096' in text
        assert 'repro_net_bytes_total{workload="wcc",worker="1"} 1024' in text
        assert 'repro_messages_total{workload="wcc",worker="1"} 17' in text
        assert 'repro_alerts_total{workload="wcc",worker="1"} 1' in text
        assert ('repro_phase_seconds_total{workload="wcc",worker="0",phase="compute"}'
                " 1.5") in text
        assert 'repro_active_vertices{workload="wcc",worker="0"} 5' in text
        assert 'repro_up{workload="wcc"} 1' in text
        assert 'repro_epoch{workload="wcc"} 0' in text

    def test_label_escaping(self):
        live = LiveMetrics.create(1)
        try:
            text = prometheus_text(live, labels={"job": 'a"b\\c\nd'})
        finally:
            live.close(unlink=True)
        assert '{job="a\\"b\\\\c\\nd",worker="0"}' in text


class TestHTTPEndpoint:
    def test_scrape_mid_run_by_external_client(self):
        """An in-flight run is scrape-able over plain HTTP: the slow
        planted program keeps the run alive while urllib reads /metrics."""
        graph = line_graph(16)
        live = LiveMetrics.create(2)
        server = MetricsHTTPServer(live, port=0, labels={"workload": "wcc"})
        port = server.start()
        scraped = {}

        def scrape_until_live():
            url = f"http://127.0.0.1:{port}/metrics"
            deadline = time.perf_counter() + 10.0
            while time.perf_counter() < deadline:
                with urllib.request.urlopen(url, timeout=5) as resp:
                    body = resp.read().decode()
                    if re.search(r'repro_supersteps_total\{[^}]*\} [1-9]', body):
                        scraped["body"] = body
                        scraped["content_type"] = resp.headers["Content-Type"]
                        return
                time.sleep(0.005)

        t = threading.Thread(target=scrape_until_live)
        try:
            t.start()
            result = ChannelEngine(graph, SleepyWCC, num_workers=2, live=live).run()
            t.join(timeout=10)
            assert "body" in scraped, "never scraped a live superstep mid-run"
            assert scraped["content_type"] == "text/plain; version=0.0.4; charset=utf-8"
            assert "repro_up" in scraped["body"]
            # the mid-run reading is a prefix of the final accounting
            m = re.search(
                r'repro_supersteps_total\{[^}]*worker="0"\} (\d+)', scraped["body"]
            )
            assert 1 <= int(m.group(1)) <= result.metrics.supersteps
        finally:
            t.join(timeout=10)
            server.stop()
            live.close(unlink=True)

    def test_404_off_path_and_503_after_close(self):
        live = _synthetic_segment()
        server = MetricsHTTPServer(live, port=0)
        port = server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"http://127.0.0.1:{port}/other", timeout=5)
            assert err.value.code == 404
            live.close(unlink=True)  # segment vanishes under the server
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics", timeout=5)
            assert err.value.code == 503
        finally:
            server.stop()


class TestTop:
    def test_format_top_renders_rows(self):
        live = _synthetic_segment()
        try:
            out = format_top(live)
            lines = out.splitlines()
            assert lines[0].startswith(f"segment {live.name}  epoch 0  workers 2")
            assert "STEP" in lines[1] and "ALERT" in lines[1]
            assert len(lines) == 4  # header + columns + one row per worker
            w0 = lines[2].split()
            assert w0[0] == "0" and w0[1] == "3"  # worker, superstep
            assert w0[6] == "41"  # messages
            # rate columns switch to true deltas when prev/dt are given
            prev = live.snapshot()
            w = live.writer(0)
            w.counters.update(superstep=5, net_bytes=8192)
            w.publish()
            delta = format_top(live, prev=prev, dt=2.0).splitlines()[2]
            assert float(delta.split()[3]) == pytest.approx(1.0)  # 2 steps / 2 s
        finally:
            live.close(unlink=True)

    def test_cli_top_once(self, capsys):
        from repro.__main__ import main

        live = _synthetic_segment()
        try:
            assert main(["top", live.name, "--once"]) == 0
            out = capsys.readouterr().out
            assert f"segment {live.name}" in out
            assert out.count("\n") >= 4
        finally:
            live.close(unlink=True)

    def test_cli_top_missing_segment(self, capsys):
        from repro.__main__ import main

        assert main(["top", "no-such-segment-xyz", "--once"]) == 2
        assert "no live-metrics segment" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# repro report: per-epoch context (satellite of this PR)
# ---------------------------------------------------------------------------
class TestReportEpochContext:
    def test_stream_runs_keep_epoch_context(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        graph = line_graph(24)
        batches = synthesize_stream(graph, 2, 6, 0, seed=9)
        with TraceRecorder(path) as rec:
            eng = EpochEngine(graph, WCCStream(), num_workers=2, trace=rec)
            eng.bootstrap()
            for batch in batches:
                eng.run_epoch(batch)
            eng.close()
        report = TraceReport(load_trace(path))
        runs = report.as_dict()["runs"]
        assert len(runs) == 3  # bootstrap + 2 epochs, not collapsed
        assert [r["epoch"] for r in runs] == [0, 1, 2]
        for r in runs[1:]:
            assert r["batch_size"] == 6
            assert "refresh" in r
        rendered = report.render()
        assert "epoch=1" in rendered or "epoch 1" in rendered
