"""Benchmarks for the extended library (beyond the paper's tables):

* the additional algorithms (BFS, triangles, k-core, MIS, LPA),
* the Palgol-lite compiler pipeline (optimized vs standard channels on
  the same spec — the compiler's whole value proposition in one number).
"""

import pytest

from repro.algorithms import (
    run_bfs,
    run_kcore,
    run_lpa,
    run_mis,
    run_triangles,
)
from repro.bench.datasets import load_dataset
from repro.palgol import run_palgol, sv_spec, wcc_spec


def _record(benchmark, res):
    benchmark.extra_info.update(
        {
            "message_mb": round(res.metrics.total_net_bytes / 1e6, 3),
            "simulated_time": round(res.metrics.simulated_time, 4),
            "supersteps": res.supersteps,
        }
    )


@pytest.mark.parametrize("variant", ["basic", "prop"])
def test_bfs(benchmark, variant):
    g = load_dataset("usa-road")
    src = int(g.out_degrees.argmax())

    def run():
        return run_bfs(g, source=src, variant=variant, num_workers=8)[1]

    _record(benchmark, benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0))


def test_triangles(benchmark):
    g = load_dataset("facebook")
    res = benchmark.pedantic(
        lambda: run_triangles(g, num_workers=8)[1], rounds=1, iterations=1, warmup_rounds=0
    )
    _record(benchmark, res)


def test_kcore(benchmark):
    g = load_dataset("facebook")
    res = benchmark.pedantic(
        lambda: run_kcore(g, num_workers=8)[1], rounds=1, iterations=1, warmup_rounds=0
    )
    _record(benchmark, res)


def test_mis(benchmark):
    g = load_dataset("facebook")
    res = benchmark.pedantic(
        lambda: run_mis(g, num_workers=8)[1], rounds=1, iterations=1, warmup_rounds=0
    )
    _record(benchmark, res)


def test_lpa(benchmark):
    g = load_dataset("facebook")
    res = benchmark.pedantic(
        lambda: run_lpa(g, rounds=8, num_workers=8)[1],
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    _record(benchmark, res)


@pytest.mark.parametrize("spec_name", ["sv", "wcc"])
@pytest.mark.parametrize("optimize", [False, True], ids=["standard", "optimized"])
def test_palgol_pipeline(benchmark, spec_name, optimize):
    """The compiler's channel selection, end to end: the same declarative
    spec with and without optimized channels."""
    g = load_dataset("facebook")
    spec = {"sv": sv_spec, "wcc": wcc_spec}[spec_name]()

    def run():
        return run_palgol(spec, g, optimize=optimize, num_workers=8)[1]

    res = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    _record(benchmark, res)
    benchmark.extra_info["optimize"] = optimize
