"""The same six algorithms implemented on the Pregel+ baseline.

These are the paper's comparison points (the "pregel" columns of Tables
IV–VII).  They share the algorithmic structure of
:mod:`repro.algorithms` but pay Pregel+'s costs: one monolithic message
type per program (tagged unions for heterogeneous algorithms), at most
one global combiner, per-message receive paths, and — in reqresp mode —
``(id, value)``-echoing responses.
"""

from repro.pregel_algorithms.pagerank import run_pagerank_pregel
from repro.pregel_algorithms.pointer_jumping import run_pointer_jumping_pregel
from repro.pregel_algorithms.wcc import run_wcc_pregel
from repro.pregel_algorithms.sv import run_sv_pregel
from repro.pregel_algorithms.scc import run_scc_pregel
from repro.pregel_algorithms.msf import run_msf_pregel
from repro.pregel_algorithms.sssp import run_sssp_pregel

__all__ = [
    "run_pagerank_pregel",
    "run_pointer_jumping_pregel",
    "run_wcc_pregel",
    "run_sv_pregel",
    "run_scc_pregel",
    "run_msf_pregel",
    "run_sssp_pregel",
]
