"""Unit tests for the Blogel block-centric baseline."""

import numpy as np
import pytest

from repro.blogel import BlogelEngine, BlockProgram, run_wcc_blogel
from repro.graph import grid_road, rmat
from repro.graph.partition import metis_like_partition
from helpers import line_graph, nx_components


class Nothing(BlockProgram):
    def block_compute(self, incoming):
        return []


class PingPong(BlockProgram):
    """Block 0 sends a token to a vertex of block 1 and vice versa, n times."""

    rounds = 3

    def __init__(self, engine, block_id, local_ids):
        super().__init__(engine, block_id, local_ids)
        self.received = 0

    def block_compute(self, incoming):
        dsts, vals = incoming
        self.received += int(np.sum(vals)) if vals.size else 0
        step = self.engine.step_num
        if step <= self.rounds:
            self.halted = False
            # send to some vertex of the other block
            other = 1 - self.block_id
            target = int(self.engine.blocks[other].local_ids[0])
            return [(target, 1)]
        return []

    def finalize(self):
        return {f"b{self.block_id}": self.received}


class TestEngine:
    def test_halts_immediately_when_idle(self):
        g = line_graph(4)
        res = BlogelEngine(g, Nothing, num_workers=2).run()
        assert res.supersteps == 1

    def test_message_delivery_and_halting(self):
        g = line_graph(4)
        part = np.array([0, 0, 1, 1])
        res = BlogelEngine(g, PingPong, num_workers=2, partition=part).run()
        # each block receives one token per round after the first
        assert res.data["b0"] == PingPong.rounds
        assert res.data["b1"] == PingPong.rounds

    def test_byte_accounting(self):
        g = line_graph(4)
        part = np.array([0, 0, 1, 1])
        res = BlogelEngine(g, PingPong, num_workers=2, partition=part).run()
        # each crossing message: 4B id + 4B value
        assert res.metrics.total_net_bytes == res.metrics.total_messages * 8

    def test_max_supersteps_guard(self):
        class Forever(BlockProgram):
            def block_compute(self, incoming):
                self.halted = False
                return []

        with pytest.raises(RuntimeError):
            BlogelEngine(line_graph(2), Forever, num_workers=1).run(max_supersteps=4)


class TestBlogelWCC:
    def test_matches_networkx(self):
        g = rmat(8, edge_factor=2, seed=3, directed=False)
        labels, _ = run_wcc_blogel(g, num_workers=4)
        np.testing.assert_array_equal(labels, nx_components(g))

    def test_partitioned_converges_faster(self):
        g = grid_road(20, 20, seed=0)
        pm = metis_like_partition(g, 4, seed=0)
        _, rh = run_wcc_blogel(g, num_workers=4)
        _, rm = run_wcc_blogel(g, num_workers=4, partition=pm)
        assert rm.metrics.total_net_bytes < rh.metrics.total_net_bytes
        assert rm.supersteps <= rh.supersteps

    def test_single_block_no_network(self):
        g = grid_road(10, 10, seed=0)
        labels, res = run_wcc_blogel(g, num_workers=1)
        np.testing.assert_array_equal(labels, nx_components(g))
        assert res.metrics.total_net_bytes == 0
        assert res.supersteps == 1  # whole graph converges in-block

    def test_empty_blocks_tolerated(self):
        g = line_graph(3)
        part = np.zeros(3, dtype=np.int64)  # block 1 owns nothing
        labels, _ = run_wcc_blogel(g, num_workers=2, partition=part)
        assert np.all(labels == 0)
