"""Row-for-row regenerators for the paper's result tables (IV–VII).

Each ``tableN()`` returns the same rows the paper reports (same programs,
same datasets, scaled inputs).  ``render_rows`` pretty-prints them;
``python -m repro.bench.tables`` regenerates everything and is what
EXPERIMENTS.md records.
"""

from __future__ import annotations

import sys

from repro.bench.runner import run_cell

__all__ = [
    "table4",
    "table5_scatter",
    "table5_reqresp",
    "table5_prop",
    "table6",
    "table7",
    "render_rows",
]


def table4(num_workers: int = 8) -> list[dict]:
    """Table IV: basic implementations, Pregel+ vs channel system."""
    cells = [
        ("pr", "pregel-basic", "webuk", False),
        ("pr", "channel-basic", "webuk", False),
        ("pr", "pregel-basic", "wikipedia", False),
        ("pr", "channel-basic", "wikipedia", False),
        ("wcc", "pregel-basic", "wikipedia", False),
        ("wcc", "channel-basic", "wikipedia", False),
        ("wcc", "pregel-basic", "wikipedia", True),
        ("wcc", "channel-basic", "wikipedia", True),
        ("pj", "pregel-basic", "chain", False),
        ("pj", "channel-basic", "chain", False),
        ("pj", "pregel-basic", "tree", False),
        ("pj", "channel-basic", "tree", False),
        ("sv", "pregel-basic", "facebook", False),
        ("sv", "channel-basic", "facebook", False),
        ("sv", "pregel-basic", "twitter", False),
        ("sv", "channel-basic", "twitter", False),
        ("msf", "pregel-basic", "usa-road", False),
        ("msf", "channel-basic", "usa-road", False),
        ("msf", "pregel-basic", "rmat24", False),
        ("msf", "channel-basic", "rmat24", False),
        ("scc", "pregel-basic", "wikipedia", False),
        ("scc", "channel-basic", "wikipedia", False),
        ("scc", "pregel-basic", "wikipedia", True),
        ("scc", "channel-basic", "wikipedia", True),
    ]
    return [run_cell(a, p, d, part, num_workers) for a, p, d, part in cells]


def table5_scatter(num_workers: int = 8) -> list[dict]:
    """Table V (top): the scatter-combine channel on PageRank."""
    rows = []
    for dataset in ("wikipedia", "webuk"):
        for program in (
            "pregel-basic",
            "pregel-ghost",
            "channel-basic",
            "channel-scatter",
        ):
            kwargs = {"ghost_threshold": 16} if program == "pregel-ghost" else {}
            rows.append(run_cell("pr", program, dataset, False, num_workers, **kwargs))
    return rows


def table5_reqresp(num_workers: int = 8) -> list[dict]:
    """Table V (middle): the request-respond channel on pointer jumping."""
    rows = []
    for dataset in ("tree", "chain"):
        for program in (
            "pregel-basic",
            "pregel-reqresp",
            "channel-basic",
            "channel-reqresp",
        ):
            rows.append(run_cell("pj", program, dataset, False, num_workers))
    return rows


def table5_prop(num_workers: int = 8) -> list[dict]:
    """Table V (bottom): the propagation channel on WCC, raw and
    partitioned inputs, including Blogel."""
    rows = []
    for partitioned in (False, True):
        for program in ("pregel-basic", "blogel", "channel-basic", "channel-prop"):
            rows.append(run_cell("wcc", program, "wikipedia", partitioned, num_workers))
    return rows


def table6(num_workers: int = 8) -> list[dict]:
    """Table VI: S-V with every channel combination."""
    rows = []
    for dataset in ("facebook", "twitter"):
        for program in (
            "pregel-reqresp",
            "channel-basic",
            "channel-reqresp",
            "channel-scatter",
            "channel-both",
        ):
            rows.append(run_cell("sv", program, dataset, False, num_workers))
    return rows


def table7(num_workers: int = 8) -> list[dict]:
    """Table VII: Min-Label SCC, basic vs propagation channel."""
    rows = []
    for partitioned in (False, True):
        for program in ("pregel-basic", "channel-basic", "channel-prop"):
            rows.append(run_cell("scc", program, "wikipedia", partitioned, num_workers))
    return rows


def render_rows(rows: list[dict], title: str = "", cols: list[str] | None = None) -> str:
    """Fixed-width table in the paper's (runtime, message) format; pass
    ``cols`` to render rows with a different shape (e.g. speedup rows)."""
    if not rows:
        return f"{title}\n(no rows)"
    if cols is None:
        cols = ["algorithm", "program", "dataset", "runtime", "message_mb", "supersteps", "wall_s"]
    widths = {c: max(len(c), *(len(str(r[c])) for r in rows)) for c in cols}
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(widths[c]) for c in cols))
    lines.append("  ".join("-" * widths[c] for c in cols))
    for r in rows:
        lines.append("  ".join(str(r[c]).ljust(widths[c]) for c in cols))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    wanted = set(argv) if argv else {"3", "4", "5", "6", "7"}
    from repro.bench.datasets import table3_rows

    if "3" in wanted:
        rows = table3_rows()
        cols = list(rows[0])
        print("Table III: datasets")
        print("  ".join(c.ljust(12) for c in cols))
        for r in rows:
            print("  ".join(str(r[c]).ljust(12) for c in cols))
        print()
    if "4" in wanted:
        print(render_rows(table4(), "Table IV: channel mechanism vs Pregel+ (basic)"))
        print()
    if "5" in wanted:
        print(render_rows(table5_scatter(), "Table V (top): ScatterCombine / PageRank"))
        print()
        print(render_rows(table5_reqresp(), "Table V (mid): RequestRespond / PJ"))
        print()
        print(render_rows(table5_prop(), "Table V (bottom): Propagation / WCC"))
        print()
    if "6" in wanted:
        print(render_rows(table6(), "Table VI: S-V channel composition"))
        print()
    if "7" in wanted:
        print(render_rows(table7(), "Table VII: Min-Label SCC"))


if __name__ == "__main__":
    main()
