"""Table VI: composing channels in the S-V algorithm — the headline
experiment.

Five programs on the sparse ("facebook") and dense ("twitter") graphs:
Pregel+ reqresp (the prior best), channel basic, channel + RequestRespond,
channel + ScatterCombine, channel + both.
Shape targets: the composed version is the fastest and lightest on both
graphs (paper: 2.20x over Pregel+ reqresp); scatter wins more on the
dense graph, reqresp is competitive on the sparse one.
"""

import pytest

PROGRAMS = [
    "pregel-reqresp",
    "channel-basic",
    "channel-reqresp",
    "channel-scatter",
    "channel-both",
]


@pytest.mark.parametrize("dataset", ["facebook", "twitter"])
@pytest.mark.parametrize("program", PROGRAMS)
def test_table6_sv(cell, dataset, program):
    row = cell("sv", program, dataset)
    assert row["supersteps"] > 4
