"""Experiment metrics: bytes, messages, supersteps, simulated time.

Every number in the reproduced tables comes from here.  The collector keeps
one :class:`SuperstepRecord` per superstep; totals are derived properties so
tests can assert conservation invariants (e.g. bytes sent == bytes
received) against the raw per-step data.

Two notions of time are tracked:

* ``wall_time`` — real elapsed time of the whole run (single process).
* ``simulated_time`` — Σ over supersteps of (max per-worker compute time +
  modeled network time of each exchange round).  This is the analogue of
  the paper's cluster runtime: compute is parallel across workers, and
  communication is charged by the cost model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.runtime.costmodel import NetworkModel, DEFAULT_NETWORK

__all__ = ["SuperstepRecord", "MetricsCollector"]


@dataclass
class SuperstepRecord:
    """Everything measured during one superstep."""

    superstep: int
    rounds: int = 0
    net_bytes: int = 0
    local_bytes: int = 0
    messages: int = 0
    active_vertices: int = 0
    compute_time_max: float = 0.0
    compute_time_sum: float = 0.0
    exchange_time: float = 0.0

    @property
    def simulated_time(self) -> float:
        return self.compute_time_max + self.exchange_time


@dataclass
class MetricsCollector:
    """Accumulates per-superstep metrics for one engine run."""

    num_workers: int
    network: NetworkModel = field(default_factory=lambda: DEFAULT_NETWORK)
    records: list[SuperstepRecord] = field(default_factory=list)
    #: per-channel traffic: label -> [net_bytes, local_bytes, messages]
    channel_traffic: dict = field(default_factory=dict)
    _wall_start: float = field(default=0.0, repr=False)
    wall_time: float = 0.0
    _current: SuperstepRecord | None = field(default=None, repr=False)
    _compute_per_worker: np.ndarray | None = field(default=None, repr=False)

    # -- run lifecycle ----------------------------------------------------
    def start_run(self) -> None:
        self._wall_start = time.perf_counter()

    def end_run(self) -> None:
        self.wall_time = time.perf_counter() - self._wall_start

    # -- superstep lifecycle ----------------------------------------------
    def start_superstep(self, active_vertices: int = 0) -> None:
        self._current = SuperstepRecord(
            superstep=len(self.records), active_vertices=active_vertices
        )
        self._compute_per_worker = np.zeros(self.num_workers)

    def record_compute(self, worker_id: int, seconds: float) -> None:
        assert self._compute_per_worker is not None
        self._compute_per_worker[worker_id] += seconds

    def record_exchange(
        self,
        send_bytes: np.ndarray,
        recv_bytes: np.ndarray,
        local_bytes: int = 0,
        messages: int = 0,
    ) -> None:
        """Account one buffer-exchange round."""
        cur = self._current
        assert cur is not None
        cur.rounds += 1
        cur.net_bytes += int(np.sum(send_bytes))
        cur.local_bytes += local_bytes
        cur.exchange_time += self.network.exchange_time(send_bytes, recv_bytes, messages)

    def count_messages(self, n: int) -> None:
        assert self._current is not None
        self._current.messages += n

    def count_channel_bytes(self, label: str, nbytes: int, local: bool) -> None:
        """Attribute payload bytes to a channel (the per-pattern traffic
        breakdown the paper's analyses reason about)."""
        entry = self.channel_traffic.setdefault(label, [0, 0, 0])
        entry[1 if local else 0] += nbytes

    def count_channel_messages(self, label: str, n: int) -> None:
        entry = self.channel_traffic.setdefault(label, [0, 0, 0])
        entry[2] += n

    def channel_breakdown(self) -> dict:
        """{channel label: {"net_bytes", "local_bytes", "messages"}}."""
        return {
            label: {"net_bytes": v[0], "local_bytes": v[1], "messages": v[2]}
            for label, v in sorted(self.channel_traffic.items())
        }

    def end_superstep(self) -> None:
        cur = self._current
        assert cur is not None and self._compute_per_worker is not None
        cur.compute_time_max = float(np.max(self._compute_per_worker))
        cur.compute_time_sum = float(np.sum(self._compute_per_worker))
        self.records.append(cur)
        self._current = None
        self._compute_per_worker = None

    # -- derived totals -----------------------------------------------------
    @property
    def supersteps(self) -> int:
        return len(self.records)

    @property
    def total_net_bytes(self) -> int:
        return sum(r.net_bytes for r in self.records)

    @property
    def total_local_bytes(self) -> int:
        return sum(r.local_bytes for r in self.records)

    @property
    def total_messages(self) -> int:
        return sum(r.messages for r in self.records)

    @property
    def total_rounds(self) -> int:
        return sum(r.rounds for r in self.records)

    @property
    def simulated_time(self) -> float:
        return sum(r.simulated_time for r in self.records)

    def summary(self) -> dict:
        """Flat dict used by the bench harness to print table rows."""
        return {
            "supersteps": self.supersteps,
            "rounds": self.total_rounds,
            "net_bytes": self.total_net_bytes,
            "local_bytes": self.total_local_bytes,
            "messages": self.total_messages,
            "simulated_time": self.simulated_time,
            "wall_time": self.wall_time,
        }
