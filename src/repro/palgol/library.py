"""Palgol-lite specs for the paper's algorithms.

``sv_spec`` is a line-for-line transcription of the paper's Section III-C
Palgol listing; the others cover the remaining pattern combinations the
compiler supports.
"""

from __future__ import annotations

from repro.core.combiner import MIN_I64, SUM_F64
from repro.palgol.ast import (
    Add,
    Assign,
    Const,
    Deg,
    Div,
    Eq,
    Field,
    FirstNeighbor,
    If,
    Let,
    Lt,
    Mul,
    NeighborReduce,
    NumVertices,
    PalgolSpec,
    RemoteRead,
    RemoteUpdate,
    Var,
    VertexId,
)

__all__ = ["sv_spec", "wcc_spec", "pointer_jumping_spec", "pagerank_spec"]


def sv_spec() -> PalgolSpec:
    """The paper's S-V listing::

        do
          for u in V
            if (D[D[u]] == D[u])
              let t = minimum [ D[e] | e <- Nbr[u] ]
              if (t < D[u]) remote D[D[u]] <?= t
            else
              D[u] := D[D[u]]
        until fix[D]

    All three communication patterns appear: the compiler picks
    RequestRespond for ``D[D[u]]``, ScatterCombine for the neighborhood
    minimum, and a min-combined message channel for the remote update.
    """
    grandparent = RemoteRead("D", at=Field("D"))
    t = NeighborReduce(MIN_I64, Field("D"))
    return PalgolSpec(
        name="sv",
        fields={"D": VertexId()},
        iterate="fixpoint",
        body=[
            Let("gp", grandparent),
            Let("t", t),
            If(
                Eq(Var("gp"), Field("D")),
                then=[
                    If(
                        Lt(Var("t"), Field("D")),
                        then=[
                            RemoteUpdate(
                                "D", at=Field("D"), value=Var("t"), combiner=MIN_I64
                            )
                        ],
                    )
                ],
                els=[Assign("D", Var("gp"))],
            ),
        ],
    )


def wcc_spec() -> PalgolSpec:
    """Hash-min connected components: one NeighborReduce per round."""
    t = NeighborReduce(MIN_I64, Field("label"))
    return PalgolSpec(
        name="wcc",
        fields={"label": VertexId()},
        iterate="fixpoint",
        body=[
            Let("m", t),
            If(Lt(Var("m"), Field("label")), then=[Assign("label", Var("m"))]),
        ],
    )


def pointer_jumping_spec() -> PalgolSpec:
    """``D[u] := D[D[u]]`` until fixpoint — a bare RemoteRead.

    The input convention matches :mod:`repro.algorithms.pointer_jumping`:
    a vertex's first out-edge points at its parent; roots have none.
    """
    return PalgolSpec(
        name="pj",
        fields={"D": FirstNeighbor()},
        iterate="fixpoint",
        body=[
            Let("gp", RemoteRead("D", at=Field("D"))),
            Assign("D", Var("gp")),
        ],
    )


def pagerank_spec(iterations: int = 30) -> PalgolSpec:
    """PageRank without the dead-end sink (the compiler's fixed-iteration
    mode; dangling mass handling needs a global reduce, which Palgol-lite
    does not model — use graphs whose every vertex has out-degree > 0,
    or compare against the sink-free reference)."""
    share_sum = NeighborReduce(SUM_F64, Div(Field("rank"), Deg()))
    return PalgolSpec(
        name="pagerank",
        fields={"rank": Div(Const(1.0), NumVertices())},
        iterate=iterations,
        body=[
            Assign(
                "rank",
                Add(
                    Div(Const(0.15), NumVertices()),
                    Mul(Const(0.85), share_sum),
                ),
            ),
        ],
    )
