"""The bulk compute path's core machinery: dispatch, vectorized
halt/activate, local CSR adjacency views, and EngineResult ergonomics."""

import numpy as np
import pytest

from repro.core import (
    BulkVertexProgram,
    ChannelEngine,
    CombinedMessage,
    EngineResult,
    SUM_I64,
    VertexProgram,
)
from repro.graph import rmat
from repro.graph.graph import Graph
from helpers import line_graph


def make_engine(n=6, workers=2):
    class Idle(VertexProgram):
        def compute(self, v):
            v.vote_to_halt()

    return ChannelEngine(line_graph(n), Idle, num_workers=workers)


class TestActivateValidation:
    def test_activate_non_owned_vertex_raises(self):
        """Regression: activate() on a non-owned vertex used to index
        woken[-1], silently corrupting the last local vertex's wake
        state."""
        engine = make_engine(n=6, workers=2)
        w = engine.workers[0]
        foreign = next(v for v in range(6) if engine.owner[v] != 0)
        with pytest.raises(ValueError, match="not owned"):
            w.activate(foreign)

    def test_activate_does_not_corrupt_last_local_vertex(self):
        engine = make_engine(n=6, workers=2)
        w = engine.workers[0]
        w.begin_superstep()
        w.halt_bulk(np.arange(w.num_local))
        foreign = next(v for v in range(6) if engine.owner[v] != 0)
        with pytest.raises(ValueError):
            w.activate(foreign)
        # the bogus wake must not have revived anyone
        assert w.begin_superstep().size == 0

    def test_activate_owned_vertex_still_works(self):
        engine = make_engine(n=6, workers=2)
        w = engine.workers[0]
        w.begin_superstep()
        vid = int(w.local_ids[0])
        w.halt_bulk(np.arange(w.num_local))
        w.activate(vid)
        assert w.begin_superstep().tolist() == [w.local_index(vid)]


class TestHaltBulk:
    def test_halt_bulk_matches_scalar_halt(self):
        engine = make_engine(n=8, workers=1)
        w = engine.workers[0]
        w.begin_superstep()
        w.halt_bulk(np.array([1, 3, 5]))
        assert w.begin_superstep().tolist() == [0, 2, 4, 6, 7]


class TestLocalAdjacency:
    @pytest.fixture(scope="class")
    def graph(self):
        return rmat(7, edge_factor=5, seed=11, directed=True)

    def test_out_rows_match_graph_neighbors(self, graph):
        engine = ChannelEngine(graph, _idle_program(), num_workers=3)
        for w in engine.workers:
            adj = w.local_adjacency()
            for i, g in enumerate(w.local_ids.tolist()):
                np.testing.assert_array_equal(adj.row(i), graph.neighbors(g))
            np.testing.assert_array_equal(adj.degrees, graph.out_degrees[w.local_ids])

    def test_both_rows_are_out_then_in(self, graph):
        engine = ChannelEngine(graph, _idle_program(), num_workers=2)
        w = engine.workers[0]
        adj = w.local_adjacency("both")
        for i, g in enumerate(w.local_ids.tolist()):
            expect = np.concatenate([graph.neighbors(g), graph.in_neighbors(g)])
            np.testing.assert_array_equal(adj.row(i), expect)

    def test_gather_concatenates_in_row_order(self, graph):
        engine = ChannelEngine(graph, _idle_program(), num_workers=2)
        w = engine.workers[0]
        adj = w.local_adjacency()
        rows = np.array([0, 2, 3])
        expect = np.concatenate([adj.row(i) for i in rows.tolist()])
        np.testing.assert_array_equal(adj.gather(rows), expect)

    def test_gather_weights_aligned(self):
        g = rmat(6, edge_factor=4, seed=12, directed=True, weighted=True)
        engine = ChannelEngine(g, _idle_program(), num_workers=2)
        w = engine.workers[0]
        adj = w.local_adjacency()
        rows = np.arange(w.num_local)
        expect = np.concatenate(
            [g.edge_weights(int(v)) for v in w.local_ids] or [np.empty(0)]
        )
        np.testing.assert_array_equal(adj.gather_weights(rows), expect)

    def test_unweighted_gather_weights_are_ones(self, graph):
        engine = ChannelEngine(graph, _idle_program(), num_workers=2)
        w = engine.workers[0]
        adj = w.local_adjacency()
        rows = np.arange(min(4, w.num_local))
        np.testing.assert_array_equal(
            adj.gather_weights(rows), np.ones(int(adj.degrees[rows].sum()))
        )

    def test_cached_per_direction(self, graph):
        engine = ChannelEngine(graph, _idle_program(), num_workers=2)
        w = engine.workers[0]
        assert w.local_adjacency() is w.local_adjacency()
        assert w.local_adjacency("both") is w.local_adjacency("both")
        assert w.local_adjacency() is not w.local_adjacency("both")

    def test_bad_direction_rejected(self, graph):
        engine = ChannelEngine(graph, _idle_program(), num_workers=2)
        with pytest.raises(ValueError, match="direction"):
            engine.workers[0].local_adjacency("sideways")


def _idle_program():
    class Idle(VertexProgram):
        def compute(self, v):
            v.vote_to_halt()

    return Idle


class TestBulkDispatch:
    def test_compute_bulk_called_once_per_superstep(self):
        calls = []

        class Recorder(BulkVertexProgram):
            def compute_bulk(self, active):
                calls.append((self.worker.worker_id, self.step_num, active.copy()))
                self.worker.halt_bulk(active)

        engine = ChannelEngine(line_graph(6), Recorder, num_workers=2)
        engine.run()
        # one call per worker, all vertices active in superstep 1
        assert sorted(c[0] for c in calls) == [0, 1]
        assert all(step == 1 for _, step, _ in calls)
        assert sum(a.size for _, _, a in calls) == 6

    def test_idle_worker_gets_no_bulk_call(self):
        calls = []

        class SourceOnly(BulkVertexProgram):
            def __init__(self, worker):
                super().__init__(worker)
                self.msg = CombinedMessage(worker, SUM_I64)

            def compute_bulk(self, active):
                calls.append((self.worker.worker_id, self.step_num))
                if self.step_num == 1:
                    li = self.worker.local_index(0)
                    if li >= 0:
                        self.msg.send_messages(
                            np.array([1]), np.array([7], dtype=np.int64)
                        )
                self.worker.halt_bulk(active)

        # vertices 0 and 1 on different workers: in superstep 2 only
        # vertex 1's worker is active, so only it may be called
        g = Graph.from_edges(2, [(0, 1)], directed=True)
        engine = ChannelEngine(
            g, SourceOnly, num_workers=2, partition=np.array([0, 1])
        )
        engine.run()
        assert calls == [(0, 1), (1, 1), (1, 2)]

    def test_scalar_compute_on_bulk_program_raises(self):
        class Bulk(BulkVertexProgram):
            def compute_bulk(self, active):
                self.worker.halt_bulk(active)

        engine = ChannelEngine(line_graph(4), Bulk, num_workers=1)
        with pytest.raises(TypeError, match="bulk program"):
            engine.workers[0].program.compute(None)


class TestEngineResultErgonomics:
    def test_passthrough_properties_match_metrics(self):
        from repro.algorithms.wcc import run_wcc

        _, result = run_wcc(rmat(7, edge_factor=4, seed=13, directed=True), num_workers=4)
        m = result.metrics
        assert result.total_net_bytes == m.total_net_bytes > 0
        assert result.total_messages == m.total_messages > 0
        assert result.simulated_time == m.simulated_time > 0.0
        assert result.supersteps == m.supersteps > 0

    def test_defaults_without_metrics(self):
        # metrics disabled is *not* the same observation as "no traffic":
        # the totals must come back None, never a vacuous 0 that would
        # make two unmeasured runs compare as byte-identical
        empty = EngineResult()
        assert empty.total_net_bytes is None
        assert empty.total_messages is None
        assert empty.simulated_time is None
        assert empty.supersteps is None
