"""Baseline: a Blogel-like block-centric engine (Yan et al., VLDB'14).

Blogel opens the partition to the user: a *block program* computes over a
whole worker's subgraph at once (B-compute) and exchanges messages only
between blocks.  The paper compares its Propagation channel against
Blogel's hash-min connected components (Table V, bottom) — same
convergence idea, but Blogel requires the user to hand-write the >100-line
block-level program that the Propagation channel gives for free.
"""

from repro.blogel.system import BlogelEngine, BlockProgram
from repro.blogel.wcc import BlogelWCC, run_wcc_blogel

__all__ = ["BlogelEngine", "BlockProgram", "BlogelWCC", "run_wcc_blogel"]
