"""Exporters over the live telemetry plane (ARCHITECTURE.md §11).

Three read-only views of a :class:`~repro.obs.live.LiveMetrics` segment:

- :func:`prometheus_text`: the Prometheus text exposition format
  (version 0.0.4) — ``# HELP`` / ``# TYPE`` headed families, one sample
  per worker, counters suffixed ``_total``.
- :class:`MetricsHTTPServer`: a stdlib-only ``GET /metrics`` endpoint
  (``http.server.ThreadingHTTPServer`` on a daemon thread) behind the
  ``--metrics-port`` CLI flag, so any Prometheus scraper or plain
  ``curl`` can watch a run in flight.
- :func:`format_top`: the per-worker table ``repro top`` renders.
- :func:`format_table`: the generic fixed-width table renderer behind
  ``repro info`` (and anything else that wants ``repro top``'s look
  without its hand-packed per-worker columns).

All three take fresh :meth:`~repro.obs.live.LiveMetrics.snapshot` reads;
none of them ever writes to the segment.
"""

from __future__ import annotations

import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.live import LiveMetrics

__all__ = ["MetricsHTTPServer", "format_table", "format_top", "prometheus_text"]

_PHASES = ("barrier", "compute", "serialize", "exchange")

#: metric family -> (type, help); counters carry the ``_total`` suffix
#: required by the exposition format for cumulative series
_FAMILIES = (
    ("repro_supersteps_total", "counter", "Supersteps completed by this worker."),
    ("repro_exchange_rounds_total", "counter", "Channel exchange rounds completed."),
    ("repro_net_bytes_total", "counter", "Frame bytes sent to other workers."),
    ("repro_local_bytes_total", "counter", "Frame bytes kept worker-local."),
    ("repro_messages_total", "counter", "Channel messages sent."),
    ("repro_phase_seconds_total", "counter", "Cumulative seconds per engine phase."),
    ("repro_cpu_seconds_total", "counter", "Worker process CPU seconds (/proc)."),
    ("repro_alerts_total", "counter", "Live-monitor alerts raised for this worker."),
    ("repro_rebalances_total", "counter",
     "Live migrations that moved vertices onto or off this worker."),
    ("repro_active_vertices", "gauge", "Active vertices in the current superstep."),
    ("repro_rss_bytes", "gauge", "Worker process resident set size (/proc)."),
    ("repro_last_update_timestamp_seconds", "gauge",
     "Unix time of the worker's last slot publish."),
    ("repro_slot_stale", "gauge", "1 when the last snapshot read was torn."),
    ("repro_epoch", "gauge", "Streaming epoch the segment currently describes."),
    ("repro_up", "gauge", "1 while the live segment is attached and readable."),
)


def _escape(value) -> str:
    return str(value).replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _labels(pairs: dict) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs.items())
    return "{" + body + "}"


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_text(live: LiveMetrics, labels: dict | None = None) -> str:
    """Render one scrape of ``live`` in the text exposition format."""
    base = dict(labels or {})
    rows = live.snapshot()
    header = live.header()
    alerts = live.alert_counts()
    migrations = live.rebalance_counts()

    samples: dict[str, list[tuple[dict, object]]] = {name: [] for name, _, _ in _FAMILIES}
    for row in rows:
        wl = {**base, "worker": row["worker"]}
        samples["repro_supersteps_total"].append((wl, row["superstep"]))
        samples["repro_exchange_rounds_total"].append((wl, row["rounds"]))
        samples["repro_net_bytes_total"].append((wl, row["net_bytes"]))
        samples["repro_local_bytes_total"].append((wl, row["local_bytes"]))
        samples["repro_messages_total"].append((wl, row["messages"]))
        for phase in _PHASES:
            samples["repro_phase_seconds_total"].append(
                ({**wl, "phase": phase}, row[f"{phase}_seconds"])
            )
        samples["repro_cpu_seconds_total"].append((wl, row["cpu_seconds"]))
        samples["repro_alerts_total"].append((wl, alerts[row["worker"]]))
        samples["repro_rebalances_total"].append((wl, migrations[row["worker"]]))
        samples["repro_active_vertices"].append((wl, row["active"]))
        samples["repro_rss_bytes"].append((wl, row["rss_bytes"]))
        samples["repro_last_update_timestamp_seconds"].append((wl, row["updated_at"]))
        samples["repro_slot_stale"].append((wl, row["stale"]))
    samples["repro_epoch"].append((base, header["epoch"]))
    samples["repro_up"].append((base, 1))

    lines = []
    for name, typ, help_text in _FAMILIES:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {typ}")
        for label_pairs, value in samples[name]:
            lines.append(f"{name}{_labels(label_pairs)} {_fmt(value)}")
    return "\n".join(lines) + "\n"


class MetricsHTTPServer:
    """Serve ``GET /metrics`` for a live segment on a daemon thread."""

    def __init__(
        self,
        live: LiveMetrics,
        port: int = 0,
        host: str = "127.0.0.1",
        labels: dict | None = None,
    ):
        self.live = live
        self.host = host
        self.labels = dict(labels or {})
        self._port = int(port)
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._port

    def start(self) -> int:
        """Bind and serve in the background; returns the bound port
        (useful with ``port=0``, which picks a free one)."""
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_error(404, "only /metrics is served here")
                    return
                try:
                    body = prometheus_text(outer.live, outer.labels).encode("utf-8")
                except Exception as exc:  # segment closed mid-scrape
                    self.send_error(503, str(exc))
                    return
                self.send_response(200)
                self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # scrapes are not run output
                pass

        self._httpd = ThreadingHTTPServer((self.host, self._port), Handler)
        self._httpd.daemon_threads = True
        self._port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics-http", daemon=True
        )
        self._thread.start()
        return self._port

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None


def format_table(
    rows: list[dict], columns: list[str] | None = None, title: str | None = None
) -> str:
    """Render dict rows as a fixed-width text table.

    Column order follows ``columns`` (default: first row's key order);
    numeric cells are right-aligned, everything else left-aligned, floats
    shown to 3 decimals.  The style matches :func:`format_top`'s
    upper-case headers so ``repro info`` and ``repro top`` read alike.
    """
    if not rows:
        return title or ""
    cols = columns if columns is not None else list(rows[0])

    def cell(value) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    grid = [[cell(r.get(c, "")) for c in cols] for r in rows]
    numeric = [
        all(isinstance(r.get(c), (int, float)) and not isinstance(r.get(c), bool)
            for r in rows)
        for c in cols
    ]
    widths = [
        max(len(c.upper()), max(len(g[i]) for g in grid)) for i, c in enumerate(cols)
    ]

    def line(parts: list[str]) -> str:
        out = []
        for i, p in enumerate(parts):
            out.append(p.rjust(widths[i]) if numeric[i] else p.ljust(widths[i]))
        return "  ".join(out).rstrip()

    lines = [] if title is None else [title]
    lines.append(line([c.upper() for c in cols]))
    lines.extend(line(g) for g in grid)
    return "\n".join(lines)


def _mb(nbytes: float) -> str:
    return f"{nbytes / 1e6:10.2f}"


def format_top(
    live: LiveMetrics,
    rows: list[dict] | None = None,
    prev: list[dict] | None = None,
    dt: float | None = None,
) -> str:
    """Render the ``repro top`` per-worker table.

    With ``prev``/``dt`` (the previous refresh's snapshot and the seconds
    since), the rate columns are true deltas; one-shot callers omit them
    and get run-lifetime averages against the segment's ``created_at``.
    """
    if rows is None:
        rows = live.snapshot()
    header = live.header()
    alerts = live.alert_counts()
    migrations = live.rebalance_counts()
    now = time.time()
    age = max(now - header["created_at"], 1e-9)

    lines = [
        f"segment {live.name}  epoch {header['epoch']}  "
        f"workers {header['num_workers']}  age {age:.1f}s",
        "  W     STEP    ACTIVE   STEP/S    NET MB  NET MB/S       MSG"
        "  PHASE barrier/compute/serialize/exchange     RSS MB    CPU S  ALERT    MIG",
    ]
    for row in rows:
        w = row["worker"]
        if prev is not None and dt is not None and dt > 0 and w < len(prev):
            step_rate = (row["superstep"] - prev[w]["superstep"]) / dt
            byte_rate = (row["net_bytes"] - prev[w]["net_bytes"]) / dt
        else:
            step_rate = row["superstep"] / age
            byte_rate = row["net_bytes"] / age
        busy = sum(row[f"{p}_seconds"] for p in _PHASES)
        if busy > 0:
            split = "/".join(
                f"{100 * row[f'{p}_seconds'] / busy:4.1f}" for p in _PHASES
            )
        else:
            split = "/".join(" 0.0" for _ in _PHASES)
        flag = " !" if row["stale"] else ""
        lines.append(
            f"{w:3d} {row['superstep']:8d} {row['active']:9d} {step_rate:8.2f} "
            f"{_mb(row['net_bytes'])} {byte_rate / 1e6:9.3f} {row['messages']:9d}"
            f"  {split:>41s} {_mb(row['rss_bytes'])} {row['cpu_seconds']:8.2f} "
            f"{alerts[w]:6d} {migrations[w]:6d}{flag}"
        )
    return "\n".join(lines)
