"""Pluggable CSR storage backends.

A :class:`GraphStore` answers one question — *where do a graph's CSR
arrays live?* — so the same read-only :class:`~repro.graph.graph.Graph`
API can be served by three different homes:

``memory``
    Plain in-process ndarrays (the historical behavior, and still the
    default for every constructor).
``mmap``
    A directory on disk holding ``meta.json`` plus one ``.npy`` file per
    CSR array, opened with ``numpy`` memory-mapping.  Pages fault in on
    demand, the OS page cache is shared between every process that maps
    the same files, and nothing is ever loaded eagerly — this is how
    graphs larger than RAM run at all.
``shm``
    POSIX shared-memory segments (the process backend's export).  Only
    worker processes hold this kind; the parent keeps the original store.

The executor picks the cheapest transport per store: a graph whose store
is already ``mmap`` ships to worker processes as just a *path*
(attach-by-path — the kernel page cache makes the arrays physically
shared), while a ``memory`` graph is copied once into shared memory.

Stores are deliberately ignorant of :class:`Graph` (``graph.py`` imports
this module, not the other way around); anything that needs a graph
object takes it duck-typed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Iterable, Iterator

import numpy as np

__all__ = [
    "GraphStore",
    "MemoryStore",
    "MmapStore",
    "SharedMemoryStore",
    "attach_store",
    "build_mmap_store",
    "is_mmap_store",
    "INDEX_DTYPES",
    "META_NAME",
]

META_NAME = "meta.json"
_FORMAT = "repro-csr"
_VERSION = 1

#: on-disk dtypes accepted for ``indices.npy`` (``meta.json``'s
#: ``index_dtype`` field; absent means ``int64``).  ``uint32`` halves the
#: dominant on-disk array for graphs under 2**32 vertices; readers widen
#: back to int64 on attach so everything downstream sees one dtype.
INDEX_DTYPES = {"int64": np.int64, "uint32": np.uint32}

# (src, dst, weights-or-None) int64/int64/float64 arrays of equal length
EdgeChunk = tuple[np.ndarray, np.ndarray, "np.ndarray | None"]


class GraphStore:
    """Base class: a home for one graph's CSR arrays.

    Concrete stores expose ``kind``, ``num_vertices``, ``directed``,
    :meth:`arrays` (the live CSR views, never copies) and
    :meth:`footprint`.  :meth:`describe` returns a small picklable
    descriptor when the store can be re-attached by reference from
    another process (mmap: yes, by path; memory: no — it must be copied).
    """

    kind = "abstract"

    num_vertices: int
    directed: bool

    def arrays(self) -> dict[str, np.ndarray]:
        """``{"indptr", "indices"[, "weights"]}`` — live views, read-only."""
        raise NotImplementedError

    def describe(self) -> dict | None:
        """Picklable attach-by-reference descriptor, or ``None`` when the
        arrays can only reach another process by copy."""
        return None

    @property
    def weighted(self) -> bool:
        return "weights" in self.arrays()

    @property
    def num_arcs(self) -> int:
        return int(self.arrays()["indices"].size)

    @property
    def nbytes(self) -> int:
        return int(sum(a.nbytes for a in self.arrays().values()))

    def footprint(self) -> dict[str, int]:
        """``{"resident_bytes", "on_disk_bytes"}`` — what the arrays cost
        in this process's heap vs on disk.  mmap pages are demand-loaded
        and evictable, so they count as on-disk, not resident."""
        return {"resident_bytes": self.nbytes, "on_disk_bytes": 0}

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class MemoryStore(GraphStore):
    """CSR arrays on the process heap — the default store."""

    kind = "memory"

    def __init__(
        self,
        num_vertices: int,
        directed: bool,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        self.num_vertices = int(num_vertices)
        self.directed = bool(directed)
        self._arrays = {"indptr": indptr, "indices": indices}
        if weights is not None:
            self._arrays["weights"] = weights

    def arrays(self) -> dict[str, np.ndarray]:
        return dict(self._arrays)


class MmapStore(GraphStore):
    """CSR arrays in a directory of ``.npy`` files, memory-mapped.

    Layout::

        <path>/meta.json      format/version/num_vertices/num_arcs/...
        <path>/indptr.npy     int64[V+1]
        <path>/indices.npy    int64[A]
        <path>/weights.npy    float64[A]     (weighted graphs only)

    The files are opened read-only (``mmap_mode="r"``); the store never
    writes to an existing directory after :meth:`save`/``build`` finish,
    which is what lets :class:`~repro.streaming.delta.DeltaGraph` overlay
    mutations on top of an mmap base without ever touching the files.
    """

    kind = "mmap"

    def __init__(self, path: Path, meta: dict, arrays: dict[str, np.ndarray]) -> None:
        self.path = Path(path)
        self.meta = meta
        self.num_vertices = int(meta["num_vertices"])
        self.directed = bool(meta["directed"])
        self._arrays = arrays
        self._widened: np.ndarray | None = None  # int64 copy of narrow indices

    # -- open / save ---------------------------------------------------
    @classmethod
    def open(cls, path: str | os.PathLike) -> "MmapStore":
        path = Path(path)
        meta_path = path / META_NAME
        if not meta_path.is_file():
            raise FileNotFoundError(f"{path} is not a graph store (no {META_NAME})")
        meta = json.loads(meta_path.read_text())
        if meta.get("format") != _FORMAT:
            raise ValueError(f"{path}: unknown store format {meta.get('format')!r}")
        if int(meta.get("version", 0)) > _VERSION:
            raise ValueError(
                f"{path}: store version {meta['version']} is newer than "
                f"this reader (max {_VERSION})"
            )
        index_dtype = meta.get("index_dtype", "int64")
        if index_dtype not in INDEX_DTYPES:
            raise ValueError(
                f"{path}: unknown index_dtype {index_dtype!r}; "
                f"expected one of {sorted(INDEX_DTYPES)}"
            )
        names = ["indptr", "indices"] + (["weights"] if meta["weighted"] else [])
        arrays = {name: _load_mapped(path / f"{name}.npy") for name in names}
        if arrays["indices"].dtype != INDEX_DTYPES[index_dtype]:
            raise ValueError(
                f"{path}: indices.npy dtype {arrays['indices'].dtype} does "
                f"not match meta index_dtype {index_dtype!r}"
            )
        return cls(path, meta, arrays)

    @classmethod
    def save(
        cls, graph, path: str | os.PathLike, *, index_dtype: str = "int64"
    ) -> "MmapStore":
        """Write ``graph``'s CSR arrays to ``path`` and open the result.

        ``graph`` is duck-typed: anything with ``num_vertices``,
        ``directed`` and ``csr_arrays()`` works.  ``index_dtype="uint32"``
        stores ``indices.npy`` narrow (half the disk for the dominant
        array); see :data:`INDEX_DTYPES`.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        dtype = _check_index_dtype(index_dtype, graph.num_vertices)
        csr = graph.csr_arrays()
        for name, arr in csr.items():
            np.save(path / f"{name}.npy", arr.astype(dtype) if name == "indices" else arr)
        _write_meta(
            path,
            num_vertices=graph.num_vertices,
            num_arcs=int(csr["indices"].size),
            directed=bool(graph.directed),
            weighted="weights" in csr,
            index_dtype=index_dtype,
        )
        return cls.open(path)

    # -- GraphStore API ------------------------------------------------
    def arrays(self) -> dict[str, np.ndarray]:
        out = dict(self._arrays)
        idx = out["indices"]
        if idx.dtype != np.int64:
            # widen narrow on-disk indices exactly once; every consumer
            # (engine kernels, partitioners, exports) assumes int64
            if self._widened is None:
                self._widened = np.ascontiguousarray(idx, dtype=np.int64)
            out["indices"] = self._widened
        return out

    def describe(self) -> dict:
        return {"kind": "mmap", "path": str(self.path)}

    def footprint(self) -> dict[str, int]:
        on_disk = sum(
            (self.path / f"{name}.npy").stat().st_size for name in self._arrays
        )
        # the mapped arrays are file-backed pages, not heap; only a
        # widened copy of narrow indices (when one was made) is resident
        resident = self._widened.nbytes if self._widened is not None else 0
        return {"resident_bytes": int(resident), "on_disk_bytes": int(on_disk)}

    def close(self) -> None:
        # drop the mmap views so the underlying maps can be unmapped; the
        # files themselves are left in place
        self._arrays = {}
        self._widened = None


class SharedMemoryStore(GraphStore):
    """CSR arrays attached from POSIX shared-memory segments.

    Only ever constructed inside worker processes (the parent's
    :class:`~repro.runtime.parallel.shm.SharedArrayExport` owns the
    export side).  Holds the segment handles so the maps stay valid for
    the store's lifetime; :meth:`close` releases them.
    """

    kind = "shm"

    def __init__(
        self,
        num_vertices: int,
        directed: bool,
        arrays: dict[str, np.ndarray],
        segments: list,
    ) -> None:
        self.num_vertices = int(num_vertices)
        self.directed = bool(directed)
        self._arrays = arrays
        self._segments = segments

    @classmethod
    def attach(cls, desc: dict, *, unregister: bool = True) -> "SharedMemoryStore":
        from repro.runtime.parallel.shm import attach_array

        arrays: dict[str, np.ndarray] = {}
        segments: list = []
        for name in ("indptr", "indices", "weights"):
            spec = desc.get(name)
            if spec is None:
                continue
            arr, seg = attach_array(spec, unregister)
            arrays[name] = arr
            segments.append(seg)
        return cls(desc["num_vertices"], desc["directed"], arrays, segments)

    def arrays(self) -> dict[str, np.ndarray]:
        return dict(self._arrays)

    def footprint(self) -> dict[str, int]:
        # shared pages: resident once machine-wide, not per attaching process
        return {"resident_bytes": self.nbytes, "on_disk_bytes": 0}

    def close(self) -> None:
        self._arrays = {}
        for seg in self._segments:
            try:
                seg.close()
            except BufferError:  # views still alive; segment dies with process
                pass
        self._segments = []


def is_mmap_store(path: str | os.PathLike) -> bool:
    """True when ``path`` is a directory with a store ``meta.json``."""
    return Path(path).is_dir() and (Path(path) / META_NAME).is_file()


def attach_store(desc: dict, *, unregister: bool = True) -> GraphStore:
    """Re-create a store in a worker process from its wire descriptor.

    ``{"kind": "mmap", "path": ...}`` re-opens the files (attach-by-path:
    no bytes cross the process boundary, the page cache is the share);
    ``{"kind": "shm", ...}`` maps the parent's exported segments.
    """
    kind = desc.get("kind")
    if kind == "mmap":
        return MmapStore.open(desc["path"])
    if kind == "shm":
        return SharedMemoryStore.attach(desc, unregister=unregister)
    raise ValueError(f"unknown graph store descriptor kind {kind!r}")


# ---------------------------------------------------------------------------
# two-pass chunked CSR build
# ---------------------------------------------------------------------------


def build_mmap_store(
    path: str | os.PathLike,
    chunks: Callable[[], Iterable[EdgeChunk]],
    *,
    num_vertices: int | None = None,
    directed: bool = True,
    weighted: bool = False,
    index_dtype: str = "int64",
) -> MmapStore:
    """Build an on-disk CSR store from a re-playable stream of edge chunks.

    ``chunks()`` must return a fresh iterator over ``(src, dst, weights)``
    chunks each time it is called — the build makes one counting pass and
    one (directed) or two (undirected) scatter passes, so the factory is
    invoked two or three times and must replay the *same* chunks in the
    *same* order.  Peak memory is O(V) for the degree/cursor arrays plus
    one chunk; the edge list itself is never materialized.

    Arc ordering is bit-identical to the in-memory
    :class:`~repro.graph.graph.Graph` constructor: arcs of one source
    vertex keep input order, and undirected graphs store all forward arcs
    (file order, self-loops included) followed by all backward arcs (file
    order, self-loops dropped) — which is exactly what the forward-then-
    backward scatter passes produce.

    ``index_dtype="uint32"`` writes ``indices.npy`` narrow (half the
    disk/page-cache footprint of the dominant array); the store widens
    back to int64 when attached.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    if index_dtype not in INDEX_DTYPES:
        raise ValueError(
            f"index_dtype must be one of {sorted(INDEX_DTYPES)}, got {index_dtype!r}"
        )

    # -- pass 1: count out-degrees (and find V when not given) ---------
    counts = np.zeros((num_vertices or 0) + 1, dtype=np.int64)
    max_id = -1
    num_arcs = 0
    for src, dst, w in chunks():
        src, dst, w = _check_chunk(src, dst, w, weighted)
        if src.size == 0:
            continue
        if min(src.min(), dst.min()) < 0:
            raise ValueError("edge endpoints out of range")
        hi = int(max(src.max(), dst.max()))
        if num_vertices is not None and hi >= num_vertices:
            raise ValueError("edge endpoints out of range")
        max_id = max(max_id, hi)
        if hi >= counts.size:
            counts = np.concatenate(
                [counts, np.zeros(hi + 1 - counts.size, dtype=np.int64)]
            )
        counts[: hi + 1] += np.bincount(src, minlength=hi + 1)
        num_arcs += src.size
        if not directed:
            back = src != dst  # symmetrization drops self-loop duplicates
            if back.any():
                b = dst[back]
                counts[: hi + 1] += np.bincount(b, minlength=hi + 1)
                num_arcs += int(back.sum())

    n = num_vertices if num_vertices is not None else max_id + 1
    idx_np_dtype = _check_index_dtype(index_dtype, n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts[:n], out=indptr[1:])
    np.save(path / "indptr.npy", indptr)

    indices_mm = _create_mapped(path / "indices.npy", idx_np_dtype, num_arcs)
    weights_mm = (
        _create_mapped(path / "weights.npy", np.float64, num_arcs) if weighted else None
    )

    # -- pass 2: scatter destinations through per-vertex cursors -------
    cursor = indptr[:-1].copy()

    def scatter(s: np.ndarray, d: np.ndarray, w: np.ndarray | None) -> None:
        if s.size == 0:
            return
        order = np.argsort(s, kind="stable")
        ss = s[order]
        uniq, start, cnt = np.unique(ss, return_index=True, return_counts=True)
        # position of each arc inside its source's run within this chunk
        offset = np.arange(ss.size, dtype=np.int64) - np.repeat(start, cnt)
        pos = cursor[ss] + offset
        # a vertex overflowing its counted slot means the factory yielded
        # different chunks in the scatter pass than in the counting pass
        if (cursor[uniq] + cnt > indptr[uniq + 1]).any():
            raise RuntimeError(
                "chunk factory did not replay identically between passes"
            )
        indices_mm[pos] = d[order]
        if weights_mm is not None:
            weights_mm[pos] = w[order]  # type: ignore[index]
        cursor[uniq] += cnt

    for src, dst, w in chunks():
        src, dst, w = _check_chunk(src, dst, w, weighted)
        scatter(src, dst, w)
    if not directed:
        # second scatter pass: backward arcs, after ALL forward arcs —
        # matching the in-memory concatenate([src, dst[~loop]]) layout
        for src, dst, w in chunks():
            src, dst, w = _check_chunk(src, dst, w, weighted)
            back = src != dst
            scatter(dst[back], src[back], None if w is None else w[back])

    if not np.array_equal(cursor, indptr[1:]):
        raise RuntimeError(
            "chunk factory did not replay identically between passes"
        )
    _flush_mapped(indices_mm)
    if weights_mm is not None:
        _flush_mapped(weights_mm)

    _write_meta(
        path,
        num_vertices=int(n),
        num_arcs=int(num_arcs),
        directed=bool(directed),
        weighted=bool(weighted),
        index_dtype=index_dtype,
    )
    return MmapStore.open(path)


def _check_index_dtype(index_dtype: str, num_vertices: int) -> np.dtype:
    """The numpy dtype for ``index_dtype``, after checking every vertex
    id actually fits in it."""
    if index_dtype not in INDEX_DTYPES:
        raise ValueError(
            f"index_dtype must be one of {sorted(INDEX_DTYPES)}, got {index_dtype!r}"
        )
    dtype = np.dtype(INDEX_DTYPES[index_dtype])
    if num_vertices > 0 and num_vertices - 1 > np.iinfo(dtype).max:
        raise ValueError(
            f"index_dtype {index_dtype!r} cannot hold vertex ids up to "
            f"{num_vertices - 1}"
        )
    return dtype


def _check_chunk(src, dst, w, weighted: bool) -> EdgeChunk:
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError("src and dst chunks must have equal length")
    if weighted:
        if w is None:
            raise ValueError("some edges have weights and some do not")
        w = np.asarray(w, dtype=np.float64)
        if w.shape != src.shape:
            raise ValueError("weights must match the edge list length")
    elif w is not None:
        raise ValueError("unweighted build received a weighted chunk")
    return src, dst, w


def _write_meta(path: Path, **fields) -> None:
    meta = {"format": _FORMAT, "version": _VERSION, **fields}
    (path / META_NAME).write_text(json.dumps(meta, indent=2) + "\n")


def _create_mapped(path: Path, dtype, length: int) -> np.ndarray:
    """A writable array persisted at ``path`` — memory-mapped when it has
    bytes to map (zero-length arrays cannot be mmapped; plain save)."""
    if length == 0:
        arr = np.zeros(0, dtype=dtype)
        np.save(path, arr)
        return arr
    return np.lib.format.open_memmap(path, mode="w+", dtype=dtype, shape=(length,))


def _flush_mapped(arr: np.ndarray) -> None:
    if isinstance(arr, np.memmap):
        arr.flush()


def _load_mapped(path: Path) -> np.ndarray:
    """np.load with mmap, falling back to a plain load for zero-length
    arrays (an empty file cannot be mapped)."""
    try:
        return np.load(path, mmap_mode="r")
    except ValueError:
        return np.load(path)
