"""Synthetic update streams for benchmarks and tests.

Generates deterministic mutation batches against a concrete graph:
deletions sample *existing* edges, insertions sample absent endpoint
pairs, and weights follow the graph's weightedness.  ``protect_degrees``
keeps the dead-end (out-degree-0) vertex set fixed: deletions that would
drop an endpoint to degree 0 are skipped, and insertions never attach to
a currently-dead vertex.  Dead ends appearing or vanishing poisons the
global dead-end aggregate and forces incremental PageRank into a full
recompute — correct, but then a benchmark measures degradation instead
of the incremental path.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.streaming.batch import MutationBatch

__all__ = ["synthesize_batch", "synthesize_stream"]


def _edge_pairs(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    """The graph's input-level edges (one copy per undirected edge)."""
    src, dst = graph.edge_array()
    if not graph.directed:
        keep = src <= dst
        src, dst = src[keep], dst[keep]
    return src, dst


def synthesize_batch(
    graph: Graph,
    num_insertions: int,
    num_deletions: int,
    seed: int = 0,
    protect_degrees: bool = True,
    timestamp: int | None = None,
) -> MutationBatch:
    """One random batch of edge mutations against ``graph``."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices

    src, dst = _edge_pairs(graph)
    existing = set(zip(src.tolist(), dst.tolist()))
    if not graph.directed:
        existing |= set(zip(dst.tolist(), src.tolist()))

    # -- deletions: sample distinct existing edges -------------------------
    del_pairs: list[tuple[int, int]] = []
    if num_deletions:
        if num_deletions > src.size:
            raise ValueError(
                f"cannot delete {num_deletions} of {src.size} edges"
            )
        degrees = (
            np.bincount(np.concatenate([src, dst]), minlength=n)
            if not graph.directed
            else graph.out_degrees.copy()
        )
        order = rng.permutation(src.size)
        for e in order:
            if len(del_pairs) == num_deletions:
                break
            u, v = int(src[e]), int(dst[e])
            if protect_degrees:
                if not graph.directed and (degrees[u] <= 1 or degrees[v] <= 1):
                    continue
                if graph.directed and degrees[u] <= 1:
                    continue
            del_pairs.append((u, v))
            degrees[u] -= 1
            if not graph.directed:
                degrees[v] -= 1

    # -- insertions: sample absent pairs -----------------------------------
    out_deg = graph.out_degrees
    ins_pairs: list[tuple[int, int]] = []
    taken = set(existing)
    attempts = 0
    while len(ins_pairs) < num_insertions:
        attempts += 1
        if attempts > 100 * num_insertions + 1000:
            raise ValueError(
                "could not sample enough absent edges "
                "(graph too dense or too many protected endpoints)"
            )
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v or (u, v) in taken:
            continue
        if protect_degrees and (
            out_deg[u] == 0 or (not graph.directed and out_deg[v] == 0)
        ):
            continue
        ins_pairs.append((u, v))
        taken.add((u, v))
        if not graph.directed:
            taken.add((v, u))
    weights = (
        rng.uniform(1.0, 10.0, size=len(ins_pairs)) if graph.weighted else None
    )

    return MutationBatch.from_edges(
        insertions=ins_pairs,
        deletions=del_pairs,
        weights=weights,
        timestamp=timestamp,
    )


def synthesize_stream(
    graph: Graph,
    num_epochs: int,
    insertions_per_epoch: int,
    deletions_per_epoch: int,
    seed: int = 0,
    protect_degrees: bool = True,
) -> list[MutationBatch]:
    """A stream of batches, each sampled against the graph as the
    *previous* batches left it (mutations are applied to a scratch
    overlay so later batches never delete already-deleted edges)."""
    from repro.streaming.delta import DeltaGraph

    scratch = DeltaGraph(graph)
    batches = []
    for t in range(num_epochs):
        batch = synthesize_batch(
            scratch.view(),
            insertions_per_epoch,
            deletions_per_epoch,
            seed=seed + t,
            protect_degrees=protect_degrees,
            timestamp=t,
        )
        scratch.apply(batch)
        batches.append(batch)
    return batches
