"""PageRank with channels (Fig. 1 of the paper).

Two variants:

* ``PageRankBasic`` — a ``CombinedMessage`` for rank shares plus an
  ``Aggregator`` collecting dead-end rank (the paper's Fig. 1 verbatim).
* ``PageRankScatter`` — the one-line change of Section III-B: the message
  channel becomes a ``ScatterCombine`` (static messaging pattern), which
  the paper reports as a 3.03–3.16× speedup with ~1/3 fewer message bytes.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather
from repro.core import (
    Aggregator,
    ChannelEngine,
    CombinedMessage,
    MirroredScatter,
    ScatterCombine,
    SUM_F64,
    Vertex,
    VertexProgram,
)
from repro.graph.graph import Graph

__all__ = ["PageRankBasic", "PageRankScatter", "run_pagerank"]

DAMPING = 0.85
DEFAULT_ITERS = 30


class _PageRankBase(VertexProgram):
    """Common PageRank logic; subclasses provide the message channel."""

    iterations = DEFAULT_ITERS

    def __init__(self, worker):
        super().__init__(worker)
        self.agg = Aggregator(worker, SUM_F64)
        self.rank = np.zeros(worker.num_local)

    # subclasses: read the combined share sum for v
    def _incoming(self, v: Vertex) -> float:
        raise NotImplementedError

    # subclasses: send share to all of v's out-edges
    def _outgoing(self, v: Vertex, share: float) -> None:
        raise NotImplementedError

    def _setup(self, v: Vertex) -> None:
        """First-superstep channel initialization hook."""

    def compute(self, v: Vertex) -> None:
        n = self.num_vertices
        if self.step_num == 1:
            self._setup(v)
            self.rank[v.local] = 1.0 / n
        else:
            # s: rank mass collected from dead ends, redistributed uniformly
            s = self.agg.result() / n
            self.rank[v.local] = (1.0 - DAMPING) / n + DAMPING * (
                self._incoming(v) + s
            )
        if self.step_num <= self.iterations:
            num_edges = v.out_degree
            if num_edges > 0:
                self._outgoing(v, self.rank[v.local] / num_edges)
            else:
                self.agg.add(self.rank[v.local])
        else:
            v.vote_to_halt()

    def finalize(self) -> dict:
        return {
            int(g): float(self.rank[i])
            for i, g in enumerate(self.worker.local_ids)
        }


class PageRankBasic(_PageRankBase):
    """Standard-channel PageRank (CombinedMessage + Aggregator)."""

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = CombinedMessage(worker, SUM_F64)

    def _incoming(self, v: Vertex) -> float:
        return float(self.msg.get_message(v))

    def _outgoing(self, v: Vertex, share: float) -> None:
        send = self.msg.send_message
        for e in v.edges:
            send(int(e), share)


class PageRankScatter(_PageRankBase):
    """ScatterCombine PageRank — the paper's one-line optimization."""

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = ScatterCombine(worker, SUM_F64)

    def _setup(self, v: Vertex) -> None:
        if v.out_degree > 0:
            self.msg.add_edges(v, v.edges)

    def _incoming(self, v: Vertex) -> float:
        return float(self.msg.get_message(v))

    def _outgoing(self, v: Vertex, share: float) -> None:
        self.msg.set_message(v, share)


class PageRankMirrored(PageRankScatter):
    """PageRank over the :class:`MirroredScatter` extension channel
    (mirroring as a channel — sender-side combining above a degree
    threshold, receiver-side expansion)."""

    mirror_threshold = 16

    def __init__(self, worker):
        _PageRankBase.__init__(self, worker)
        self.msg = MirroredScatter(worker, SUM_F64, threshold=self.mirror_threshold)


_VARIANTS = {
    "basic": PageRankBasic,
    "scatter": PageRankScatter,
    "mirror": PageRankMirrored,
}


def run_pagerank(
    graph: Graph,
    variant: str = "basic",
    iterations: int = DEFAULT_ITERS,
    **engine_kwargs,
):
    """Run PageRank; returns ``(ranks, EngineResult)``.

    ``variant`` is ``"basic"``, ``"scatter"``, or ``"mirror"``.
    """
    base = _VARIANTS[variant]
    program = type(base.__name__, (base,), {"iterations": iterations})
    result = ChannelEngine(graph, program, **engine_kwargs).run()
    return gather(result, graph.num_vertices, dtype=np.float64), result
