"""Min-Label strongly connected components (Yan et al., the paper's
Table VII workload).

Each outer iteration over the remaining ("alive") subgraph:

1. **trim** — vertices with no alive in-neighbor or no alive out-neighbor
   are trivial SCCs and drop out;
2. **forward/backward label propagation** — every alive vertex seeds its
   own id; the minimum reachable id flows along out-edges (``fwd``) and
   along in-edges (``bwd``) until fixpoint;
3. **detect** — vertices with ``fwd == bwd == L`` form the SCC of ``L``
   and drop out.

The iteration repeats until no vertex is alive.  Label propagation is the
convergence bottleneck ("the algorithm suffers the problem of low
convergence speed"); the ``SCCPropagation`` variant swaps the two
label channels for ``Propagation`` channels — the paper's "quick fix ...
not possible in any of the existing systems" — collapsing each
propagation phase into a single superstep.

The phase controller runs in ``before_superstep`` on every worker,
driven only by aggregator results, so all workers stay in lockstep.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather
from repro.core import (
    Aggregator,
    ChannelEngine,
    CombinedMessage,
    MIN_I32,
    Propagation,
    SUM_I32,
    SUM_I64,
    Vertex,
    VertexProgram,
)
from repro.graph.graph import Graph

__all__ = ["SCCBasic", "SCCPropagation", "run_scc"]

_I32_MAX = int(np.iinfo(np.int32).max)


class _SCCBase(VertexProgram):
    """Shared state and phase controller for both SCC variants."""

    def __init__(self, worker):
        super().__init__(worker)
        # trim pings: "you have an alive in-neighbor" / "... out-neighbor"
        self.ping_in = CombinedMessage(worker, SUM_I32)
        self.ping_out = CombinedMessage(worker, SUM_I32)
        self.agg_alive = Aggregator(worker, SUM_I64)

        n = worker.num_local
        self.alive = np.ones(n, dtype=bool)
        self.scc = np.full(n, -1, dtype=np.int64)
        self.state = "init"

    # -- helpers --------------------------------------------------------
    def _wake_alive(self) -> None:
        self.worker.activate_local_bulk(np.flatnonzero(self.alive))

    def _die(self, v: Vertex, label: int) -> None:
        self.alive[v.local] = False
        self.scc[v.local] = label
        v.vote_to_halt()

    def _send_pings(self, v: Vertex) -> None:
        g = self.worker.graph
        send_in = self.ping_in.send_message  # tells receivers: alive in-nbr
        for e in g.neighbors(v.id):
            send_in(int(e), 1)
        send_out = self.ping_out.send_message  # tells receivers: alive out-nbr
        for e in g.in_neighbors(v.id):
            send_out(int(e), 1)

    def _trim(self, v: Vertex) -> bool:
        """Returns True if v survives (has alive in- and out-neighbors)."""
        if not (self.ping_in.has_message(v) and self.ping_out.has_message(v)):
            self._die(v, v.id)
            return False
        return True

    def finalize(self) -> dict:
        return {int(g): int(self.scc[i]) for i, g in enumerate(self.worker.local_ids)}


class SCCBasic(_SCCBase):
    """Min-Label with standard channels: each propagation hop costs one
    superstep."""

    def __init__(self, worker):
        super().__init__(worker)
        self.fmsg = CombinedMessage(worker, MIN_I32)
        self.bmsg = CombinedMessage(worker, MIN_I32)
        self.agg_change = Aggregator(worker, SUM_I64)
        n = worker.num_local
        self.fwd = np.full(n, _I32_MAX, dtype=np.int64)
        self.bwd = np.full(n, _I32_MAX, dtype=np.int64)

    # -- controller ----------------------------------------------------------
    def before_superstep(self) -> None:
        s = self.state
        if s == "init":
            self.state = "ping"
        elif s == "ping":
            self.state = "apply"
            self._wake_alive()
        elif s == "apply":
            self.state = "prop"
        elif s == "prop":
            if self.agg_change.result() == 0:
                self.state = "detect"
                self._wake_alive()
        elif s == "detect":
            # survivors are still active; if none survived the engine stops
            self.state = "ping"

    # -- per-phase vertex logic -------------------------------------------------
    def compute(self, v: Vertex) -> None:
        i = v.local
        if not self.alive[i]:
            v.vote_to_halt()
            return
        s = self.state
        if s == "ping":
            self._send_pings(v)
        elif s == "apply":
            if not self._trim(v):
                return
            self.fwd[i] = v.id
            self.bwd[i] = v.id
            self._forward(v, v.id)
            self._backward(v, v.id)
            self.agg_change.add(1)
        elif s == "prop":
            changed = 0
            mf = int(self.fmsg.get_message(v))
            if mf < self.fwd[i]:
                self.fwd[i] = mf
                self._forward(v, mf)
                changed += 1
            mb = int(self.bmsg.get_message(v))
            if mb < self.bwd[i]:
                self.bwd[i] = mb
                self._backward(v, mb)
                changed += 1
            self.agg_change.add(changed)
        elif s == "detect":
            if self.fwd[i] == self.bwd[i]:
                self._die(v, int(self.fwd[i]))
            else:
                self.fwd[i] = _I32_MAX
                self.bwd[i] = _I32_MAX
                self.agg_alive.add(1)

    def _forward(self, v: Vertex, label: int) -> None:
        send = self.fmsg.send_message
        for e in self.worker.graph.neighbors(v.id):
            send(int(e), label)

    def _backward(self, v: Vertex, label: int) -> None:
        send = self.bmsg.send_message
        for e in self.worker.graph.in_neighbors(v.id):
            send(int(e), label)


class SCCPropagation(_SCCBase):
    """Min-Label with Propagation channels for the forward/backward label
    phases: each propagation converges within one superstep."""

    def __init__(self, worker):
        super().__init__(worker)
        self.fprop = Propagation(worker, MIN_I32)
        self.bprop = Propagation(worker, MIN_I32)

    def before_superstep(self) -> None:
        s = self.state
        if s == "init":
            self.state = "ping"
        elif s == "ping":
            # reset the propagation channels for this iteration's subgraph
            self.fprop.reset()
            self.bprop.reset()
            self.state = "apply"
            self._wake_alive()
        elif s == "apply":
            self.state = "detect"
            self._wake_alive()
        elif s == "detect":
            self.state = "ping"

    def compute(self, v: Vertex) -> None:
        i = v.local
        if not self.alive[i]:
            v.vote_to_halt()
            return
        s = self.state
        if s == "ping":
            self._send_pings(v)
        elif s == "apply":
            if not self._trim(v):
                return
            g = self.worker.graph
            self.fprop.add_edges(v, g.neighbors(v.id))
            self.fprop.set_value(v, v.id)
            self.bprop.add_edges(v, g.in_neighbors(v.id))
            self.bprop.set_value(v, v.id)
        elif s == "detect":
            f = int(self.fprop.get_value(v))
            b = int(self.bprop.get_value(v))
            if f == b:
                self._die(v, f)
            else:
                self.agg_alive.add(1)


def run_scc(graph: Graph, variant: str = "basic", **engine_kwargs):
    """Run Min-Label SCC; returns ``(labels, EngineResult)`` where
    ``labels[v]`` identifies v's strongly connected component.

    ``variant`` is ``"basic"`` or ``"prop"``.
    """
    if not graph.directed:
        raise ValueError("SCC needs a directed graph")
    program = {"basic": SCCBasic, "prop": SCCPropagation}[variant]
    result = ChannelEngine(graph, program, **engine_kwargs).run()
    return gather(result, graph.num_vertices), result
