"""Export a run trace as a ``chrome://tracing`` / Perfetto timeline.

Produces the Trace Event Format JSON object (``{"traceEvents": [...]}``)
from the JSON-lines events a :class:`~repro.obs.trace.TraceRecorder`
wrote.  Load the output in ``chrome://tracing`` or https://ui.perfetto.dev
to inspect a superstep timeline visually.

Layout: one process (pid 0) per trace.  Track 0 carries the structural
spans (stream / epoch / run / superstep) as complete events; each worker
gets its own named track (tid ``w+1``) carrying its per-phase spans, so
per-superstep skew between workers is visible as ragged right edges.
Instant events (exchange rounds, checkpoints, failures, recoveries) land
on track 0.

Phase spans inside a superstep are laid out sequentially per worker in
the engine's canonical phase order (barrier → compute → serialize →
exchange) from the superstep's start: the engine measures *durations*
per phase, not start offsets (serialize time, e.g., accumulates across
exchange rounds), so the start positions within a superstep are
synthesized while every duration is measured (see ARCHITECTURE.md §10).
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["chrome_trace_events", "export_chrome_trace"]

_US = 1e6  # trace-event timestamps are microseconds


def _args(event: dict) -> dict:
    return dict(event.get("attrs") or {})


def chrome_trace_events(events: list[dict]) -> list[dict]:
    """Convert recorder events to a Chrome trace-event list."""
    out: list[dict] = []
    workers: set[int] = set()
    open_begin: dict[int, dict] = {}

    for ev in events:
        kind = ev["ev"]
        span = ev["span"]
        ts = ev["t"] * _US
        if kind == "B":
            open_begin[ev["id"]] = ev
            out.append(
                {
                    "ph": "B",
                    "name": f"{span} {ev.get('attrs', {}).get('superstep', '')}".strip()
                    if span == "superstep"
                    else span,
                    "cat": span,
                    "pid": 0,
                    "tid": 0,
                    "ts": ts,
                    "args": _args(ev),
                }
            )
        elif kind == "E":
            begun = open_begin.pop(ev["id"], None)
            name = "?"
            if begun is not None:
                name = (
                    f"{begun['span']} {begun.get('attrs', {}).get('superstep', '')}".strip()
                    if begun["span"] == "superstep"
                    else begun["span"]
                )
            out.append(
                {
                    "ph": "E",
                    "name": name,
                    "cat": span,
                    "pid": 0,
                    "tid": 0,
                    "ts": ts,
                    "args": _args(ev),
                }
            )
        elif kind == "X":
            attrs = _args(ev)
            tid = 0
            name = span
            if span == "phase":
                worker = int(attrs.get("worker", 0))
                workers.add(worker)
                tid = worker + 1
                name = str(attrs.get("phase", "phase"))
            out.append(
                {
                    "ph": "X",
                    "name": name,
                    "cat": span,
                    "pid": 0,
                    "tid": tid,
                    "ts": ts,
                    "dur": ev.get("dur", 0.0) * _US,
                    "args": attrs,
                }
            )
        elif kind == "I":
            out.append(
                {
                    "ph": "i",
                    "name": span,
                    "cat": span,
                    "pid": 0,
                    "tid": 0,
                    "ts": ts,
                    "s": "p",  # process-scoped instant marker
                    "args": _args(ev),
                }
            )

    meta = [
        {
            "ph": "M",
            "name": "thread_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "engine"},
        }
    ]
    for w in sorted(workers):
        meta.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": w + 1,
                "args": {"name": f"worker {w}"},
            }
        )
    return meta + out


def export_chrome_trace(events: list[dict], out_path) -> dict:
    """Write ``{"traceEvents": [...]}`` to ``out_path``; returns the
    payload (handy for tests)."""
    payload = {
        "traceEvents": chrome_trace_events(events),
        "displayTimeUnit": "ms",
    }
    Path(out_path).write_text(json.dumps(payload) + "\n", encoding="utf-8")
    return payload
