"""Unit tests for the binary codec layer."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.runtime.serialization import (
    BufferReader,
    BufferWriter,
    Codec,
    FLOAT32,
    FLOAT64,
    INT32,
    INT64,
    UINT8,
    pair_codec,
    struct_codec,
)


class TestScalarCodecs:
    def test_int32_roundtrip(self):
        data = INT32.encode_one(42)
        assert len(data) == 4
        assert INT32.decode_one(data) == 42

    def test_int64_roundtrip(self):
        v = 2**40 + 7
        assert INT64.decode_one(INT64.encode_one(v)) == v

    def test_float64_roundtrip(self):
        v = 3.14159
        assert FLOAT64.decode_one(FLOAT64.encode_one(v)) == v

    def test_uint8_roundtrip(self):
        assert UINT8.decode_one(UINT8.encode_one(255)) == 255

    def test_itemsize(self):
        assert INT32.itemsize == 4
        assert INT64.itemsize == 8
        assert FLOAT64.itemsize == 8
        assert FLOAT32.itemsize == 4
        assert UINT8.itemsize == 1

    def test_negative_values(self):
        assert INT32.decode_one(INT32.encode_one(-12345)) == -12345

    def test_decode_with_offset(self):
        data = INT32.encode_one(1) + INT32.encode_one(2)
        assert INT32.decode_one(data, offset=4) == 2


class TestArrayCodecs:
    def test_array_roundtrip(self):
        values = np.array([1, 5, -3, 2**31 - 1], dtype=np.int32)
        decoded = INT32.decode_array(INT32.encode_array(values))
        np.testing.assert_array_equal(decoded, values)

    def test_array_from_list(self):
        data = FLOAT64.encode_array([1.5, 2.5])
        np.testing.assert_array_equal(FLOAT64.decode_array(data), [1.5, 2.5])

    def test_empty_array(self):
        assert INT64.decode_array(INT64.encode_array([])).size == 0

    def test_decode_count_limits(self):
        data = INT32.encode_array([1, 2, 3, 4])
        np.testing.assert_array_equal(INT32.decode_array(data, count=2), [1, 2])

    def test_wire_size_is_exact(self):
        assert len(INT32.encode_array([0] * 100)) == 400


class TestStructCodecs:
    def test_pair_roundtrip(self):
        pc = pair_codec(INT32, FLOAT64)
        assert pc.itemsize == 12
        val = pc.decode_one(pc.encode_one((7, 2.5)))
        assert val == (7, 2.5)

    def test_struct_roundtrip(self):
        sc = struct_codec([("u", INT32), ("v", INT32), ("w", FLOAT32)])
        rec = sc.decode_one(sc.encode_one((1, 2, 1.5)))
        assert rec == (1, 2, 1.5)

    def test_struct_array(self):
        sc = pair_codec(INT32, INT32)
        arr = sc.decode_array(sc.encode_array([(1, 2), (3, 4)]))
        assert arr["a"].tolist() == [1, 3]
        assert arr["b"].tolist() == [2, 4]

    def test_struct_itemsize_is_sum(self):
        sc = struct_codec([("t", INT32), ("a", INT32), ("b", INT32), ("w", FLOAT32)])
        assert sc.itemsize == 16


class TestBufferWriterReader:
    def test_mixed_content(self):
        w = BufferWriter()
        w.write_scalar(3, INT32)
        w.write_array([1.0, 2.0, 3.0], FLOAT64)
        w.write_bytes(b"xyz")
        data = w.getvalue()
        assert w.nbytes == len(data) == 4 + 24 + 3

        r = BufferReader(data)
        assert r.read_scalar(INT32) == 3
        np.testing.assert_array_equal(r.read_array(3, FLOAT64), [1.0, 2.0, 3.0])
        assert r.remaining == 3
        assert not r.at_end()

    def test_clear(self):
        w = BufferWriter()
        w.write_scalar(1, INT32)
        w.clear()
        assert w.nbytes == 0
        assert w.getvalue() == b""

    def test_empty_getvalue(self):
        assert BufferWriter().getvalue() == b""

    def test_reader_at_end(self):
        r = BufferReader(INT32.encode_one(5))
        r.read_scalar(INT32)
        assert r.at_end()


@given(st.lists(st.integers(min_value=-(2**31), max_value=2**31 - 1)))
def test_int32_array_roundtrip_property(values):
    decoded = INT32.decode_array(INT32.encode_array(np.array(values, dtype=np.int32)))
    assert decoded.tolist() == values


@given(st.lists(st.floats(allow_nan=False, allow_infinity=True)))
def test_float64_array_roundtrip_property(values):
    decoded = FLOAT64.decode_array(FLOAT64.encode_array(np.array(values)))
    assert decoded.tolist() == values


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**31 - 1),
            st.integers(min_value=-(2**31), max_value=2**31 - 1),
        )
    )
)
def test_pair_array_roundtrip_property(pairs):
    pc = pair_codec(INT32, INT32)
    arr = pc.decode_array(pc.encode_array(pairs) if pairs else b"", count=len(pairs))
    assert [tuple(r) for r in arr] == pairs


def test_codec_repr_mentions_name():
    assert "int32" in repr(INT32)


def test_custom_codec_dtype():
    c = Codec("u16", np.uint16)
    assert c.itemsize == 2
    assert c.decode_one(c.encode_one(65535)) == 65535
