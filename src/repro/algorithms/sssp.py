"""Single-source shortest paths (weighted, non-negative).

Not part of the paper's tables but one of its motivating algorithms;
included as a library algorithm and example workload.

* ``SSSPBasic`` — Bellman-Ford-style relaxation over a
  ``CombinedMessage(MIN)`` channel, the classic Pregel SSSP.
* ``SSSPPropagation`` — the ``Propagation`` channel with
  ``edge_fn = dist + w``: the relaxation runs to fixpoint inside one
  superstep.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather, resolve_mode
from repro.core import (
    BulkVertexProgram,
    ChannelEngine,
    CombinedMessage,
    MIN_F64,
    Propagation,
    Vertex,
    VertexProgram,
)
from repro.graph.graph import Graph

__all__ = [
    "SSSPBasic",
    "SSSPBasicBulk",
    "SSSPPropagation",
    "run_sssp",
    "make_sssp_program",
]


def _weights(v: Vertex) -> np.ndarray:
    g = v._worker.graph
    if g.weighted:
        return v.edge_weights
    return np.ones(v.out_degree)


class SSSPBasic(VertexProgram):
    """Pregel-style SSSP: relax on message arrival."""

    source = 0

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = CombinedMessage(worker, MIN_F64)
        self.dist = np.full(worker.num_local, np.inf)

    def _relax(self, v: Vertex, d: float) -> None:
        self.dist[v.local] = d
        send = self.msg.send_message
        for e, w in zip(v.edges, _weights(v)):
            send(int(e), d + float(w))

    def compute(self, v: Vertex) -> None:
        if self.step_num == 1:
            if v.id == self.source:
                self._relax(v, 0.0)
        else:
            m = float(self.msg.get_message(v))
            if m < self.dist[v.local]:
                self._relax(v, m)
        v.vote_to_halt()

    def finalize(self) -> dict:
        return {int(g): float(self.dist[i]) for i, g in enumerate(self.worker.local_ids)}


class SSSPBasicBulk(BulkVertexProgram):
    """Bulk port of :class:`SSSPBasic`: Bellman-Ford relaxation with whole
    -frontier edge gathers (weights come from the local CSR view)."""

    source = 0

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = CombinedMessage(worker, MIN_F64)
        self.dist = np.full(worker.num_local, np.inf)

    def compute_bulk(self, active: np.ndarray) -> None:
        worker = self.worker
        adj = worker.local_adjacency()
        if self.step_num == 1:
            li = worker.local_index(self.source)
            settled = (
                np.asarray([li], dtype=np.int64) if li >= 0 else np.empty(0, np.int64)
            )
            dists = np.zeros(settled.size)
        else:
            inbox, _ = self.msg.get_messages()
            m = inbox[active]
            improved = m < self.dist[active]
            settled = active[improved]
            dists = m[improved]
        if settled.size:
            self.dist[settled] = dists
            dsts = adj.gather(settled)
            w = adj.gather_weights(settled)
            self.msg.send_messages(
                dsts, np.repeat(dists, adj.degrees[settled]) + w
            )
        worker.halt_bulk(active)

    def finalize(self) -> dict:
        return {int(g): float(self.dist[i]) for i, g in enumerate(self.worker.local_ids)}


class SSSPPropagation(VertexProgram):
    """SSSP on the Propagation channel (weighted relaxation to fixpoint)."""

    source = 0

    def __init__(self, worker):
        super().__init__(worker)
        self.prop = Propagation(worker, MIN_F64, edge_fn=lambda w, d: w + d)
        self.dist = np.full(worker.num_local, np.inf)

    def compute(self, v: Vertex) -> None:
        if self.step_num == 1:
            self.prop.add_edges(v, v.edges, _weights(v))
            if v.id == self.source:
                self.prop.set_value(v, 0.0)
        else:
            self.dist[v.local] = self.prop.get_value(v)
            v.vote_to_halt()

    def finalize(self) -> dict:
        return {int(g): float(self.dist[i]) for i, g in enumerate(self.worker.local_ids)}


_VARIANTS = {
    "basic": {"scalar": SSSPBasic, "bulk": SSSPBasicBulk},
    "prop": {"scalar": SSSPPropagation},
}


def make_sssp_program(variant: str, source: int, mode: str = "scalar"):
    """A program class with the source baked in."""
    base = resolve_mode(_VARIANTS, variant, mode)
    return type(base.__name__, (base,), {"source": source})


def run_sssp(
    graph: Graph,
    source: int = 0,
    variant: str = "basic",
    mode: str = "scalar",
    **engine_kwargs,
):
    """Run SSSP; returns ``(dists, EngineResult)`` (inf = unreachable).

    ``mode="bulk"`` selects the columnar compute path (``"basic"`` only).
    """
    program = make_sssp_program(variant, source, mode)
    result = ChannelEngine(graph, program, **engine_kwargs).run()
    return gather(result, graph.num_vertices, dtype=np.float64), result
