"""The epoch engine: repeated ``apply(batch) -> refresh`` cycles.

One :class:`EpochEngine` owns a :class:`~repro.streaming.delta.DeltaGraph`,
a partition (ownership never moves — new vertices are appended via
:func:`~repro.graph.partition.extend_partition`), and the per-algorithm
warm state.  Every epoch it

1. plans the refresh from the previous state and the incoming batch,
2. applies the batch to the overlay (compacting when it outgrows the
   policy threshold),
3. runs a fresh :class:`~repro.core.engine.ChannelEngine` over the new
   view, seeding the active set from the plan instead of all vertices,
4. collects the warm state for the next epoch.

``refresh="full"`` replans every epoch from scratch (the cold baseline
the benchmark compares against); ``refresh="incremental"`` replays only
the delta-affected region.  Both must produce bit-identical
``result.data`` — the per-epoch counters measure how much less the
incremental path *did*, never how close it got.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import EXECUTORS, ChannelEngine, EngineResult
from repro.graph.graph import Graph
from repro.graph.partition import extend_partition, hash_partition
from repro.runtime.costmodel import NetworkModel, DEFAULT_NETWORK
from repro.runtime.rebalance import RebalancePolicy, phase_matrix
from repro.streaming.batch import MutationBatch
from repro.streaming.delta import DeltaGraph
from repro.streaming.plan import REFRESH_MODES, StreamAlgorithm

__all__ = ["EpochEngine", "EpochResult"]


@dataclass
class EpochResult:
    """Outcome of one epoch (the bootstrap epoch has ``batch_size == 0``)."""

    epoch: int
    result: EngineResult
    refresh: str  # what actually ran: "incremental" | "full"
    batch_size: int
    affected: int
    seeds: int
    compacted: bool
    meta: dict = field(default_factory=dict)

    @property
    def data(self) -> dict:
        return self.result.data

    def summary(self) -> dict:
        # the metrics summary already carries epoch/refresh/affected_vertices
        # (record_stream_epoch ran); only the epoch-level extras go here
        return {
            "batch_size": self.batch_size,
            "seeds": self.seeds,
            "compacted": self.compacted,
            **self.result.metrics.summary(),
        }


class EpochEngine:
    """Drives one streaming algorithm through mutation epochs.

    Parameters
    ----------
    graph:
        The initial graph (epoch 0 bootstraps warm state with a full run).
    algorithm:
        A :class:`~repro.streaming.plan.StreamAlgorithm` instance (see
        :data:`repro.streaming.STREAM_ALGORITHMS` for the registry).
    refresh:
        ``"incremental"`` or ``"full"`` — the default per-epoch policy;
        :meth:`run_epoch` can override it per call.
    partition:
        Optional initial vertex->worker array (hash partition otherwise);
        extended deterministically when batches add vertices.
    compact_threshold:
        Overlay-to-base ratio beyond which the delta graph compacts.
    executor:
        ``"sim"`` (default) or ``"process"``.  With ``"process"`` every
        epoch runs on real worker processes drawn from **one persistent
        pool**: the processes are spawned exactly once, then receive each
        epoch's new graph view, remapped ownership, seed set, and refresh
        program as control messages (see
        :class:`~repro.runtime.parallel.pool.WorkerPool`).  Per-epoch
        data, traffic, and byte/message totals are bit-identical to
        ``"sim"``.
    pool_reuse:
        Process executor only.  ``True`` (default) amortizes one pool
        across all epochs; ``False`` spawns a fresh pool per epoch — the
        honest respawn-per-epoch baseline the pool-amortization benchmark
        compares against.
    transport:
        Process executor only: the worker-to-worker frame data plane,
        ``"shm"`` (default) or ``"pipe"`` — see
        :class:`~repro.core.engine.ChannelEngine`.
    trace:
        Optional :class:`~repro.obs.trace.TraceRecorder`: the stream
        emits one ``stream`` root span with one ``epoch`` span per
        epoch, each wrapping that epoch's engine ``run`` span (see
        ARCHITECTURE.md §10).  The caller owns the recorder.
    live:
        Optional :class:`~repro.obs.live.LiveMetrics` segment shared by
        every epoch: before each epoch's engine runs, the segment's
        header epoch advances and the per-worker slots restart from zero
        (each epoch gets a fresh collector too, so live/collector parity
        holds within every epoch).  The caller owns the segment.
    rebalance:
        ``"off"`` (default), ``"epoch"``, or ``"superstep"``.  With
        ``"epoch"`` a :class:`~repro.runtime.rebalance.RebalancePolicy`
        inspects the previous epoch's per-worker phase times before each
        new engine is built and may hand it a rebalanced ownership
        array; with ``"superstep"`` the policy instead rides inside each
        epoch's engine, pausing at superstep barriers to migrate live
        state (see ARCHITECTURE.md §13).  Either way the improved
        partition carries forward to all later epochs.
    rebalance_every / rebalance_policy:
        Superstep-mode check cadence and an optional pre-configured
        policy (one instance is shared across epochs so its cooldown
        spans the stream).
    """

    def __init__(
        self,
        graph: Graph,
        algorithm: StreamAlgorithm,
        num_workers: int = 8,
        refresh: str = "incremental",
        partition: np.ndarray | None = None,
        compact_threshold: float = 0.25,
        network: NetworkModel = DEFAULT_NETWORK,
        partition_seed: int = 0,
        executor: str = "sim",
        pool_reuse: bool = True,
        transport: str | None = None,
        trace=None,
        live=None,
        rebalance: str = "off",
        rebalance_every: int = 16,
        rebalance_policy: RebalancePolicy | None = None,
    ) -> None:
        if refresh not in REFRESH_MODES:
            raise ValueError(f"refresh must be one of {REFRESH_MODES}, got {refresh!r}")
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        ChannelEngine.validate_options(
            executor=executor,
            transport=transport,
            rebalance=rebalance,
            rebalance_every=rebalance_every,
        )
        self.transport = transport
        self.delta = DeltaGraph(graph, compact_threshold=compact_threshold)
        self.algorithm = algorithm
        self.num_workers = num_workers
        self.refresh = refresh
        self.network = network
        self.partition_seed = partition_seed
        self.executor = executor
        self.pool_reuse = bool(pool_reuse)
        self.pool = None  # created lazily for executor="process"
        self.trace = trace
        self.live = live
        # one policy instance across epochs so the cooldown spans the
        # whole stream (migrations settle instead of thrashing)
        self.rebalance = rebalance
        self.rebalance_every = int(rebalance_every)
        self.rebalancer = rebalance_policy
        if rebalance != "off" and self.rebalancer is None:
            self.rebalancer = RebalancePolicy(num_workers=num_workers)
        self._stream_span: int | None = None
        if partition is None:
            partition = hash_partition(graph.num_vertices, num_workers, seed=partition_seed)
        self.owner = np.asarray(partition, dtype=np.int64)
        if self.owner.shape != (graph.num_vertices,):
            raise ValueError("partition must assign every vertex")
        self.state: dict | None = None
        self.epoch_num = -1  # bootstrap is epoch 0
        self.history: list[EpochResult] = []

    # -- the cycle ---------------------------------------------------------
    def bootstrap(self) -> EpochResult:
        """Epoch 0: full run on the initial graph, building warm state."""
        if self.state is not None:
            raise RuntimeError("already bootstrapped")
        return self._run_epoch(batch=None, refresh="full")

    def run_epoch(self, batch: MutationBatch, refresh: str | None = None) -> EpochResult:
        """Apply one batch and refresh (bootstrapping first if needed)."""
        if self.state is None:
            self.bootstrap()
        return self._run_epoch(batch, refresh or self.refresh)

    def run(self, batches, refresh: str | None = None) -> list[EpochResult]:
        """Run a whole update stream; returns every epoch's result
        (including the bootstrap's, when it ran here)."""
        start = len(self.history)
        for batch in batches:
            self.run_epoch(batch, refresh=refresh)
        return self.history[start:]

    def _run_epoch(self, batch: MutationBatch | None, refresh: str) -> EpochResult:
        if refresh not in REFRESH_MODES:
            raise ValueError(f"refresh must be one of {REFRESH_MODES}, got {refresh!r}")
        old_graph = self.delta.view()
        compacted = False
        if batch is None:
            stats, batch_size = None, 0
        else:
            stats = self.delta.apply(batch)
            compacted = self.delta.maybe_compact()
            batch_size = batch.size
            if stats.added_vertices:
                self.owner = extend_partition(
                    self.owner,
                    stats.added_vertices,
                    self.num_workers,
                    seed=self.partition_seed,
                )
        new_graph = self.delta.view()

        plan = self.algorithm.plan(old_graph, new_graph, stats, self.state, refresh)
        reb_plan = None
        if self.rebalance == "epoch" and self.rebalancer is not None and self.history:
            # between epochs no worker holds state (warm state lives in
            # ``self.state`` and is re-seeded through the plan), so an
            # epoch-boundary migration is just a new ownership array for
            # the next engine — judged on the previous epoch's phase times
            reb_plan = self.rebalancer.propose(
                self.owner,
                new_graph.indptr,
                phase_matrix(
                    self.history[-1].result.metrics, window=self.rebalancer.window
                ),
            )
            if reb_plan is not None:
                self.owner = np.asarray(reb_plan.new_owner, dtype=np.int64)
        epoch_span = None
        if self.trace is not None:
            if self._stream_span is None:
                self._stream_span = self.trace.begin(
                    "stream",
                    workers=self.num_workers,
                    executor=self.executor,
                    algorithm=type(self.algorithm).__name__,
                )
            epoch_span = self.trace.begin(
                "epoch",
                parent=self._stream_span,
                epoch=self.epoch_num + 1,
                batch_size=batch_size,
                refresh=plan.mode,
                affected=plan.affected,
                compacted=compacted,
            )
        if self.live is not None:
            # live rollover: observers see the header epoch advance; the
            # slots restart from zero when each worker's writer is rebuilt
            # for the new engine (sim) / reconfigured child (process)
            self.live.roll_epoch(self.epoch_num + 1)
        engine = ChannelEngine(
            new_graph,
            plan.program_factory,
            num_workers=self.num_workers,
            partition=self.owner,
            network=self.network,
            initial_active=plan.seeds,
            trace=self.trace,
            live=self.live,
            rebalance=self.rebalance if self.rebalance == "superstep" else "off",
            rebalance_every=self.rebalance_every,
            rebalance_policy=(
                self.rebalancer if self.rebalance == "superstep" else None
            ),
            **self._executor_kwargs(),
        )
        if epoch_span is not None:
            engine.metrics.trace_parent = epoch_span
        if reb_plan is not None:
            engine.metrics.record_rebalance(
                reb_plan, trigger="epoch", seconds=reb_plan.migrate_seconds
            )
            if self.live is not None:
                for w in sorted({w for move in reb_plan.moves for w in move[2:]}):
                    self.live.bump_rebalance(w)
        self.epoch_num += 1
        engine.metrics.record_stream_epoch(self.epoch_num, plan.affected, plan.mode)
        result = engine.run()
        if engine.owner is not self.owner:
            # a superstep-triggered migration rebound the engine's owner
            # array; adopt it so later epochs keep the improved partition
            self.owner = engine.owner
        self.state = self.algorithm.collect(engine, result)
        if epoch_span is not None:
            self.trace.end(epoch_span)

        epoch_result = EpochResult(
            epoch=self.epoch_num,
            result=result,
            refresh=plan.mode,
            batch_size=batch_size,
            affected=plan.affected,
            seeds=(
                new_graph.num_vertices if plan.seeds is None else int(plan.seeds.size)
            ),
            compacted=compacted,
            meta=dict(plan.meta),
        )
        self.history.append(epoch_result)
        return epoch_result

    def _executor_kwargs(self) -> dict:
        """Per-epoch engine kwargs for the chosen execution backend.

        For ``"process"``, epochs share one persistent worker pool (or,
        with ``pool_reuse=False``, tear the previous epoch's pool down
        and spawn a fresh one — the respawn-per-epoch baseline).
        ``sync_state=True`` because :meth:`StreamAlgorithm.collect` reads
        next-epoch warm state off ``engine.workers`` after the run.
        """
        if self.executor != "process":
            return {}
        from repro.runtime.parallel.pool import WorkerPool

        if self.pool is None or not self.pool_reuse:
            if self.pool is not None:
                self.pool.shutdown()
            self.pool = WorkerPool(
                self.num_workers,
                transport=self.transport if self.transport is not None else "shm",
            )
        return {"executor": "process", "pool": self.pool, "sync_state": True}

    def close(self) -> None:
        """Shut the worker pool down (no-op for the sim executor; also
        happens automatically when the engine is garbage collected) and
        end the stream's trace span, when one is open."""
        if self.pool is not None:
            self.pool.shutdown()
        if (
            self.trace is not None
            and self._stream_span is not None
            and not getattr(self.trace, "closed", False)
        ):
            self.trace.end(self._stream_span, epochs=len(self.history))
            self._stream_span = None

    # -- convenience -------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """Current logical graph (materialized view)."""
        return self.delta.view()

    @property
    def latest(self) -> EpochResult:
        if not self.history:
            raise RuntimeError("no epoch has run yet")
        return self.history[-1]
