"""The Pregel+ baseline engine.

One monolithic message layer (everything shares ``message_codec``), an
optional global combiner, and two special modes from Pregel+:

* ``mode="reqresp"`` — the request-respond paradigm.  Requests are
  deduplicated per worker, but responses echo ``(id, value)`` pairs, and
  request bookkeeping goes through per-request hash operations; both are
  the costs the paper's request-respond channel removes.
* ``mode="ghost"`` — mirroring.  ``broadcast`` for a vertex whose degree
  is at least ``ghost_threshold`` ships one value per (vertex, worker)
  and is expanded to neighbors receiver-side via mirror tables.

The per-message receive path materializes per-vertex Python lists (or
per-message scalar combining) — the "nested vectors" receive structure of
Pregel+ that the paper's DirectMessage iterator improves on.
"""

from __future__ import annotations

import struct
import time
from typing import Callable

import numpy as np

from repro.core.engine import EngineResult
from repro.graph.graph import Graph
from repro.graph.partition import hash_partition
from repro.pregel.program import PregelProgram, PregelVertex
from repro.runtime.buffers import BufferExchange, WorkerBuffers
from repro.runtime.costmodel import NetworkModel, DEFAULT_NETWORK
from repro.runtime.metrics import MetricsCollector
from repro.runtime.serialization import INT32

__all__ = ["PregelPlusEngine"]

_FRAME = struct.Struct("<ii")

# frame section ids inside the single per-peer buffer
_MSG, _GHOST, _REQ, _RESP, _AGG_UP, _AGG_DOWN = range(6)
_MASTER = 0


class _PregelWorker:
    """Per-worker state of the Pregel+ engine (internal)."""

    def __init__(self, engine: "PregelPlusEngine", worker_id: int, local_ids: np.ndarray):
        self.engine = engine
        self.worker_id = worker_id
        self.graph = engine.graph
        self.owner = engine.owner
        self.num_workers = engine.num_workers
        self.local_ids = np.asarray(local_ids, dtype=np.int64)
        self.num_local = int(self.local_ids.size)
        self._local_index = np.full(self.graph.num_vertices, -1, dtype=np.int64)
        self._local_index[self.local_ids] = np.arange(self.num_local)
        self.halted = np.zeros(self.num_local, dtype=bool)
        self.woken = np.zeros(self.num_local, dtype=bool)
        self.buffers = WorkerBuffers(worker_id, self.num_workers)
        self._vertex = PregelVertex(self)
        self.program: PregelProgram | None = None

        m = self.num_workers
        # outgoing state, reset every superstep
        self._pending_dst: list[list[int]] = [[] for _ in range(m)]
        self._pending_val: list[list] = [[] for _ in range(m)]
        self._ghost_out: list[list] = [[] for _ in range(m)]  # (src_id, value)
        self._requests: set[int] = set()
        self._requesters: list[int] = []
        self._current_local = -1
        self._agg_partial = None
        # delivery state read by next superstep's compute
        self._inbox_lists: dict[int, list] = {}
        self._inbox_combined: dict[int, object] = {}
        self._resp: dict[int, object] = {}
        self.agg_result = None
        # reqresp responder scratch
        self._resp_out: list[list] = [[] for _ in range(m)]

    # -- program-facing API ---------------------------------------------
    @property
    def step_num(self) -> int:
        return self.engine.step_num

    def halt(self, local_idx: int) -> None:
        self.halted[local_idx] = True

    def send_message(self, dst: int, value) -> None:
        peer = int(self.owner[dst])
        self._pending_dst[peer].append(dst)
        self._pending_val[peer].append(value)

    def broadcast(self, vid: int, value) -> None:
        engine = self.engine
        if engine.mode == "ghost" and vid in engine.ghost_peers:
            for peer in engine.ghost_peers[vid]:
                self._ghost_out[peer].append((vid, value))
        else:
            for dst in self.graph.neighbors(vid):
                self.send_message(int(dst), value)

    def add_request(self, dst: int) -> None:
        if self.engine.mode != "reqresp":
            raise RuntimeError("request() needs mode='reqresp'")
        self._requests.add(dst)
        self._requesters.append(self._current_local)

    def get_resp(self, dst: int):
        return self._resp[dst]

    def aggregate(self, value) -> None:
        comb = self.program.aggregator_combiner
        if comb is None:
            raise RuntimeError("program declares no aggregator_combiner")
        if self._agg_partial is None:
            self._agg_partial = comb.identity
        self._agg_partial = comb.combine(self._agg_partial, value)

    # -- superstep bookkeeping ---------------------------------------------
    def activate_local_bulk(self, local_idx: np.ndarray) -> None:
        """Wake owned vertices for the upcoming superstep."""
        self.woken[local_idx] = True

    def begin_superstep(self) -> np.ndarray:
        self.halted &= ~self.woken
        active = np.flatnonzero(~self.halted)
        self.woken[:] = False
        return active

    def run_compute(self, active: np.ndarray) -> None:
        program = self.program
        v = self._vertex
        combined = program.combiner is not None
        lists = self._inbox_lists
        slots = self._inbox_combined
        self._requesters = []
        for idx in active:
            i = int(idx)
            self._current_local = i
            msgs = slots.get(i) if combined else lists.get(i, [])
            program.compute(v._bind(i), msgs)

    def emit(self, section: int, peer: int, payload: bytes) -> None:
        if not payload:
            return
        w = self.buffers.out[peer]
        w.write_bytes(_FRAME.pack(section, len(payload)))
        w.write_bytes(payload)

    def route_inbox(self) -> dict[int, list[tuple[int, memoryview]]]:
        routed: dict[int, list[tuple[int, memoryview]]] = {}
        for src, data in enumerate(self.buffers.inbox):
            if not data:
                continue
            view = memoryview(data)
            offset, end = 0, len(view)
            while offset < end:
                sec, nbytes = _FRAME.unpack_from(view, offset)
                offset += _FRAME.size
                routed.setdefault(sec, []).append((src, view[offset : offset + nbytes]))
                offset += nbytes
        self.buffers.clear_inbox()
        return routed


class PregelPlusEngine:
    """Drives a :class:`PregelProgram` in basic / reqresp / ghost mode."""

    def __init__(
        self,
        graph: Graph,
        program_factory: Callable[[_PregelWorker], PregelProgram],
        num_workers: int = 8,
        partition: np.ndarray | None = None,
        network: NetworkModel = DEFAULT_NETWORK,
        mode: str = "basic",
        ghost_threshold: int = 16,
    ) -> None:
        if mode not in ("basic", "reqresp", "ghost"):
            raise ValueError(f"unknown mode {mode!r}")
        self.graph = graph
        self.num_workers = num_workers
        self.mode = mode
        self.ghost_threshold = ghost_threshold
        if partition is None:
            partition = hash_partition(graph.num_vertices, num_workers)
        self.owner = np.asarray(partition, dtype=np.int64)
        if self.owner.shape != (graph.num_vertices,):
            raise ValueError("partition must assign every vertex")
        self.metrics = MetricsCollector(num_workers=num_workers, network=network)
        self.step_num = 0

        self.workers: list[_PregelWorker] = []
        for w in range(num_workers):
            self.workers.append(_PregelWorker(self, w, np.flatnonzero(self.owner == w)))
        for worker in self.workers:
            worker.program = program_factory(worker)
        self._exchange = BufferExchange(self.metrics)

        # mirror tables for ghost mode
        self.ghost_peers: dict[int, np.ndarray] = {}
        self.mirror_adj: list[dict[int, np.ndarray]] = [dict() for _ in range(num_workers)]
        if mode == "ghost":
            self._build_mirrors()

    def _build_mirrors(self) -> None:
        degs = self.graph.out_degrees
        for vid in np.flatnonzero(degs >= self.ghost_threshold):
            vid = int(vid)
            nbrs = self.graph.neighbors(vid)
            owners = self.owner[nbrs]
            peers = np.unique(owners)
            self.ghost_peers[vid] = peers
            for peer in peers:
                local = self.workers[peer]._local_index[nbrs[owners == peer]]
                self.mirror_adj[peer][vid] = local

    # -- main loop ---------------------------------------------------------
    def run(self, max_supersteps: int = 100_000) -> EngineResult:
        metrics = self.metrics
        metrics.start_run()
        has_agg = any(w.program.aggregator_combiner is not None for w in self.workers)

        while True:
            for worker in self.workers:
                worker.program.before_superstep()
            active_sets = [w.begin_superstep() for w in self.workers]
            total_active = sum(a.size for a in active_sets)
            if total_active == 0:
                break
            self.step_num += 1
            if self.step_num > max_supersteps:
                raise RuntimeError(f"exceeded max_supersteps={max_supersteps}")
            metrics.start_superstep(total_active)

            for worker, active in zip(self.workers, active_sets):
                t0 = time.perf_counter()
                worker.run_compute(active)
                metrics.record_compute(worker.worker_id, time.perf_counter() - t0)

            need_second = has_agg
            # ---- round 1: messages, ghost broadcasts, requests, agg partials
            for worker in self.workers:
                t0 = time.perf_counter()
                self._serialize_round1(worker, has_agg)
                metrics.record_compute(worker.worker_id, time.perf_counter() - t0)
            self._exchange.exchange([w.buffers for w in self.workers])
            for worker in self.workers:
                t0 = time.perf_counter()
                if self._deserialize_round1(worker):
                    need_second = True
                metrics.record_compute(worker.worker_id, time.perf_counter() - t0)

            # ---- round 2: responses and the aggregator broadcast
            if need_second:
                for worker in self.workers:
                    t0 = time.perf_counter()
                    self._serialize_round2(worker, has_agg)
                    metrics.record_compute(worker.worker_id, time.perf_counter() - t0)
                self._exchange.exchange([w.buffers for w in self.workers])
                for worker in self.workers:
                    t0 = time.perf_counter()
                    self._deserialize_round2(worker)
                    metrics.record_compute(worker.worker_id, time.perf_counter() - t0)
            metrics.end_superstep()

        metrics.end_run()
        result = EngineResult(metrics=metrics)
        for worker in self.workers:
            result.data.update(worker.program.finalize())
        return result

    # -- round 1 --------------------------------------------------------------
    def _serialize_round1(self, worker: _PregelWorker, has_agg: bool) -> None:
        program = worker.program
        codec = program.message_codec
        me = worker.worker_id
        net_msgs = 0
        for peer in range(self.num_workers):
            dsts = worker._pending_dst[peer]
            if dsts:
                payload = INT32.encode_array(dsts) + codec.encode_array(
                    worker._pending_val[peer]
                )
                worker.emit(_MSG, peer, payload)
                if peer != me:
                    net_msgs += len(dsts)
                worker._pending_dst[peer] = []
                worker._pending_val[peer] = []
            gout = worker._ghost_out[peer]
            if gout:
                ids = INT32.encode_array([g[0] for g in gout])
                vals = codec.encode_array([g[1] for g in gout])
                worker.emit(_GHOST, peer, ids + vals)
                if peer != me:
                    net_msgs += len(gout)
                worker._ghost_out[peer] = []
        if worker._requests:
            # Pregel+-style: per-request hash dedup, then ship id lists
            by_peer: dict[int, list[int]] = {}
            for dst in worker._requests:
                by_peer.setdefault(int(self.owner[dst]), []).append(dst)
            worker._requests = set()
            for peer, ids in by_peer.items():
                ids.sort()
                worker.emit(_REQ, peer, INT32.encode_array(ids))
                if peer != me:
                    net_msgs += len(ids)
        if has_agg:
            comb = program.aggregator_combiner
            partial = worker._agg_partial if worker._agg_partial is not None else comb.identity
            worker.emit(_AGG_UP, _MASTER, comb.codec.encode_one(partial))
            if me != _MASTER:
                net_msgs += 1
            worker._agg_partial = None
        if net_msgs:
            self.metrics.count_messages(net_msgs)

    def _deserialize_round1(self, worker: _PregelWorker) -> bool:
        """Deliver messages; prepare responses.  Returns True if this
        worker needs the second exchange round."""
        program = worker.program
        codec = program.message_codec
        routed = worker.route_inbox()
        worker._inbox_lists = {}
        worker._inbox_combined = {}
        combiner = program.combiner

        structured = codec.dtype.names is not None

        def deliver(local: np.ndarray, vals: np.ndarray) -> None:
            # the monolithic receive path: per-message appends/combines
            if combiner is None:
                lists = worker._inbox_lists
                if structured:
                    for i, val in zip(local.tolist(), vals):
                        lists.setdefault(i, []).append(tuple(val))
                else:
                    for i, val in zip(local.tolist(), vals.tolist()):
                        lists.setdefault(i, []).append(val)
            else:
                slots = worker._inbox_combined
                fn = combiner.fn
                for i, val in zip(local.tolist(), vals.tolist()):
                    if i in slots:
                        slots[i] = fn(slots[i], val)
                    else:
                        slots[i] = val
            worker.woken[local] = True

        for _src, payload in routed.get(_MSG, []):
            count = len(payload) // (INT32.itemsize + codec.itemsize)
            dst = INT32.decode_array(payload[: count * INT32.itemsize]).astype(np.int64)
            vals = codec.decode_array(payload[count * INT32.itemsize :], count)
            deliver(worker._local_index[dst], vals)

        for _src, payload in routed.get(_GHOST, []):
            count = len(payload) // (INT32.itemsize + codec.itemsize)
            ids = INT32.decode_array(payload[: count * INT32.itemsize]).astype(np.int64)
            vals = codec.decode_array(payload[count * INT32.itemsize :], count)
            mirrors = self.mirror_adj[worker.worker_id]
            for vid, val in zip(ids.tolist(), vals if structured else vals.tolist()):
                local = mirrors[vid]
                deliver(local, np.repeat(np.asarray([val], dtype=codec.dtype), local.size))

        need_second = False
        for src, payload in routed.get(_REQ, []):
            ids = INT32.decode_array(payload).astype(np.int64)
            local = worker._local_index[ids]
            pairs = worker._resp_out[src]
            for vid, li in zip(ids.tolist(), local.tolist()):
                pairs.append((vid, program.respond_value(li)))
            need_second = True

        if worker.worker_id == _MASTER and _AGG_UP in routed:
            comb = program.aggregator_combiner
            acc = comb.identity
            for _src, payload in routed[_AGG_UP]:
                acc = comb.combine(acc, comb.codec.decode_one(payload))
            worker._agg_global = acc
        return need_second

    # -- round 2 ---------------------------------------------------------------
    def _serialize_round2(self, worker: _PregelWorker, has_agg: bool) -> None:
        program = worker.program
        me = worker.worker_id
        net_msgs = 0
        resp_codec = program.message_codec
        for peer in range(self.num_workers):
            pairs = worker._resp_out[peer]
            if pairs:
                # Pregel+ echoes (id, value) pairs
                ids = INT32.encode_array([p[0] for p in pairs])
                vals = resp_codec.encode_array([p[1] for p in pairs])
                worker.emit(_RESP, peer, ids + vals)
                if peer != me:
                    net_msgs += len(pairs)
                worker._resp_out[peer] = []
        if has_agg and me == _MASTER:
            comb = program.aggregator_combiner
            payload = comb.codec.encode_one(getattr(worker, "_agg_global", comb.identity))
            for peer in range(self.num_workers):
                worker.emit(_AGG_DOWN, peer, payload)
            net_msgs += self.num_workers - 1
        if net_msgs:
            self.metrics.count_messages(net_msgs)

    def _deserialize_round2(self, worker: _PregelWorker) -> None:
        program = worker.program
        codec = program.message_codec
        routed = worker.route_inbox()
        worker._resp = {}
        structured = codec.dtype.names is not None
        for _src, payload in routed.get(_RESP, []):
            count = len(payload) // (INT32.itemsize + codec.itemsize)
            ids = INT32.decode_array(payload[: count * INT32.itemsize])
            vals = codec.decode_array(payload[count * INT32.itemsize :], count)
            if structured:
                for vid, val in zip(ids.tolist(), vals):
                    worker._resp[vid] = tuple(val)
            else:
                for vid, val in zip(ids.tolist(), vals.tolist()):
                    worker._resp[vid] = val
        if worker._resp and worker._requesters:
            worker.woken[np.asarray(worker._requesters, dtype=np.int64)] = True
        for _src, payload in routed.get(_AGG_DOWN, []):
            comb = program.aggregator_combiner
            for w in (worker,):
                w.agg_result = comb.codec.decode_one(payload)
