"""SSSP: all variants match Dijkstra on weighted and unweighted graphs."""

import numpy as np
import pytest

from repro.algorithms.sssp import run_sssp
from repro.graph import grid_road, rmat
from repro.graph.graph import Graph
from repro.pregel_algorithms.sssp import run_sssp_pregel
from helpers import line_graph, nx_sssp


@pytest.fixture(scope="module")
def road():
    return grid_road(10, 12, seed=4)


RUNNERS = [
    ("channel-basic", lambda g, **kw: run_sssp(g, variant="basic", **kw)),
    ("channel-prop", lambda g, **kw: run_sssp(g, variant="prop", **kw)),
    ("pregel", run_sssp_pregel),
]


def assert_dists_equal(got, expected):
    finite = np.isfinite(expected)
    np.testing.assert_allclose(got[finite], expected[finite], atol=1e-9)
    assert np.all(np.isinf(got[~finite]))


@pytest.mark.parametrize("name,runner", RUNNERS, ids=[r[0] for r in RUNNERS])
class TestCorrectness:
    def test_weighted_road(self, road, name, runner):
        dists, _ = runner(road, source=0, num_workers=4)
        assert_dists_equal(dists, nx_sssp(road, 0))

    def test_unweighted_hops(self, name, runner):
        g = line_graph(7)
        dists, _ = runner(g, source=3, num_workers=2)
        assert dists.tolist() == [3, 2, 1, 0, 1, 2, 3]

    def test_directed(self, name, runner):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)], directed=True)
        dists, _ = runner(g, source=1, num_workers=2)
        assert dists[0] == np.inf
        assert dists.tolist()[1:] == [0, 1, 2]

    def test_unreachable(self, name, runner):
        g = Graph.from_edges(4, [(0, 1)], directed=False)
        dists, _ = runner(g, source=0, num_workers=2)
        assert np.isinf(dists[2]) and np.isinf(dists[3])

    def test_nonzero_source(self, road, name, runner):
        src = road.num_vertices // 2
        dists, _ = runner(road, source=src, num_workers=4)
        assert_dists_equal(dists, nx_sssp(road, src))


def test_prop_converges_in_one_superstep():
    g = grid_road(8, 8, seed=1)
    _, rb = run_sssp(g, source=0, variant="basic", num_workers=4)
    _, rp = run_sssp(g, source=0, variant="prop", num_workers=4)
    assert rp.supersteps == 2
    assert rb.supersteps > rp.supersteps


def test_power_law_weighted():
    g = rmat(7, edge_factor=4, seed=8, weighted=True)
    d1, _ = run_sssp(g, source=0, variant="basic", num_workers=3)
    assert_dists_equal(d1, nx_sssp(g, 0))
