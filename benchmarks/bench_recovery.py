"""Fault-tolerance benchmark (BENCH_recovery.json).

Measures, per workload, what the fault-tolerance subsystem costs and
buys:

* **checkpoint overhead** — modeled checkpoint write time as a
  percentage of the failure-free simulated runtime;
* **recovery cost vs. failure superstep** — inject a deterministic
  failure ("worker 1 dies at the end of superstep S") and recover with
  both modes, reporting recovery time and bytes (rollback reloads every
  worker and re-executes; confined reloads only the dead worker and
  replays the survivors' frame logs);
* **correctness** — every failure run must reproduce the failure-free
  run's ``result.data`` and message/byte totals bit-for-bit; the script
  exits non-zero otherwise, which is what the CI smoke asserts.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_recovery.py                     # facebook, 8 workers
    PYTHONPATH=src python benchmarks/bench_recovery.py --dataset tree --workers 4 --fail 1:2
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from _provenance import write_artifact
from repro.algorithms.bfs import run_bfs
from repro.algorithms.pagerank import run_pagerank
from repro.algorithms.sssp import run_sssp
from repro.algorithms.wcc import run_wcc
from repro.bench.datasets import load_dataset
from repro.bench.tables import render_rows
from repro.core.recovery import FailureSchedule

#: name -> runner(graph, **engine_kwargs); mix of bulk ports and a
#: Propagation-channel workload (whose supersteps are few but heavy)
WORKLOADS = {
    "pr-scatter-bulk": lambda g, **kw: run_pagerank(
        g, variant="scatter", iterations=10, mode="bulk", **kw
    ),
    "wcc-bulk": lambda g, **kw: run_wcc(g, variant="basic", mode="bulk", **kw),
    "bfs-bulk": lambda g, **kw: run_bfs(g, variant="basic", mode="bulk", **kw),
    "sssp-prop": lambda g, **kw: run_sssp(g, variant="prop", **kw),
}


def _identical(a, b) -> bool:
    da, db = a[0], b[0]
    same_data = (
        np.array_equal(da, db) if isinstance(da, np.ndarray) else da == db
    )
    ma, mb = a[-1].metrics, b[-1].metrics
    return bool(
        same_data
        and ma.total_messages == mb.total_messages
        and ma.total_net_bytes == mb.total_net_bytes
        and ma.supersteps == mb.supersteps
    )


def bench_workload(
    name: str,
    graph,
    num_workers: int,
    checkpoint_every: int,
    fails: list[tuple[int, int]] | None,
    executor: str = "sim",
) -> list[dict]:
    runner = WORKLOADS[name]
    # the failure-free reference stays on the simulator: recovered runs on
    # *any* backend must reproduce it bit for bit
    baseline = runner(graph, num_workers=num_workers)
    base_time = baseline[-1].metrics.simulated_time

    ckpt = runner(
        graph,
        num_workers=num_workers,
        checkpoint_every=checkpoint_every,
        executor=executor,
    )
    cm = ckpt[-1].metrics
    rows = [
        {
            "workload": name,
            "executor": executor,
            "mode": "checkpoint-only",
            "fail_at": None,
            "supersteps": baseline[-1].metrics.supersteps,
            "checkpoint_pct": round(100 * cm.checkpoint_time / max(base_time, 1e-12), 2),
            "checkpoint_bytes": cm.checkpoint_bytes,
            "log_bytes": cm.log_bytes,
            "recovery_bytes": 0,
            "recovery_time": 0.0,
            "identical": _identical(ckpt, baseline),
        }
    ]

    steps = baseline[-1].metrics.supersteps
    if fails is None:
        # early and late failure of worker 1; the early one is placed just
        # past a checkpoint boundary so replay cost is visible (a failure
        # *at* a boundary recovers from the checkpoint it just wrote).
        # Prop workloads terminate in 2-3 supersteps, collapsing the two.
        early = min(checkpoint_every + 1, steps - 1)
        candidates = {early, max(1, steps - 1)}
        fails = [(1, s) for s in sorted(candidates) if s >= 1]
    for worker, superstep in fails:
        if superstep > steps:
            print(
                f"  [skip] {name}: failure at superstep {superstep} never fires "
                f"(run terminates after {steps})",
                file=sys.stderr,
            )
            continue
        for mode in ("rollback", "confined"):
            out = runner(
                graph,
                num_workers=num_workers,
                checkpoint_every=checkpoint_every,
                failures=[(worker, superstep)],
                recovery=mode,
                executor=executor,
            )
            m = out[-1].metrics
            rows.append(
                {
                    "workload": name,
                    "executor": executor,
                    "mode": mode,
                    "fail_at": f"{worker}:{superstep}",
                    "supersteps": out[-1].metrics.supersteps,
                    "checkpoint_pct": round(
                        100 * m.checkpoint_time / max(base_time, 1e-12), 2
                    ),
                    "checkpoint_bytes": m.checkpoint_bytes,
                    "log_bytes": m.log_bytes,
                    "recovery_bytes": m.recovery_bytes,
                    "recovery_time": round(m.recovery_time, 6),
                    "identical": _identical(out, baseline),
                }
            )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="facebook")
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument(
        "--executor",
        choices=["sim", "process"],
        default="sim",
        help="execution backend for the checkpointed/failing runs; with "
        "'process' the injected failure kills a real worker OS process "
        "and recovery restores a respawned replacement (the baseline "
        "stays simulated either way)",
    )
    parser.add_argument("--checkpoint-every", type=int, default=2)
    parser.add_argument(
        "--fail",
        action="append",
        default=[],
        metavar="W:S",
        help="explicit failure(s) to inject (default: early + late kill of worker 1)",
    )
    parser.add_argument(
        "--workloads",
        nargs="*",
        choices=sorted(WORKLOADS),
        default=sorted(WORKLOADS),
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_recovery.json",
    )
    args = parser.parse_args(argv)

    if not args.workloads:
        print("--workloads needs at least one workload name", file=sys.stderr)
        return 2
    if args.fail:
        try:
            fails = FailureSchedule.from_specs(args.fail, args.workers).pending()
        except ValueError as exc:
            print(f"bad --fail schedule: {exc}", file=sys.stderr)
            return 2
    else:
        fails = None
    graph = load_dataset(args.dataset)
    rows: list[dict] = []
    vacuous: list[str] = []
    for name in args.workloads:
        wrows = bench_workload(
            name,
            graph,
            args.workers,
            args.checkpoint_every,
            fails,
            executor=args.executor,
        )
        if not any(r["mode"] in ("rollback", "confined") for r in wrows):
            vacuous.append(name)
        rows.extend(wrows)

    print(
        render_rows(
            rows,
            title=(
                f"fault tolerance ({args.dataset}, {args.workers} workers, "
                f"checkpoint every {args.checkpoint_every}, "
                f"{args.executor} executor)"
            ),
            cols=list(rows[0]),
        )
    )

    write_artifact(
        args.out,
        rows,
        dataset=args.dataset,
        workers=args.workers,
        checkpoint_every=args.checkpoint_every,
        executor=args.executor,
    )

    broken = [f"{r['workload']}/{r['mode']}@{r['fail_at']}" for r in rows if not r["identical"]]
    if broken:
        print(f"RECOVERY NOT BIT-IDENTICAL in: {', '.join(broken)}", file=sys.stderr)
        return 1
    if vacuous:
        # a recovery smoke that injected nothing must not pass green
        print(
            "NO FAILURE EVER FIRED in: " + ", ".join(vacuous)
            + " (scheduled superstep past termination?)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
