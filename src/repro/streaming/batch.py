"""``MutationBatch``: one atomic unit of graph change.

A batch collects edge insertions/deletions and vertex insertions/deletions
that are applied together at an epoch boundary.  Batches validate their own
shape eagerly (array lengths, weight presence, id sanity); validation
*against a concrete graph* (does the deleted edge exist? is the endpoint in
range?) happens in :meth:`repro.streaming.delta.DeltaGraph.apply`, which
knows the current logical graph.

Conventions
-----------
* Vertex ids are dense.  Inserting ``add_vertices=k`` appends ids
  ``n .. n+k-1``; inserted edges may reference them.
* Deleting a vertex removes **all incident edges** and leaves the id behind
  as an isolated tombstone — ids are never renumbered, so per-vertex state
  arrays and partitions stay aligned across epochs (the usual
  streaming-graph contract).
* On undirected graphs an edge is named once (either endpoint order); the
  delta layer symmetrizes, mirroring the ``Graph`` constructor.
* Deleting an edge removes **every** parallel copy of that arc.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MutationBatch"]


def _edge_arrays(edges) -> tuple[np.ndarray, np.ndarray]:
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if arr.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("edges must be an (m, 2) array of (src, dst) pairs")
    return arr[:, 0].astype(np.int64), arr[:, 1].astype(np.int64)


@dataclass
class MutationBatch:
    """Edge/vertex insertions and deletions applied as one unit.

    Parameters
    ----------
    insert_src, insert_dst:
        Endpoint arrays of inserted edges.
    insert_weights:
        Per-edge weights for insertions; required iff the target graph is
        weighted (checked at apply time).
    delete_src, delete_dst:
        Endpoint arrays of deleted edges.
    add_vertices:
        Number of fresh vertex ids appended (``n .. n+k-1``).
    delete_vertices:
        Ids whose incident edges are all removed (tombstoned, see module
        docstring).
    timestamp:
        Optional stream position; :func:`repro.graph.io.load_update_stream`
        groups lines by it.
    """

    insert_src: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    insert_dst: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    insert_weights: np.ndarray | None = None
    delete_src: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    delete_dst: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    add_vertices: int = 0
    delete_vertices: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    timestamp: int | None = None

    def __post_init__(self) -> None:
        self.insert_src = np.asarray(self.insert_src, dtype=np.int64)
        self.insert_dst = np.asarray(self.insert_dst, dtype=np.int64)
        self.delete_src = np.asarray(self.delete_src, dtype=np.int64)
        self.delete_dst = np.asarray(self.delete_dst, dtype=np.int64)
        self.delete_vertices = np.asarray(self.delete_vertices, dtype=np.int64)
        if self.insert_weights is not None:
            self.insert_weights = np.asarray(self.insert_weights, dtype=np.float64)
        self.validate()

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        insertions=(),
        deletions=(),
        weights=None,
        add_vertices: int = 0,
        delete_vertices=(),
        timestamp: int | None = None,
    ) -> "MutationBatch":
        """Build a batch from ``(src, dst)`` pair iterables."""
        ins_s, ins_d = _edge_arrays(insertions)
        del_s, del_d = _edge_arrays(deletions)
        w = None if weights is None else np.asarray(list(weights), dtype=np.float64)
        return cls(
            insert_src=ins_s,
            insert_dst=ins_d,
            insert_weights=w,
            delete_src=del_s,
            delete_dst=del_d,
            add_vertices=add_vertices,
            delete_vertices=np.asarray(list(delete_vertices), dtype=np.int64),
            timestamp=timestamp,
        )

    # -- validation -------------------------------------------------------
    def validate(self) -> None:
        """Shape/self-consistency checks (graph-independent)."""
        if self.insert_src.shape != self.insert_dst.shape:
            raise ValueError("insert_src and insert_dst must have equal length")
        if self.delete_src.shape != self.delete_dst.shape:
            raise ValueError("delete_src and delete_dst must have equal length")
        if self.insert_weights is not None and (
            self.insert_weights.shape != self.insert_src.shape
        ):
            raise ValueError("insert_weights must match the insertion count")
        if self.add_vertices < 0:
            raise ValueError("add_vertices must be >= 0")
        for name, arr in (
            ("insert", self.insert_src),
            ("insert", self.insert_dst),
            ("delete", self.delete_src),
            ("delete", self.delete_dst),
            ("delete_vertices", self.delete_vertices),
        ):
            if arr.size and arr.min() < 0:
                raise ValueError(f"negative vertex id in {name} arrays")
        # one batch is atomic: mutating an edge it also deletes is ambiguous
        if self.insert_src.size and self.delete_src.size:
            ins = set(zip(self.insert_src.tolist(), self.insert_dst.tolist()))
            dele = set(zip(self.delete_src.tolist(), self.delete_dst.tolist()))
            both = ins & dele
            if both:
                raise ValueError(
                    f"edges appear in both insertions and deletions: {sorted(both)[:5]}"
                )
        if self.delete_vertices.size:
            dead = set(self.delete_vertices.tolist())
            touched = (
                set(self.insert_src.tolist())
                | set(self.insert_dst.tolist())
            )
            bad = dead & touched
            if bad:
                raise ValueError(
                    f"vertices deleted by this batch also gain edges: {sorted(bad)[:5]}"
                )

    # -- introspection ----------------------------------------------------
    @property
    def num_insertions(self) -> int:
        return int(self.insert_src.size)

    @property
    def num_deletions(self) -> int:
        return int(self.delete_src.size)

    @property
    def size(self) -> int:
        """Total mutation count (edges + vertex ops)."""
        return (
            self.num_insertions
            + self.num_deletions
            + self.add_vertices
            + int(self.delete_vertices.size)
        )

    @property
    def empty(self) -> bool:
        return self.size == 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"MutationBatch(+{self.num_insertions}e -{self.num_deletions}e "
            f"+{self.add_vertices}v -{self.delete_vertices.size}v"
            + (f", t={self.timestamp}" if self.timestamp is not None else "")
            + ")"
        )
