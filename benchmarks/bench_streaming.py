"""Incremental-vs-cold streaming refresh benchmark (BENCH_streaming.json).

For every streaming algorithm (incremental PageRank / WCC / SSSP) and a
sweep of delta sizes (0.01%–10% of the graph's edges by default), two
:class:`~repro.streaming.epoch.EpochEngine` s consume the *same* update
stream — one refreshing incrementally, one re-running from scratch every
epoch — and every epoch asserts the two produced **bit-identical**
``result.data`` (the script exits non-zero otherwise; the CI smoke leans
on that).  Reported per row, averaged over the epochs:

* ``speedup``      — cold wall time / incremental wall time;
* ``byte_ratio``   — incremental network bytes / cold network bytes;
* ``affected_pct`` — how much of the graph the refresh plan recomputed.

Run directly::

    PYTHONPATH=src python benchmarks/bench_streaming.py                  # road grid, 8 workers
    PYTHONPATH=src python benchmarks/bench_streaming.py --dataset stream-er \\
        --delta-fracs 0.001 0.01 --epochs 3 --workers 4                  # smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from _provenance import write_artifact
from repro.bench.datasets import load_dataset
from repro.bench.tables import render_rows
from repro.graph.partition import hash_partition
from repro.streaming import STREAM_ALGORITHMS, EpochEngine, synthesize_stream

DEFAULT_FRACS = [0.0001, 0.001, 0.01, 0.1]


def _algo_params(name: str, graph, iterations: int) -> dict:
    if name == "pagerank":
        return {"iterations": iterations}
    if name == "sssp":
        # a high-degree source keeps most of the graph reachable
        return {"source": int(np.argmax(graph.out_degrees))}
    return {}


def bench_cell(
    name: str,
    graph,
    frac: float,
    num_workers: int,
    epochs: int,
    iterations: int,
    seed: int,
    executor: str = "sim",
) -> dict:
    m = graph.num_input_edges
    k = max(1, int(round(frac * m)))
    ins = k - k // 2
    dele = k // 2
    batches = synthesize_stream(graph, epochs, ins, dele, seed=seed)
    partition = hash_partition(graph.num_vertices, num_workers, seed=seed)
    params = _algo_params(name, graph, iterations)

    engines = {
        mode: EpochEngine(
            graph,
            STREAM_ALGORITHMS[name](**params),
            num_workers=num_workers,
            refresh=mode,
            partition=partition,
            executor=executor,
        )
        for mode in ("incremental", "full")
    }
    wall = {mode: 0.0 for mode in engines}
    for eng in engines.values():
        eng.bootstrap()

    identical = True
    affected = 0
    bytes_total = {mode: 0 for mode in engines}
    steps_total = {mode: 0 for mode in engines}
    for batch in batches:
        results = {}
        for mode, eng in engines.items():
            t0 = time.perf_counter()
            epoch = eng.run_epoch(batch)
            wall[mode] += time.perf_counter() - t0
            # read totals off the collector, not the EngineResult
            # pass-throughs: those are None when metrics are disabled, and
            # a byte comparison fed by silent zeros would pass vacuously
            bytes_total[mode] += epoch.result.metrics.total_net_bytes
            steps_total[mode] += epoch.result.metrics.supersteps
            results[mode] = epoch
        identical = identical and (
            results["incremental"].data == results["full"].data
        )
        affected += results["incremental"].affected

    for eng in engines.values():
        eng.close()

    n_epochs = len(batches)
    return {
        "algorithm": name,
        "executor": executor,
        "delta_frac": frac,
        "batch_edges": ins + dele,
        "epochs": n_epochs,
        "affected_pct": round(100 * affected / (n_epochs * graph.num_vertices), 2),
        "inc_supersteps": round(steps_total["incremental"] / n_epochs, 1),
        "cold_supersteps": round(steps_total["full"] / n_epochs, 1),
        "inc_wall_s": round(wall["incremental"] / n_epochs, 4),
        "cold_wall_s": round(wall["full"] / n_epochs, 4),
        "speedup": round(wall["full"] / max(wall["incremental"], 1e-9), 2),
        "inc_mb": round(bytes_total["incremental"] / n_epochs / 1e6, 4),
        "cold_mb": round(bytes_total["full"] / n_epochs / 1e6, 4),
        "byte_ratio": round(
            bytes_total["incremental"] / max(bytes_total["full"], 1), 3
        ),
        "identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="stream-road")
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument(
        "--executor",
        choices=["sim", "process"],
        default="sim",
        help="execution backend for every epoch (process epochs share one "
        "persistent worker pool per engine)",
    )
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument(
        "--iterations", type=int, default=10, help="PageRank iterations"
    )
    parser.add_argument(
        "--delta-fracs",
        type=float,
        nargs="+",
        default=DEFAULT_FRACS,
        help="batch sizes as fractions of the edge count",
    )
    parser.add_argument(
        "--algorithms",
        nargs="*",
        choices=sorted(STREAM_ALGORITHMS),
        default=sorted(STREAM_ALGORITHMS),
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_streaming.json",
    )
    args = parser.parse_args(argv)

    graph = load_dataset(args.dataset)
    rows = []
    for name in args.algorithms:
        for frac in args.delta_fracs:
            rows.append(
                bench_cell(
                    name,
                    graph,
                    frac,
                    args.workers,
                    args.epochs,
                    args.iterations,
                    args.seed,
                    executor=args.executor,
                )
            )
    print(
        render_rows(
            rows,
            title=(
                f"incremental vs cold refresh ({args.dataset}, "
                f"{args.workers} workers, {args.epochs} epochs/cell, "
                f"{args.executor} executor)"
            ),
            cols=list(rows[0]),
        )
    )
    write_artifact(
        args.out,
        rows,
        dataset=args.dataset,
        workers=args.workers,
        epochs=args.epochs,
        seed=args.seed,
        executor=args.executor,
    )

    broken = [
        f"{r['algorithm']}@{r['delta_frac']}" for r in rows if not r["identical"]
    ]
    if broken:
        print(f"REFRESH NOT BIT-IDENTICAL in: {', '.join(broken)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
