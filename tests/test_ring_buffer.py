"""RingBuffer unit coverage: the SPSC shared-memory FIFO under the
process backend's ``transport="shm"`` data plane.

Everything here runs the ring through its visible contract — cursors,
wraparound, exactly-full, chunked oversized frames, the vote slot — plus
the two conditions that only show up under real concurrency: sustained
producer/consumer stress with random frame sizes across process
boundaries, and a writer dying mid-frame (the reader must be abortable,
never wedged).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading

import numpy as np
import pytest

from repro.runtime.parallel.shm import (
    DEFAULT_RING_CAPACITY,
    RingBuffer,
    RingTimeout,
)


@pytest.fixture
def ring():
    r = RingBuffer.create(64)
    yield r
    r.close(unlink=True)


class TestBasics:
    def test_create_attach_roundtrip(self, ring):
        ring.send(b"hello")
        other = RingBuffer.attach(ring.spec)
        assert other.recv() == b"hello"
        other.close()

    def test_empty_reads_and_pending(self, ring):
        assert ring.read_some() == b""
        assert ring.pending == 0
        ring.write_some(b"abc")
        assert ring.pending == 3

    def test_capacity_floor(self):
        with pytest.raises(ValueError, match="capacity"):
            RingBuffer.create(8)

    def test_default_capacity_sane(self):
        assert DEFAULT_RING_CAPACITY >= 1 << 16


class TestWraparound:
    def test_messages_straddling_the_boundary(self, ring):
        # 40-byte messages through a 64-byte ring: every other message
        # wraps, and each must come back intact
        for i in range(50):
            msg = bytes([i % 251]) * 40
            ring.send(msg)
            assert ring.recv() == msg

    def test_split_write_split_read(self, ring):
        ring.write_some(b"x" * 50)
        assert ring.read_some(50) == b"x" * 50
        # cursors now at 50; a 30-byte write wraps 16/14
        assert ring.write_some(b"ab" * 15) == 30
        assert ring.read_some() == b"ab" * 15

    def test_cursors_are_monotonic_not_modular(self, ring):
        # push enough traffic that the u64 cursors pass several multiples
        # of the capacity; offsets stay correct throughout
        payload = os.urandom(48)
        for _ in range(20):
            ring.write_some(payload)
            assert ring.read_some() == payload


class TestExactlyFull:
    def test_fill_to_capacity_then_refuse(self, ring):
        assert ring.write_some(b"a" * 64) == 64
        assert ring.write_some(b"b") == 0  # full is full, no wasted byte
        assert ring.pending == 64
        assert ring.read_some() == b"a" * 64
        assert ring.write_some(b"c" * 64) == 64  # usable again end-to-end

    def test_partial_write_when_almost_full(self, ring):
        ring.write_some(b"a" * 60)
        assert ring.write_some(b"b" * 10) == 4  # takes what fits
        got = ring.read_some()
        assert got == b"a" * 60 + b"b" * 4


class TestOversizedFrames:
    def test_frame_larger_than_ring_streams_through(self, ring):
        big = os.urandom(DEFAULT_RING_CAPACITY // 64)  # 256x the 64B ring
        out = []
        reader = threading.Thread(target=lambda: out.append(ring.recv()))
        reader.start()
        ring.send(big)  # write_all chunks it through the tiny ring
        reader.join()
        assert out[0] == big

    def test_write_all_times_out_without_reader(self, ring):
        with pytest.raises(RingTimeout, match="unsent"):
            ring.write_all(b"x" * 100, timeout=0.05)

    def test_read_exact_times_out_without_writer(self, ring):
        with pytest.raises(RingTimeout, match="stalled"):
            ring.read_exact(1, timeout=0.05)


class TestVoteSlot:
    def test_write_read_peek(self, ring):
        ring.write_slot(1, 42)
        assert ring.peek_slot() == (1, 42)
        assert ring.read_slot(1) == 42

    def test_read_slot_waits_for_seq(self, ring):
        ring.write_slot(1, 7)
        # seq 2 not published yet: must not return the stale value
        with pytest.raises(RingTimeout):
            ring.read_slot(2, timeout=0.05)
        ring.write_slot(2, 9)
        assert ring.read_slot(2) == 9

    def test_slot_independent_of_stream(self, ring):
        ring.send(b"data")
        ring.write_slot(5, 11)
        assert ring.recv() == b"data"
        assert ring.read_slot(5) == 11

    def test_check_callback_can_abort(self, ring):
        class Dead(RuntimeError):
            pass

        def check():
            raise Dead("peer died")

        with pytest.raises(Dead):
            ring.read_slot(1, check=check)


def _producer_main(spec, seed, count):
    rng = np.random.default_rng(seed)
    ring = RingBuffer.attach(spec)
    try:
        for _ in range(count):
            size = int(rng.integers(0, 3000))  # 0..~6x capacity (512)
            payload = bytes(rng.integers(0, 256, size=size, dtype=np.uint8))
            ring.send(payload, timeout=60)
    finally:
        ring.close()


def _dying_writer_main(spec):
    import struct

    ring = RingBuffer.attach(spec)
    # start a frame the reader will wait on forever: claim 1000 bytes,
    # deliver only a fragment, then die the hard way
    ring.write_all(struct.pack("<Q", 1000))
    ring.write_all(b"partial")
    os._exit(7)


class TestConcurrency:
    def test_producer_consumer_stress_random_sizes(self):
        # a real second process hammers the ring with frames from empty
        # to several times the capacity; every byte must arrive in order
        ring = RingBuffer.create(512)
        seed, count = 1234, 200
        proc = mp.get_context("spawn" if "fork" not in mp.get_all_start_methods()
                              else "fork").Process(
            target=_producer_main, args=(ring.spec, seed, count), daemon=True
        )
        proc.start()
        try:
            rng = np.random.default_rng(seed)
            for _ in range(count):
                size = int(rng.integers(0, 3000))
                expect = bytes(rng.integers(0, 256, size=size, dtype=np.uint8))
                assert ring.recv(timeout=60) == expect
            proc.join(timeout=30)
            assert proc.exitcode == 0
        finally:
            if proc.is_alive():  # pragma: no cover - failure path
                proc.terminate()
            ring.close(unlink=True)

    def test_reader_survives_writer_death_mid_frame(self):
        # the writer claims a 1000-byte frame, ships 7 bytes, and dies;
        # the reader must abort through its liveness check — not hang,
        # not fabricate a frame
        ring = RingBuffer.create(64)
        ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods()
                             else "spawn")
        proc = ctx.Process(target=_dying_writer_main, args=(ring.spec,), daemon=True)
        proc.start()
        try:

            def check():
                if not proc.is_alive():
                    raise RuntimeError(
                        f"writer died (exit code {proc.exitcode})"
                    )

            with pytest.raises(RuntimeError, match=r"writer died \(exit code 7\)"):
                ring.recv(check=check, timeout=60)
            # and with no check, the deadline still bounds the wait
            with pytest.raises(RingTimeout):
                ring.read_exact(1000, timeout=0.05)
        finally:
            proc.join(timeout=10)
            ring.close(unlink=True)
