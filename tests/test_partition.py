"""Unit tests for the vertex partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import grid_road, rmat
from repro.graph.partition import (
    hash_partition,
    metis_like_partition,
    partition_quality,
    range_partition,
)


class TestHashPartition:
    def test_covers_all_vertices(self):
        p = hash_partition(1000, 8, seed=0)
        assert p.shape == (1000,)
        assert p.min() >= 0 and p.max() < 8

    def test_roughly_balanced(self):
        p = hash_partition(8000, 8, seed=1)
        sizes = np.bincount(p, minlength=8)
        assert sizes.max() < 1.25 * 1000

    def test_deterministic(self):
        np.testing.assert_array_equal(
            hash_partition(100, 4, seed=7), hash_partition(100, 4, seed=7)
        )


class TestRangePartition:
    def test_contiguous_blocks(self):
        p = range_partition(10, 2)
        assert p.tolist() == [0] * 5 + [1] * 5

    def test_uneven(self):
        p = range_partition(5, 2)
        assert sorted(np.bincount(p, minlength=2).tolist()) == [2, 3]


class TestMetisLike:
    def test_covers_and_balances(self):
        g = grid_road(30, 30, seed=0)
        p = metis_like_partition(g, 4, seed=0)
        assert p.shape == (g.num_vertices,)
        assert np.all(p >= 0) and np.all(p < 4)
        q = partition_quality(g, p)
        assert q["imbalance"] < 1.2

    def test_beats_hash_on_locality(self):
        """The whole point of the METIS substitute: far fewer cut edges
        than random assignment on a graph with locality."""
        g = grid_road(40, 40, seed=1)
        ph = hash_partition(g.num_vertices, 8, seed=0)
        pm = metis_like_partition(g, 8, seed=0)
        qh = partition_quality(g, ph)
        qm = partition_quality(g, pm)
        assert qm["internal_fraction"] > 2 * qh["internal_fraction"]

    def test_handles_disconnected_graphs(self):
        g = rmat(8, edge_factor=1, seed=3)  # plenty of isolated vertices
        p = metis_like_partition(g, 4, seed=0)
        assert np.all(p >= 0)

    def test_single_block(self):
        g = grid_road(5, 5, seed=0)
        p = metis_like_partition(g, 1, seed=0)
        assert np.all(p == 0)

    def test_empty_graph(self):
        from repro.graph.graph import Graph

        g = Graph.from_edges(0, [])
        assert metis_like_partition(g, 4).size == 0


class TestPartitionQuality:
    def test_all_internal_when_one_block(self):
        g = grid_road(10, 10, seed=0)
        q = partition_quality(g, np.zeros(g.num_vertices, dtype=np.int64))
        assert q["internal_fraction"] == 1.0
        assert q["edge_cut"] == 0

    def test_edge_cut_counts_arcs(self):
        from repro.graph.graph import Graph

        g = Graph.from_edges(2, [(0, 1)], directed=False)
        q = partition_quality(g, np.array([0, 1]))
        assert q["edge_cut"] == 2  # both stored arc directions cross


@settings(max_examples=25)
@given(
    n=st.integers(min_value=1, max_value=300),
    m=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=10),
)
def test_hash_partition_always_valid(n, m, seed):
    p = hash_partition(n, m, seed)
    assert p.shape == (n,)
    assert p.min() >= 0 and p.max() < m


@settings(max_examples=15, deadline=None)
@given(
    scale=st.integers(min_value=4, max_value=8),
    m=st.integers(min_value=1, max_value=6),
)
def test_metis_like_owns_every_vertex_exactly_once(scale, m):
    g = rmat(scale, edge_factor=2, seed=scale)
    p = metis_like_partition(g, m, seed=0)
    # every vertex assigned to exactly one legal block
    assert p.shape == (g.num_vertices,)
    assert np.all((p >= 0) & (p < m))


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=120),
    m=st.integers(min_value=1, max_value=8),
    edges=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=119),
            st.integers(min_value=0, max_value=119),
        ),
        max_size=200,
    ),
    seed=st.integers(min_value=0, max_value=5),
)
def test_metis_like_total_assignment_and_capacity(n, m, edges, seed):
    """On arbitrary graphs — disconnected, self-loopy, or with no edges
    at all — every vertex gets a legal owner (no ``-1`` survives the BFS
    growth) and no block exceeds the capacity bound ``ceil(n/m)``."""
    from repro.graph.graph import Graph

    edges = [(u % n, v % n) for u, v in edges if u % n != v % n]
    g = Graph.from_edges(n, edges, directed=False)
    p = metis_like_partition(g, m, seed=seed)
    assert p.shape == (n,)
    assert np.all((p >= 0) & (p < m)), "every vertex must be assigned"
    capacity = -(-n // m)
    sizes = np.bincount(p, minlength=m)
    assert sizes.max() <= capacity, f"block over capacity: {sizes} > {capacity}"


@settings(max_examples=10, deadline=None)
@given(m=st.integers(min_value=1, max_value=8), n=st.integers(min_value=1, max_value=60))
def test_metis_like_zero_edge_graph(n, m):
    """A graph with no edges degenerates to pure balanced reseeding."""
    from repro.graph.graph import Graph

    g = Graph.from_edges(n, [], directed=False)
    p = metis_like_partition(g, m, seed=1)
    assert np.all((p >= 0) & (p < m))
    assert np.bincount(p, minlength=m).max() <= -(-n // m)
