"""Cross-backend acceptance matrix for the ExecutorBackend seam.

Every feature must compose with every backend, bit-identically: for
{PageRank-scatter, WCC, SSSP} × {sim, process} × {2, 8} workers this
file asserts identical result data, per-channel traffic, and byte /
message totals for

(a) checkpoint + rollback recovery,
(b) checkpoint + confined recovery, and
(c) 3-epoch streaming through the :class:`EpochEngine`

— plus the persistent-pool lifecycle guarantees: worker processes spawn
exactly once per pool lifetime, pools are reconfigured (never respawned)
across engines and epochs, and shutdown is explicit, idempotent, and
leak-free.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.algorithms.pagerank import run_pagerank
from repro.algorithms.sssp import run_sssp
from repro.algorithms.wcc import run_wcc
from repro.core import ChannelEngine
from repro.graph import rmat
from repro.runtime.parallel import WorkerPool, WorkerProcessError
from repro.streaming import (
    EpochEngine,
    PageRankStream,
    SSSPStream,
    WCCStream,
    synthesize_stream,
)

WORKERS = [2, 8]

_DIRECTED = rmat(7, edge_factor=4, seed=5, directed=True)
_WEIGHTED = rmat(7, edge_factor=4, seed=6, directed=True, weighted=True)

#: the acceptance workloads; failure supersteps sit off the
#: checkpoint_every=2 grid so recovery always replays work
WORKLOADS = {
    "pr-scatter": (
        lambda **kw: run_pagerank(
            _DIRECTED, variant="scatter", iterations=6, mode="bulk", **kw
        ),
        3,
    ),
    "wcc": (lambda **kw: run_wcc(_DIRECTED, variant="basic", mode="bulk", **kw), 3),
    "sssp": (lambda **kw: run_sssp(_WEIGHTED, variant="basic", mode="bulk", **kw), 2),
}


def _assert_identical(a, b):
    data_a, res_a = a[0], a[-1]
    data_b, res_b = b[0], b[-1]
    np.testing.assert_array_equal(data_a, data_b)
    assert res_a.data == res_b.data
    ma, mb = res_a.metrics, res_b.metrics
    assert ma.channel_breakdown() == mb.channel_breakdown()
    assert ma.supersteps == mb.supersteps
    assert ma.total_rounds == mb.total_rounds
    assert ma.total_net_bytes == mb.total_net_bytes
    assert ma.total_local_bytes == mb.total_local_bytes
    assert ma.total_messages == mb.total_messages


_baselines = {}


def _baseline(name, workers):
    key = (name, workers)
    if key not in _baselines:
        runner, _ = WORKLOADS[name]
        _baselines[key] = runner(num_workers=workers)
    return _baselines[key]


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("mode", ["rollback", "confined"])
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_process_recovery_parity(name, mode, workers):
    """An injected worker-process death + recovery on the process backend
    reproduces both the failure-free baseline and the sim backend's
    fault-tolerance accounting, bit for bit."""
    runner, fail_at = WORKLOADS[name]
    base = _baseline(name, workers)
    assert base[-1].supersteps >= fail_at, "failure must actually fire"
    kw = dict(
        num_workers=workers,
        checkpoint_every=2,
        failures=[(1, fail_at)],
        recovery=mode,
    )
    sim = runner(**kw)
    proc = runner(executor="process", **kw)

    _assert_identical(base, proc)
    _assert_identical(sim, proc)
    sm, pm = sim[-1].metrics, proc[-1].metrics
    assert pm.num_failures == sm.num_failures == 1
    assert pm.num_checkpoints == sm.num_checkpoints
    assert pm.checkpoint_bytes == sm.checkpoint_bytes
    assert pm.log_bytes == sm.log_bytes
    assert pm.recovery_bytes == sm.recovery_bytes
    assert pm.recovery_bytes > 0 and pm.recovery_time > 0


def test_process_simultaneous_failures():
    base = _baseline("wcc", 8)
    for mode in ("rollback", "confined"):
        out = run_wcc(
            _DIRECTED,
            variant="basic",
            mode="bulk",
            num_workers=8,
            checkpoint_every=2,
            failures=[(2, 3), (5, 3)],
            recovery=mode,
            executor="process",
        )
        assert out[-1].metrics.num_failures == 2
        _assert_identical(base, out)


# ---------------------------------------------------------------------------
# streaming epochs over the process backend
# ---------------------------------------------------------------------------
_STREAM_GRAPH = rmat(8, edge_factor=4, seed=9, directed=True)
_STREAM_WEIGHTED = rmat(8, edge_factor=4, seed=9, directed=True, weighted=True)

STREAM_CASES = {
    "pagerank": (_STREAM_GRAPH, lambda: PageRankStream(iterations=6)),
    "wcc": (_STREAM_GRAPH, lambda: WCCStream()),
    "sssp": (_STREAM_WEIGHTED, lambda: SSSPStream(source=0)),
}

_TIME_KEYS = ("wall_time", "simulated_time")


def _stable_summary(summary: dict) -> dict:
    # timings (wall clocks and the measured phase_* seconds) differ
    # between backends; everything else must be bit-identical
    return {
        k: v
        for k, v in summary.items()
        if k not in _TIME_KEYS and not k.startswith("phase_")
    }


@pytest.mark.parametrize("workers", WORKERS)
@pytest.mark.parametrize("name", sorted(STREAM_CASES))
def test_streaming_process_identity_3_epochs(name, workers):
    """3 mutation epochs through EpochEngine(executor="process"): every
    epoch's data and counters are bit-identical to the sim executor, and
    the pool spawns its worker processes exactly once."""
    graph, make = STREAM_CASES[name]
    batches = synthesize_stream(
        graph, num_epochs=3, insertions_per_epoch=40, deletions_per_epoch=25, seed=11
    )

    sim = EpochEngine(graph, make(), num_workers=workers)
    sim_epochs = [sim.bootstrap()] + sim.run(batches)

    proc = EpochEngine(graph, make(), num_workers=workers, executor="process")
    try:
        proc_epochs = [proc.bootstrap()] + proc.run(batches)

        # spawned exactly once per pool lifetime, across all 4 engine runs
        assert proc.pool.spawn_count == workers
        assert len(proc_epochs) == len(sim_epochs) == 4
        for s, p in zip(sim_epochs, proc_epochs):
            assert p.data == s.data
            assert p.refresh == s.refresh
            assert p.seeds == s.seeds and p.affected == s.affected
            sm, pm = s.result.metrics, p.result.metrics
            assert pm.channel_breakdown() == sm.channel_breakdown()
            assert pm.total_net_bytes == sm.total_net_bytes
            assert pm.total_local_bytes == sm.total_local_bytes
            assert pm.total_messages == sm.total_messages
            assert _stable_summary(p.summary()) == _stable_summary(s.summary())
    finally:
        proc.close()


@pytest.mark.parametrize("executor", ["sim", "process"])
def test_epoch_summary_counters_match_collector(executor):
    """EpochResult.summary() is a faithful projection of the epoch's
    MetricsCollector, on both executors."""
    graph, make = STREAM_CASES["wcc"]
    batches = synthesize_stream(
        graph, num_epochs=2, insertions_per_epoch=30, deletions_per_epoch=10, seed=4
    )
    engine = EpochEngine(graph, make(), num_workers=2, executor=executor)
    try:
        epochs = [engine.bootstrap()] + engine.run(batches)
        for ep in epochs:
            m = ep.result.metrics
            s = ep.summary()
            assert s["supersteps"] == m.supersteps
            assert s["rounds"] == m.total_rounds
            assert s["net_bytes"] == m.total_net_bytes
            assert s["local_bytes"] == m.total_local_bytes
            assert s["messages"] == m.total_messages
            assert s["epoch"] == ep.epoch == m.epoch
            assert s["refresh"] == ep.refresh == m.refresh_mode
            assert s["affected_vertices"] == ep.affected == m.affected_vertices
            assert s["batch_size"] == ep.batch_size
            assert s["seeds"] == ep.seeds
    finally:
        engine.close()


def test_pool_reuse_disabled_respawns_per_epoch():
    graph, make = STREAM_CASES["wcc"]
    batches = synthesize_stream(
        graph, num_epochs=2, insertions_per_epoch=20, deletions_per_epoch=10, seed=2
    )
    engine = EpochEngine(
        graph, make(), num_workers=2, executor="process", pool_reuse=False
    )
    try:
        engine.bootstrap()
        spawned = [engine.pool.spawn_count]
        for batch in batches:
            engine.run_epoch(batch)
            spawned.append(engine.pool.spawn_count)
        # a fresh pool per epoch: the live pool always shows exactly one
        # spawn generation, and each epoch paid it again
        assert spawned == [2, 2, 2]
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# pool lifecycle
# ---------------------------------------------------------------------------
class TestPoolLifecycle:
    def test_run_mutate_run_reconfigures_one_pool(self):
        """Two different engines (new graph, new partition) run back to
        back on one explicitly shared pool: the second run reconfigures
        the live workers instead of respawning, and both runs match sim."""
        from repro.algorithms.wcc import WCCBasicBulk

        g1 = rmat(7, edge_factor=4, seed=21, directed=True)
        g2 = rmat(7, edge_factor=5, seed=22, directed=True)
        pool = WorkerPool(2)
        try:
            for g in (g1, g2):
                sim = ChannelEngine(g, WCCBasicBulk, num_workers=2).run()
                proc = ChannelEngine(
                    g, WCCBasicBulk, num_workers=2, executor="process", pool=pool
                ).run()
                assert proc.data == sim.data
                assert (
                    proc.metrics.total_net_bytes == sim.metrics.total_net_bytes
                )
            assert pool.spawn_count == 2
        finally:
            pool.shutdown()

    def test_evicted_engine_cannot_silently_rerun(self):
        """Interleaving engines on one pool: once engine B's configuration
        replaces A's, A's worker state is gone — re-running A must refuse
        loudly instead of silently re-executing from scratch (which would
        break the second-run-is-a-no-op sim parity)."""
        from repro.algorithms.wcc import WCCBasicBulk

        g = rmat(6, edge_factor=4, seed=26, directed=True)
        pool = WorkerPool(2)
        try:
            a = ChannelEngine(g, WCCBasicBulk, num_workers=2, executor="process", pool=pool)
            b = ChannelEngine(g, WCCBasicBulk, num_workers=2, executor="process", pool=pool)
            a.run()
            b.run()
            with pytest.raises(WorkerProcessError, match="replaced on the pool"):
                a.run()
        finally:
            pool.broken = False
            pool.shutdown()

    def test_engine_close_releases_owned_pool_promptly(self):
        """ChannelEngine.close() shuts the engine-owned pool down without
        waiting for cyclic GC (the engine<->backend cycle defers
        refcount-based cleanup) — and leaves external pools alone."""
        from repro.algorithms.wcc import WCCBasicBulk

        g = rmat(6, edge_factor=4, seed=27, directed=True)
        engine = ChannelEngine(g, WCCBasicBulk, num_workers=2, executor="process")
        engine.run()
        procs = list(engine.backend.pool._state.procs)
        engine.close()
        engine.close()  # idempotent
        assert all(not p.is_alive() for p in procs)
        with pytest.raises(WorkerProcessError, match="shut down"):
            engine.run()

        shared = WorkerPool(2)
        try:
            other = ChannelEngine(
                g, WCCBasicBulk, num_workers=2, executor="process", pool=shared
            )
            other.run()
            other.close()  # external pool: caller owns it
            assert not shared.closed
            assert all(p.is_alive() for p in shared._state.procs)
        finally:
            shared.shutdown()

    def test_unpicklable_factory_rejected_on_reconfigure_only(self):
        """First-run factories may be locals (they ride the fork); loading
        a *second* configuration must cross a pipe, so an unpicklable
        factory is rejected with a pointer at ProgramSpec."""
        from repro.algorithms.wcc import WCCBasicBulk

        class LocalWCC(WCCBasicBulk):  # not importable => not picklable
            pass

        g = rmat(6, edge_factor=4, seed=23, directed=True)
        pool = WorkerPool(2)
        try:
            first = ChannelEngine(
                g, LocalWCC, num_workers=2, executor="process", pool=pool
            ).run()
            assert first.data
            with pytest.raises(WorkerProcessError, match="ProgramSpec"):
                ChannelEngine(
                    g, LocalWCC, num_workers=2, executor="process", pool=pool
                ).run()
        finally:
            pool.broken = False  # the failed run poisoned it; still shut down
            pool.shutdown()

    def test_shutdown_is_idempotent_and_leak_free(self):
        from repro.algorithms.wcc import WCCBasicBulk

        g = rmat(6, edge_factor=4, seed=24, directed=True)
        engine = ChannelEngine(g, WCCBasicBulk, num_workers=2, executor="process")
        engine.run()
        pool = engine.backend.pool
        procs = list(pool._state.procs)
        segment_names = [seg.name for seg in pool._state.export._segments]

        pool.shutdown()
        pool.shutdown()  # idempotent
        assert pool.closed
        assert all(not p.is_alive() for p in procs)
        for name in segment_names:
            # unlinked: the OS no longer knows the segment
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        with pytest.raises(WorkerProcessError, match="shut down"):
            engine.run()

    def test_garbage_collected_pool_cleans_up(self):
        """Dropping every reference (the atexit/GC path) releases the
        processes and shared memory without an explicit shutdown."""
        import gc

        from repro.algorithms.wcc import WCCBasicBulk

        g = rmat(6, edge_factor=4, seed=25, directed=True)
        engine = ChannelEngine(g, WCCBasicBulk, num_workers=2, executor="process")
        engine.run()
        pool = engine.backend.pool
        procs = list(pool._state.procs)
        segment_names = [seg.name for seg in pool._state.export._segments]
        del engine, pool
        gc.collect()
        for p in procs:
            p.join(timeout=10)
        assert all(not p.is_alive() for p in procs)
        for name in segment_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
