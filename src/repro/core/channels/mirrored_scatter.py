"""``MirroredScatter``: sender-side combining via mirroring, as a channel.

Pregel+ offers mirroring (its *ghost mode*) only as a global engine mode
that cannot be combined with its other optimizations — exactly the
rigidity the paper criticizes.  This channel packages the same technique
behind the channel interface, which makes it composable with everything
else: a vertex whose registered edge set reaches a worker through at
least ``threshold`` edges sends that worker *one* value, and the
receiving side expands it through a pre-built mirror adjacency.

This is an extension beyond the paper's three optimized channels (the
paper's Section VI explicitly lists mirroring as a known technique its
framework could host).  Interface-wise it is a drop-in replacement for
:class:`ScatterCombine`: ``add_edges`` once, ``set_message`` per
superstep, ``get_message`` next superstep.

Compared to ScatterCombine on the same traffic:

* fewer bytes whenever one sender has many neighbors on one worker
  (one record per (vertex, worker) instead of one per unique
  destination);
* more receive-side work (the expansion), which is why the paper found
  ghost mode saves bytes but not time (Table V top).
"""

from __future__ import annotations

import numpy as np

from repro.core.channel import Channel
from repro.core.combiner import Combiner
from repro.core.vertex import Vertex
from repro.core.worker import Worker
from repro.runtime.serialization import INT32
from repro.util import group_starts

__all__ = ["MirroredScatter"]


class MirroredScatter(Channel):
    """Scatter with sender-side mirroring above a degree threshold.

    Parameters
    ----------
    worker:
        Owning worker.
    combiner:
        Receiver-side reduction (must carry a ufunc).
    threshold:
        Mirroring kicks in for a (vertex, peer) pair once the vertex has
        at least this many edges to that peer (the paper used 16 for
        Pregel+'s ghost mode).
    """

    def __init__(self, worker: Worker, combiner: Combiner, threshold: int = 16) -> None:
        super().__init__(worker)
        self.combiner = combiner
        self.value_codec = combiner.codec
        self.threshold = threshold
        # edge collection (scalar appends + bulk array chunks)
        self._edge_src: list[int] = []
        self._edge_dst: list[int] = []
        self._edge_src_chunks: list[np.ndarray] = []
        self._edge_dst_chunks: list[np.ndarray] = []
        self._built = False
        # per-superstep state
        self._values = np.full(
            worker.num_local, combiner.identity, dtype=combiner.codec.dtype
        )
        self._dirty = False
        # receive side
        self._slots = np.full(
            worker.num_local, combiner.identity, dtype=combiner.codec.dtype
        )
        self._has_msg = np.zeros(worker.num_local, dtype=bool)
        # plain (non-mirrored) dispatch: per peer (sender local idx, dst id)
        self._plain_src: list[np.ndarray] = []
        self._plain_dst_wire: list[np.ndarray] = []
        # mirrored dispatch: per peer, sender local indices whose value is
        # shipped once and expanded remotely
        self._mirror_src: list[np.ndarray] = []
        self._mirror_src_wire: list[np.ndarray] = []
        # expansion tables on the receiving side: (src vertex id -> local
        # neighbor indices); exchanged once during the first serialize
        self._expansion: dict[int, np.ndarray] = {}
        self._mirror_setup_out: list[tuple[np.ndarray, np.ndarray] | None] = []
        self._setup_sent = False

    # -- setup ------------------------------------------------------------
    def add_edge(self, v: Vertex, dst: int) -> None:
        self._edge_src.append(v.local)
        self._edge_dst.append(dst)
        self._built = False

    def add_edges(self, v: Vertex, dsts: np.ndarray) -> None:
        self._edge_src.extend([v.local] * len(dsts))
        self._edge_dst.extend(np.asarray(dsts).tolist())
        self._built = False

    def add_edges_bulk(self, local_src: np.ndarray, dsts: np.ndarray) -> None:
        """Register many edges at once (``local_src[i]`` -> ``dsts[i]``)."""
        local_src = np.asarray(local_src, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        if local_src.shape != dsts.shape:
            raise ValueError("local_src and dsts must have equal length")
        self._edge_src_chunks.append(local_src)
        self._edge_dst_chunks.append(dsts)
        self._built = False

    def _collected_edges(self) -> tuple[np.ndarray, np.ndarray]:
        src = np.concatenate(
            [np.asarray(self._edge_src, dtype=np.int64)] + self._edge_src_chunks
        )
        dst = np.concatenate(
            [np.asarray(self._edge_dst, dtype=np.int64)] + self._edge_dst_chunks
        )
        return src, dst

    def _build(self) -> None:
        src, dst = self._collected_edges()
        owner = self.worker.owner[dst] if dst.size else dst.copy()
        m = self.num_workers
        self._plain_src = []
        self._plain_dst_wire = []
        self._mirror_src = []
        self._mirror_src_wire = []
        self._mirror_setup_out = []
        local_ids = self.worker.local_ids
        for peer in range(m):
            sel = owner == peer
            psrc, pdst = src[sel], dst[sel]
            # count this sender's edges into `peer`
            if psrc.size:
                order = np.argsort(psrc, kind="stable")
                psrc, pdst = psrc[order], pdst[order]
                uniq_src, starts = group_starts(psrc)
                counts = np.diff(np.append(starts, psrc.size))
                heavy = counts >= self.threshold
            else:
                uniq_src = psrc[:0]
                starts = psrc[:0]
                counts = psrc[:0]
                heavy = np.zeros(0, dtype=bool)

            heavy_senders = uniq_src[heavy]
            heavy_mask_per_edge = np.isin(psrc, heavy_senders)
            # plain records: (unique dst per worker) among light edges
            lsrc, ldst = psrc[~heavy_mask_per_edge], pdst[~heavy_mask_per_edge]
            order = np.argsort(ldst, kind="stable")
            ldst_sorted = ldst[order]
            lsrc_sorted = lsrc[order]
            self._plain_src.append(lsrc_sorted)
            self._plain_dst_wire.append(ldst_sorted.astype(np.int32))
            # mirrored senders
            self._mirror_src.append(heavy_senders)
            self._mirror_src_wire.append(local_ids[heavy_senders].astype(np.int32))
            # expansion table rows to ship: (sender id, its dsts on peer)
            if heavy_senders.size:
                ids = []
                dsts = []
                for s in heavy_senders:
                    sel2 = psrc == s
                    ids.append(np.full(int(sel2.sum()), local_ids[s], dtype=np.int64))
                    dsts.append(pdst[sel2])
                self._mirror_setup_out.append(
                    (np.concatenate(ids), np.concatenate(dsts))
                )
            else:
                self._mirror_setup_out.append(None)
        self._built = True

    # -- per-superstep API ---------------------------------------------------
    def set_message(self, v: Vertex, value) -> None:
        self._values[v.local] = value
        self._dirty = True

    send_message = set_message

    def set_messages(self, local_idx: np.ndarray, values: np.ndarray) -> None:
        """Array form of :meth:`set_message` for bulk programs."""
        self._values[local_idx] = values
        self._dirty = True

    def get_message(self, v: Vertex):
        return self._slots[v.local]

    def get_messages(self) -> tuple[np.ndarray, np.ndarray]:
        """``(values, has_msg)`` read-only views over all local vertices."""
        return self._slots, self._has_msg

    def has_message(self, v: Vertex) -> bool:
        return bool(self._has_msg[v.local])

    # -- checkpointing -------------------------------------------------------
    def snapshot(self) -> dict:
        src, dst = self._collected_edges()
        return {
            "edge_src": src,
            "edge_dst": dst,
            "values": self._values.copy(),
            "dirty": self._dirty,
            "slots": self._slots.copy(),
            "has_msg": self._has_msg.copy(),
            # receive-side expansion tables cannot be re-derived: their
            # setup frames are only ever shipped once (first superstep)
            "expansion": {int(k): v.copy() for k, v in self._expansion.items()},
            "setup_sent": self._setup_sent,
        }

    def restore(self, state: dict) -> None:
        self._edge_src, self._edge_dst = [], []
        self._edge_src_chunks = [state["edge_src"].copy()]
        self._edge_dst_chunks = [state["edge_dst"].copy()]
        self._built = False
        self._values[...] = state["values"]
        self._dirty = state["dirty"]
        self._slots[...] = state["slots"]
        self._has_msg[...] = state["has_msg"]
        self._expansion = {int(k): v for k, v in state["expansion"].items()}
        self._setup_sent = state["setup_sent"]

    # -- round protocol -----------------------------------------------------
    def serialize(self) -> None:
        if self.round != 0 or not self._dirty:
            return
        if not self._built:
            self._build()
        self._dirty = False
        net_msgs = 0
        me = self.worker.worker_id
        for peer in range(self.num_workers):
            setup = self._mirror_setup_out[peer]
            send_setup = setup is not None and not self._setup_sent
            lsrc = self._plain_src[peer]
            msrc = self._mirror_src[peer]
            if not (send_setup or lsrc.size or msrc.size):
                continue

            chunks: list[bytes] = []
            # setup section (first superstep only): the expansion tables
            if send_setup:
                ids, dsts = setup
                chunks.append(INT32.encode_one(int(ids.size)))
                chunks.append(ids.astype(np.int32).tobytes())
                chunks.append(dsts.astype(np.int32).tobytes())
                if peer != me:
                    net_msgs += int(ids.size)
            else:
                chunks.append(INT32.encode_one(0))

            # plain section: per-unique-dst combined records
            if lsrc.size:
                dst_sorted = self._plain_dst_wire[peer]
                uniq_dst, starts = group_starts(dst_sorted.astype(np.int64))
                per_edge = self._values[lsrc]
                combined = self.combiner.reduceat(per_edge, starts)
                chunks.append(INT32.encode_one(int(uniq_dst.size)))
                chunks.append(uniq_dst.astype(np.int32).tobytes())
                chunks.append(self.value_codec.encode_array(combined))
                if peer != me:
                    net_msgs += int(uniq_dst.size)
            else:
                chunks.append(INT32.encode_one(0))

            # mirrored section: one value per heavy sender
            if msrc.size:
                chunks.append(self._mirror_src_wire[peer].tobytes())
                chunks.append(self.value_codec.encode_array(self._values[msrc]))
                if peer != me:
                    net_msgs += int(msrc.size)

            self.emit(peer, b"".join(chunks))
        self._setup_sent = True
        self.count_net_messages(net_msgs)

    def deserialize(self, payloads: list[tuple[int, memoryview]]) -> None:
        self.round += 1
        worker = self.worker
        comb = self.combiner
        self._slots[:] = comb.identity
        self._has_msg[:] = False
        for _src, payload in payloads:
            off = 0
            # setup section (only present in the first superstep's frames)
            n_setup = int(INT32.decode_one(payload, off))
            off += INT32.itemsize
            if n_setup:
                ids = INT32.decode_array(payload[off : off + 4 * n_setup]).astype(np.int64)
                off += 4 * n_setup
                dsts = INT32.decode_array(payload[off : off + 4 * n_setup]).astype(np.int64)
                off += 4 * n_setup
                local = worker._local_index[dsts]
                order = np.argsort(ids, kind="stable")
                uniq, starts = group_starts(ids[order])
                bounds = np.append(starts, ids.size)
                sorted_local = local[order]
                for k, sid in enumerate(uniq.tolist()):
                    self._expansion[sid] = sorted_local[bounds[k] : bounds[k + 1]]
            # plain section
            n_plain = int(INT32.decode_one(payload, off))
            off += INT32.itemsize
            if n_plain:
                dst = INT32.decode_array(payload[off : off + 4 * n_plain]).astype(np.int64)
                off += 4 * n_plain
                vals = self.value_codec.decode_array(payload[off:], n_plain)
                off += n_plain * self.value_codec.itemsize
                local = worker._local_index[dst]
                comb.accumulate_at(self._slots, local, vals)
                self._has_msg[local] = True
            # mirrored section: the remainder of the payload
            remaining = len(payload) - off
            if remaining:
                rec = INT32.itemsize + self.value_codec.itemsize
                count = remaining // rec
                sids = INT32.decode_array(payload[off : off + 4 * count]).astype(np.int64)
                off += 4 * count
                vals = self.value_codec.decode_array(payload[off:], count)
                for sid, val in zip(sids.tolist(), vals):
                    local = self._expansion[sid]
                    comb.accumulate_at(
                        self._slots, local, np.full(local.size, val, dtype=vals.dtype)
                    )
                    self._has_msg[local] = True
        worker.activate_local_bulk(np.flatnonzero(self._has_msg))
