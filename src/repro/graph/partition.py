"""Vertex partitioners: assign each vertex to one of M workers.

``hash_partition`` is the Pregel default (random assignment — what the
paper uses except where it says "(P)").  ``metis_like_partition`` is the
stand-in for METIS: a multi-source BFS growth that produces balanced,
locality-preserving blocks.  The paper only needs the partitioner to cut
few edges; any reasonable locality partitioner exhibits the same
"partitioned graph → propagation channel wins big" effect.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.graph import Graph

__all__ = [
    "hash_partition",
    "range_partition",
    "degree_range_partition",
    "metis_like_partition",
    "extend_partition",
    "partition_quality",
]


def hash_partition(num_vertices: int, num_workers: int, seed: int = 0) -> np.ndarray:
    """Pseudo-random assignment, the Pregel default.

    Deterministic given the seed; statistically balanced.
    """
    rng = np.random.default_rng(seed)
    return rng.integers(0, num_workers, size=num_vertices, dtype=np.int64)


def extend_partition(
    owner: np.ndarray, num_new: int, num_workers: int, seed: int = 0
) -> np.ndarray:
    """Assign ``num_new`` appended vertex ids without moving any existing
    vertex (streaming-graph contract: ownership — and with it every
    per-worker state array — stays aligned across epochs).

    New ids get hash-partition assignments whose seed folds in the old
    size, so growing in two steps or one yields the same final array.
    """
    owner = np.asarray(owner, dtype=np.int64)
    if num_new < 0:
        raise ValueError("num_new must be >= 0")
    if num_new == 0:
        return owner
    parts = [owner]
    # one id at a time keeps the result invariant to batch grouping
    for i in range(num_new):
        parts.append(hash_partition(1, num_workers, seed=seed + owner.size + i))
    return np.concatenate(parts)


def range_partition(num_vertices: int, num_workers: int) -> np.ndarray:
    """Contiguous ID ranges of (nearly) equal size."""
    return (
        np.arange(num_vertices, dtype=np.int64) * num_workers // max(num_vertices, 1)
    )


def degree_range_partition(graph: Graph, num_workers: int) -> np.ndarray:
    """Contiguous ID ranges balanced by *arc count* instead of vertex count.

    Reads only the O(V) ``indptr`` array — ``indptr[v]`` is already the
    cumulative out-degree — so partitioning a 10M-edge mmap graph never
    touches the edge files: worker ``w`` owns the id range whose arcs span
    ``[w/M, (w+1)/M)`` of the total.  On skewed (RMAT-style) graphs this
    equalizes per-worker compute and scatter volume where plain
    :func:`range_partition` would hand one worker every hub.  Trailing
    zero-degree vertices all land on the last worker; graphs with no arcs
    fall back to vertex-balanced ranges.
    """
    indptr = np.asarray(graph.indptr)
    total = int(indptr[-1])
    n = graph.num_vertices
    if total == 0:
        return range_partition(n, num_workers)
    # midpoint of each vertex's arc span decides its bucket, so a vertex
    # straddling a boundary goes to the side holding most of its arcs
    mid = (indptr[:-1] + indptr[1:]) // 2
    owner = (mid * num_workers // total).astype(np.int64)
    return np.minimum(owner, num_workers - 1)


def metis_like_partition(graph: Graph, num_workers: int, seed: int = 0) -> np.ndarray:
    """Balanced BFS-grown blocks (METIS substitute).

    Grows ``num_workers`` blocks breadth-first from spread-out seeds,
    always extending the currently smallest block, so blocks are balanced
    within one vertex of the frontier granularity and internal edges
    dominate on graphs with locality.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    rng = np.random.default_rng(seed)
    owner = np.full(n, -1, dtype=np.int64)
    capacity = (n + num_workers - 1) // num_workers

    order = rng.permutation(n)
    frontiers: list[deque[int]] = [deque() for _ in range(num_workers)]
    sizes = np.zeros(num_workers, dtype=np.int64)
    next_seed = 0

    def take_seed() -> int:
        nonlocal next_seed
        while next_seed < n and owner[order[next_seed]] != -1:
            next_seed += 1
        return int(order[next_seed]) if next_seed < n else -1

    # initial seeds
    for b in range(num_workers):
        s = take_seed()
        if s == -1:
            break
        owner[s] = b
        sizes[b] += 1
        frontiers[b].append(s)

    assigned = int(sizes.sum())
    while assigned < n:
        # pick the smallest block that can still grow
        b = int(np.argmin(np.where(sizes < capacity, sizes, np.iinfo(np.int64).max)))
        grew = False
        while frontiers[b]:
            v = frontiers[b].popleft()
            for u in graph.neighbors(v):
                u = int(u)
                if owner[u] == -1:
                    owner[u] = b
                    sizes[b] += 1
                    assigned += 1
                    frontiers[b].append(u)
                    grew = True
                    break
            if grew:
                # v may have more unassigned neighbors; keep it in the frontier
                frontiers[b].append(v)
                break
        if not grew:
            # exhausted frontier (disconnected component); reseed this block
            s = take_seed()
            if s == -1:
                break
            owner[s] = b
            sizes[b] += 1
            assigned += 1
            frontiers[b].append(s)

    # safety: anything left (shouldn't happen) goes to the smallest block
    rest = np.flatnonzero(owner == -1)
    for v in rest:
        b = int(np.argmin(sizes))
        owner[v] = b
        sizes[b] += 1
    return owner


def partition_quality(graph: Graph, owner: np.ndarray) -> dict:
    """Report edge cut and balance of a partition.

    Returns a dict with ``internal_fraction`` (fraction of arcs whose both
    endpoints share a worker), ``edge_cut`` and ``imbalance`` (max block
    size over ideal size).
    """
    src, dst = graph.edge_array()
    internal = int(np.count_nonzero(owner[src] == owner[dst]))
    total = src.size
    sizes = np.bincount(owner, minlength=int(owner.max()) + 1 if owner.size else 1)
    ideal = graph.num_vertices / max(len(sizes), 1)
    return {
        "internal_fraction": internal / total if total else 1.0,
        "edge_cut": total - internal,
        "imbalance": float(sizes.max() / ideal) if graph.num_vertices else 1.0,
        "block_sizes": sizes,
    }
