"""User-facing program base class.

A :class:`VertexProgram` plays the role of the paper's ``Worker`` subclass
(e.g. ``PageRankWorker`` in Fig. 1): its constructor creates the channels,
``compute`` holds the per-vertex logic.  One instance is created per worker
by the engine, so instance attributes are per-worker state (the idiomatic
place for NumPy state arrays indexed by ``v.local``).

Differences from the paper's C++ API, by design:

* channel methods that refer to "the current vertex" take the
  :class:`~repro.core.vertex.Vertex` handle explicitly — explicit data flow
  is both more Pythonic and directly testable;
* per-vertex state lives in program-owned arrays rather than a
  ``value()`` struct, per the NumPy idiom of keeping hot state columnar.

Two compute paths exist (see ARCHITECTURE.md for when to use which):

* :class:`VertexProgram` — ``compute(v)`` is called once per active vertex.
* :class:`BulkVertexProgram` — ``compute_bulk(active)`` is called once per
  worker per superstep with the whole active set as a NumPy index array.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.vertex import Vertex
    from repro.core.worker import Worker

#: state value types the generic ``state_dict`` captures besides arrays
_SCALAR_STATE = (bool, int, float, str, bytes, np.bool_, np.integer, np.floating)

__all__ = ["VertexProgram", "BulkVertexProgram", "ProgramSpec"]


class ProgramSpec:
    """A program factory as *data*: an importable base class plus the
    class attributes to bake onto a dynamically created subclass.

    ``ProgramSpec(Base, {"warm": arr})(worker)`` behaves exactly like
    ``type("Base", (Base,), {"warm": arr})(worker)`` — the streaming
    planners used the latter to parameterize refresh programs with
    per-epoch schedules — but unlike an anonymous ``type(...)`` product,
    a spec survives ``pickle``: the base travels by reference (it must
    be importable) and the attributes by value.  That is what lets a
    persistent worker pool receive *next epoch's program* over a control
    pipe instead of being respawned around a new in-memory class
    (:meth:`repro.runtime.parallel.pool.WorkerPool.reconfigure`).

    The attribute dict is deliberately shared, not copied: every worker's
    subclass sees the same array objects, exactly as class attributes on
    one shared dynamic class would (each *process* still gets its own
    copy through pickling, as with any cross-process state).
    """

    __slots__ = ("base", "attrs", "name")

    def __init__(self, base: type, attrs: dict | None = None, name: str | None = None):
        self.base = base
        self.attrs = dict(attrs) if attrs else {}
        self.name = name or base.__name__

    def __call__(self, worker: "Worker"):
        cls = type(self.name, (self.base,), self.attrs)
        return cls(worker)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProgramSpec({self.base.__module__}.{self.base.__qualname__}, "
            f"attrs={sorted(self.attrs)})"
        )


def _capturable(value) -> bool:
    if value is None or isinstance(value, (np.ndarray,) + _SCALAR_STATE):
        return True
    if isinstance(value, (list, tuple)):
        return all(_capturable(v) for v in value)
    if isinstance(value, dict):
        return all(_capturable(k) and _capturable(v) for k, v in value.items())
    return False


class VertexProgram:
    """Base class for channel-based vertex programs.

    The engine calls :meth:`compute` once per active vertex per superstep;
    see ARCHITECTURE.md for the layer map and the columnar alternative,
    :class:`BulkVertexProgram`.
    """

    #: dispatch flag read by :meth:`Worker.run_compute`
    is_bulk = False

    def __init__(self, worker: "Worker") -> None:
        self.worker = worker

    # -- the algorithm ---------------------------------------------------
    def compute(self, v: "Vertex") -> None:
        raise NotImplementedError

    def before_superstep(self) -> None:
        """Called once per worker before every superstep, *including* ones
        where this worker has no active vertices.

        Multi-phase algorithms (Min-Label SCC, Boruvka MSF) use this as a
        distributed phase controller: every worker advances the same state
        machine from globally consistent inputs (aggregator results), and
        may wake vertices for the upcoming phase via
        ``self.worker.activate_local_bulk``.
        """

    def finalize(self) -> dict:
        """Called once after termination; return this worker's outputs
        (merged across workers into :class:`EngineResult.data`).  Keys are
        global vertex ids or named aggregates."""
        return {}

    # -- checkpointing ----------------------------------------------------
    def state_dict(self) -> dict:
        """This worker's per-program state, for checkpointing.

        The default captures every instance attribute that is a NumPy
        array, a scalar (including str/bytes), ``None``, or a
        list/tuple/dict of those — which covers all in-tree programs,
        scalar and bulk alike, since per-vertex state lives in
        program-owned arrays.  Channels checkpoint themselves (the engine
        calls each channel's ``snapshot()`` separately) and the worker
        handle is re-bound on restore, so both are skipped here.

        Raises ``TypeError`` on any other attribute type rather than
        silently dropping state — programs holding exotic state must
        override this (and :meth:`load_state_dict`).
        """
        from repro.core.channel import Channel

        state = {}
        for name, value in vars(self).items():
            if name == "worker" or isinstance(value, Channel):
                continue
            if not _capturable(value):
                raise TypeError(
                    f"{type(self).__name__}.{name} ({type(value).__name__}) "
                    "is not checkpointable by the generic state_dict(); "
                    "override state_dict()/load_state_dict()"
                )
            state[name] = value.copy() if isinstance(value, np.ndarray) else value
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore the attributes captured by :meth:`state_dict`.

        Same-shape arrays are copied **in place** so anything that
        aliased the old array (a channel ``respond_fn_bulk`` closure, a
        cached view) keeps seeing the restored state.
        """
        for name, value in state.items():
            current = getattr(self, name, None)
            if (
                isinstance(current, np.ndarray)
                and isinstance(value, np.ndarray)
                and current.shape == value.shape
                and current.dtype == value.dtype
            ):
                current[...] = value
            else:
                setattr(self, name, value.copy() if isinstance(value, np.ndarray) else value)

    # -- context helpers (mirror the paper's Worker API) --------------------
    @property
    def step_num(self) -> int:
        """1-based superstep number (the paper's ``step_num()``)."""
        return self.worker.step_num

    @property
    def num_vertices(self) -> int:
        """Total vertices in the graph (the paper's ``get_vnum()``)."""
        return self.worker.graph.num_vertices

    @property
    def num_local(self) -> int:
        """Vertices owned by this worker."""
        return self.worker.num_local


class BulkVertexProgram(VertexProgram):
    """Base class for columnar (whole-active-set) vertex programs.

    Instead of one ``compute(v)`` call per active vertex, the worker makes
    a single :meth:`compute_bulk` call per superstep, passing the sorted
    local indices of the active set.  Implementations operate on
    program-owned NumPy state arrays and the channels' array APIs
    (``set_messages``, ``send_messages``, ``get_messages``,
    ``add_edges_bulk``, ``Aggregator.add_bulk``), plus the worker's
    vectorized control surface (``halt_bulk``, ``activate_local_bulk``,
    ``local_adjacency``).  ARCHITECTURE.md documents the porting recipe
    and the FP-ordering rules that keep bulk output bit-identical to the
    scalar original.
    """

    is_bulk = True

    def compute_bulk(self, active: "np.ndarray") -> None:
        """Run one superstep over the whole active set (sorted local
        indices).  Called exactly once per worker per superstep with a
        non-empty frontier."""
        raise NotImplementedError

    def compute(self, v: "Vertex") -> None:  # pragma: no cover - guard
        raise TypeError(
            f"{type(self).__name__} is a bulk program; the engine calls "
            "compute_bulk(active), never per-vertex compute()"
        )
