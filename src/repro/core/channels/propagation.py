"""``Propagation``: accelerated label propagation (Fig. 7).

A simplified GAS model for propagation-based algorithms (connected
components, reachability labels, SSSP relaxation): each vertex holds a
value, and an update to a vertex is folded into its out-neighbors with a
commutative, *idempotent* combiner (min/max-style selection).  Instead of
one neighbor hop per superstep, every worker drives the propagation to a
**local fixpoint** between buffer exchanges, and the channel keeps
requesting exchange rounds until no worker has pending remote updates —
the whole propagation converges inside a single superstep, like a
Blogel block program but without user-written block code.

The combiner must be a selection operation (``h(a, a) == a``); this is the
class of computations the paper targets with this channel.  An optional
vectorized ``edge_fn(weights, values) -> contributions`` generalizes to
weighted relaxations (SSSP's ``dist + w``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.channel import Channel
from repro.core.combiner import Combiner
from repro.core.vertex import Vertex
from repro.core.worker import Worker
from repro.runtime.serialization import INT32
from repro.util import expand_ranges, group_starts

__all__ = ["Propagation"]


class Propagation(Channel):
    """Propagate values to a global fixpoint within one superstep.

    Parameters
    ----------
    worker:
        Owning worker.
    combiner:
        Idempotent selection combiner (e.g. ``MIN_I64``); must carry a
        ufunc — the local fixpoint is fully vectorized.
    edge_fn:
        Optional vectorized ``(edge_weights, source_values) ->
        contributions``.  Default propagates the source value unchanged.
    """

    def __init__(
        self,
        worker: Worker,
        combiner: Combiner,
        edge_fn: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
        max_local_hops: int | None = None,
    ) -> None:
        super().__init__(worker)
        if combiner.ufunc is None:
            raise ValueError("Propagation requires a combiner with a NumPy ufunc")
        if max_local_hops is not None and max_local_hops < 1:
            raise ValueError("max_local_hops must be >= 1")
        self.combiner = combiner
        self.edge_fn = edge_fn
        self.value_codec = combiner.codec
        #: ablation knob (D4b in DESIGN.md): cap the local fixpoint at this
        #: many frontier waves per exchange round.  ``1`` degenerates to
        #: plain per-superstep message passing (local edges still resolve
        #: immediately, remote ones wait for the next round); ``None`` is
        #: the paper's full block-style convergence.
        self.max_local_hops = max_local_hops
        n = worker.num_local
        self._values = np.full(n, combiner.identity, dtype=combiner.codec.dtype)
        self._dirty: list[int] = []
        # adjacency under construction
        self._src: list[int] = []
        self._dst: list[int] = []
        self._w: list[float] = []
        self._built = False
        # finalized local CSR
        self._indptr = np.zeros(n + 1, dtype=np.int64)
        self._edst_global = np.empty(0, dtype=np.int64)
        self._edst_local = np.empty(0, dtype=np.int64)  # -1 when remote
        self._eowner = np.empty(0, dtype=np.int64)
        self._eweight = np.empty(0, dtype=np.float64)
        # pending remote contributions (flat, combined lazily per peer)
        self._pending_np: list[tuple[np.ndarray, np.ndarray]] = []
        # frontier waves deferred by the max_local_hops budget
        self._deferred: list[np.ndarray] = []

    # -- setup ------------------------------------------------------------
    def add_edge(self, v: Vertex, dst: int, weight: float = 1.0) -> None:
        """Register a propagation edge ``v -> dst``."""
        self._src.append(v.local)
        self._dst.append(dst)
        self._w.append(weight)
        self._built = False

    def add_edges(self, v: Vertex, dsts: np.ndarray, weights: np.ndarray | None = None) -> None:
        k = len(dsts)
        self._src.extend([v.local] * k)
        self._dst.extend(np.asarray(dsts).tolist())
        if weights is None:
            self._w.extend([1.0] * k)
        else:
            self._w.extend(np.asarray(weights, dtype=np.float64).tolist())
        self._built = False

    def set_value(self, v: Vertex, value) -> None:
        """Seed ``v``'s value; it becomes a propagation source this
        superstep."""
        self._values[v.local] = value
        self._dirty.append(v.local)

    def get_value(self, v: Vertex):
        """The converged value of ``v`` (valid once propagation finished,
        i.e. from the next superstep on)."""
        return self._values[v.local]

    def values_snapshot(self) -> np.ndarray:
        """Copy of this worker's converged value array (finalize helper)."""
        return self._values.copy()

    def reset(self) -> None:
        """Clear edges and values for reuse in a later phase.

        Extension over the paper's API: multi-phase algorithms (e.g.
        Min-Label SCC) re-run propagation on a shrinking subgraph each
        iteration, which needs the channel to be re-seedable.
        """
        self._src, self._dst, self._w = [], [], []
        self._built = False
        self._values[:] = self.combiner.identity
        self._dirty = []
        self._pending_np = []
        self._deferred = []

    # -- checkpointing -------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "edge_src": np.asarray(self._src, dtype=np.int64),
            "edge_dst": np.asarray(self._dst, dtype=np.int64),
            "edge_w": np.asarray(self._w, dtype=np.float64),
            "values": self._values.copy(),
            "dirty": list(self._dirty),
            "pending": [(d.copy(), v.copy()) for d, v in self._pending_np],
            "deferred": [f.copy() for f in self._deferred],
        }

    def restore(self, state: dict) -> None:
        # the local CSR is rebuilt lazily by _build(), deterministic
        # given the same flat edge arrays
        self._src = state["edge_src"].tolist()
        self._dst = state["edge_dst"].tolist()
        self._w = state["edge_w"].tolist()
        self._built = False
        self._values[...] = state["values"]
        self._dirty = list(state["dirty"])
        self._pending_np = [(d, v) for d, v in state["pending"]]
        self._deferred = list(state["deferred"])

    def migrate_states(self, states: list[dict], ctx) -> list[dict]:
        # only quiescent channels migrate: at a superstep boundary the
        # exchange loop has driven propagation to its global fixpoint
        # (again() was False everywhere), so dirty/pending/deferred are
        # all empty — anything else means a mid-propagation capture
        for w, s in enumerate(states):
            if s["dirty"] or s["pending"] or s["deferred"]:
                raise RuntimeError(
                    f"Propagation on worker {w} has in-flight propagation "
                    "state; migration is only defined at a quiescent "
                    "superstep boundary"
                )
        values = ctx.remap_vertex_arrays([s["values"] for s in states])
        src_g = np.concatenate(
            [ctx.old_locals[w][s["edge_src"]] for w, s in enumerate(states)]
        )
        dst_g = np.concatenate([s["edge_dst"] for s in states])
        weight = np.concatenate([s["edge_w"] for s in states])
        out = []
        for w, gids, (dsts, ws) in ctx.route(src_g, dst_g, weight):
            out.append(
                {
                    "edge_src": ctx.localize(w, gids),
                    "edge_dst": dsts,
                    "edge_w": ws,
                    "values": values[w],
                    "dirty": [],
                    "pending": [],
                    "deferred": [],
                }
            )
        return out

    # -- structure -----------------------------------------------------------
    def _build(self) -> None:
        n = self.worker.num_local
        src = np.asarray(self._src, dtype=np.int64)
        dst = np.asarray(self._dst, dtype=np.int64)
        w = np.asarray(self._w, dtype=np.float64)
        order = np.argsort(src, kind="stable")
        src, dst, w = src[order], dst[order], w[order]
        counts = np.bincount(src, minlength=n)
        self._indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._indptr[1:])
        self._edst_global = dst
        self._eowner = self.worker.owner[dst] if dst.size else dst.copy()
        local = np.full(dst.size, -1, dtype=np.int64)
        mine = self._eowner == self.worker.worker_id
        if mine.any():
            local[mine] = self.worker._local_index[dst[mine]]
        self._edst_local = local
        self._eweight = w
        self._built = True

    # -- the local fixpoint (vectorized frontier relaxation) -------------------
    def _local_fixpoint(self, frontier: np.ndarray) -> None:
        values = self._values
        combiner = self.combiner
        ufunc = combiner.ufunc
        indptr = self._indptr
        hops = 0
        while frontier.size:
            if self.max_local_hops is not None and hops >= self.max_local_hops:
                # hop budget exhausted: park the remaining frontier until
                # the next exchange round
                self._deferred.append(frontier)
                return
            hops += 1
            counts = indptr[frontier + 1] - indptr[frontier]
            eidx = expand_ranges(indptr[frontier], counts)
            if eidx.size == 0:
                return
            contrib = values[np.repeat(frontier, counts)]
            if self.edge_fn is not None:
                contrib = np.asarray(
                    self.edge_fn(self._eweight[eidx], contrib),
                    dtype=self.value_codec.dtype,
                )
            tgt_local = self._edst_local[eidx]
            remote = tgt_local < 0
            if remote.any():
                self._pending_np.append(
                    (self._edst_global[eidx[remote]], contrib[remote])
                )
            lmask = ~remote
            if not lmask.any():
                return
            tgt = tgt_local[lmask]
            c = contrib[lmask]
            order = np.argsort(tgt, kind="stable")
            tgt_sorted, c_sorted = tgt[order], c[order]
            uniq_tgt, starts = group_starts(tgt_sorted)
            folded = ufunc.reduceat(c_sorted, starts)
            new = ufunc(values[uniq_tgt], folded)
            changed = new != values[uniq_tgt]
            upd = uniq_tgt[changed]
            values[upd] = new[changed]
            frontier = upd
            if upd.size:
                self.worker.activate_local_bulk(upd)

    def _pending_per_peer(self) -> list[tuple[np.ndarray, np.ndarray]] | None:
        """Combine flat pending (dst, value) pairs per unique destination
        and split by owning worker; returns None when nothing is pending."""
        if not self._pending_np:
            return None
        dst = np.concatenate([d for d, _ in self._pending_np])
        val = np.concatenate([v for _, v in self._pending_np])
        self._pending_np = []
        order = np.argsort(dst, kind="stable")
        dst, val = dst[order], val[order]
        uniq, starts = group_starts(dst)
        folded = self.combiner.ufunc.reduceat(val, starts)
        owners = self.worker.owner[uniq]
        out: list[tuple[np.ndarray, np.ndarray]] = []
        for peer in range(self.num_workers):
            sel = owners == peer
            out.append((uniq[sel], folded[sel]))
        return out

    # -- round protocol -----------------------------------------------------
    def serialize(self) -> None:
        if self.round == 0:
            if not self._built:
                self._build()
            if self._dirty:
                frontier = np.unique(np.asarray(self._dirty, dtype=np.int64))
                self._dirty = []
                self._local_fixpoint(frontier)
        pending = self._pending_per_peer()
        if pending is None:
            return
        net_msgs = 0
        for peer, (dst, val) in enumerate(pending):
            if dst.size == 0:
                continue
            payload = dst.astype(np.int32).tobytes() + self.value_codec.encode_array(val)
            self.emit(peer, payload)
            if peer != self.worker.worker_id:
                net_msgs += int(dst.size)
        self.count_net_messages(net_msgs)

    def deserialize(self, payloads: list[tuple[int, memoryview]]) -> None:
        self.round += 1
        worker = self.worker
        itemsize = INT32.itemsize + self.value_codec.itemsize
        changed_all: list[np.ndarray] = []
        for _src, payload in payloads:
            count = len(payload) // itemsize
            dst = INT32.decode_array(payload[: count * INT32.itemsize]).astype(np.int64)
            vals = self.value_codec.decode_array(payload[count * INT32.itemsize :], count)
            local = worker._local_index[dst]
            old = self._values[local]
            new = self.combiner.ufunc(old, vals)
            chg = new != old
            if chg.any():
                upd = local[chg]
                self._values[upd] = new[chg]
                changed_all.append(upd)
        if self._deferred:
            changed_all.extend(self._deferred)
            self._deferred = []
        if changed_all:
            frontier = np.unique(np.concatenate(changed_all))
            worker.activate_local_bulk(frontier)
            self._local_fixpoint(frontier)

    def again(self) -> bool:
        return bool(self._pending_np) or bool(self._deferred)
