"""Execution substrate: simulated cluster, process backend, accounting.

This package replaces the paper's 8-node EC2 cluster.  Messages are
serialized into real byte buffers (:mod:`repro.runtime.serialization`),
exchanged between workers (:mod:`repro.runtime.buffers` in-process, or
:mod:`repro.runtime.parallel` across real worker processes), and
accounted both in bytes and in simulated time through a simple network
cost model (:mod:`repro.runtime.costmodel`).  The superstep drive loop
itself lives behind the pluggable
:class:`repro.runtime.executor.ExecutorBackend` seam.  All experiment
metrics are gathered by :class:`repro.runtime.metrics.MetricsCollector`.
"""

from repro.runtime.serialization import (
    Codec,
    INT32,
    INT64,
    FLOAT32,
    FLOAT64,
    UINT8,
    pair_codec,
    struct_codec,
    BufferWriter,
    BufferReader,
)
from repro.runtime.buffers import WorkerBuffers, BufferExchange
from repro.runtime.checkpoint import (
    SNAPSHOT_VERSION,
    Snapshot,
    decode_state,
    encode_state,
)
from repro.runtime.costmodel import NetworkModel, DEFAULT_NETWORK
from repro.runtime.executor import ExecutorBackend, SimBackend
from repro.runtime.metrics import MetricsCollector, SuperstepRecord

__all__ = [
    "Codec",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "UINT8",
    "pair_codec",
    "struct_codec",
    "BufferWriter",
    "BufferReader",
    "WorkerBuffers",
    "BufferExchange",
    "SNAPSHOT_VERSION",
    "Snapshot",
    "encode_state",
    "decode_state",
    "NetworkModel",
    "DEFAULT_NETWORK",
    "ExecutorBackend",
    "SimBackend",
    "MetricsCollector",
    "SuperstepRecord",
]
