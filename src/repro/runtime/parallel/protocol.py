"""Pickle-free control-plane messages and crash-aware receives.

Every command and reply crossing a control pipe is a plain dict of
scalars/arrays/lists, serialized with the checkpoint layer's tagged
binary codec (:func:`repro.runtime.checkpoint.encode_state`) and moved
with ``Connection.send_bytes`` — the process backend never pickles
anything, matching how the channels themselves refuse to ship live
object references.

Receives are supervised: the parent polls with a short timeout and
checks worker liveness between polls, so a worker process dying (OOM
kill, segfault, ``os._exit``) surfaces as a :class:`WorkerProcessError`
instead of a hang.
"""

from __future__ import annotations

from multiprocessing.connection import Connection

from repro.runtime.checkpoint import decode_state, encode_state

__all__ = ["WorkerProcessError", "send_msg", "recv_msg", "recv_supervised"]

#: seconds between liveness checks while waiting on a reply
_POLL_INTERVAL = 0.05


class WorkerProcessError(RuntimeError):
    """A worker process died or reported a failure."""


def send_msg(conn: Connection, msg: dict) -> None:
    conn.send_bytes(encode_state(msg))


def recv_msg(conn: Connection) -> dict:
    return decode_state(conn.recv_bytes())


def recv_supervised(conn: Connection, worker_id: int, procs, phase: str) -> dict:
    """Receive worker ``worker_id``'s reply, watching *all* processes.

    Any worker dying aborts the wait — not just the one being awaited:
    with peer-to-peer frame pipes a live worker may itself be blocked on
    frames from the dead one, so its reply would never come.

    A reply carrying an ``error`` key (a formatted child traceback) is
    also raised as :class:`WorkerProcessError`.
    """
    try:
        while not conn.poll(_POLL_INTERVAL):
            for w, proc in enumerate(procs):
                if not proc.is_alive():
                    raise WorkerProcessError(
                        f"worker process {w} died (exit code {proc.exitcode}) "
                        f"during {phase}"
                    )
        msg = recv_msg(conn)
    except EOFError:
        # the awaited worker's pipe closed without a reply: it died
        # between liveness checks (poll reports readable on EOF)
        proc = procs[worker_id]
        proc.join(timeout=1)
        raise WorkerProcessError(
            f"worker process {worker_id} died (exit code {proc.exitcode}) "
            f"during {phase}"
        ) from None
    if "error" in msg:
        raise WorkerProcessError(
            f"worker process {worker_id} failed during {phase}:\n{msg['error']}"
        )
    return msg
