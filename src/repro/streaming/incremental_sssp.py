"""Incremental SSSP: delta-faithful re-relaxation with deletion-triggered
invalidation.

Distances only ever *shrink* under Bellman-Ford relaxation, so the two
halves of a delta need different treatment:

* **insertions** can only shorten paths — seeding the inserted arcs'
  sources and re-relaxing converges from the warm distances directly.
* **deletions** can lengthen paths, so warm distances that *depended* on a
  deleted arc are poison.  The planner walks the old shortest-path DAG
  downstream from each deleted arc (``dist[v] == dist[u] + w``, exact FP
  equality — the stored distances were produced by that very addition)
  and invalidates the closure back to ``inf``.  Surviving in-neighbors of
  the invalidated region are seeded to re-relax it.

Because relaxation's fixed point on the mutated graph is unique — path
lengths are folded left-to-right along each path in both runs and MIN is
exact — the refreshed distances are bit-identical to a cold full run.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.sssp import run_sssp
from repro.core import BulkVertexProgram, CombinedMessage, MIN_F64, ProgramSpec
from repro.graph.graph import Graph
from repro.streaming.delta import ApplyStats
from repro.streaming.plan import RefreshPlan, StreamAlgorithm, in_neighbor_mask
from repro.util import expand_ranges

__all__ = ["SSSPIncrementalBulk", "SSSPStream", "invalidated_by_deletions"]


class SSSPIncrementalBulk(BulkVertexProgram):
    """Warm-started Bellman-Ford relaxation.

    Superstep 1 re-announces ``dist + w`` from every seeded vertex with a
    finite warm distance (invalidated vertices hold ``inf`` and stay
    silent); later supersteps are exactly the cold
    :class:`~repro.algorithms.sssp.SSSPBasicBulk` relax-on-improvement
    loop.  With ``warm_dist = [0 at source, inf elsewhere]`` and all
    vertices seeded, superstep 1 degenerates to the cold program's
    source-only kick-off.

    ``announce_targets`` restricts superstep 1 to destinations that can
    actually use a re-announcement: the invalidated region plus inserted
    arcs' heads.  Dropping the rest is sound — for a surviving arc
    ``(u, v)`` between surviving vertices, the old fixed point already
    guarantees ``dist(v) <= dist(u) + w`` — and spares the flood of
    no-op messages a large boundary would otherwise send.
    """

    warm_dist: np.ndarray  # (n,) float64, set by the planner
    announce_targets: np.ndarray | None = None  # (n,) bool, None = all

    def __init__(self, worker):
        super().__init__(worker)
        self.msg = CombinedMessage(worker, MIN_F64)
        self.dist = self.warm_dist[worker.local_ids].copy()

    def compute_bulk(self, active: np.ndarray) -> None:
        worker = self.worker
        adj = worker.local_adjacency()
        if self.step_num == 1:
            settled = active[np.isfinite(self.dist[active])]
            dists = self.dist[settled]
        else:
            inbox, _ = self.msg.get_messages()
            m = inbox[active]
            improved = m < self.dist[active]
            settled = active[improved]
            dists = m[improved]
            self.dist[settled] = dists
        if settled.size:
            dsts = adj.gather(settled)
            w = adj.gather_weights(settled)
            vals = np.repeat(dists, adj.degrees[settled]) + w
            if self.step_num == 1 and self.announce_targets is not None:
                keep = self.announce_targets[dsts]
                dsts, vals = dsts[keep], vals[keep]
            self.msg.send_messages(dsts, vals)
        worker.halt_bulk(active)

    def finalize(self) -> dict:
        return {int(g): float(self.dist[i]) for i, g in enumerate(self.worker.local_ids)}


def invalidated_by_deletions(
    old_graph: Graph, dist: np.ndarray, stats: ApplyStats, source: int
) -> np.ndarray:
    """Boolean mask of vertices whose warm distance may have flowed
    through a deleted arc (downstream closure over the old SP-DAG)."""
    n = old_graph.num_vertices
    inval = np.zeros(n, dtype=bool)
    if stats.del_src.size == 0:
        return inval
    w = (
        stats.del_weights
        if stats.del_weights is not None
        else np.ones(stats.del_src.size)
    )
    u, v = stats.del_src, stats.del_dst
    hit = np.isfinite(dist[u]) & (dist[v] == dist[u] + w) & (v != source)
    frontier = np.unique(v[hit])
    indptr, indices, weights = old_graph.indptr, old_graph.indices, old_graph.weights
    while frontier.size:
        inval[frontier] = True
        deg = indptr[frontier + 1] - indptr[frontier]
        pos = expand_ranges(indptr[frontier], deg)
        x = indices[pos]
        wx = np.ones(x.size) if weights is None else weights[pos]
        p = np.repeat(frontier, deg)
        ok = (
            (x != source)
            & ~inval[x]
            & np.isfinite(dist[p])
            & (dist[x] == dist[p] + wx)
        )
        frontier = np.unique(x[ok])
    return inval


class SSSPStream(StreamAlgorithm):
    name = "sssp"

    def __init__(self, source: int = 0):
        self.source = source

    def plan(
        self,
        old_graph: Graph,
        new_graph: Graph,
        stats: ApplyStats | None,
        state: dict | None,
        refresh: str,
    ) -> RefreshPlan:
        n_new = new_graph.num_vertices
        if refresh == "full" or state is None or stats is None:
            warm = np.full(n_new, np.inf)
            warm[self.source] = 0.0
            plan_seeds, affected, mode, targets = None, n_new, "full", None
        else:
            dist = state["dist"]
            n_old = dist.size
            inval = invalidated_by_deletions(old_graph, dist, stats, self.source)
            warm = np.concatenate([dist, np.full(n_new - n_old, np.inf)])
            warm[:n_old][inval] = np.inf
            seed = np.zeros(n_new, dtype=bool)
            # surviving boundary: whoever can still reach the invalidated
            # region in the new graph re-announces its distance
            if inval.any():
                inval_new = np.zeros(n_new, dtype=bool)
                inval_new[:n_old] = inval
                seed |= in_neighbor_mask(new_graph, inval_new)
            seed[stats.ins_src] = True
            seed &= np.isfinite(warm)  # silent vertices need not wake
            plan_seeds = np.flatnonzero(seed)
            affected = int(inval.sum() + stats.ins_src.size)
            mode = "incremental"
            # step-1 announcements only help where warm state was torn up
            targets = np.zeros(n_new, dtype=bool)
            targets[:n_old] = inval
            targets[stats.ins_dst] = True

        # a ProgramSpec (rather than an anonymous type(...)) so the plan
        # can cross into a persistent worker pool's live processes
        program = ProgramSpec(
            SSSPIncrementalBulk,
            {"warm_dist": warm, "announce_targets": targets},
        )
        return RefreshPlan(
            program_factory=program, seeds=plan_seeds, affected=affected, mode=mode
        )

    def collect(self, engine, result) -> dict:
        dist = np.full(engine.graph.num_vertices, np.inf)
        for v, d in result.data.items():
            dist[v] = d
        return {"dist": dist}

    def cold_run(self, graph: Graph, num_workers: int, partition: np.ndarray):
        return run_sssp(
            graph,
            source=self.source,
            variant="basic",
            mode="bulk",
            num_workers=num_workers,
            partition=partition,
        )
