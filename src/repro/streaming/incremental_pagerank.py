"""Incremental PageRank: iteration-faithful selective recomputation.

Fixed-iteration PageRank is *not* a fixed-point algorithm — ``rank_k(v)``
is a function of v's k-step in-dependency cone — so a warm-started
power iteration would converge to merely-close values.  Instead, the
previous epoch retains its **per-iteration rank history** (``hist[k]`` =
everyone's rank after superstep k, plus the dead-end aggregate read at
each step), and the refresh recomputes only the vertices whose
dependency cone the delta actually pierced:

* The *dirty closure* ``D_k`` (vertices whose rank at step k may differ
  from history) is purely structural — seeded by the endpoints of
  changed arcs, grown one out-neighbor hop per iteration — so the
  planner derives the whole refresh schedule centrally from the new
  graph's CSR when the batch is applied, the same broadcast that ships
  the batch itself.  (Its cost is not network-modeled, exactly like
  graph loading.)
* At step k, all in-neighbors of ``D_{k+1}`` re-send their shares
  (history for clean vertices, recomputed for dirty ones), filtered to
  dirty targets.  A dirty vertex therefore receives *every* in-share in
  the same per-worker arrival order as a cold run, so its recombined sum
  is bit-identical — not just close.
* The dead-end aggregate ``s`` is global: the first iteration where a
  dead end turns dirty (or the dead-end set changes, or the vertex count
  changes) poisons ``s`` and the schedule degrades to a full recompute
  from that step on.  Degrading is a *performance* event, never a
  correctness one.

With an all-dirty schedule the program replays the cold
:class:`~repro.algorithms.pagerank.PageRankBasicBulk` exactly (same
messages, same aggregates) while recording history — that is both the
bootstrap epoch and the ``refresh="full"`` baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.pagerank import DAMPING, run_pagerank
from repro.core import Aggregator, BulkVertexProgram, CombinedMessage, ProgramSpec, SUM_F64
from repro.graph.graph import Graph
from repro.streaming.delta import ApplyStats
from repro.streaming.plan import RefreshPlan, StreamAlgorithm, out_neighbor_mask, in_neighbor_mask

__all__ = [
    "PageRankSchedule",
    "build_pagerank_schedule",
    "PageRankIncrementalBulk",
    "PageRankStream",
]


@dataclass
class PageRankSchedule:
    """Per-superstep refresh plan (all masks are global, rows 1..T+1).

    ``dirty[k]`` — ranks recomputed at step k; ``senders[k]`` — vertices
    re-sending shares at step k (rows 1..T); ``agg[k]`` — whether dead
    ends contribute to the aggregator at step k; ``active[k]`` — the
    union the engine actually wakes.  ``full`` marks an all-dirty
    schedule (history unusable, e.g. after a vertex-count change).
    """

    iterations: int
    dirty: np.ndarray
    senders: np.ndarray
    agg: np.ndarray
    active: np.ndarray
    full: bool

    @property
    def affected(self) -> int:
        """Vertices whose rank is recomputed at any step."""
        return int(self.dirty.any(axis=0).sum())


def build_pagerank_schedule(
    graph: Graph,
    stats: ApplyStats | None,
    old_dead: np.ndarray | None,
    iterations: int,
    full: bool,
) -> PageRankSchedule:
    """Derive the structural refresh schedule from the mutated graph."""
    T = iterations
    n = graph.num_vertices
    deg = graph.out_degrees
    dead = deg == 0
    dirty = np.zeros((T + 2, n), dtype=bool)
    senders = np.zeros((T + 2, n), dtype=bool)
    agg = np.zeros(T + 2, dtype=bool)

    full = bool(
        full or stats is None or old_dead is None or stats.vertex_set_changed
    )
    if full:
        dirty[1 : T + 2] = True
        senders[1 : T + 1] = deg > 0
        agg[1 : T + 1] = True
        active = dirty.copy()
        return PageRankSchedule(T, dirty, senders, agg, active, True)

    changed_src = np.zeros(n, dtype=bool)
    changed_src[stats.ins_src] = True
    changed_src[stats.del_src] = True
    changed_dst = np.zeros(n, dtype=bool)
    changed_dst[stats.ins_dst] = True
    changed_dst[stats.del_dst] = True

    dead_changed = not np.array_equal(dead, old_dead)
    # rank_1 = 1/n is delta-independent, so D_1 stays empty; the closure
    # starts at step 2.  s read at step k sums dead-end ranks from k-1.
    cur = np.zeros(n, dtype=bool)
    for k in range(2, T + 2):
        s_dirty = dead_changed or (cur & dead).any()
        if s_dirty:
            cur = np.ones(n, dtype=bool)
        elif not cur.all():
            cur = cur | out_neighbor_mask(graph, cur | changed_src) | changed_dst
        dirty[k] = cur
        agg[k - 1] = s_dirty
        if cur.all():
            send_row = deg > 0
        else:
            send_row = in_neighbor_mask(graph, cur)
        senders[k - 1] = send_row

    active = dirty.copy()
    active[1 : T + 1] |= senders[1 : T + 1]
    for k in range(1, T + 1):
        if agg[k]:
            active[k] |= dead
    # keep-alive: the BSP loop stops at the first globally empty
    # superstep, so an empty step borrows the next non-empty step's
    # participants (they wake, do nothing, and halt)
    for k in range(T, 0, -1):
        if not active[k].any() and active[k + 1].any():
            active[k] = active[k + 1]
    return PageRankSchedule(T, dirty, senders, agg, active, False)


class PageRankIncrementalBulk(BulkVertexProgram):
    """Schedule-driven PageRank refresh (see the module docstring).

    Class attributes baked in by the planner: ``schedule``, ``hist`` /
    ``hist_s`` (previous-epoch history; ``None`` when the schedule is
    full), and ``iterations``.  Channel construction order matches
    :class:`~repro.algorithms.pagerank.PageRankBasicBulk` so per-channel
    traffic labels line up in comparisons.
    """

    iterations: int
    schedule: PageRankSchedule
    hist: np.ndarray | None  # (T+2, n) global rank history
    hist_s: np.ndarray | None  # (T+2,) aggregate read at each step

    def __init__(self, worker):
        super().__init__(worker)
        self.agg = Aggregator(worker, SUM_F64)
        self.msg = CombinedMessage(worker, SUM_F64)
        li = worker.local_ids
        T = self.iterations
        if self.hist is not None:
            self.new_hist = self.hist[:, li].copy()
            self.new_hist_s = self.hist_s.copy()
            self.rank = self.new_hist[T + 1].copy()
        else:
            self.new_hist = np.zeros((T + 2, worker.num_local))
            self.new_hist_s = np.zeros(T + 2)
            self.rank = np.zeros(worker.num_local)
        self._dead = np.flatnonzero(worker.local_adjacency().degrees == 0)

    def before_superstep(self) -> None:
        nk = self.worker.step_num + 1
        if nk <= self.iterations + 1:
            wake = np.flatnonzero(self.schedule.active[nk][self.worker.local_ids])
            if wake.size:
                self.worker.activate_local_bulk(wake)

    def compute_bulk(self, active: np.ndarray) -> None:
        worker = self.worker
        adj = worker.local_adjacency()
        sched = self.schedule
        li = worker.local_ids
        k, T, n = self.step_num, self.iterations, self.num_vertices

        if k == 1:
            # rank_1 is 1/n regardless of the delta
            self.rank[:] = 1.0 / n
            s_raw = 0.0
        else:
            s_raw = self.agg.result() if sched.agg[k - 1] else self.hist_s[k]
            s = s_raw / n
            if not sched.full:
                self.rank[:] = self.hist[k][li]  # clean baseline
            idx = np.flatnonzero(sched.dirty[k][li])
            if idx.size:
                incoming, _ = self.msg.get_messages()
                self.rank[idx] = (1.0 - DAMPING) / n + DAMPING * (incoming[idx] + s)
        self.new_hist[k] = self.rank
        self.new_hist_s[k] = s_raw

        if k <= T:
            snd = np.flatnonzero(sched.senders[k][li])
            deg = adj.degrees[snd]
            has_out = deg > 0
            snd, deg = snd[has_out], deg[has_out]
            if snd.size:
                shares = self.rank[snd] / deg
                dsts = adj.gather(snd)
                vals = np.repeat(shares, deg)
                nxt = sched.dirty[k + 1]
                if not nxt.all():
                    keep = nxt[dsts]
                    dsts, vals = dsts[keep], vals[keep]
                self.msg.send_messages(dsts, vals)
            if sched.agg[k] and self._dead.size:
                self.agg.add_bulk(self.rank[self._dead])
        worker.halt_bulk(active)

    def finalize(self) -> dict:
        # NOT self.rank: a worker whose last scheduled participation was
        # as a sender (or dead-end aggregator) at some step k <= T holds
        # rank_k there — new_hist[T+1] is right for idle and active
        # workers alike (history baseline for clean rows, recomputed
        # values where this worker was dirty at the final step)
        final = self.new_hist[self.iterations + 1]
        return {
            int(g): float(final[i]) for i, g in enumerate(self.worker.local_ids)
        }


class PageRankStream(StreamAlgorithm):
    name = "pagerank"

    def __init__(self, iterations: int = 10):
        self.iterations = iterations

    def plan(
        self,
        old_graph: Graph,
        new_graph: Graph,
        stats: ApplyStats | None,
        state: dict | None,
        refresh: str,
    ) -> RefreshPlan:
        full = refresh == "full" or state is None or stats is None
        old_dead = None if old_graph is None else old_graph.out_degrees == 0
        sched = build_pagerank_schedule(
            new_graph, stats, old_dead, self.iterations, full
        )
        attrs = {
            "iterations": self.iterations,
            "schedule": sched,
            "hist": None if sched.full else state["hist"],
            "hist_s": None if sched.full else state["hist_s"],
        }
        # a ProgramSpec (rather than an anonymous type(...)) so the plan
        # can cross into a persistent worker pool's live processes
        program = ProgramSpec(PageRankIncrementalBulk, attrs)
        seeds = None if sched.full else np.flatnonzero(sched.active[1])
        return RefreshPlan(
            program_factory=program,
            seeds=seeds,
            affected=sched.affected,
            mode="full" if sched.full else "incremental",
            meta={"degraded_to_full_at": _first_full_step(sched)},
        )

    def collect(self, engine, result) -> dict:
        n = engine.graph.num_vertices
        hist = np.zeros((self.iterations + 2, n))
        hist_s = None
        for worker in engine.workers:
            hist[:, worker.local_ids] = worker.program.new_hist
            if hist_s is None and worker.num_local > 0:
                hist_s = worker.program.new_hist_s
        return {"hist": hist, "hist_s": hist_s}

    def cold_run(self, graph: Graph, num_workers: int, partition: np.ndarray):
        return run_pagerank(
            graph,
            variant="basic",
            iterations=self.iterations,
            mode="bulk",
            num_workers=num_workers,
            partition=partition,
        )


def _first_full_step(sched: PageRankSchedule) -> int | None:
    """First superstep whose dirty set is everyone (None if never)."""
    for k in range(1, sched.iterations + 2):
        if sched.dirty[k].all():
            return k
    return None
