"""Scalar/bulk parity: the columnar compute path must be a pure
performance change.

For every ported algorithm we assert, on a seeded random graph and across
1, 2, and 8 workers:

* identical ``result.data`` (bit-exact, including float PageRank — the
  bulk ports are written to preserve the scalar path's FP operation
  order, see ARCHITECTURE.md);
* identical per-channel traffic (net/local bytes and message counts from
  ``metrics.channel_breakdown()``), plus superstep/round totals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bfs import run_bfs
from repro.algorithms.pagerank import run_pagerank
from repro.algorithms.sssp import run_sssp
from repro.algorithms.wcc import run_wcc
from repro.graph import rmat

WORKERS = [1, 2, 8]


@pytest.fixture(scope="module")
def directed_graph():
    return rmat(9, edge_factor=8, seed=31, directed=True)


@pytest.fixture(scope="module")
def weighted_graph():
    return rmat(9, edge_factor=4, seed=32, directed=False, weighted=True)


def _assert_parity(scalar_out, bulk_out):
    (data_s, res_s), (data_b, res_b) = scalar_out, bulk_out
    np.testing.assert_array_equal(data_s, data_b)
    assert res_s.data == res_b.data
    ms, mb = res_s.metrics, res_b.metrics
    assert ms.channel_breakdown() == mb.channel_breakdown()
    assert ms.supersteps == mb.supersteps
    assert ms.total_rounds == mb.total_rounds
    assert ms.total_net_bytes == mb.total_net_bytes
    assert ms.total_local_bytes == mb.total_local_bytes
    assert ms.total_messages == mb.total_messages


@pytest.mark.parametrize("variant", ["basic", "scatter", "mirror"])
@pytest.mark.parametrize("workers", WORKERS)
def test_pagerank_parity(directed_graph, variant, workers):
    kw = dict(variant=variant, iterations=8, num_workers=workers)
    _assert_parity(
        run_pagerank(directed_graph, mode="scalar", **kw),
        run_pagerank(directed_graph, mode="bulk", **kw),
    )


@pytest.mark.parametrize("workers", WORKERS)
def test_wcc_parity(directed_graph, workers):
    _assert_parity(
        run_wcc(directed_graph, mode="scalar", num_workers=workers),
        run_wcc(directed_graph, mode="bulk", num_workers=workers),
    )


@pytest.mark.parametrize("workers", WORKERS)
def test_bfs_parity(directed_graph, workers):
    _assert_parity(
        run_bfs(directed_graph, source=3, mode="scalar", num_workers=workers),
        run_bfs(directed_graph, source=3, mode="bulk", num_workers=workers),
    )


@pytest.mark.parametrize("workers", WORKERS)
def test_sssp_parity(weighted_graph, workers):
    _assert_parity(
        run_sssp(weighted_graph, source=3, mode="scalar", num_workers=workers),
        run_sssp(weighted_graph, source=3, mode="bulk", num_workers=workers),
    )


class TestBulkCorrectness:
    """Bulk results are right in absolute terms, not just equal to scalar."""

    def test_bulk_wcc_matches_oracle(self, directed_graph):
        from helpers import nx_components

        labels, _ = run_wcc(directed_graph, mode="bulk", num_workers=4)
        np.testing.assert_array_equal(labels, nx_components(directed_graph))

    def test_bulk_pagerank_matches_oracle(self):
        from helpers import pagerank_oracle

        g = rmat(7, edge_factor=6, seed=33, directed=True)
        ranks, _ = run_pagerank(g, variant="scatter", mode="bulk", iterations=15, num_workers=4)
        np.testing.assert_allclose(ranks, pagerank_oracle(g, 15), rtol=1e-9)

    def test_bulk_sssp_matches_oracle(self, weighted_graph):
        from helpers import nx_sssp

        dists, _ = run_sssp(weighted_graph, source=3, mode="bulk", num_workers=4)
        np.testing.assert_allclose(dists, nx_sssp(weighted_graph, 3))


class TestModeValidation:
    def test_unknown_mode_rejected(self, directed_graph):
        with pytest.raises(ValueError, match="mode"):
            run_wcc(directed_graph, mode="columnar")

    def test_prop_variant_has_no_bulk_port(self, directed_graph):
        with pytest.raises(ValueError, match="no 'bulk' port"):
            run_wcc(directed_graph, variant="prop", mode="bulk")
