"""Graph analysis utilities: the descriptive statistics a study of
vertex-centric workloads needs (Table III's columns, degree skew for the
load-balance experiments, diameter estimates for the convergence ones).

Everything here is serial NumPy over the CSR arrays — these are
*offline* tools, not vertex programs.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.graph import Graph

__all__ = [
    "degree_histogram",
    "degree_skew",
    "estimate_diameter",
    "clustering_coefficient",
    "graph_summary",
]


def degree_histogram(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    """``(degrees, counts)`` for the out-degree distribution."""
    counts = np.bincount(graph.out_degrees)
    degrees = np.flatnonzero(counts)
    return degrees, counts[degrees]


def degree_skew(graph: Graph) -> float:
    """max degree / mean degree — the imbalance measure the paper's
    request-respond and mirroring optimizations target (>> 1 on
    power-law graphs, ~1 on meshes)."""
    deg = graph.out_degrees
    if deg.size == 0 or deg.mean() == 0:
        return 0.0
    return float(deg.max() / deg.mean())


def _bfs_farthest(graph: Graph, source: int) -> tuple[int, int]:
    """(farthest vertex, its hop distance) ignoring edge direction is NOT
    applied — traversal follows stored arcs."""
    dist = np.full(graph.num_vertices, -1, dtype=np.int64)
    dist[source] = 0
    q = deque([source])
    far, fard = source, 0
    while q:
        u = q.popleft()
        du = int(dist[u])
        for w in graph.neighbors(u):
            w = int(w)
            if dist[w] < 0:
                dist[w] = du + 1
                if du + 1 > fard:
                    far, fard = w, du + 1
                q.append(w)
    return far, fard


def estimate_diameter(graph: Graph, sweeps: int = 4, seed: int = 0) -> int:
    """Lower-bound the diameter with repeated double-sweep BFS (exact on
    trees, a good lower bound in general).  Works per weak component
    reachable from the sampled seeds."""
    if graph.num_vertices == 0:
        return 0
    rng = np.random.default_rng(seed)
    best = 0
    for _ in range(sweeps):
        s = int(rng.integers(graph.num_vertices))
        far, d1 = _bfs_farthest(graph, s)
        _, d2 = _bfs_farthest(graph, far)
        # on directed graphs the second sweep can dead-end (e.g. at a
        # chain's root); the first sweep's eccentricity is still a bound
        best = max(best, d1, d2)
    return best


def clustering_coefficient(graph: Graph) -> float:
    """Global clustering coefficient 3*triangles / open+closed wedges
    (undirected graphs)."""
    if graph.directed:
        raise ValueError("clustering coefficient expects an undirected graph")
    deg = graph.out_degrees
    wedges = int((deg * (deg - 1) // 2).sum())
    if wedges == 0:
        return 0.0
    # oriented triangle count (serial version of algorithms.triangles)
    triangles = 0
    oriented = [
        np.unique(graph.neighbors(v)[graph.neighbors(v) > v])
        for v in range(graph.num_vertices)
    ]
    sets = [set(o.tolist()) for o in oriented]
    for v in range(graph.num_vertices):
        ov = oriented[v]
        for i in range(ov.size):
            si = sets[int(ov[i])]
            for j in range(i + 1, ov.size):
                if int(ov[j]) in si:
                    triangles += 1
    return 3.0 * triangles / wedges


def graph_summary(graph: Graph, diameter_sweeps: int = 2) -> dict:
    """One-call report of the properties the experiments depend on."""
    return {
        "vertices": graph.num_vertices,
        "edges": graph.num_input_edges,
        "directed": graph.directed,
        "weighted": graph.weighted,
        "avg_degree": round(graph.avg_degree, 3),
        "max_degree": int(graph.out_degrees.max(initial=0)),
        "degree_skew": round(degree_skew(graph), 2),
        "diameter_lb": estimate_diameter(graph, sweeps=diameter_sweeps),
    }
