"""Property-based tests: algorithm results on random graphs match
serial oracles, across systems and worker counts."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algorithms.pagerank import run_pagerank
from repro.algorithms.pointer_jumping import run_pointer_jumping
from repro.algorithms.scc import run_scc
from repro.algorithms.sv import run_sv
from repro.algorithms.wcc import run_wcc
from repro.graph.graph import Graph
from helpers import nx_components, nx_scc, pagerank_oracle

slow = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def undirected_graphs(draw, max_n=40):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=3 * n))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    edges = [(u, v) for u, v in edges if u != v]
    return Graph.from_edges(n, edges, directed=False)


@st.composite
def directed_graphs(draw, max_n=30):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=3 * n))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    return Graph.from_edges(n, edges, directed=True)


@st.composite
def forests(draw, max_n=60):
    """Random parent-pointer forests (for pointer jumping)."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    edges = []
    for v in range(1, n):
        if draw(st.booleans()):
            parent = draw(st.integers(min_value=0, max_value=v - 1))
            edges.append((v, parent))
    return Graph.from_edges(n, edges, directed=True)


@slow
@given(g=undirected_graphs(), workers=st.integers(min_value=1, max_value=5))
def test_sv_matches_union_find(g, workers):
    labels, _ = run_sv(g, variant="both", num_workers=workers)
    np.testing.assert_array_equal(labels, nx_components(g))


@slow
@given(g=undirected_graphs(), variant=st.sampled_from(["basic", "prop"]))
def test_wcc_matches_oracle(g, variant):
    labels, _ = run_wcc(g, variant=variant, num_workers=3)
    np.testing.assert_array_equal(labels, nx_components(g))


@slow
@given(g=directed_graphs(), variant=st.sampled_from(["basic", "prop"]))
def test_scc_matches_oracle(g, variant):
    labels, _ = run_scc(g, variant=variant, num_workers=3)
    np.testing.assert_array_equal(labels, nx_scc(g))


@slow
@given(g=forests(), variant=st.sampled_from(["basic", "reqresp"]))
def test_pointer_jumping_finds_roots(g, variant):
    roots, _ = run_pointer_jumping(g, variant=variant, num_workers=3)
    expected = np.zeros(g.num_vertices, dtype=np.int64)
    for v in range(g.num_vertices):
        u = v
        while g.out_degree(u):
            u = int(g.neighbors(u)[0])
        expected[v] = u
    np.testing.assert_array_equal(roots, expected)


@slow
@given(g=directed_graphs(max_n=20), workers=st.integers(min_value=1, max_value=4))
def test_pagerank_worker_count_invariance(g, workers):
    """The partition must never change the numbers (BSP determinism)."""
    r1, _ = run_pagerank(g, variant="basic", iterations=5, num_workers=1)
    rk, _ = run_pagerank(g, variant="basic", iterations=5, num_workers=workers)
    np.testing.assert_allclose(r1, rk, atol=1e-12)


@slow
@given(g=directed_graphs(max_n=20))
def test_pagerank_matches_dense_oracle(g):
    ranks, _ = run_pagerank(g, variant="scatter", iterations=6, num_workers=3)
    np.testing.assert_allclose(ranks, pagerank_oracle(g, 6), atol=1e-12)


@slow
@given(g=undirected_graphs(max_n=30), workers=st.integers(min_value=1, max_value=5))
def test_sv_worker_count_invariance(g, workers):
    l1, _ = run_sv(g, variant="basic", num_workers=1)
    lk, _ = run_sv(g, variant="basic", num_workers=workers)
    np.testing.assert_array_equal(l1, lk)


@slow
@given(g=undirected_graphs(max_n=30))
def test_sv_variants_agree(g):
    results = [run_sv(g, variant=v, num_workers=3)[0] for v in ("basic", "both")]
    np.testing.assert_array_equal(results[0], results[1])
