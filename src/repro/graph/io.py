"""Graph input/output: edge-list text, update streams, and NPZ binary.

All text formats are transparently gzip-compressed when the path ends in
``.gz`` — both on read and write — since public edge-list/stream dumps
(SNAP, KONECT) usually ship compressed.
"""

from __future__ import annotations

import gzip
import os

import numpy as np

from repro.graph.graph import Graph
from repro.graph.store import MmapStore, build_mmap_store, is_mmap_store

__all__ = [
    "save_edgelist",
    "load_edgelist",
    "load_edgelist_chunked",
    "load_graph",
    "save_update_stream",
    "load_update_stream",
    "iter_update_stream",
    "save_npz",
    "load_npz",
]


def _open_text(path: str | os.PathLike, mode: str):
    """Open a text file, through gzip when the suffix says so."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t")
    return open(path, mode)


def save_edgelist(graph: Graph, path: str | os.PathLike) -> None:
    """Write one arc per line: ``src dst [weight]``.

    Undirected graphs are written with each edge once (the smaller endpoint
    first), mirroring the common SNAP/KONECT convention.
    """
    src, dst = graph.edge_array()
    w = graph.weights
    if not graph.directed:
        keep = src <= dst
        src, dst = src[keep], dst[keep]
        if w is not None:
            w = w[keep]
    with _open_text(path, "w") as f:
        # the weighted flag makes zero-edge weighted graphs round-trip:
        # with no edge lines to carry weights, the header is the only
        # place the information can live
        f.write(
            f"# vertices {graph.num_vertices} directed {int(graph.directed)} "
            f"weighted {int(graph.weighted)}\n"
        )
        if w is None:
            for s, d in zip(src.tolist(), dst.tolist()):
                f.write(f"{s} {d}\n")
        else:
            for s, d, x in zip(src.tolist(), dst.tolist(), w.tolist()):
                f.write(f"{s} {d} {x}\n")


def load_edgelist(path: str | os.PathLike) -> Graph:
    """Read the format written by :func:`save_edgelist`.

    Files without the header comment are accepted; vertex count defaults to
    ``max id + 1`` and the graph is treated as directed.
    """
    num_vertices = -1
    directed = True
    header_weighted: bool | None = None
    src: list[int] = []
    dst: list[int] = []
    weights: list[float] = []
    with _open_text(path, "r") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if "vertices" in parts:
                    num_vertices = int(parts[parts.index("vertices") + 1])
                if "directed" in parts:
                    directed = bool(int(parts[parts.index("directed") + 1]))
                if "weighted" in parts:
                    header_weighted = bool(int(parts[parts.index("weighted") + 1]))
                continue
            parts = line.split()
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
            if len(parts) > 2:
                weights.append(float(parts[2]))
    s = np.asarray(src, dtype=np.int64)
    d = np.asarray(dst, dtype=np.int64)
    if num_vertices < 0:
        num_vertices = int(max(s.max(initial=-1), d.max(initial=-1)) + 1)
    # explicit length/header checks, NOT list truthiness: `if weights`
    # silently dropped the weights of a zero-edge weighted graph (an empty
    # list is falsy), turning it unweighted across a save/load round-trip
    weighted = header_weighted if header_weighted is not None else len(weights) > 0
    if weighted and len(weights) != len(src):
        raise ValueError("some edges have weights and some do not")
    if not weighted and weights:
        raise ValueError("header says unweighted but edge lines carry weights")
    w = np.asarray(weights, dtype=np.float64) if weighted else None
    return Graph(num_vertices, s, d, weights=w, directed=directed)


def _sniff_edgelist(path: str | os.PathLike):
    """Header fields plus the weightedness of the first data line —
    everything the chunked loader must know before its first pass."""
    num_vertices: int | None = None
    directed = True
    header_weighted: bool | None = None
    first_has_weight = False
    with _open_text(path, "r") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if "vertices" in parts:
                    num_vertices = int(parts[parts.index("vertices") + 1])
                if "directed" in parts:
                    directed = bool(int(parts[parts.index("directed") + 1]))
                if "weighted" in parts:
                    header_weighted = bool(int(parts[parts.index("weighted") + 1]))
                continue
            first_has_weight = len(line.split()) > 2
            break
    weighted = header_weighted if header_weighted is not None else first_has_weight
    return num_vertices, directed, weighted, header_weighted


def _edgelist_chunks(path, weighted: bool, header_weighted, chunk_edges: int):
    """Yield ``(src, dst, weights)`` arrays of up to ``chunk_edges`` lines."""
    src: list[int] = []
    dst: list[int] = []
    w: list[float] = []

    def flush():
        out = (
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
            np.asarray(w, dtype=np.float64) if weighted else None,
        )
        src.clear(), dst.clear(), w.clear()
        return out

    with _open_text(path, "r") as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if (len(parts) > 2) != weighted:
                if header_weighted is False:
                    raise ValueError(
                        "header says unweighted but edge lines carry weights"
                    )
                raise ValueError("some edges have weights and some do not")
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
            if weighted:
                w.append(float(parts[2]))
            if len(src) >= chunk_edges:
                yield flush()
    if src:
        yield flush()


def load_edgelist_chunked(
    path: str | os.PathLike,
    out: str | os.PathLike,
    *,
    chunk_edges: int = 1 << 18,
) -> Graph:
    """Out-of-core :func:`load_edgelist`: stream the text file through the
    two-pass counting CSR build into an mmap store at ``out``.

    The edge list is never materialized — peak memory is O(V) for the
    degree array plus one ``chunk_edges``-line chunk — and the returned
    graph's arrays are memory-mapped from ``out``, so graphs much larger
    than RAM load and run.  The result is bit-identical to
    ``load_edgelist(path)``'s CSR arrays (the build replays the file once
    per pass: twice for directed graphs, three times undirected).
    """
    num_vertices, directed, weighted, header_weighted = _sniff_edgelist(path)
    store = build_mmap_store(
        out,
        lambda: _edgelist_chunks(path, weighted, header_weighted, chunk_edges),
        num_vertices=num_vertices,
        directed=directed,
        weighted=weighted,
    )
    return Graph.from_store(store)


def load_graph(path: str | os.PathLike) -> Graph:
    """Open a graph whatever its on-disk form: an mmap store directory
    (attached in place, nothing loaded), an ``.npz`` binary, or an
    edge-list text file (plain or ``.gz``)."""
    if is_mmap_store(path):
        return Graph.from_store(MmapStore.open(path))
    if str(path).endswith(".npz"):
        return load_npz(path)
    return load_edgelist(path)


def save_update_stream(batches, path: str | os.PathLike) -> None:
    """Write an edge-update stream: one ``ts op src dst [weight]`` line
    per mutation, ``op`` being ``+`` (insert) or ``-`` (delete).

    Batches without a timestamp get their position in the list.  The
    format is edge-only; batches carrying vertex mutations are rejected
    rather than silently truncated.
    """
    with _open_text(path, "w") as f:
        f.write("# update stream: ts op src dst [weight]\n")
        for pos, batch in enumerate(batches):
            if batch.add_vertices or batch.delete_vertices.size:
                raise ValueError(
                    f"batch {pos} contains vertex mutations; the update-stream "
                    "format only encodes edge insertions/deletions"
                )
            ts = batch.timestamp if batch.timestamp is not None else pos
            if batch.insert_weights is None:
                for s, d in zip(batch.insert_src.tolist(), batch.insert_dst.tolist()):
                    f.write(f"{ts} + {s} {d}\n")
            else:
                for s, d, w in zip(
                    batch.insert_src.tolist(),
                    batch.insert_dst.tolist(),
                    batch.insert_weights.tolist(),
                ):
                    f.write(f"{ts} + {s} {d} {w}\n")
            for s, d in zip(batch.delete_src.tolist(), batch.delete_dst.tolist()):
                f.write(f"{ts} - {s} {d}\n")


def _iter_stream_records(path: str | os.PathLike):
    """Parse ``ts op src dst [weight]`` lines, one record at a time."""
    with _open_text(path, "r") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (4, 5) or parts[1] not in ("+", "-"):
                raise ValueError(
                    f"{path}:{lineno}: expected 'ts op src dst [weight]', got {line!r}"
                )
            ts, op, s, d = int(parts[0]), parts[1], int(parts[2]), int(parts[3])
            w = float(parts[4]) if len(parts) == 5 else None
            if op == "-" and w is not None:
                raise ValueError(f"{path}:{lineno}: deletions must not carry weights")
            yield (ts, op, s, d, w)


def _group_to_batch(group: list, timestamp: int):
    from repro.streaming.batch import MutationBatch

    ins = [(s, d) for _, op, s, d, _ in group if op == "+"]
    ws = [w for _, op, _, _, w in group if op == "+"]
    dele = [(s, d) for _, op, s, d, _ in group if op == "-"]
    weighted = any(w is not None for w in ws)
    if weighted and not all(w is not None for w in ws):
        raise ValueError("some insertions carry weights and some do not")
    return MutationBatch.from_edges(
        insertions=ins,
        deletions=dele,
        weights=ws if weighted else None,
        timestamp=timestamp,
    )


def iter_update_stream(path: str | os.PathLike, epoch_size: int | None = None):
    """Lazily yield ``MutationBatch`` es from an update-stream file.

    The streaming twin of :func:`load_update_stream`: only one batch's
    records are in memory at a time, so arbitrarily long traces replay in
    O(epoch) memory.  Grouping matches the eager loader with one caveat:
    in timestamp mode (``epoch_size=None``) a batch is emitted when its
    timestamp's *run of consecutive records* ends, so a file that revisits
    an already-flushed timestamp raises ``ValueError`` (the eager loader
    merges such records; a lazy reader would have to buffer the whole file
    to do the same).  Files written by :func:`save_update_stream` never
    revisit timestamps.
    """
    if epoch_size is not None:
        if epoch_size < 1:
            raise ValueError("epoch_size must be >= 1")
        cur: list = []
        pos = 0
        # endpoint-set keys so reversed naming on undirected graphs also
        # forces a cut (harmless extra cut on directed graphs)
        seen_ops: dict = {}
        for rec in _iter_stream_records(path):
            key = frozenset((rec[2], rec[3]))
            opposite = "-" if rec[1] == "+" else "+"
            if len(cur) >= epoch_size or seen_ops.get(key) == opposite:
                yield _group_to_batch(cur, pos)
                pos += 1
                cur, seen_ops = [], {}
            cur.append(rec)
            seen_ops[key] = rec[1]
        if cur:
            yield _group_to_batch(cur, pos)
    else:
        cur = []
        cur_ts: int | None = None
        done_ts: set[int] = set()
        for rec in _iter_stream_records(path):
            if cur_ts is not None and rec[0] != cur_ts:
                yield _group_to_batch(cur, cur_ts)
                done_ts.add(cur_ts)
                cur = []
            if rec[0] in done_ts:
                raise ValueError(
                    f"timestamp {rec[0]} reappears after its batch was already "
                    "yielded; non-contiguous timestamps need the eager loader"
                )
            cur_ts = rec[0]
            cur.append(rec)
        if cur:
            yield _group_to_batch(cur, cur_ts)


def load_update_stream(
    path: str | os.PathLike, epoch_size: int | None = None, lazy: bool = False
):
    """Read a timestamped edge-update stream into ``MutationBatch`` es.

    By default mutations sharing a timestamp form one batch (in first-seen
    timestamp order).  ``epoch_size`` instead re-chunks the stream into
    batches of *up to* that many mutations, in file order — how the
    ``stream`` CLI subcommand turns one long trace into fixed-size
    epochs.  A chunk is cut early rather than let one batch both insert
    and delete the same edge (batches are atomic, so that combination is
    ambiguous); the later mutation simply lands in the next epoch,
    preserving replay order.

    ``lazy=True`` returns the :func:`iter_update_stream` generator instead
    of a list — O(epoch) memory for long traces, with that function's
    contiguous-timestamp requirement.
    """
    if lazy:
        return iter_update_stream(path, epoch_size)

    records = list(_iter_stream_records(path))

    if epoch_size is not None:
        if epoch_size < 1:
            raise ValueError("epoch_size must be >= 1")
        groups = []
        cur: list = []
        # endpoint-set keys so reversed naming on undirected graphs also
        # forces a cut (harmless extra cut on directed graphs)
        seen_ops: dict = {}
        for rec in records:
            key = frozenset((rec[2], rec[3]))
            opposite = "-" if rec[1] == "+" else "+"
            if len(cur) >= epoch_size or seen_ops.get(key) == opposite:
                groups.append(cur)
                cur, seen_ops = [], {}
            cur.append(rec)
            seen_ops[key] = rec[1]
        if cur:
            groups.append(cur)
    else:
        order: list[int] = []
        by_ts: dict[int, list] = {}
        for rec in records:
            if rec[0] not in by_ts:
                order.append(rec[0])
            by_ts.setdefault(rec[0], []).append(rec)
        groups = [by_ts[ts] for ts in order]

    return [
        _group_to_batch(group, group[0][0] if epoch_size is None else pos)
        for pos, group in enumerate(groups)
    ]


def save_npz(graph: Graph, path: str | os.PathLike) -> None:
    """Compact binary save (CSR arrays directly)."""
    payload = {
        "num_vertices": np.int64(graph.num_vertices),
        "directed": np.int64(graph.directed),
        "indptr": graph.indptr,
        "indices": graph.indices,
    }
    if graph.weights is not None:
        payload["weights"] = graph.weights
    np.savez_compressed(path, **payload)


def load_npz(path: str | os.PathLike) -> Graph:
    with np.load(path) as data:
        n = int(data["num_vertices"])
        directed = bool(data["directed"])
        indptr = data["indptr"]
        indices = data["indices"]
        weights = data["weights"] if "weights" in data else None
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    # CSR already contains both arc directions for undirected graphs, so
    # rebuild as a directed arc list and restore the flag afterwards.
    g = Graph(n, src, indices, weights=weights, directed=True)
    g.directed = directed
    return g
