"""Fault-tolerance acceptance tests.

The contract under test: a run with an injected worker failure and
either recovery mode yields ``result.data`` and total message/byte
counters **bit-identical** to the failure-free run — for every
algorithm with a bulk port (PageRank basic/scatter/mirror, WCC, BFS,
SSSP), for scalar-only multi-phase SCC, and for Propagation-channel
variants — across 2 and 8 workers.
"""

import numpy as np
import pytest

from repro.algorithms.bfs import run_bfs
from repro.algorithms.msf import run_msf
from repro.algorithms.pagerank import run_pagerank
from repro.algorithms.pointer_jumping import run_pointer_jumping
from repro.algorithms.scc import run_scc
from repro.algorithms.sssp import run_sssp
from repro.algorithms.wcc import run_wcc
from repro.core import ChannelEngine, FailureSchedule
from repro.graph import random_tree, rmat
from helpers import line_graph
from test_checkpoint import _Prog

_DIRECTED = rmat(7, edge_factor=4, seed=5, directed=True)
_UNDIRECTED = rmat(7, edge_factor=3, seed=6, directed=False)
_WEIGHTED = rmat(6, edge_factor=4, seed=7, directed=False, weighted=True)
_TREE = random_tree(1 << 9, seed=9)

#: name -> (runner(**engine_kwargs), failure superstep).  Failure
#: supersteps sit off the checkpoint grid (checkpoint_every=2) so
#: recovery always replays at least one superstep; the Propagation
#: variants terminate after 2 supersteps, hence the superstep-1 kills.
WORKLOADS = {
    # all six bulk ports
    "pr-basic-bulk": (
        lambda **kw: run_pagerank(
            _DIRECTED, variant="basic", iterations=6, mode="bulk", **kw
        ),
        3,
    ),
    "pr-scatter-bulk": (
        lambda **kw: run_pagerank(
            _DIRECTED, variant="scatter", iterations=6, mode="bulk", **kw
        ),
        3,
    ),
    "pr-mirror-bulk": (
        lambda **kw: run_pagerank(
            _DIRECTED, variant="mirror", iterations=6, mode="bulk", **kw
        ),
        3,
    ),
    "wcc-bulk": (
        lambda **kw: run_wcc(_UNDIRECTED, variant="basic", mode="bulk", **kw),
        3,
    ),
    "bfs-bulk": (
        lambda **kw: run_bfs(_DIRECTED, variant="basic", mode="bulk", **kw),
        2,
    ),
    "sssp-bulk": (
        lambda **kw: run_sssp(_DIRECTED, variant="basic", mode="bulk", **kw),
        2,
    ),
    # scalar-only: the multi-phase SCC and MSF state machines, and the
    # RequestRespond conversation channel ...
    "scc-basic": (lambda **kw: run_scc(_DIRECTED, variant="basic", **kw), 5),
    "msf": (lambda **kw: run_msf(_WEIGHTED, **kw), 5),
    "pj-reqresp": (
        lambda **kw: run_pointer_jumping(_TREE, variant="reqresp", **kw),
        3,
    ),
    # ... and Propagation-channel variants (fixpoint inside one superstep)
    "wcc-prop": (lambda **kw: run_wcc(_UNDIRECTED, variant="prop", **kw), 1),
    "sssp-prop": (lambda **kw: run_sssp(_DIRECTED, variant="prop", **kw), 1),
    "scc-prop": (lambda **kw: run_scc(_DIRECTED, variant="prop", **kw), 3),
}

_baselines = {}


def _baseline(name, workers):
    key = (name, workers)
    if key not in _baselines:
        runner, _ = WORKLOADS[name]
        _baselines[key] = runner(num_workers=workers)
    return _baselines[key]


def _assert_identical(base, recovered):
    base_data, base_res = base[0], base[-1]
    rec_data, rec_res = recovered[0], recovered[-1]
    if isinstance(base_data, np.ndarray):
        np.testing.assert_array_equal(base_data, rec_data)
    else:
        assert base_data == rec_data
    assert base_res.data == rec_res.data
    bm, rm = base_res.metrics, rec_res.metrics
    assert rm.total_messages == bm.total_messages
    assert rm.total_net_bytes == bm.total_net_bytes
    assert rm.total_local_bytes == bm.total_local_bytes
    assert rm.supersteps == bm.supersteps
    assert rm.channel_breakdown() == bm.channel_breakdown()


@pytest.mark.parametrize("workers", [2, 8])
@pytest.mark.parametrize("mode", ["rollback", "confined"])
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_recovered_run_is_bit_identical(name, mode, workers):
    runner, fail_at = WORKLOADS[name]
    base = _baseline(name, workers)
    assert base[-1].supersteps >= fail_at, "failure must actually fire"
    recovered = runner(
        num_workers=workers,
        checkpoint_every=2,
        failures=[(1, fail_at)],
        recovery=mode,
    )
    m = recovered[-1].metrics
    assert m.num_failures == 1
    assert m.num_checkpoints >= 1
    assert m.checkpoint_bytes > 0
    assert m.recovery_bytes > 0
    assert m.recovery_time > 0
    _assert_identical(base, recovered)


class TestFailureModesAndEdges:
    def test_failure_without_periodic_checkpoints(self):
        """Only the superstep-0 checkpoint exists: recovery rolls all the
        way back to the initial state and still matches."""
        base = _baseline("wcc-bulk", 2)
        for mode in ("rollback", "confined"):
            out = run_wcc(
                _UNDIRECTED,
                variant="basic",
                mode="bulk",
                num_workers=2,
                failures=[(1, 3)],
                recovery=mode,
            )
            assert out[-1].metrics.num_checkpoints == 1
            _assert_identical(base, out)

    def test_failure_on_checkpoint_boundary(self):
        """Dying right after a checkpoint recovers with zero replay."""
        base = _baseline("pr-scatter-bulk", 2)
        out = run_pagerank(
            _DIRECTED,
            variant="scatter",
            iterations=6,
            mode="bulk",
            num_workers=2,
            checkpoint_every=2,
            failures=[(0, 4)],
            recovery="confined",
        )
        _assert_identical(base, out)

    def test_simultaneous_failures(self):
        """Two workers die at once; confined replay regenerates the
        frames they exchange with each other."""
        base = _baseline("wcc-bulk", 8)
        for mode in ("rollback", "confined"):
            out = run_wcc(
                _UNDIRECTED,
                variant="basic",
                mode="bulk",
                num_workers=8,
                checkpoint_every=2,
                failures=[(2, 3), (5, 3)],
                recovery=mode,
            )
            assert out[-1].metrics.num_failures == 2
            _assert_identical(base, out)

    def test_repeated_failures(self):
        base = _baseline("pr-basic-bulk", 8)
        out = run_pagerank(
            _DIRECTED,
            variant="basic",
            iterations=6,
            mode="bulk",
            num_workers=8,
            checkpoint_every=2,
            failures=[(1, 3), (4, 5), (1, 7)],
            recovery="confined",
        )
        assert out[-1].metrics.num_failures == 3
        _assert_identical(base, out)

    def test_log_bytes_only_in_confined_mode(self):
        kw = dict(
            variant="basic", mode="bulk", num_workers=4, checkpoint_every=2
        )
        _, rb = run_wcc(_UNDIRECTED, failures=[(1, 3)], recovery="rollback", **kw)
        _, cf = run_wcc(_UNDIRECTED, failures=[(1, 3)], recovery="confined", **kw)
        assert rb.metrics.log_bytes == 0
        assert cf.metrics.log_bytes > 0
        # the confined advantage: far less data moved to recover
        assert cf.metrics.recovery_bytes < rb.metrics.recovery_bytes

    def test_checkpoint_only_run_matches_and_counts(self):
        base = _baseline("sssp-bulk", 2)
        out = run_sssp(
            _DIRECTED, variant="basic", mode="bulk", num_workers=2, checkpoint_every=3
        )
        m = out[-1].metrics
        expected = 1 + base[-1].supersteps // 3  # initial + periodic
        assert m.num_checkpoints == expected
        assert m.checkpoint_bytes > 0 and m.checkpoint_time > 0
        assert "checkpoint_bytes" in m.summary()
        _assert_identical(base, out)


class TestFailureSchedule:
    def test_parse_strings_and_pairs(self):
        s = FailureSchedule(["3:7", (1, 2), (2, 7)])
        assert s.pending() == [(1, 2), (2, 7), (3, 7)]

    def test_pop_fires_once(self):
        s = FailureSchedule([(1, 2)])
        assert s.pop(2) == [1]
        assert s.pop(2) == []
        assert not s

    def test_random_is_deterministic_and_sized(self):
        a = FailureSchedule.random(8, max_superstep=10, count=3, seed=42)
        b = FailureSchedule.random(8, max_superstep=10, count=3, seed=42)
        assert a.pending() == b.pending()
        assert len(a.pending()) == 3
        assert all(0 <= w < 8 and 1 <= s <= 10 for w, s in a.pending())

    def test_schedule_is_reusable_across_runs(self):
        """run() pops from a per-run copy, so one schedule object drives
        several runs; both must actually fire the failure."""
        schedule = FailureSchedule([(1, 3)])
        for mode in ("rollback", "confined"):
            out = run_wcc(
                _UNDIRECTED,
                variant="basic",
                mode="bulk",
                num_workers=2,
                checkpoint_every=2,
                failures=schedule,
                recovery=mode,
            )
            assert out[-1].metrics.num_failures == 1
        assert schedule.pending() == [(1, 3)]

    def test_random_rejects_impossible_count(self):
        with pytest.raises(ValueError, match="distinct failures"):
            FailureSchedule.random(1, max_superstep=1, count=3)

    def test_rejects_superstep_zero(self):
        with pytest.raises(ValueError, match="boundaries"):
            FailureSchedule([(0, 0)])

    def test_validate_worker_range(self):
        with pytest.raises(ValueError, match="only 2 workers"):
            FailureSchedule([(5, 1)]).validate(2)

    def test_validate_total_loss(self):
        with pytest.raises(ValueError, match="at least one must survive"):
            FailureSchedule([(0, 1), (1, 1)]).validate(2)


class TestEngineConfig:
    def test_bad_recovery_mode(self):
        engine = ChannelEngine(line_graph(4), _Prog, num_workers=2)
        with pytest.raises(ValueError, match="recovery"):
            engine.run(recovery="optimistic")

    def test_bad_checkpoint_interval(self):
        engine = ChannelEngine(line_graph(4), _Prog, num_workers=2)
        with pytest.raises(ValueError, match="checkpoint_every"):
            engine.run(checkpoint_every=0)

    def test_run_overrides_constructor_config(self):
        engine = ChannelEngine(
            line_graph(4), _Prog, num_workers=2, checkpoint_every=1
        )
        result = engine.run(checkpoint_every=5)
        assert result.metrics.num_checkpoints == 1  # superstep-0 only

    def test_plain_runs_report_no_ft_keys(self):
        result = ChannelEngine(line_graph(4), _Prog, num_workers=2).run()
        assert "checkpoint_bytes" not in result.metrics.summary()

    def test_unfired_failure_warns(self):
        """A scheduled failure past termination must not pass silently."""
        engine = ChannelEngine(line_graph(4), _Prog, num_workers=2)
        with pytest.warns(RuntimeWarning, match="never fired"):
            result = engine.run(failures=[(1, 50)])
        assert result.metrics.num_failures == 0


class TestCLIRecovery:
    def test_cli_fail_and_recover(self, capsys):
        import json

        from repro.__main__ import main as cli_main

        base_rc = cli_main(
            ["run", "wcc", "--dataset", "facebook", "--workers", "4", "--json"]
        )
        base = json.loads(capsys.readouterr().out)
        assert base_rc == 0
        rc = cli_main(
            [
                "run",
                "wcc",
                "--dataset",
                "facebook",
                "--workers",
                "4",
                "--checkpoint-every",
                "2",
                "--fail",
                "1:3",
                "--recovery",
                "confined",
                "--json",
            ]
        )
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert out["failures"] == 1
        assert out["checkpoint_bytes"] > 0
        assert out["messages"] == base["messages"]
        assert out["net_bytes"] == base["net_bytes"]

    def test_cli_partitioned_alias_conflicts_with_partition(self, capsys):
        from repro.__main__ import main as cli_main

        rc = cli_main(
            [
                "run",
                "wcc",
                "--dataset",
                "facebook",
                "--partitioned",
                "--partition",
                "range",
            ]
        )
        assert rc == 2
        assert "conflicts" in capsys.readouterr().err

    def test_cli_partition_choices(self, capsys):
        import json

        from repro.__main__ import main as cli_main

        results = {}
        for part in ("hash", "range", "metis"):
            rc = cli_main(
                [
                    "run",
                    "wcc",
                    "--dataset",
                    "facebook",
                    "--variant",
                    "prop",
                    "--workers",
                    "4",
                    "--partition",
                    part,
                    "--json",
                ]
            )
            assert rc == 0
            results[part] = json.loads(capsys.readouterr().out)
            assert results[part]["partition"] == part
        # different partitioners really were used: traffic differs, and
        # the locality partition cuts fewer bytes than random assignment
        assert results["metis"]["net_bytes"] < results["hash"]["net_bytes"]
