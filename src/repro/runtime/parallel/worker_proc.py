"""The worker-process main loop (child side of the process backend).

Each child owns one :class:`~repro.core.worker.Worker` — built against
the shared-memory graph and partition — plus the program instance its
factory constructs, exactly as the simulated engine builds them.  The
child then serves barrier-protocol commands from the parent:

``begin``
    ``program.before_superstep()`` + ``worker.begin_superstep()``;
    replies with the active-set size so the parent can decide
    termination globally.
``compute``
    Bump ``step_num`` and run the program on the stored active set.
``exchange``
    One exchange round: serialize the active channel groups, swap the
    raw frame buffers peer-to-peer over the data pipes, deserialize, and
    report which channel groups want another round.  The *same bytes*
    the simulator's :class:`~repro.runtime.buffers.BufferExchange` would
    move now cross real process boundaries; the parent gets only their
    lengths, for cost-model accounting.
``finalize``
    Ship ``program.finalize()`` — and, when state sync is requested, the
    full per-worker state in the checkpoint layer's capture format
    (program state dict, halt/wake flags, per-channel ``snapshot()``) —
    back to the parent through the tagged-binary codec.  No pickle: the
    seven channel classes already know how to express their state as
    arrays/scalars for checkpointing, and the process backend reuses
    exactly that.
``stop``
    Exit the serve loop.

Channel/worker code runs **unmodified**: the child's
:class:`_WorkerHost` quacks like the engine (graph, owner, metrics,
``step_num``) and its :class:`_ChildCounters` absorbs the byte/message
accounting calls, which the child flushes to the parent with every
reply.
"""

from __future__ import annotations

import threading
import time
import traceback

import numpy as np

from repro.core.worker import Worker
from repro.graph.graph import Graph
from repro.runtime.parallel.protocol import recv_msg, send_msg
from repro.runtime.parallel.shm import attach_array

__all__ = ["worker_main"]


class _ChildCounters:
    """Accumulates the metric calls workers/channels make mid-phase; the
    child flushes the deltas to the parent with every reply, where they
    merge into the real :class:`~repro.runtime.metrics.MetricsCollector`."""

    __slots__ = ("messages", "channel_traffic")

    def __init__(self) -> None:
        self.messages = 0
        self.channel_traffic: dict = {}

    # -- MetricsCollector counting surface (see Worker.emit/count_net_messages)
    def count_messages(self, n: int) -> None:
        self.messages += n

    def count_channel_bytes(self, label: str, nbytes: int, local: bool) -> None:
        entry = self.channel_traffic.setdefault(label, [0, 0, 0])
        entry[1 if local else 0] += nbytes

    def count_channel_messages(self, label: str, n: int) -> None:
        entry = self.channel_traffic.setdefault(label, [0, 0, 0])
        entry[2] += n

    def flush(self) -> dict:
        out = {"messages": self.messages, "channels": self.channel_traffic}
        self.messages = 0
        self.channel_traffic = {}
        return out


class _WorkerHost:
    """Just enough of :class:`~repro.core.engine.ChannelEngine` for a
    :class:`Worker` and its channels to run unchanged in a child."""

    def __init__(self, graph: Graph, owner: np.ndarray, num_workers: int) -> None:
        self.graph = graph
        self.owner = owner
        self.num_workers = num_workers
        self.metrics = _ChildCounters()
        self.step_num = 0


def _exchange_frames(
    worker_id: int,
    num_workers: int,
    out_bufs: list[bytes],
    send_conns: dict,
    recv_conns: dict,
) -> list[bytes]:
    """Swap this round's raw buffers with every peer, pairwise.

    A dedicated sender thread pushes all outgoing buffers while the main
    thread drains the incoming pipes, so no send can wait on a receive —
    every pipe is drained independently of this worker's own send
    progress, which rules out the circular-wait deadlock of a naive
    send-then-receive loop once a buffer outgrows the OS pipe capacity.
    """
    inbox = [b""] * num_workers
    inbox[worker_id] = out_bufs[worker_id]  # self-delivery never hits a pipe
    if num_workers == 1:
        return inbox

    failure: list[BaseException] = []

    def _send_all() -> None:
        try:
            for peer in range(num_workers):
                if peer != worker_id:
                    send_conns[peer].send_bytes(out_bufs[peer])
        except BaseException as exc:  # pragma: no cover - peer death race
            failure.append(exc)

    sender = threading.Thread(target=_send_all, daemon=True)
    sender.start()
    for peer in range(num_workers):
        if peer != worker_id:
            inbox[peer] = recv_conns[peer].recv_bytes()
    sender.join()
    if failure:  # pragma: no cover - peer death race
        raise failure[0]
    return inbox


def worker_main(worker_id: int, cfg: dict, conn, send_conns: dict, recv_conns: dict) -> None:
    """Child-process entry point; never raises (errors go to the parent)."""
    segments = []
    try:
        unreg = cfg["unregister_shm"]
        indptr, seg = attach_array(cfg["indptr"], unreg)
        segments.append(seg)
        indices, seg = attach_array(cfg["indices"], unreg)
        segments.append(seg)
        weights = None
        if cfg["weights"] is not None:
            weights, seg = attach_array(cfg["weights"], unreg)
            segments.append(seg)
        owner, seg = attach_array(cfg["owner"], unreg)
        segments.append(seg)

        # validate=False: these views are the parent Graph's own arrays,
        # already validated at construction — don't rescan O(E) per worker
        graph = Graph.from_csr(
            cfg["num_vertices"],
            indptr,
            indices,
            weights,
            directed=cfg["directed"],
            validate=False,
        )
        num_workers = cfg["num_workers"]
        host = _WorkerHost(graph, owner, num_workers)
        worker = Worker(host, worker_id, np.flatnonzero(owner == worker_id))
        worker.program = cfg["program_factory"](worker)
        if cfg["seeds"] is not None:
            worker.seed_active(cfg["seeds"])
        for channel in worker.channels:
            channel.initialize()
        send_msg(conn, {"ready": True, "num_channels": len(worker.channels)})

        _serve(worker, host, conn, send_conns, recv_conns)
    except BaseException:
        try:
            send_msg(conn, {"error": traceback.format_exc()})
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        for seg in segments:
            try:
                seg.close()
            except Exception:  # pragma: no cover
                pass


def _serve(worker: Worker, host: _WorkerHost, conn, send_conns, recv_conns) -> None:
    counters = host.metrics
    active = np.empty(0, dtype=np.int64)
    num_workers = host.num_workers

    while True:
        msg = recv_msg(conn)
        cmd = msg["cmd"]

        if cmd == "begin":
            worker.program.before_superstep()
            active = worker.begin_superstep()
            send_msg(conn, {"active": int(active.size)})

        elif cmd == "compute":
            host.step_num += 1
            t0 = time.perf_counter()
            worker.run_compute(active)
            seconds = time.perf_counter() - t0
            send_msg(conn, {"seconds": seconds, "counters": counters.flush()})

        elif cmd == "exchange":
            group_active = msg["group_active"]
            t0 = time.perf_counter()
            if msg["round"] == 0:
                for channel in worker.channels:
                    channel.reset_round()
            for cid, channel in enumerate(worker.channels):
                if group_active[cid]:
                    channel.serialize()
            out_bufs = []
            for peer in range(num_workers):
                writer = worker.buffers.out[peer]
                out_bufs.append(writer.getvalue())
                writer.clear()
            seconds = time.perf_counter() - t0

            inbox = _exchange_frames(
                worker.worker_id, num_workers, out_bufs, send_conns, recv_conns
            )
            worker.buffers.inbox = inbox

            t0 = time.perf_counter()
            routed = worker.route_inbox()
            next_active = [False] * len(worker.channels)
            for cid, channel in enumerate(worker.channels):
                if group_active[cid]:
                    channel.deserialize(routed.get(cid, []))
                    if channel.again():
                        next_active[cid] = True
                elif cid in routed:  # pragma: no cover - defensive
                    raise RuntimeError(f"data arrived for inactive channel {cid}")
            seconds += time.perf_counter() - t0

            send_msg(
                conn,
                {
                    "sent": np.array([len(b) for b in out_bufs], dtype=np.int64),
                    "next_active": next_active,
                    "seconds": seconds,
                    "counters": counters.flush(),
                },
            )

        elif cmd == "finalize":
            reply = {"data": worker.program.finalize()}
            if msg["sync"]:
                # same capture format as runtime.checkpoint.capture_snapshot
                reply["state"] = {
                    "program": worker.program.state_dict(),
                    "flags": worker.snapshot_flags(),
                    "channels": [c.snapshot() for c in worker.channels],
                }
            send_msg(conn, reply)

        elif cmd == "stop":
            return

        else:  # pragma: no cover - protocol bug guard
            raise RuntimeError(f"unknown command {cmd!r}")
