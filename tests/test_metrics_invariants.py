"""System-level metric invariants, checked on real algorithm runs."""

import numpy as np
import pytest

from repro.algorithms.pagerank import run_pagerank
from repro.algorithms.sv import run_sv
from repro.algorithms.wcc import run_wcc
from repro.graph import rmat
from repro.runtime.costmodel import NetworkModel


@pytest.fixture(scope="module")
def g():
    return rmat(8, edge_factor=3, seed=2, directed=False)


class TestByteAccounting:
    def test_single_worker_has_zero_net_bytes(self, g):
        _, res = run_sv(g, variant="both", num_workers=1)
        assert res.metrics.total_net_bytes == 0
        assert res.metrics.total_messages == 0
        assert res.metrics.total_local_bytes > 0

    def test_net_bytes_grow_with_workers(self, g):
        _, r2 = run_sv(g, variant="basic", num_workers=2)
        _, r8 = run_sv(g, variant="basic", num_workers=8)
        assert r8.metrics.total_net_bytes > r2.metrics.total_net_bytes

    def test_messages_nonnegative_and_bounded_by_bytes(self, g):
        _, res = run_wcc(g, variant="basic", num_workers=4)
        m = res.metrics
        assert 0 < m.total_messages
        # every wire message carries at least one byte of payload
        assert m.total_net_bytes >= m.total_messages

    def test_per_superstep_rounds_positive(self, g):
        _, res = run_wcc(g, variant="basic", num_workers=4)
        assert all(r.rounds >= 1 for r in res.metrics.records)


class TestDeterminism:
    def test_identical_runs_identical_metrics(self, g):
        part = np.arange(g.num_vertices) % 4
        _, a = run_sv(g, variant="both", num_workers=4, partition=part)
        _, b = run_sv(g, variant="both", num_workers=4, partition=part)
        assert a.metrics.total_net_bytes == b.metrics.total_net_bytes
        assert a.metrics.total_messages == b.metrics.total_messages
        assert a.supersteps == b.supersteps

    def test_result_independent_of_partition(self, g):
        p1 = np.arange(g.num_vertices) % 4
        p2 = (np.arange(g.num_vertices) * 7 + 3) % 4
        l1, _ = run_sv(g, variant="both", num_workers=4, partition=p1)
        l2, _ = run_sv(g, variant="both", num_workers=4, partition=p2)
        np.testing.assert_array_equal(l1, l2)


class TestCostModel:
    def test_simulated_time_scales_with_bandwidth(self, g):
        slow = NetworkModel(latency=1e-3, bandwidth=1e6)
        fast = NetworkModel(latency=1e-3, bandwidth=1e9)
        _, rs = run_pagerank(g, variant="basic", iterations=5, num_workers=4, network=slow)
        _, rf = run_pagerank(g, variant="basic", iterations=5, num_workers=4, network=fast)
        assert rs.metrics.simulated_time > rf.metrics.simulated_time
        # same traffic either way
        assert rs.metrics.total_net_bytes == rf.metrics.total_net_bytes

    def test_latency_dominates_for_many_rounds(self, g):
        lat = NetworkModel(latency=1.0, bandwidth=1e12)
        _, res = run_pagerank(g, variant="basic", iterations=5, num_workers=4, network=lat)
        # every exchange round pays 1s latency
        assert res.metrics.simulated_time >= res.metrics.total_rounds * 1.0

    def test_simulated_time_components_sum(self, g):
        _, res = run_wcc(g, variant="prop", num_workers=4)
        m = res.metrics
        total = sum(r.compute_time_max + r.exchange_time for r in m.records)
        assert m.simulated_time == pytest.approx(total)
