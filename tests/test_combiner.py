"""Unit and property tests for combiners (monoid laws included)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.combiner import (
    Combiner,
    MAX_F64,
    MAX_I32,
    MAX_I64,
    MIN_F64,
    MIN_I32,
    MIN_I64,
    SUM_F64,
    SUM_I32,
    SUM_I64,
    make_combiner,
)
from repro.runtime.serialization import INT64

ALL_INT_COMBINERS = [SUM_I64, SUM_I32, MIN_I64, MIN_I32, MAX_I64, MAX_I32]
ALL_FLOAT_COMBINERS = [SUM_F64, MIN_F64, MAX_F64]

ints = st.integers(min_value=-(2**31) + 1, max_value=2**31 - 1)
floats = st.floats(allow_nan=False, allow_infinity=False, width=32)


@pytest.mark.parametrize("comb", ALL_INT_COMBINERS, ids=lambda c: c.name)
@given(x=ints)
def test_identity_law_int(comb, x):
    assert comb.combine(comb.identity, x) == x
    assert comb.combine(x, comb.identity) == x


@pytest.mark.parametrize("comb", ALL_FLOAT_COMBINERS, ids=lambda c: c.name)
@given(x=floats)
def test_identity_law_float(comb, x):
    assert comb.combine(comb.identity, x) == x


@pytest.mark.parametrize("comb", ALL_INT_COMBINERS, ids=lambda c: c.name)
@given(a=ints, b=ints, c=ints)
def test_associativity_and_commutativity(comb, a, b, c):
    assert comb.combine(comb.combine(a, b), c) == comb.combine(a, comb.combine(b, c))
    assert comb.combine(a, b) == comb.combine(b, a)


@pytest.mark.parametrize("comb", ALL_INT_COMBINERS, ids=lambda c: c.name)
@given(values=st.lists(ints, max_size=30))
def test_ufunc_matches_scalar_fold(comb, values):
    """The bulk (ufunc) path must agree with the scalar path — this is
    what lets channels pick whichever is faster."""
    arr = np.asarray(values, dtype=comb.codec.dtype)
    expected = comb.identity
    for v in values:
        expected = comb.combine(expected, v)
    assert comb.combine_array(arr) == expected


class TestReduceat:
    def test_segments(self):
        vals = np.array([5, 1, 7, 2, 9], dtype=np.int64)
        starts = np.array([0, 2, 4])
        out = MIN_I64.reduceat(vals, starts)
        assert out.tolist() == [1, 2, 9]

    def test_sum_segments(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        out = SUM_F64.reduceat(vals, np.array([0, 1]))
        assert out.tolist() == [1.0, 9.0]

    def test_without_ufunc_fallback(self):
        comb = make_combiner(min, 10**9, INT64, ufunc=None)
        vals = np.array([5, 1, 7, 2], dtype=np.int64)
        out = comb.reduceat(vals, np.array([0, 2]))
        assert out.tolist() == [1, 2]


class TestAccumulateAt:
    def test_min_at(self):
        target = np.full(4, MIN_I64.identity, dtype=np.int64)
        MIN_I64.accumulate_at(target, np.array([0, 0, 2]), np.array([5, 3, 1]))
        assert target[0] == 3
        assert target[2] == 1
        assert target[1] == MIN_I64.identity

    def test_sum_at_accumulates_duplicates(self):
        target = np.zeros(3)
        SUM_F64.accumulate_at(target, np.array([1, 1, 1]), np.array([1.0, 2.0, 3.0]))
        assert target[1] == 6.0

    def test_scalar_fallback(self):
        comb = make_combiner(lambda a, b: a + b, 0, INT64, ufunc=None)
        target = np.zeros(2, dtype=np.int64)
        comb.accumulate_at(target, np.array([0, 0]), np.array([2, 3]))
        assert target[0] == 5


def test_combine_array_empty_returns_identity():
    assert MIN_I64.combine_array(np.empty(0, dtype=np.int64)) == MIN_I64.identity


def test_make_combiner_fields():
    c = make_combiner(max, -1, INT64, np.maximum, name="mymax")
    assert c.name == "mymax"
    assert c.combine(3, 5) == 5
    assert "mymax" in repr(c)


def test_identity_values_are_absorbing_for_min_max():
    assert MIN_I32.identity == np.iinfo(np.int32).max
    assert MAX_I32.identity == np.iinfo(np.int32).min
    assert MIN_F64.identity == float("inf")
