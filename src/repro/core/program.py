"""User-facing program base class.

A :class:`VertexProgram` plays the role of the paper's ``Worker`` subclass
(e.g. ``PageRankWorker`` in Fig. 1): its constructor creates the channels,
``compute`` holds the per-vertex logic.  One instance is created per worker
by the engine, so instance attributes are per-worker state (the idiomatic
place for NumPy state arrays indexed by ``v.local``).

Differences from the paper's C++ API, by design:

* channel methods that refer to "the current vertex" take the
  :class:`~repro.core.vertex.Vertex` handle explicitly — explicit data flow
  is both more Pythonic and directly testable;
* per-vertex state lives in program-owned arrays rather than a
  ``value()`` struct, per the NumPy idiom of keeping hot state columnar.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.vertex import Vertex
    from repro.core.worker import Worker

__all__ = ["VertexProgram"]


class VertexProgram:
    """Base class for channel-based vertex programs."""

    def __init__(self, worker: "Worker") -> None:
        self.worker = worker

    # -- the algorithm ---------------------------------------------------
    def compute(self, v: "Vertex") -> None:
        raise NotImplementedError

    def before_superstep(self) -> None:
        """Called once per worker before every superstep, *including* ones
        where this worker has no active vertices.

        Multi-phase algorithms (Min-Label SCC, Boruvka MSF) use this as a
        distributed phase controller: every worker advances the same state
        machine from globally consistent inputs (aggregator results), and
        may wake vertices for the upcoming phase via
        ``self.worker.activate_local_bulk``.
        """

    def finalize(self) -> dict:
        """Called once after termination; return this worker's outputs
        (merged across workers into :class:`EngineResult.data`).  Keys are
        global vertex ids or named aggregates."""
        return {}

    # -- context helpers (mirror the paper's Worker API) --------------------
    @property
    def step_num(self) -> int:
        """1-based superstep number (the paper's ``step_num()``)."""
        return self.worker.step_num

    @property
    def num_vertices(self) -> int:
        """Total vertices in the graph (the paper's ``get_vnum()``)."""
        return self.worker.graph.num_vertices

    @property
    def num_local(self) -> int:
        """Vertices owned by this worker."""
        return self.worker.num_local
