"""Table III: dataset inventory (construction cost + shape report).

The paper's Table III lists |V|, |E| and average degree for each input;
this bench regenerates those numbers for the scaled counterparts and
times dataset construction.
"""

import pytest

from repro.bench.datasets import DATASETS, load_dataset


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_table3_dataset(benchmark, name):
    def build():
        # bypass the cache so construction cost is real
        ctor, _kind = DATASETS[name]
        return ctor()

    g = benchmark.pedantic(build, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(
        {
            "dataset": name,
            "type": DATASETS[name][1],
            "V": g.num_vertices,
            "E": g.num_input_edges,
            "avg_deg": round(g.avg_degree, 2),
        }
    )
    assert g.num_vertices > 0
