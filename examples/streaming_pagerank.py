"""Streaming PageRank walkthrough: apply update batches, refresh
incrementally, and verify against a cold run.

Run::

    PYTHONPATH=src python examples/streaming_pagerank.py

The script builds a road-like graph, bootstraps an epoch engine, then
feeds it three mutation batches.  After every epoch it re-runs plain
``run_pagerank`` from scratch on the mutated graph and asserts the
refreshed ranks are bit-identical — while printing how much less the
incremental refresh communicated.
"""

import numpy as np

from repro.algorithms.pagerank import run_pagerank
from repro.graph.generators import grid_road
from repro.streaming import EpochEngine, PageRankStream, synthesize_stream

ITERATIONS = 10

graph = grid_road(60, 60, seed=1)
print(f"initial graph: {graph}")

engine = EpochEngine(
    graph,
    PageRankStream(iterations=ITERATIONS),
    num_workers=8,
    refresh="incremental",
)
boot = engine.bootstrap()
print(
    f"bootstrap: {boot.result.supersteps} supersteps, "
    f"{boot.result.total_net_bytes / 1e6:.2f} MB on the wire"
)

# three epochs of churn: ~40 edge mutations each
for batch in synthesize_stream(graph, 3, 20, 20, seed=7):
    epoch = engine.run_epoch(batch)

    # the cold baseline: full PageRank on the mutated graph
    cold_ranks, cold = run_pagerank(
        engine.graph,
        variant="basic",
        iterations=ITERATIONS,
        mode="bulk",
        num_workers=8,
        partition=engine.owner,
    )
    ids = np.arange(engine.graph.num_vertices)
    refreshed = np.array([epoch.data[v] for v in ids])
    assert np.array_equal(refreshed, cold_ranks), "refresh must be bit-identical"

    print(
        f"epoch {epoch.epoch}: batch={epoch.batch_size} mutations, "
        f"affected {epoch.affected}/{graph.num_vertices} vertices, "
        f"bytes {epoch.result.total_net_bytes / 1e6:.2f} MB vs "
        f"cold {cold.total_net_bytes / 1e6:.2f} MB "
        f"({epoch.result.total_net_bytes / cold.total_net_bytes:.1%}), "
        f"bit-identical: True"
    )

print("done: every refresh matched the cold run exactly")
