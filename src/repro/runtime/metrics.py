"""Experiment metrics: bytes, messages, supersteps, simulated time.

Every number in the reproduced tables comes from here.  The collector keeps
one :class:`SuperstepRecord` per superstep; totals are derived properties so
tests can assert conservation invariants (e.g. bytes sent == bytes
received) against the raw per-step data.

Two notions of time are tracked:

* ``wall_time`` — real elapsed time of the whole run (single process).
* ``simulated_time`` — Σ over supersteps of (max per-worker compute time +
  modeled network time of each exchange round).  This is the analogue of
  the paper's cluster runtime: compute is parallel across workers, and
  communication is charged by the cost model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.runtime.costmodel import NetworkModel, DEFAULT_NETWORK

__all__ = ["SuperstepRecord", "MetricsCollector"]


@dataclass
class SuperstepRecord:
    """Everything measured during one superstep."""

    superstep: int
    rounds: int = 0
    net_bytes: int = 0
    local_bytes: int = 0
    messages: int = 0
    active_vertices: int = 0
    compute_time_max: float = 0.0
    compute_time_sum: float = 0.0
    exchange_time: float = 0.0
    #: measured wall-time per phase per worker: {"barrier" | "compute" |
    #: "serialize" | "exchange": [seconds] * num_workers}.  "serialize"
    #: covers codec work in both directions (serialize + deserialize);
    #: "exchange" is pure transport (pipe swap / ring pump).  Phases a
    #: backend doesn't measure are simply absent.
    phases: dict = field(default_factory=dict)

    @property
    def simulated_time(self) -> float:
        return self.compute_time_max + self.exchange_time


@dataclass
class MetricsCollector:
    """Accumulates per-superstep metrics for one engine run."""

    num_workers: int
    network: NetworkModel = field(default_factory=lambda: DEFAULT_NETWORK)
    records: list[SuperstepRecord] = field(default_factory=list)
    #: per-channel traffic: label -> [net_bytes, local_bytes, messages]
    channel_traffic: dict = field(default_factory=dict)
    _wall_start: float = field(default=0.0, repr=False)
    wall_time: float = 0.0
    _current: SuperstepRecord | None = field(default=None, repr=False)
    _compute_per_worker: np.ndarray | None = field(default=None, repr=False)
    _phase_per_worker: dict | None = field(default=None, repr=False)

    # -- observability (ARCHITECTURE.md §10) --------------------------------
    #: optional :class:`~repro.obs.trace.TraceRecorder`; when set, every
    #: run/superstep/phase/round/checkpoint/failure/recovery this
    #: collector measures is also emitted as a structured span event.
    #: Both backends funnel their measurements through this collector,
    #: so sim and process traces are schema-identical by construction.
    trace: object | None = field(default=None, repr=False)
    #: parent span id for the run span (the streaming epoch engine nests
    #: each per-epoch run under its epoch span)
    trace_parent: int | None = field(default=None, repr=False)
    #: static attrs stamped on the run span (executor, transport, ...)
    trace_attrs: dict = field(default_factory=dict, repr=False)
    _run_span: int | None = field(default=None, repr=False)
    _step_span: int | None = field(default=None, repr=False)
    _step_t0: float = field(default=0.0, repr=False)

    # -- fault-tolerance accounting (never rolled back: real costs paid) ----
    #: serialized checkpoint bytes written across all checkpoints
    checkpoint_bytes: int = 0
    #: modeled checkpoint write time (parallel: max worker blob / bandwidth)
    checkpoint_time: float = 0.0
    num_checkpoints: int = 0
    #: cross-worker frame bytes logged for confined recovery
    log_bytes: int = 0
    #: checkpoint bytes reloaded plus logged frames replayed during recovery
    recovery_bytes: int = 0
    #: modeled recovery time (state reload + replay/re-execution)
    recovery_time: float = 0.0
    num_failures: int = 0

    # -- adaptive rebalancing (like the fault counters: migrations already
    # performed stay counted through snapshot/restore) ----------------------
    num_rebalances: int = 0
    #: vertices / arcs moved across all migrations this run
    rebalanced_vertices: int = 0
    rebalanced_arcs: int = 0
    #: modeled state-transfer time across all migrations
    rebalance_time: float = 0.0

    # -- streaming (set by the epoch engine; None outside streaming runs) ---
    #: which epoch of a streaming run this collector measured
    epoch: int | None = None
    #: refresh mode that actually ran ("incremental" | "full")
    refresh_mode: str | None = None
    #: vertices the refresh plan recomputed (0 for an empty delta)
    affected_vertices: int = 0

    # -- run lifecycle ----------------------------------------------------
    def start_run(self) -> None:
        self._wall_start = time.perf_counter()
        if self.trace is not None:
            self._run_span = self.trace.begin(
                "run",
                parent=self.trace_parent,
                workers=self.num_workers,
                **self.trace_attrs,
            )

    def end_run(self) -> None:
        self.wall_time = time.perf_counter() - self._wall_start
        if self.trace is not None and self._run_span is not None:
            self.trace.end(
                self._run_span,
                supersteps=self.supersteps,
                net_bytes=self.total_net_bytes,
                local_bytes=self.total_local_bytes,
                messages=self.total_messages,
                wall_time=round(self.wall_time, 9),
            )
            self._run_span = None

    # -- superstep lifecycle ----------------------------------------------
    def start_superstep(self, active_vertices: int = 0) -> None:
        self._current = SuperstepRecord(
            superstep=len(self.records), active_vertices=active_vertices
        )
        self._compute_per_worker = np.zeros(self.num_workers)
        self._phase_per_worker = {}
        if self.trace is not None:
            self._step_t0 = self.trace.now()
            self._step_span = self.trace.begin(
                "superstep",
                parent=self._run_span,
                superstep=self._current.superstep,
                active=int(active_vertices),
            )

    def record_compute(self, worker_id: int, seconds: float) -> None:
        assert self._compute_per_worker is not None
        self._compute_per_worker[worker_id] += seconds

    def record_phase(self, worker_id: int, phase: str, seconds: float) -> None:
        """Attribute measured wall-time to a named superstep phase (see
        :attr:`SuperstepRecord.phases`).  Purely observational — phase
        timings never feed ``simulated_time`` or any parity-checked
        counter, so backends are free to measure what they can."""
        assert self._phase_per_worker is not None
        arr = self._phase_per_worker.get(phase)
        if arr is None:
            arr = self._phase_per_worker[phase] = np.zeros(self.num_workers)
        arr[worker_id] += seconds

    def record_exchange(
        self,
        send_bytes: np.ndarray,
        recv_bytes: np.ndarray,
        local_bytes: int = 0,
        messages: int = 0,
    ) -> None:
        """Account one buffer-exchange round."""
        cur = self._current
        assert cur is not None
        cur.rounds += 1
        round_net = int(np.sum(send_bytes))
        cur.net_bytes += round_net
        cur.local_bytes += local_bytes
        cur.exchange_time += self.network.exchange_time(send_bytes, recv_bytes, messages)
        if self.trace is not None and self._step_span is not None:
            self.trace.instant(
                "round",
                parent=self._step_span,
                round=cur.rounds - 1,
                net_bytes=round_net,
                local_bytes=int(local_bytes),
            )

    def count_messages(self, n: int) -> None:
        assert self._current is not None
        self._current.messages += n

    @property
    def current_messages(self) -> int:
        """Messages counted so far in the in-flight superstep — the live
        plane's per-worker delta capture point on the sim backend (the
        sim's workers share this one collector, so per-worker attribution
        means bracketing each worker's sequential slice of the loop)."""
        return self._current.messages if self._current is not None else 0

    def count_channel_bytes(self, label: str, nbytes: int, local: bool) -> None:
        """Attribute payload bytes to a channel (the per-pattern traffic
        breakdown the paper's analyses reason about)."""
        entry = self.channel_traffic.setdefault(label, [0, 0, 0])
        entry[1 if local else 0] += nbytes

    def count_channel_messages(self, label: str, n: int) -> None:
        entry = self.channel_traffic.setdefault(label, [0, 0, 0])
        entry[2] += n

    def channel_breakdown(self) -> dict:
        """{channel label: {"net_bytes", "local_bytes", "messages"}}."""
        return {
            label: {"net_bytes": v[0], "local_bytes": v[1], "messages": v[2]}
            for label, v in sorted(self.channel_traffic.items())
        }

    # -- fault tolerance -----------------------------------------------------
    def record_checkpoint(self, per_worker_nbytes: list[int]) -> None:
        """Account one checkpoint: workers write their blobs in parallel,
        so the modeled write time is the largest blob over the bandwidth
        (plus one barrier latency), exactly like an exchange round."""
        self.num_checkpoints += 1
        self.checkpoint_bytes += int(sum(per_worker_nbytes))
        largest = max(per_worker_nbytes) if per_worker_nbytes else 0
        self.checkpoint_time += self.network.latency + largest / self.network.bandwidth
        if self.trace is not None:
            self.trace.instant(
                "checkpoint",
                parent=self._run_span,
                superstep=len(self.records),
                nbytes=int(sum(per_worker_nbytes)),
            )

    def record_alert(self, kind, worker, superstep, value, threshold) -> dict:
        """Account one live-monitor alert (straggler/anomaly flagged *in
        flight*; see :class:`repro.obs.live.LiveMonitor`) as an "alert"
        instant under the run span, and return the alert dict that ends
        up in ``EngineResult.live_alerts``."""
        alert = {
            "kind": str(kind),
            "worker": int(worker),
            "superstep": int(superstep),
            "value": round(float(value), 4),
            "threshold": float(threshold),
        }
        if self.trace is not None:
            self.trace.instant("alert", parent=self._run_span, **alert)
        return alert

    def record_log_bytes(self, nbytes: int) -> None:
        self.log_bytes += int(nbytes)

    def record_failure(self, num_workers_lost: int) -> None:
        self.num_failures += int(num_workers_lost)
        if self.trace is not None:
            self.trace.instant(
                "failure",
                parent=self._run_span,
                superstep=len(self.records),
                workers_lost=int(num_workers_lost),
            )

    def record_recovery(self, nbytes: int, seconds: float) -> None:
        self.recovery_bytes += int(nbytes)
        self.recovery_time += seconds
        if self.trace is not None:
            self.trace.instant(
                "recovery",
                parent=self._run_span,
                superstep=len(self.records),
                nbytes=int(nbytes),
                model_seconds=round(float(seconds), 9),
            )

    # -- adaptive rebalancing ------------------------------------------------
    def record_rebalance(self, plan, trigger: str, seconds: float) -> None:
        """Account one applied :class:`~repro.runtime.rebalance.OwnershipPlan`
        as a "rebalance" instant under the run span.  ``trigger`` is
        ``"epoch"`` or ``"superstep"``; ``seconds`` is the modeled state
        transfer time (already included in the plan, passed explicitly so
        callers can substitute a measured value)."""
        self.num_rebalances += 1
        self.rebalanced_vertices += int(plan.moved_vertices)
        self.rebalanced_arcs += int(plan.moved_arcs)
        self.rebalance_time += float(seconds)
        if self.trace is not None:
            # epoch-triggered migrations are recorded before start_run():
            # nest their instant under the epoch span instead
            self.trace.instant(
                "rebalance",
                parent=self._run_span if self._run_span is not None else self.trace_parent,
                superstep=len(self.records),
                trigger=str(trigger),
                moved_vertices=int(plan.moved_vertices),
                moved_arcs=int(plan.moved_arcs),
                gain_ratio=round(float(plan.gain_ratio), 4),
                est_win_seconds=round(float(plan.est_win_seconds), 9),
                migrate_seconds=round(float(seconds), 9),
            )

    # -- streaming ----------------------------------------------------------
    def record_stream_epoch(self, epoch: int, affected: int, mode: str) -> None:
        """Tag this run as one epoch of a streaming job (the per-epoch
        counters then appear in :meth:`summary`)."""
        self.epoch = int(epoch)
        self.affected_vertices = int(affected)
        self.refresh_mode = mode

    def snapshot(self) -> dict:
        """Copy of the rollback-able bookkeeping (per-superstep records and
        the per-channel traffic).  Fault-tolerance counters are excluded on
        purpose: checkpoint/recovery costs already paid stay paid."""
        return {
            "records": [
                replace(r, phases={k: list(v) for k, v in r.phases.items()})
                for r in self.records
            ],
            "channel_traffic": {k: list(v) for k, v in self.channel_traffic.items()},
        }

    def restore(self, state: dict) -> None:
        """Roll the per-superstep bookkeeping back to a :meth:`snapshot`;
        re-executed supersteps then re-append, so a recovered run's totals
        match a failure-free run's exactly."""
        self.records = [
            replace(r, phases={k: list(v) for k, v in r.phases.items()})
            for r in state["records"]
        ]
        self.channel_traffic = {k: list(v) for k, v in state["channel_traffic"].items()}
        if self.trace is not None and self._step_span is not None:
            # the in-flight superstep is being rolled back: close its span
            # as aborted so reports exclude it (the re-execution emits a
            # fresh span with the real counters)
            self.trace.end(self._step_span, aborted=True)
            self._step_span = None
        self._current = None
        self._compute_per_worker = None
        self._phase_per_worker = None

    def end_superstep(self) -> None:
        cur = self._current
        assert cur is not None and self._compute_per_worker is not None
        cur.compute_time_max = float(np.max(self._compute_per_worker))
        cur.compute_time_sum = float(np.sum(self._compute_per_worker))
        if self._phase_per_worker:
            cur.phases = {
                k: [float(x) for x in v] for k, v in self._phase_per_worker.items()
            }
        if self.trace is not None and self._step_span is not None:
            self._emit_phase_spans(cur)
            self.trace.end(
                self._step_span,
                net_bytes=cur.net_bytes,
                local_bytes=cur.local_bytes,
                messages=cur.messages,
                rounds=cur.rounds,
                compute_max=round(cur.compute_time_max, 9),
            )
            self._step_span = None
        self.records.append(cur)
        self._current = None
        self._compute_per_worker = None
        self._phase_per_worker = None

    #: phase layout order inside a superstep (what the engine executes)
    _PHASE_ORDER = ("barrier", "compute", "serialize", "exchange")

    def _emit_phase_spans(self, cur: SuperstepRecord) -> None:
        """One complete span per worker per measured phase.  Durations
        are measured; the start offsets inside the superstep are
        synthesized by laying each worker's phases out sequentially in
        execution order (the engine accumulates per-phase totals across
        exchange rounds, so true start times don't exist)."""
        phases = cur.phases
        ordered = [p for p in self._PHASE_ORDER if p in phases] + sorted(
            set(phases) - set(self._PHASE_ORDER)
        )
        offsets = np.zeros(self.num_workers)
        for phase in ordered:
            per_worker = phases[phase]
            for w, seconds in enumerate(per_worker):
                self.trace.complete(
                    "phase",
                    seconds,
                    parent=self._step_span,
                    t=round(self._step_t0 + float(offsets[w]), 9),
                    worker=w,
                    phase=phase,
                )
            offsets += np.asarray(per_worker)

    # -- derived totals -----------------------------------------------------
    @property
    def supersteps(self) -> int:
        return len(self.records)

    @property
    def total_net_bytes(self) -> int:
        return sum(r.net_bytes for r in self.records)

    @property
    def total_local_bytes(self) -> int:
        return sum(r.local_bytes for r in self.records)

    @property
    def total_messages(self) -> int:
        return sum(r.messages for r in self.records)

    @property
    def total_rounds(self) -> int:
        return sum(r.rounds for r in self.records)

    @property
    def simulated_time(self) -> float:
        return sum(r.simulated_time for r in self.records)

    def phase_totals(self) -> dict:
        """Critical-path seconds per phase: Σ over supersteps of the
        slowest worker's time in that phase.  This is the number that
        explains where ``wall_time`` went (workers run a phase in
        parallel, so the max — not the sum — is what the barrier waits
        on).  Empty when no backend recorded phase timings."""
        totals: dict = {}
        for r in self.records:
            for phase, per_worker in r.phases.items():
                totals[phase] = totals.get(phase, 0.0) + max(per_worker)
        return totals

    def summary(self) -> dict:
        """Flat dict used by the bench harness to print table rows.

        Fault-tolerance counters appear only when checkpointing or
        failure injection was actually used, keeping plain runs' rows
        unchanged.
        """
        out = {
            "supersteps": self.supersteps,
            "rounds": self.total_rounds,
            "net_bytes": self.total_net_bytes,
            "local_bytes": self.total_local_bytes,
            "messages": self.total_messages,
            "simulated_time": self.simulated_time,
            "wall_time": self.wall_time,
        }
        # measured critical-path seconds per phase (phase_* keys appear
        # only when a backend recorded phase timings), so bench rows and
        # `repro run` output carry the wall-time breakdown by default
        for phase, seconds in sorted(self.phase_totals().items()):
            out[f"phase_{phase}"] = seconds
        if self.epoch is not None:
            out.update(
                epoch=self.epoch,
                refresh=self.refresh_mode,
                affected_vertices=self.affected_vertices,
            )
        if self.num_checkpoints or self.num_failures:
            out.update(
                checkpoints=self.num_checkpoints,
                checkpoint_bytes=self.checkpoint_bytes,
                checkpoint_time=self.checkpoint_time,
                log_bytes=self.log_bytes,
                failures=self.num_failures,
                recovery_bytes=self.recovery_bytes,
                recovery_time=self.recovery_time,
            )
        if self.num_rebalances:
            out.update(
                rebalances=self.num_rebalances,
                rebalanced_vertices=self.rebalanced_vertices,
                rebalanced_arcs=self.rebalanced_arcs,
                rebalance_time=self.rebalance_time,
            )
        return out
