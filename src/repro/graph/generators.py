"""Synthetic graph generators.

These produce the scaled counterparts of the paper's Table III datasets
(Wikipedia/WebUK/Facebook/Twitter/chain/tree/USA-road/RMAT24).  All
generators are deterministic given a seed and fully vectorized.
"""

from __future__ import annotations

import os

import numpy as np

from repro.graph.graph import Graph
from repro.graph.store import build_mmap_store

__all__ = [
    "chain",
    "random_tree",
    "rmat",
    "rmat_to_disk",
    "erdos_renyi",
    "erdos_renyi_to_disk",
    "grid_road",
    "star",
    "complete",
]


def chain(n: int) -> Graph:
    """A rooted chain 0 <- 1 <- 2 ... (arc i -> i-1 points to the parent).

    This is the paper's pathological pointer-jumping input: a tree of depth
    ``n`` where every jump round halves the depth.
    """
    if n < 1:
        raise ValueError("chain needs at least one vertex")
    src = np.arange(1, n, dtype=np.int64)
    dst = src - 1
    return Graph(n, src, dst, directed=True)


def random_tree(n: int, seed: int = 0) -> Graph:
    """A uniformly random recursive tree: parent(i) ~ Uniform{0..i-1}.

    Arc ``i -> parent(i)``; vertex 0 is the root.  Expected depth is
    O(log n), making pointer jumping converge in few rounds — the paper's
    "Tree" dataset behaves this way.
    """
    if n < 1:
        raise ValueError("tree needs at least one vertex")
    rng = np.random.default_rng(seed)
    src = np.arange(1, n, dtype=np.int64)
    # parent of vertex i is uniform over [0, i)
    parents = (rng.random(n - 1) * src).astype(np.int64)
    return Graph(n, src, parents, directed=True)


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    directed: bool = True,
    weighted: bool = False,
    dedupe: bool = True,
) -> Graph:
    """Recursive-MATrix power-law graph (Chakrabarti et al.).

    ``n = 2**scale`` vertices and ``edge_factor * n`` generated arcs.  The
    default (a, b, c) produce the heavy skew of social/web graphs: a few
    very high-degree hubs, many low-degree vertices — the degree profile
    the paper's load-balancing optimizations target.
    """
    if not 0 < a + b + c < 1:
        raise ValueError("a + b + c must lie in (0, 1)")
    n = 1 << scale
    m = edge_factor * n
    rng = np.random.default_rng(seed)

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        # quadrant probabilities: [a, b, c, d]
        go_right = r >= a + c  # dst high bit (quadrants b and d)
        go_down = ((r >= a) & (r < a + c)) | (r >= a + b + c)  # src high bit
        src |= go_down.astype(np.int64) << bit
        dst |= go_right.astype(np.int64) << bit

    if not directed:
        # canonicalize so each undirected edge appears once (otherwise the
        # (u,v)/(v,u) duplicates would become parallel edges with
        # independent weights after symmetrization)
        src, dst = np.minimum(src, dst), np.maximum(src, dst)
    if dedupe:
        keys = src * n + dst
        _, unique_idx = np.unique(keys, return_index=True)
        src, dst = src[unique_idx], dst[unique_idx]
    loops = src == dst
    src, dst = src[~loops], dst[~loops]

    weights = None
    if weighted:
        weights = rng.uniform(1.0, 100.0, size=src.size)
    return Graph(n, src, dst, weights=weights, directed=directed)


def _rmat_bits(rng, m: int, scale: int, a: float, b: float, c: float):
    """One batch of ``m`` RMAT arcs from an already-positioned ``rng``."""
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        go_right = r >= a + c  # dst high bit (quadrants b and d)
        go_down = ((r >= a) & (r < a + c)) | (r >= a + b + c)  # src high bit
        src |= go_down.astype(np.int64) << bit
        dst |= go_right.astype(np.int64) << bit
    return src, dst


def rmat_to_disk(
    out: str | os.PathLike,
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    directed: bool = True,
    weighted: bool = False,
    chunk_edges: int = 1 << 20,
    index_dtype: str = "int64",
) -> Graph:
    """:func:`rmat` that writes straight to an mmap store at ``out``.

    Arcs are generated ``chunk_edges`` at a time and streamed through the
    two-pass counting CSR build — peak memory is O(V + chunk), never
    O(E), so 10M–1B-edge graphs come out of a laptop.  Each chunk draws
    from its own ``default_rng([seed, chunk_index])`` stream, which is
    what lets the build's passes regenerate identical chunks without an
    intermediate edge file (and makes the output independent of
    ``chunk_edges`` only per-chunk-stream — the *pair* (seed,
    chunk_edges) identifies the graph).  Global deduplication needs a
    full-edge-set view, so unlike the in-memory generator there is no
    ``dedupe`` option; RMAT duplicate rates are low at these sizes and
    parallel arcs are legal inputs.  Self-loops are dropped, matching
    :func:`rmat`.
    """
    if not 0 < a + b + c < 1:
        raise ValueError("a + b + c must lie in (0, 1)")
    n = 1 << scale
    m = edge_factor * n

    def chunks():
        for ci, lo in enumerate(range(0, m, chunk_edges)):
            rng = np.random.default_rng([seed, ci])
            src, dst = _rmat_bits(rng, min(chunk_edges, m - lo), scale, a, b, c)
            if not directed:
                src, dst = np.minimum(src, dst), np.maximum(src, dst)
            loops = src == dst
            src, dst = src[~loops], dst[~loops]
            w = rng.uniform(1.0, 100.0, size=src.size) if weighted else None
            yield src, dst, w

    store = build_mmap_store(
        out,
        chunks,
        num_vertices=n,
        directed=directed,
        weighted=weighted,
        index_dtype=index_dtype,
    )
    return Graph.from_store(store)


def erdos_renyi(n: int, avg_degree: float, seed: int = 0, directed: bool = True) -> Graph:
    """G(n, m) random graph with ``m = n * avg_degree`` arcs."""
    m = int(n * avg_degree)
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    loops = src == dst
    return Graph(n, src[~loops], dst[~loops], directed=directed)


def erdos_renyi_to_disk(
    out: str | os.PathLike,
    n: int,
    avg_degree: float,
    seed: int = 0,
    directed: bool = True,
    chunk_edges: int = 1 << 20,
    index_dtype: str = "int64",
) -> Graph:
    """:func:`erdos_renyi` that writes straight to an mmap store at ``out``
    (chunked like :func:`rmat_to_disk`: per-chunk rng streams, O(V + chunk)
    peak memory)."""
    m = int(n * avg_degree)

    def chunks():
        for ci, lo in enumerate(range(0, m, chunk_edges)):
            rng = np.random.default_rng([seed, ci])
            size = min(chunk_edges, m - lo)
            src = rng.integers(0, n, size=size, dtype=np.int64)
            dst = rng.integers(0, n, size=size, dtype=np.int64)
            loops = src == dst
            yield src[~loops], dst[~loops], None

    store = build_mmap_store(
        out, chunks, num_vertices=n, directed=directed, index_dtype=index_dtype
    )
    return Graph.from_store(store)


def grid_road(rows: int, cols: int, seed: int = 0, weighted: bool = True) -> Graph:
    """A rows×cols grid with random edge deletions: a road-network stand-in.

    Road networks are near-planar, low-degree (USA road avg deg 2.41), and
    high-diameter; a thinned grid reproduces all three properties.
    """
    n = rows * cols
    idx = np.arange(n, dtype=np.int64).reshape(rows, cols)
    right_src = idx[:, :-1].ravel()
    right_dst = idx[:, 1:].ravel()
    down_src = idx[:-1, :].ravel()
    down_dst = idx[1:, :].ravel()
    src = np.concatenate([right_src, down_src])
    dst = np.concatenate([right_dst, down_dst])
    rng = np.random.default_rng(seed)
    # delete ~35% of edges to break the regular structure while (mostly)
    # keeping connectivity; resulting avg degree ~ 2.6, like USA-road
    keep = rng.random(src.size) >= 0.35
    src, dst = src[keep], dst[keep]
    weights = rng.uniform(1.0, 10.0, size=src.size) if weighted else None
    return Graph(n, src, dst, weights=weights, directed=False)


def star(n: int, center: int = 0) -> Graph:
    """One hub connected to all other vertices (undirected).

    The minimal skewed-degree graph; used by tests targeting load-balance
    behaviour.
    """
    others = np.array([v for v in range(n) if v != center], dtype=np.int64)
    src = np.full(others.size, center, dtype=np.int64)
    return Graph(n, src, others, directed=False)


def complete(n: int) -> Graph:
    """Complete undirected graph on n vertices."""
    src, dst = np.triu_indices(n, k=1)
    return Graph(n, src.astype(np.int64), dst.astype(np.int64), directed=False)
