"""Maximal independent set via Luby's algorithm.

Each round, every undecided vertex draws a deterministic pseudo-random
priority (a hash of round and id) and enters the set iff its priority
beats every undecided neighbor's; neighbors of new members drop out.
Expected O(log n) rounds.

Channels: a ``CombinedMessage(MIN)`` carries priorities (only the
minimum matters) and a second ``CombinedMessage(MAX)`` flags "a neighbor
joined the set".  The decided/undecided bookkeeping drives vote-to-halt.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._common import gather
from repro.core import (
    ChannelEngine,
    CombinedMessage,
    MAX_I32,
    MIN_I64,
    Vertex,
    VertexProgram,
)
from repro.graph.graph import Graph

__all__ = ["LubyMIS", "run_mis"]

UNDECIDED, IN_SET, OUT = 0, 1, 2


def _priority(seed: int, round_no: int, vid: int) -> int:
    """Deterministic per-(round, vertex) priority; SplitMix64-style."""
    x = (seed * 0x9E3779B97F4A7C15 + round_no * 0xBF58476D1CE4E5B9 + vid) & (2**64 - 1)
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & (2**64 - 1)
    x ^= x >> 27
    # keep positive and leave room so ties are broken by id
    return int(((x >> 16) & 0x7FFFFFFF) * (1 << 20) + vid)


class LubyMIS(VertexProgram):
    """Phases alternate: PROPOSE (broadcast priorities) and RESOLVE
    (winners join, their neighbors leave)."""

    seed = 0

    def __init__(self, worker):
        super().__init__(worker)
        self.prio = CombinedMessage(worker, MIN_I64)
        self.taken = CombinedMessage(worker, MAX_I32)
        self.state = np.full(worker.num_local, UNDECIDED, dtype=np.int8)

    def _round(self) -> int:
        return (self.step_num + 1) // 2

    def compute(self, v: Vertex) -> None:
        i = v.local
        if self.state[i] != UNDECIDED:
            v.vote_to_halt()
            return
        if self.step_num % 2 == 1:
            # PROPOSE: first fold in "a neighbor joined" flags from the
            # previous resolve step, then bid with my priority
            if self.taken.get_message(v) == 1:
                self.state[i] = OUT
                v.vote_to_halt()
                return
            p = _priority(self.seed, self._round(), v.id)
            send = self.prio.send_message
            for e in v.edges:
                send(int(e), p)
            # stay active for the resolve step
        else:
            # RESOLVE: join iff my priority beats every undecided neighbor
            best_nbr = int(self.prio.get_message(v))
            mine = _priority(self.seed, self._round(), v.id)
            if mine < best_nbr:
                self.state[i] = IN_SET
                send = self.taken.send_message
                for e in v.edges:
                    send(int(e), 1)
                v.vote_to_halt()
            # else: stay undecided; remain active for the next propose

    def finalize(self) -> dict:
        return {int(g): int(self.state[i]) for i, g in enumerate(self.worker.local_ids)}


def run_mis(graph: Graph, seed: int = 0, **engine_kwargs):
    """Compute a maximal independent set; returns ``(in_set, EngineResult)``
    where ``in_set`` is a boolean array."""
    if graph.directed:
        raise ValueError("MIS expects an undirected graph")
    program = type("LubyMIS", (LubyMIS,), {"seed": seed})
    result = ChannelEngine(graph, program, **engine_kwargs).run()
    states = gather(result, graph.num_vertices)
    return states == IN_SET, result
