"""The channel engine: the superstep loop of Fig. 4.

The engine creates one :class:`~repro.core.worker.Worker` per partition
block, instantiates the user's :class:`~repro.core.program.VertexProgram`
on each, and then hands the run to a pluggable
:class:`~repro.runtime.executor.ExecutorBackend` that alternates vertex
compute with channel exchange rounds until every vertex has voted to halt
and no channel requests another round.

Two backends exist (see ARCHITECTURE.md §8): ``"sim"`` runs every worker
sequentially in-process with modeled parallelism, ``"process"`` runs each
worker as a real OS process from a persistent
:class:`~repro.runtime.parallel.pool.WorkerPool`.  Every feature —
checkpointing, failure injection, both recovery modes, bulk compute,
streaming epochs — composes with every backend, with bit-identical
result data, per-channel traffic, and byte/message totals.

Both compute time (max over workers, i.e. parallel makespan) and modeled
network time are accumulated into the run's
:class:`~repro.runtime.metrics.MetricsCollector`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.recovery import FailureSchedule, FrameLog
from repro.core.worker import Worker
from repro.graph.graph import Graph
from repro.graph.partition import hash_partition
from repro.runtime.costmodel import NetworkModel, DEFAULT_NETWORK
from repro.runtime.metrics import MetricsCollector
from repro.runtime.rebalance import REBALANCE_MODES, RebalancePolicy

__all__ = ["ChannelEngine", "EngineResult"]

#: recognised ``recovery`` modes (see :mod:`repro.core.recovery`)
RECOVERY_MODES = ("rollback", "confined")

#: recognised execution backends
EXECUTORS = ("sim", "process")

#: recognised process-backend frame transports (see
#: :class:`~repro.runtime.parallel.pool.WorkerPool`)
TRANSPORTS = ("shm", "pipe")

#: recognised adaptive-rebalancing triggers (re-exported from
#: :mod:`repro.runtime.rebalance`); "epoch" is acted on by the streaming
#: :class:`~repro.streaming.epoch.EpochEngine` between epochs, while
#: "superstep" migrates inside a run at the superstep barrier

#: engine configuration generations, for worker-pool reuse: a pool knows
#: which engine's configuration its worker processes currently hold and
#: reconfigures only when a *different* engine runs on it
_GENERATIONS = itertools.count(1)


@dataclass
class EngineResult:
    """Outcome of one engine run.

    The pass-through properties mirror the most-used
    :class:`~repro.runtime.metrics.MetricsCollector` totals so callers
    (benchmarks, examples) don't reach into ``result.metrics`` internals.

    When ``metrics`` is ``None`` (collection disabled) every pass-through
    property returns ``None`` — a run with no collector did not observe
    "0 bytes"/"0.0 seconds", it observed nothing, and the old zero
    fallbacks made byte-identity comparisons between such runs pass
    vacuously.  Callers comparing totals must read them through
    ``result.metrics`` or handle ``None`` explicitly.
    """

    data: dict = field(default_factory=dict)
    metrics: MetricsCollector | None = None
    #: alerts the live monitor raised during the run (``None`` when the
    #: engine had no ``live=`` telemetry segment; see ARCHITECTURE.md §11)
    live_alerts: list | None = None

    @property
    def supersteps(self) -> int | None:
        return self.metrics.supersteps if self.metrics is not None else None

    @property
    def total_net_bytes(self) -> int | None:
        """Serialized bytes that crossed worker boundaries (``None`` when
        metrics collection was disabled — not the same as 0, which means
        a measured run with no traffic)."""
        return self.metrics.total_net_bytes if self.metrics is not None else None

    @property
    def total_messages(self) -> int | None:
        """Network messages counted by all channels (``None`` when
        metrics collection was disabled)."""
        return self.metrics.total_messages if self.metrics is not None else None

    @property
    def simulated_time(self) -> float | None:
        """Modeled parallel runtime (max compute + network per superstep);
        ``None`` when metrics collection was disabled."""
        return self.metrics.simulated_time if self.metrics is not None else None

    @property
    def phase_times(self) -> dict | None:
        """Measured critical-path seconds per superstep phase
        (:meth:`~repro.runtime.metrics.MetricsCollector.phase_totals`);
        ``None`` when metrics collection was disabled."""
        return self.metrics.phase_totals() if self.metrics is not None else None


class ChannelEngine:
    """Runs a channel-based vertex program over a partitioned graph.

    Parameters
    ----------
    graph:
        The input :class:`~repro.graph.graph.Graph`.
    program_factory:
        Callable ``(worker) -> VertexProgram``; typically the program class
        itself.
    num_workers:
        Number of simulated workers (the paper used an 8-node cluster).
    partition:
        Optional vertex->worker array; defaults to hash partitioning, the
        Pregel default ("vertices are randomly assigned to workers").
    network:
        Cost model for the simulated interconnect.
    checkpoint_every:
        Take a checkpoint every ``k`` supersteps (plus one before the
        first superstep).  ``None`` disables periodic checkpoints; an
        initial checkpoint is still taken whenever ``failures`` is set.
    failures:
        A :class:`~repro.core.recovery.FailureSchedule` (or anything its
        constructor accepts, e.g. ``[(3, 7)]`` or ``["3:7"]``): worker 3
        dies at the end of superstep 7.
    recovery:
        ``"rollback"`` (all workers reload the latest checkpoint and
        re-execute) or ``"confined"`` (only the failed worker reloads;
        survivors' logged frames feed its replay).  Defaults can be
        overridden per :meth:`run` call.
    initial_active:
        Global vertex ids active in superstep 1 (``None`` = all vertices,
        the Pregel default).  The streaming layer seeds refresh runs from
        the delta-affected region this way; programs may wake more
        vertices via ``before_superstep`` / message arrival as usual.
    executor:
        ``"sim"`` (default) runs every worker sequentially in-process
        with modeled parallelism; ``"process"`` runs each worker as a
        real OS process over shared memory and pipes
        (:mod:`repro.runtime.parallel`) with bit-identical data,
        per-channel traffic, and byte/message totals.  Both backends
        support checkpointing, failure injection, and both recovery
        modes; on the process backend an injected failure really kills
        the worker's OS process and recovery restores a respawned
        replacement through the checkpoint wire format.
    sync_state:
        Process executor only: when ``True``, each worker ships its
        end-of-run state (program state dict, halt/wake flags, channel
        ``snapshot()`` s) back through the checkpoint codec and the
        engine loads it into its own workers, so post-run introspection
        of ``engine.workers`` behaves as after a simulated run.  Off by
        default — result data always comes back regardless.
    transport:
        Process executor only: the frame data plane.  ``"shm"`` (the
        default) exchanges codec frames worker-to-worker through
        per-pair shared-memory ring buffers, with barrier votes batched
        into the ring headers and compute overlapped with exchange;
        ``"pipe"`` is the portable OS-pipe fallback.  Both produce
        bit-identical results; ``None`` means the pool's transport (or
        ``"shm"`` when the engine creates the pool).
    trace:
        Optional :class:`~repro.obs.trace.TraceRecorder`: the run emits
        structured span events (run, superstep, per-worker phase,
        exchange round, checkpoint, failure, recovery) through the
        metrics collector.  Both executors produce schema-identical
        traces; see ARCHITECTURE.md §10 and ``repro report``.  The
        caller owns the recorder (the engine never closes it).
    live:
        Optional :class:`~repro.obs.live.LiveMetrics` segment (with
        ``num_workers`` slots): the run publishes per-worker counters
        after every superstep so external observers (``repro top``, the
        ``--metrics-port`` exporter) can watch it in flight, and an
        online :class:`~repro.obs.live.LiveMonitor` flags stragglers /
        anomalies as "alert" trace instants and
        ``EngineResult.live_alerts``.  Both executors publish the same
        slot schema; see ARCHITECTURE.md §11.  The caller owns the
        segment (the engine never closes or unlinks it).
    pool:
        Process executor only: an existing
        :class:`~repro.runtime.parallel.pool.WorkerPool` to run on
        instead of an engine-owned one.  The pool's persistent worker
        processes are *reconfigured* for this engine (delta/remap
        control messages), never respawned — this is how the streaming
        :class:`~repro.streaming.epoch.EpochEngine` amortizes process
        startup across epochs.  The caller keeps ownership: the engine
        never shuts an externally provided pool down.
    rebalance:
        Adaptive load rebalancing (:mod:`repro.runtime.rebalance`,
        ARCHITECTURE.md §13).  ``"superstep"`` consults the policy every
        ``rebalance_every`` supersteps at the barrier and, when it fires,
        migrates vertex ownership (and all per-vertex state, through the
        checkpoint capture format) mid-run — on both executors, with
        identical migration sequences.  ``"epoch"`` is the between-epochs
        trigger acted on by the streaming layer; inside a single engine
        run it does nothing.  ``"off"`` (default) disables rebalancing.
    rebalance_every:
        Superstep cadence of the ``"superstep"`` trigger.
    rebalance_policy:
        Optional pre-built :class:`~repro.runtime.rebalance.RebalancePolicy`
        (to tune thresholds or share hysteresis state); one with default
        thresholds is created when ``rebalance`` is armed without it.
    """

    def __init__(
        self,
        graph: Graph,
        program_factory: Callable[[Worker], object],
        num_workers: int = 8,
        partition: np.ndarray | None = None,
        network: NetworkModel = DEFAULT_NETWORK,
        checkpoint_every: int | None = None,
        failures=None,
        recovery: str = "rollback",
        initial_active: np.ndarray | None = None,
        executor: str = "sim",
        sync_state: bool = False,
        transport: str | None = None,
        pool=None,
        trace=None,
        live=None,
        rebalance: str = "off",
        rebalance_every: int = 16,
        rebalance_policy: RebalancePolicy | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.validate_options(
            executor=executor,
            recovery=recovery,
            transport=transport,
            rebalance=rebalance,
            rebalance_every=rebalance_every,
        )
        if pool is not None:
            if executor != "process":
                raise ValueError("pool= only applies to executor='process'")
            if pool.num_workers != num_workers:
                raise ValueError(
                    f"pool has {pool.num_workers} workers, engine wants "
                    f"{num_workers}"
                )
            if transport is not None:
                # a single-worker pool normalizes any request to "pipe",
                # so compare against the same normalization
                effective = transport if num_workers > 1 else "pipe"
                if pool.transport != effective:
                    raise ValueError(
                        f"pool uses transport={pool.transport!r}, engine "
                        f"wants {transport!r}"
                    )
        self.transport = (
            transport
            if transport is not None
            else (pool.transport if pool is not None else "shm")
        )
        self.executor = executor
        self.sync_state = bool(sync_state)
        self.pool = pool
        self.generation = next(_GENERATIONS)
        self._backend = None
        self.graph = graph
        self.num_workers = num_workers
        self.program_factory = program_factory
        self.checkpoint_every = checkpoint_every
        self.failures = FailureSchedule.coerce(failures)
        self.recovery = recovery
        self.checkpoint = None  # latest Snapshot, when fault tolerance is on
        self.frame_log: FrameLog | None = None
        if partition is None:
            partition = hash_partition(graph.num_vertices, num_workers)
        partition = np.asarray(partition, dtype=np.int64)
        if partition.shape != (graph.num_vertices,):
            raise ValueError("partition must assign every vertex")
        if partition.size and (partition.min() < 0 or partition.max() >= num_workers):
            raise ValueError("partition assigns vertices to unknown workers")
        self.owner = partition
        self.metrics = MetricsCollector(num_workers=num_workers, network=network)
        if trace is not None:
            self.metrics.trace = trace
            attrs = {"executor": executor}
            if executor == "process":
                attrs["transport"] = self.transport
            self.metrics.trace_attrs = attrs
        self.live = live
        self.monitor = None
        if live is not None:
            if live.num_workers != num_workers:
                raise ValueError(
                    f"live metrics segment has {live.num_workers} worker "
                    f"slots, engine wants {num_workers}"
                )
            from repro.obs.live import LiveMonitor

            self.monitor = LiveMonitor(live, self.metrics)
        #: adaptive rebalancing (ARCHITECTURE.md §13): "superstep" arms
        #: the backend's in-run migration trigger; "epoch" is carried for
        #: the streaming layer (no in-run effect); "off" disables both
        self.rebalance = rebalance
        self.rebalance_every = int(rebalance_every)
        self.rebalancer = rebalance_policy
        if rebalance != "off" and self.rebalancer is None:
            self.rebalancer = RebalancePolicy(num_workers=num_workers)
        self.step_num = 0

        self.workers: list[Worker] = []
        for w in range(num_workers):
            local_ids = np.flatnonzero(partition == w)
            self.workers.append(Worker(self, w, local_ids))
        for worker in self.workers:
            worker.program = program_factory(worker)

        self.initial_active: np.ndarray | None = None
        if initial_active is not None:
            seeds = np.asarray(initial_active, dtype=np.int64)
            if seeds.size and (
                seeds.min() < 0 or seeds.max() >= graph.num_vertices
            ):
                raise ValueError("initial_active contains out-of-range vertex ids")
            self.initial_active = seeds.copy()  # worker processes re-seed from this
            for worker in self.workers:
                worker.seed_active(seeds)

        nchan = {len(w.channels) for w in self.workers}
        if len(nchan) != 1:
            raise RuntimeError(
                "programs must construct the same channels on every worker"
            )
        self.num_channels = nchan.pop()

    # -- option validation (single source of truth; the CLI calls this too) --
    @staticmethod
    def validate_options(
        *,
        executor: str = "sim",
        checkpoint_every: int | None = None,
        failures=None,
        recovery: str = "rollback",
        num_workers: int | None = None,
        transport: str | None = None,
        rebalance: str = "off",
        rebalance_every: int | None = None,
    ) -> FailureSchedule | None:
        """Validate a backend/fault-tolerance option combination in one
        place, coercing ``failures`` into a
        :class:`~repro.core.recovery.FailureSchedule` on the way.

        Every feature composes with every backend, so what's checked is
        each option's own domain: a known executor, a known recovery
        mode, a positive checkpoint interval, and a failure schedule that
        names only existing workers (when ``num_workers`` is given) and
        leaves at least one survivor.  Raises ``ValueError`` with a
        user-facing message; used by the engine itself and by the CLI,
        so the two can never disagree.
        """
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if transport is not None:
            if transport not in TRANSPORTS:
                raise ValueError(
                    f"transport must be one of {TRANSPORTS}, got {transport!r}"
                )
            if executor != "process":
                raise ValueError("transport= only applies to executor='process'")
        if recovery not in RECOVERY_MODES:
            raise ValueError(
                f"recovery must be one of {RECOVERY_MODES}, got {recovery!r}"
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if rebalance not in REBALANCE_MODES:
            raise ValueError(
                f"rebalance must be one of {REBALANCE_MODES}, got {rebalance!r}"
            )
        if rebalance_every is not None and rebalance_every < 1:
            raise ValueError("rebalance_every must be >= 1")
        schedule = FailureSchedule.coerce(failures)
        if schedule is not None and num_workers is not None:
            schedule.validate(num_workers)
        return schedule

    # -- backend resolution --------------------------------------------------
    @property
    def backend(self):
        """This engine's :class:`~repro.runtime.executor.ExecutorBackend`
        (created on first use, then reused across :meth:`run` calls)."""
        if self._backend is None:
            if self.executor == "process":
                from repro.runtime.parallel.backend import ProcessBackend

                self._backend = ProcessBackend(self, pool=self.pool)
            else:
                from repro.runtime.executor import SimBackend

                self._backend = SimBackend(self)
        return self._backend

    # -- main loop ---------------------------------------------------------
    def run(
        self,
        max_supersteps: int = 100_000,
        checkpoint_every: int | None = None,
        failures=None,
        recovery: str | None = None,
    ) -> EngineResult:
        """Run to termination; the fault-tolerance arguments override the
        constructor's defaults for this run (see the class docstring)."""
        if checkpoint_every is None:
            checkpoint_every = self.checkpoint_every
        failures = failures if failures is not None else self.failures
        recovery = recovery if recovery is not None else self.recovery
        failures = self.validate_options(
            executor=self.executor,
            checkpoint_every=checkpoint_every,
            failures=failures,
            recovery=recovery,
            num_workers=self.num_workers,
        )
        if failures is not None:
            # pop() consumes events; work on a per-run copy so the same
            # schedule can drive several runs (e.g. rollback vs confined)
            failures = failures.copy()
        return self.backend.run(
            max_supersteps=max_supersteps,
            checkpoint_every=checkpoint_every,
            failures=failures,
            recovery=recovery,
        )

    def close(self) -> None:
        """Release backend resources now.

        Only meaningful for ``executor="process"`` with an engine-owned
        pool: the worker processes, pipes, and shared-memory segments are
        shut down immediately instead of waiting for the engine to be
        garbage collected (the engine↔backend reference cycle means
        cleanup otherwise happens at the next *cyclic* GC pass, not on
        the last ``del``) or for interpreter exit.  Idempotent; a closed
        engine can no longer ``run()``.  Externally provided pools are
        the caller's to shut down and are left alone.
        """
        if self._backend is not None:
            self._backend.shutdown()

    def rebuild_worker(self, w: int) -> None:
        """Replace worker ``w`` with a fresh instance (simulating a
        replacement node): new Worker, new program, channels rebuilt by
        the program's constructor.  The caller loads checkpointed state
        into it afterwards (:func:`repro.runtime.checkpoint.restore_worker`)."""
        local_ids = np.flatnonzero(self.owner == w)
        worker = Worker(self, w, local_ids)
        worker.program = self.program_factory(worker)
        if len(worker.channels) != self.num_channels:
            raise RuntimeError(
                "rebuilt worker constructed a different channel set"
            )  # pragma: no cover - factory determinism guard
        # the documented lifecycle promises initialize() before any
        # serialize/deserialize; the replacement's channels get it too
        # (restore_worker then overwrites whatever state it set up)
        for channel in worker.channels:
            channel.initialize()
        self.workers[w] = worker
