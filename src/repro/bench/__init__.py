"""Experiment harness: scaled datasets (Table III), cell runners, and
row-for-row regenerators for Tables IV–VII."""

from repro.bench.datasets import DATASETS, load_dataset, table3_rows
from repro.bench.runner import run_cell
from repro.bench.tables import (
    table4,
    table5_scatter,
    table5_reqresp,
    table5_prop,
    table6,
    table7,
    render_rows,
)

__all__ = [
    "DATASETS",
    "load_dataset",
    "table3_rows",
    "run_cell",
    "table4",
    "table5_scatter",
    "table5_reqresp",
    "table5_prop",
    "table6",
    "table7",
    "render_rows",
]
